#!/usr/bin/env bash
# Tier-1 verification plus sanitizer passes (TSan on the batch engine, ASan
# on fault/cell paths, UBSan on the event engine) and a throughput gate
# against scripts/perf_baseline.json.
#
#   scripts/check.sh            # full check
#   JOBS=8 scripts/check.sh     # pin build/test parallelism
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== TSan: core_batch_test under -fsanitize=thread =="
cmake -B build-tsan -S . -DEAB_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target core_batch_test
# Force multiple workers even on small machines so the pool is exercised.
EAB_JOBS=4 ./build-tsan/tests/core_batch_test

echo "== ASan: fault-path tests under -fsanitize=address =="
# The fault layer synthesizes partial resources and cancels in-flight
# events/flows; ASan guards the lifetime contracts (retained partial bodies,
# stale-callback drops, cancelled-flow teardown).
cmake -B build-asan -S . -DEAB_SANITIZE=address
cmake --build build-asan -j "$JOBS" \
  --target net_fault_test --target net_http_test --target web_robustness_test
./build-asan/tests/net_fault_test
./build-asan/tests/net_http_test
./build-asan/tests/web_robustness_test

echo "== chaos: seeded sweep + reproducer corpus replay =="
# 256 seed-derived cross-layer fault scenarios (net faults, RIL failures,
# timer drift, mid-load aborts, cache storms, CPU slowdown) audited against
# the invariant oracle; the bench exits non-zero on any violation or hang.
# Then the checked-in minimal reproducers are replayed byte-for-byte.
(cd build/bench && EAB_CHAOS_SEEDS=256 ./bench_ext_chaos > /dev/null)
./build/examples/chaos_replay tests/chaos_corpus/*.json
# A smaller sweep under ASan guards the abort/teardown lifetime contracts
# (cancelled flows, settled-after-abort callbacks, storm-cleared caches).
cmake --build build-asan -j "$JOBS" --target bench_ext_chaos
(cd build-asan/bench && EAB_CHAOS_SEEDS=64 ./bench_ext_chaos > /dev/null)
echo "chaos contract held"

echo "== cell: co-simulation determinism + ASan sweep =="
# The shared-cell co-simulation must be a pure function of its config
# (serial == BatchRunner-sharded sweeps, audited traces) — cell_test covers
# that in-process; run it in the tier-1 build, then the 32-seed chaos sweep
# over cell scenarios again under ASan to guard the per-session teardown
# (client/load replacement, stale abort events, grant release on demotion).
./build/tests/cell_test
cmake --build build-asan -j "$JOBS" --target cell_test
# 16 seeds under ASan: half the in-process sweep, same fault atoms.
EAB_CELL_CHAOS_SEEDS=16 ./build-asan/tests/cell_test \
  --gtest_filter='CellTest.ChaosSweepOverCellScenarios:CellTest.GrantExhaustionDropsSessionsAndStaysClean:CellTest.SameSeedSameResult'
# A small --cell bench run end-to-end: knobs parse, JSON lands, exit 0.
(cd build/bench && EAB_CELL_USERS=8 EAB_CELL_SEED=3 ./bench_fig11_capacity --cell > /dev/null)
echo "cell checks passed"

echo "== radio failure: RLF/outage boundary sweep + null-path bytes =="
# The degraded-radio contract (DESIGN.md "Radio failure model"): coverage
# holes at every RRC state and fetch-settle boundary must tear down cleanly
# (no leaked flows/markers, audited traces) — run under ASan because RLF
# cancels in-flight signalling and settles fetches from a failing state.
cmake --build build-asan -j "$JOBS" \
  --target radio_outage_boundary_test --target radio_rrc_test
./build-asan/tests/radio_outage_boundary_test
./build-asan/tests/radio_rrc_test
# Trimmed cell outage sweep under ASan: serial == sharded == supervised with
# per-UE fades and whole-cell blackouts active.
EAB_CELL_OUTAGE_SEEDS=8 ./build-asan/tests/cell_test \
  --gtest_filter='CellTest.OutageSweepSerialShardedSupervisedBitIdentical'
# Null path: with the outage knobs explicitly set to their disabled values,
# the --cell bench must emit byte-identical stdout and artifacts to a run
# that never mentions them.
radio=build/bench/radio_null
rm -rf "$radio"
mkdir -p "$radio"
radio_env="EAB_CELL_USERS=8 EAB_CELL_SEED=3"
(cd build/bench && env $radio_env ./bench_fig11_capacity --cell \
  > radio_null/ref_stdout.txt)
cp build/bench/BENCH_cell.json "$radio/ref_cell.json"
cp build/bench/BENCH_cell.metrics.json "$radio/ref_cell.metrics.json"
(cd build/bench && env $radio_env EAB_OUTAGE_COUNT=0 EAB_CELL_OUTAGE_COUNT=0 \
  ./bench_fig11_capacity --cell > radio_null/off_stdout.txt)
cmp "$radio/ref_stdout.txt" "$radio/off_stdout.txt"
cmp "$radio/ref_cell.json" build/bench/BENCH_cell.json
cmp "$radio/ref_cell.metrics.json" build/bench/BENCH_cell.metrics.json
# Enabled path end-to-end: the ext_faults outage sweep (both pipelines, three
# re-establishment failure rates) with every load traced and audited.
(cd build/bench && EAB_TRACE=1 EAB_OUTAGE_COUNT=2 EAB_OUTAGE_START=1 \
  EAB_OUTAGE_PERIOD=6 EAB_OUTAGE_DURATION=1.5 ./bench_ext_faults > /dev/null)
echo "radio failure checks passed"

echo "== supervision: crash-recovery soak =="
# The bit-identity contract end-to-end: a supervised --cell sweep whose
# workers AND orchestrator are SIGKILLed at seed-derived points must, after
# relaunching from the checkpoint journal, produce stdout, BENCH_cell.json
# and the metrics snapshot byte-identical to an uninterrupted in-process
# run.  Three chaos seeds drive different kill schedules; the grep at the
# end requires at least 8 injected kills and at least one orchestrator kill
# across the soak.
soak=build/bench/soak
rm -rf "$soak"
mkdir -p "$soak"
soak_env="EAB_CELL_USERS=16 EAB_CELL_SEED=5"
(cd build/bench && env $soak_env ./bench_fig11_capacity --cell > soak/ref_stdout.txt)
cp build/bench/BENCH_cell.json "$soak/ref_cell.json"
cp build/bench/BENCH_cell.metrics.json "$soak/ref_cell.metrics.json"

# Supervised but uninterrupted: forked workers, same bytes.
(cd build/bench && env $soak_env EAB_SUPERVISE=1 EAB_WORKERS=2 \
  ./bench_fig11_capacity --cell > soak/sup_stdout.txt 2> soak/sup_stderr.txt)
cmp "$soak/ref_stdout.txt" "$soak/sup_stdout.txt"
cmp "$soak/ref_cell.json" build/bench/BENCH_cell.json
cmp "$soak/ref_cell.metrics.json" build/bench/BENCH_cell.metrics.json

# Chaos: relaunch until the sweep survives its own kill schedule.  Each
# launch is killed mid-run (workers at seed-derived commit points, the
# orchestrator once, right after a durable commit), so convergence itself
# proves the journal resumes; stdout is rewritten per launch, leaving the
# final successful launch's output for the byte-compare.
for chaos_seed in 77 101 202; do
  rm -rf "$soak/ckpt"
  mkdir -p "$soak/ckpt"
  relaunches=0
  until (cd build/bench && env $soak_env EAB_SUPERVISE=1 EAB_WORKERS=2 \
      EAB_CHECKPOINT_DIR="soak/ckpt" EAB_SELF_CHAOS="$chaos_seed" \
      EAB_SELF_CHAOS_KILLS=16 EAB_SELF_CHAOS_ORC=1 \
      ./bench_fig11_capacity --cell > soak/chaos_stdout.txt \
      2>> soak/chaos_stderr.txt); do
    relaunches=$((relaunches + 1))
    if [ "$relaunches" -gt 20 ]; then
      echo "SOAK FAILED: seed $chaos_seed never converged" >&2
      exit 1
    fi
  done
  echo "chaos seed $chaos_seed: recovered after $relaunches relaunch(es)"
  cmp "$soak/ref_stdout.txt" "$soak/chaos_stdout.txt"
  cmp "$soak/ref_cell.json" build/bench/BENCH_cell.json
  cmp "$soak/ref_cell.metrics.json" build/bench/BENCH_cell.metrics.json
done
kills=$(grep -c 'supervisor: chaos SIGKILL' "$soak/chaos_stderr.txt")
orc_kills=$(grep -c 'supervisor: chaos SIGKILL orchestrator' "$soak/chaos_stderr.txt")
echo "soak: $kills chaos kills injected ($orc_kills orchestrator)"
if [ "$kills" -lt 8 ] || [ "$orc_kills" -lt 1 ]; then
  echo "SOAK FAILED: expected >= 8 kills incl >= 1 orchestrator kill" >&2
  exit 1
fi
echo "crash recovery byte-identical under $kills SIGKILLs"

# The supervision layer itself under ASan: fork/pipe lifecycle, journal
# recovery buffers, torn-tail truncation.
cmake --build build-asan -j "$JOBS" \
  --target core_supervisor_test --target core_checkpoint_test
./build-asan/tests/core_supervisor_test
./build-asan/tests/core_checkpoint_test

echo "== metro: multi-cell mobility determinism + ASan sweep =="
# Tier-1 metro suites in the regular build: the full metro contract
# (1-cell ≡ run_cell bytes, tier/shard invariance, ledger conservation,
# audited mobility traces) plus the forced-handover boundary matrix.
./build/tests/metro_test
./build/tests/metro_handover_boundary_test
# 16 mobility seeds under ASan: a handover pauses flows mid-fetch and
# re-routes them through another scheduler, a refused admission aborts the
# load from inside the move — ASan guards those cross-cell lifetimes.
cmake --build build-asan -j "$JOBS" \
  --target metro_test --target metro_handover_boundary_test
EAB_METRO_SWEEP_SEEDS=16 ./build-asan/tests/metro_test \
  --gtest_filter='MetroTest.MobilitySeedSweepStaysClean:MetroTest.MobilityLedgerConserves'
./build-asan/tests/metro_handover_boundary_test
# Disabled-mobility gate: a 1-cell, zero-dwell metro must reproduce plain
# cell::run_cell byte for byte (telemetry and outages included).
./build/tests/metro_test \
  --gtest_filter='MetroTest.OneCellZeroMobilityIsByteIdenticalToRunCell:MetroTest.OneCellTelemetryAndOutagesStillMatchRunCell'
# End-to-end acceptance: BENCH_metro.json byte-identical across serial,
# sharded (K=4) and supervised runs of the same metro sweep.
metro=build/bench/metro_check
rm -rf "$metro"
mkdir -p "$metro"
metro_env="EAB_METRO_GRID_W=2 EAB_METRO_GRID_H=2 EAB_METRO_USERS=6 EAB_METRO_HORIZON=120"
(cd build/bench && env $metro_env ./bench_metro > metro_check/ref_stdout.txt)
cp build/bench/BENCH_metro.json "$metro/ref_metro.json"
(cd build/bench && env $metro_env EAB_METRO_SHARDS=4 ./bench_metro > /dev/null)
cmp "$metro/ref_metro.json" build/bench/BENCH_metro.json
(cd build/bench && env $metro_env EAB_SUPERVISE=1 EAB_WORKERS=2 \
  ./bench_metro > metro_check/sup_stdout.txt 2>> metro_check/sup_stderr.txt)
cmp "$metro/ref_metro.json" build/bench/BENCH_metro.json
cmp "$metro/ref_stdout.txt" "$metro/sup_stdout.txt"
echo "metro sweep byte-identical across serial/sharded/supervised"

echo "== telemetry: determinism suite + overhead gate + cross-mode bytes =="
# The telemetry ladder (DESIGN.md §11): integer-quanta merge associativity,
# codec corruption rejection, and the sampling-never-bends-the-workload
# contract — run under ASan because series ship across process boundaries
# through hand-rolled codecs.
cmake --build build-asan -j "$JOBS" --target obs_telemetry_test
./build-asan/tests/obs_telemetry_test
# bench_obs_overhead's sampling phase: cell workload bit-identical with
# telemetry on, wall-clock overhead within the 5% budget.  The bench
# enforces both internally (nonzero exit), and the grep makes the JSON
# fields load-bearing too.
(cd build/bench && ./bench_obs_overhead > /dev/null)
grep -q '"sampling_within_budget": true' build/bench/BENCH_obs_overhead.json
grep -q '"cell_workload_identical": true' build/bench/BENCH_obs_overhead.json
# End-to-end acceptance: BENCH_cell.timeseries.json must be byte-identical
# across serial, sharded (K=4) and supervised runs of the same sweep.
ts_env="EAB_CELL_USERS=16 EAB_CELL_SEED=5 EAB_TELEMETRY=1"
(cd build/bench && env $ts_env ./bench_fig11_capacity --cell > /dev/null)
cp build/bench/BENCH_cell.timeseries.json "$soak/ref_cell.timeseries.json"
(cd build/bench && env $ts_env EAB_CELL_SHARDS=4 \
  ./bench_fig11_capacity --cell > /dev/null)
cmp "$soak/ref_cell.timeseries.json" build/bench/BENCH_cell.timeseries.json
(cd build/bench && env $ts_env EAB_SUPERVISE=1 EAB_WORKERS=2 \
  ./bench_fig11_capacity --cell > /dev/null 2>> soak/sup_stderr.txt)
cmp "$soak/ref_cell.timeseries.json" build/bench/BENCH_cell.timeseries.json
echo "telemetry series byte-identical across serial/sharded/supervised"

echo "== UBSan: event-engine tests under -fsanitize=undefined =="
# The pooled event engine type-erases callables into recycled slot storage
# (placement new, raw vtable calls, power-of-two size-class blocks); UBSan
# guards the alignment/lifetime contracts, driven hardest by the
# differential test's random op soup and the sharded replays.
cmake -B build-ubsan -S . -DEAB_SANITIZE=undefined
cmake --build build-ubsan -j "$JOBS" \
  --target sim_simulator_test --target sim_differential_test
./build-ubsan/tests/sim_simulator_test
./build-ubsan/tests/sim_differential_test

echo "== perf gate: simulator throughput vs checked-in baseline =="
# bench_throughput's serial events/s must stay within a generous margin of
# scripts/perf_baseline.json (40% floor: catches an accidental O(n) in the
# hot path, ignores machine-to-machine noise).  Refresh the baseline with
# scripts/check.sh's printed value when the engine is deliberately retuned.
(cd build/bench && ./bench_throughput > /dev/null)
actual=$(grep -o '"serial_events_per_sec": [0-9.]*' build/bench/BENCH_throughput.json | awk '{print $2}')
baseline=$(grep -o '"serial_events_per_sec": [0-9.]*' scripts/perf_baseline.json | awk '{print $2}')
floor=$(awk -v b="$baseline" 'BEGIN { printf "%.1f", b * 0.4 }')
echo "serial events/s: actual=$actual baseline=$baseline floor=$floor"
awk -v a="$actual" -v f="$floor" 'BEGIN { exit !(a >= f) }' || {
  echo "PERF REGRESSION: serial_events_per_sec $actual < floor $floor" >&2
  exit 1
}

echo "== trace audit: benches under EAB_TRACE=1 =="
# Every load/session records a structured trace and the TraceAuditor replays
# it (RRC legality, timer discipline, transfer markers, retry budget, energy
# reconciliation).  The benches exit non-zero on any violation or epsilon
# breach, which fails this script.
(cd build/bench && EAB_TRACE=1 ./bench_fig10_energy > /dev/null)
(cd build/bench && EAB_TRACE=1 ./bench_fig16_policies > /dev/null)
(cd build/bench && EAB_TRACE=1 ./bench_ext_faults > /dev/null)
echo "trace audits passed"

echo "== all checks passed =="
