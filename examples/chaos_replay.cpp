// Chaos reproducer replay CLI: loads one (or more) reproducer JSON files —
// the shrunk minimal scenarios the chaos engine emits — re-runs each exact
// scenario through the batch engine, and re-checks the invariant oracle.
// Exits 0 when every reproducer replays clean, 1 when any scenario still
// violates an invariant (printing the violations), and 2 on unreadable or
// malformed input.  scripts/check.sh replays the checked-in corpus under
// tests/chaos_corpus/ with this tool.
//
// Usage: chaos_replay FILE.json [FILE.json ...]
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/reproducer.hpp"
#include "chaos/runner.hpp"

int main(int argc, char** argv) {
  using namespace eab;
  if (argc < 2) {
    std::fprintf(stderr, "usage: chaos_replay FILE.json [FILE.json ...]\n");
    return 2;
  }

  core::BatchRunner batch;
  chaos::ChaosRunner runner(batch);
  int violated = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "chaos_replay: cannot read %s\n", path.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();

    chaos::ChaosScenario scenario;
    try {
      scenario = chaos::scenario_from_json(buffer.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "chaos_replay: %s: %s\n", path.c_str(), e.what());
      return 2;
    }

    const std::vector<std::string> violations = runner.check(scenario);
    std::printf("%s: seed=%llu spec=%d mode=%s atoms=%zu -> %s\n",
                path.c_str(),
                static_cast<unsigned long long>(scenario.seed),
                scenario.spec_index,
                scenario.mode == browser::PipelineMode::kEnergyAware
                    ? "energy_aware"
                    : "original",
                scenario.faults.size(),
                violations.empty() ? "clean" : "VIOLATED");
    for (const std::string& violation : violations) {
      std::printf("  %s\n", violation.c_str());
      ++violated;
    }
  }
  return violated > 0 ? 1 : 0;
}
