// Operator-view capacity planning: how many web-browsing users can one UMTS
// cell carry before sessions start being dropped, and what deploying the
// energy-aware browser fleet-wide buys (the paper's Section 5.4 argument).
#include <cstdio>
#include <vector>

#include "capacity/mgn.hpp"
#include "core/scenario.hpp"
#include "corpus/page_spec.hpp"

namespace {

using namespace eab;

capacity::ServiceTimeDistribution measure_service_times(
    browser::PipelineMode mode) {
  std::vector<Seconds> times;
  const core::Scenario scenario = core::ScenarioBuilder(mode).build();
  for (const auto& spec : corpus::full_benchmark()) {
    times.push_back(scenario.run_single(spec).metrics.transmission_time());
  }
  return capacity::ServiceTimeDistribution(std::move(times));
}

}  // namespace

int main() {
  using namespace eab;

  std::printf("measuring per-page channel-holding times on the full-version "
              "benchmark...\n");
  const auto original = measure_service_times(browser::PipelineMode::kOriginal);
  const auto energy_aware =
      measure_service_times(browser::PipelineMode::kEnergyAware);
  std::printf("  mean channel holding: %.1f s stock, %.1f s energy-aware\n\n",
              original.mean(), energy_aware.mean());

  capacity::CapacityConfig config;  // 200 channel pairs, 25 s think time, 4 h
  std::printf("cell: %d channel pairs, Poisson think time %.0f s, %.0f h\n\n",
              config.channels, config.mean_interarrival,
              config.horizon / 3600);

  std::printf("users   drop%% (stock)   drop%% (energy-aware)\n");
  for (int users = 200; users <= 500; users += 50) {
    config.users = users;
    const auto stock = capacity::simulate_capacity(config, original, 1);
    const auto ours = capacity::simulate_capacity(config, energy_aware, 1);
    std::printf("%5d   %8.2f        %8.2f\n", users,
                100 * stock.drop_probability, 100 * ours.drop_probability);
  }

  // Cross-check against the closed-form Erlang-B blocking at one load point.
  config.users = 350;
  const double offered = 350.0 * original.mean() / config.mean_interarrival;
  std::printf("\nanalytic cross-check at 350 users: Erlang-B(%.0f erlangs, "
              "%d channels) = %.2f%%\n",
              offered, config.channels,
              100 * capacity::erlang_b(offered, config.channels));
  return 0;
}
