// A whole browsing session under the paper's full system: reorganized
// pipeline + GBRT reading-time prediction driving radio releases
// (Algorithm 2, power-driven mode).
//
// Walks one simulated user through a mixed mobile/full page sequence and
// compares the stock browser against the energy-aware system, page by page.
#include <cstdio>

#include "core/scenario.hpp"
#include "corpus/page_spec.hpp"
#include "gbrt/model.hpp"
#include "trace/reading_model.hpp"

namespace {

using namespace eab;

/// Measures Table 1 features for each spec (what the deployed system trains
/// on) by loading every page once through the energy-aware stack.
std::vector<trace::PageRecord> measure_library(
    const std::vector<corpus::PageSpec>& specs) {
  std::vector<trace::PageRecord> records;
  const core::Scenario scenario =
      core::ScenarioBuilder(browser::PipelineMode::kEnergyAware).build();
  for (const auto& spec : specs) {
    trace::PageRecord record;
    record.spec = spec;
    record.features = scenario.run_single(spec).features;
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace

int main() {
  using namespace eab;

  // 1. Build a page library and a synthetic population trace.
  std::vector<corpus::PageSpec> specs = corpus::mobile_benchmark();
  const auto full = corpus::full_benchmark();
  specs.insert(specs.end(), full.begin(), full.end());
  auto records = measure_library(specs);

  trace::TraceConfig trace_config;
  trace_config.users = 20;
  trace_config.browsing_per_user = 1800;
  trace::TraceGenerator generator(std::move(records), trace_config, 42);
  const auto views = generator.generate();
  std::printf("population trace: %zu views across %zu pages\n", views.size(),
              generator.records().size());

  // 2. Train the reading-time predictor on everything except user 0.
  std::vector<trace::PageView> training;
  std::vector<trace::PageView> user0;
  for (const auto& view : views) {
    (view.user == 0 ? user0 : training).push_back(view);
  }
  gbrt::GbrtParams params;
  params.trees = 250;
  params.tree.max_leaves = 8;
  const auto model = gbrt::train_gbrt(
      trace::to_log_dataset(training, generator.records(), 2.0), params, 1);
  std::printf("predictor: %zu trees trained on %zu engaged views\n\n",
              model.tree_count(), training.size());

  // 3. Replay user 0's session under both systems.
  std::vector<core::PageVisit> visits;
  for (const auto& view : user0) {
    visits.push_back(core::PageVisit{
        &generator.records()[view.page_index].spec, view.reading_time});
  }

  core::SessionConfig baseline;
  baseline.policy = core::SessionPolicy::kBaseline;
  const auto stock = core::run_session(visits, baseline, 7);

  core::SessionConfig predictive;
  predictive.policy = core::SessionPolicy::kPredict;
  predictive.threshold = 9.0;  // power-driven (Tp)
  predictive.predictor.model = &model;
  const auto ours = core::run_session(visits, predictive, 7);

  std::printf("user 0 session (%d pages):\n", stock.pages);
  std::printf("                      stock browser   energy-aware+predict\n");
  std::printf("  energy (J)          %10.1f      %10.1f   (-%.1f%%)\n",
              stock.energy.with_reading_j, ours.energy.with_reading_j,
              100 * (1 - ours.energy.with_reading_j / stock.energy.with_reading_j));
  std::printf("  total load delay(s) %10.1f      %10.1f   (-%.1f%%)\n",
              stock.total_load_delay, ours.total_load_delay,
              100 * (1 - ours.total_load_delay / stock.total_load_delay));
  std::printf("  radio releases      %10d      %10d\n", stock.switches_to_idle,
              ours.switches_to_idle);
  return 0;
}
