// Training, inspecting and persisting the GBRT reading-time predictor
// (the paper's Section 4.3): which of Table 1's features carry signal, how
// accurate the threshold decisions are, and how a trained model is shipped
// to the phone as text.
#include <cmath>
#include <cstdio>

#include "core/scenario.hpp"
#include "corpus/page_spec.hpp"
#include "gbrt/model.hpp"
#include "trace/reading_model.hpp"
#include "util/stats.hpp"

int main() {
  using namespace eab;

  // Page library: every benchmark page, features measured by the browser.
  std::vector<trace::PageRecord> records;
  const core::Scenario scenario =
      core::ScenarioBuilder(browser::PipelineMode::kEnergyAware).build();
  for (const auto& benchmark :
       {corpus::mobile_benchmark(), corpus::full_benchmark()}) {
    for (const auto& base : benchmark) {
      for (const auto& spec : corpus::spec_variants(base, 3, 17)) {
        trace::PageRecord record;
        record.spec = spec;
        record.features = scenario.run_single(spec).features;
        records.push_back(std::move(record));
      }
    }
  }

  trace::TraceGenerator generator(std::move(records), trace::TraceConfig{}, 99);
  const auto views = generator.generate();
  const auto data = trace::to_log_dataset(views, generator.records(), 2.0);
  const auto [train, test] = data.split(0.7);
  std::printf("trace: %zu engaged views (%zu train / %zu test)\n\n",
              data.size(), train.size(), test.size());

  gbrt::GbrtParams params;
  params.trees = 300;
  params.tree.max_leaves = 8;
  params.shrinkage = 0.08;
  gbrt::BoostTrace boost_trace;
  const auto model = gbrt::train_gbrt(train, params, 5, &boost_trace);
  std::printf("training MSE: %.3f after 1 tree -> %.3f after %zu trees\n",
              boost_trace.train_mse.front(), boost_trace.train_mse.back(),
              model.tree_count());

  const auto predictions = model.predict_all(test);
  std::printf("held-out threshold accuracy: %.1f%% @ Tp=9s, %.1f%% @ Td=20s\n\n",
              100 * gbrt::threshold_accuracy(predictions, test.targets(),
                                             std::log(9.0)),
              100 * gbrt::threshold_accuracy(predictions, test.targets(),
                                             std::log(20.0)));

  std::printf("feature importance (fraction of total split gain):\n");
  const auto importance =
      model.feature_importance(browser::PageFeatures::kCount);
  const auto names = browser::PageFeatures::names();
  for (std::size_t f = 0; f < names.size(); ++f) {
    std::printf("  %-18s %5.1f%%\n", names[f].c_str(), 100 * importance[f]);
  }

  // Ship the model the way the paper does: trained offline, deployed as data.
  const std::string blob = model.serialize();
  const auto reloaded = gbrt::GbrtModel::parse(blob);
  std::printf("\nserialized model: %.1f KB; reload predicts identically: %s\n",
              blob.size() / 1024.0,
              reloaded.predict(test.row(0)) == model.predict(test.row(0))
                  ? "yes"
                  : "NO");
  return 0;
}
