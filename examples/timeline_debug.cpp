// Development aid: dumps the exact simulated timeline of one page load under
// both pipelines — load milestones, link-busy windows, RRC state residency,
// pipeline stage spans and every power-level change point — straight from
// the structured trace and the recorded PowerTimeline change points, with no
// fixed-rate resampling to blur edges.
//
// Usage: timeline_debug [mobile] [--json]
//   mobile  use the m.cnn.com spec instead of espn.go.com/sports
//   --json  additionally write Chrome-trace exports (timeline_orig.trace.json
//           and timeline_ea.trace.json) loadable in Perfetto/chrome://tracing
#include <cstdio>
#include <string>

#include "core/scenario.hpp"
#include "corpus/page_spec.hpp"
#include "obs/chrome_trace.hpp"
#include "radio/rrc_config.hpp"

int main(int argc, char** argv) {
  using namespace eab;
  bool mobile = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "mobile") mobile = true;
    if (arg == "--json") json = true;
  }
  const corpus::PageSpec page =
      mobile ? corpus::m_cnn_spec() : corpus::espn_sports_spec();

  for (auto mode : {browser::PipelineMode::kOriginal,
                    browser::PipelineMode::kEnergyAware}) {
    const bool original = mode == browser::PipelineMode::kOriginal;
    const auto r =
        core::ScenarioBuilder(mode).trace().build().run_single(page);
    std::printf("%s: tx=%.1f total=%.1f first=%.1f layouttail=%.1f E=%.1fJ "
                "E20=%.1fJ dch=%.1f trace=%zu events\n",
                original ? "ORIG" : "EA  ", r.metrics.transmission_time(),
                r.metrics.total_time(), r.metrics.first_display,
                r.metrics.layout_tail_time(), r.energy.load_j,
                r.energy.with_reading_j, r.dch_time, r.trace->size());

    // Link busy intervals, read off the exact rate change points (the rate
    // switches between 0 and capacity; no sampling grid involved).
    std::printf("  link busy: ");
    bool busy = false;
    double start = 0;
    for (const auto& c : r.link_rate.change_points()) {
      const bool now_busy = c.power > 0;
      if (now_busy && !busy) start = c.at;
      if (!now_busy && busy) std::printf("[%.3f-%.3f] ", start, c.at);
      busy = now_busy;
    }
    if (busy) std::printf("[%.3f-end]", start);
    std::printf("\n");

    // RRC residency reconstructed from the trace's state-enter events.
    std::printf("  rrc:       ");
    for (const auto& span : r.trace->rrc_state_spans(r.energy.window_s)) {
      std::printf("%s[%.3f-%.3f] ",
                  radio::to_string(static_cast<radio::RrcState>(span.tag)),
                  span.begin, span.end);
    }
    std::printf("\n");

    // CPU stage execution spans (parse, scan, decode, reflow, display).
    std::printf("  stages:    ");
    for (const auto& span : r.trace->stage_spans()) {
      std::printf("%s[%.3f-%.3f] ",
                  obs::to_string(static_cast<obs::Stage>(span.tag)), span.begin,
                  span.end);
    }
    std::printf("\n");

    // Every total-power change point in the layout tail — the window Fig 9
    // argues from — exactly as recorded.
    std::printf("  tail power:");
    for (const auto& c : r.total_power.change_points()) {
      if (c.at < r.metrics.transmission_done) continue;
      if (c.at > r.metrics.final_display) break;
      std::printf(" %.3f@%.3fs", c.power, c.at);
    }
    std::printf("\n");

    if (json) {
      const std::string path =
          original ? "timeline_orig.trace.json" : "timeline_ea.trace.json";
      if (obs::write_chrome_trace(path, *r.trace, r.energy.window_s)) {
        std::printf("  wrote %s (load in Perfetto / chrome://tracing)\n",
                    path.c_str());
      }
    }
  }
  return 0;
}
