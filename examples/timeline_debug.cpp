// Development aid: dumps the link-rate timeline and load milestones for one
// page under both pipelines, to inspect where transmissions cluster.
#include <cstdio>

#include "core/experiment.hpp"
#include "corpus/page_spec.hpp"

int main(int argc, char** argv) {
  using namespace eab;
  const bool mobile = argc > 1 && std::string(argv[1]) == "mobile";
  const corpus::PageSpec page =
      mobile ? corpus::m_cnn_spec() : corpus::espn_sports_spec();

  for (auto mode : {browser::PipelineMode::kOriginal,
                    browser::PipelineMode::kEnergyAware}) {
    const auto r = core::run_single_load(page, core::StackConfig::for_mode(mode));
    std::printf("%s: tx=%.1f total=%.1f first=%.1f layouttail=%.1f E=%.1fJ E20=%.1fJ dch=%.1f\n",
                mode == browser::PipelineMode::kOriginal ? "ORIG" : "EA  ",
                r.metrics.transmission_time(), r.metrics.total_time(),
                r.metrics.first_display, r.metrics.layout_tail_time(),
                r.load_energy, r.energy_with_reading, r.dch_time);
    // Link busy intervals (rate switches between 0 and capacity).
    std::printf("  link busy: ");
    const auto samples = r.link_rate.sample(0, r.metrics.total_time(), 0.5);
    bool busy = false;
    double start = 0;
    for (const auto& s : samples) {
      const bool now_busy = s.power > 0;
      if (now_busy && !busy) start = s.time;
      if (!now_busy && busy) std::printf("[%.1f-%.1f] ", start, s.time);
      busy = now_busy;
    }
    if (busy) std::printf("[%.1f-end]", start);
    std::printf("\n  tail power: ");
    for (const auto& s2 : r.total_power.sample(r.metrics.transmission_done,
                                               r.metrics.final_display, 0.25)) {
      std::printf("%.2f ", s2.power);
    }
    std::printf("\n");
  }
  return 0;
}
