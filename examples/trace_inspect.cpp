// Trace inspection CLI: runs one traced page load, prints the recording in
// human terms — per-kind event counts, RRC residency, a per-fetch table —
// runs the cross-layer TraceAuditor over it, and optionally exports the
// Chrome-trace JSON.  Exits 1 if any audit invariant is violated, so it
// doubles as a one-shot smoke check of the instrumentation.
//
// Usage: trace_inspect [mobile] [--faults] [--outage] [--json FILE]
//        [--timeseries]
//   mobile       use the m.cnn.com spec instead of espn.go.com/sports
//   --faults     inject the 20 % composite fault mix (retry/timeout events)
//   --outage     drop radio coverage mid-load (RLF, OUT_OF_SERVICE camping
//                and re-establishment attempts appear on the RRC track)
//   --json FILE  write the Chrome-trace export to FILE
//   --timeseries rebuild the load as obs::Telemetry series (total power,
//                link flows, outstanding fetches), print ASCII sparklines
//                and the JSON dump; with --json the series also become
//                Perfetto counter tracks in the export
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "core/scenario.hpp"
#include "corpus/page_spec.hpp"
#include "obs/audit.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/telemetry.hpp"
#include "radio/outage.hpp"
#include "radio/rrc_config.hpp"

namespace {

/// One-line ASCII sparkline over a series' retained window means.
void print_sparkline(const std::string& name, const eab::obs::TimeSeries& s) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  double lo = 0, hi = 0;
  bool first = true;
  for (const auto& p : s.points()) {
    lo = first ? p.mean() : std::min(lo, p.mean());
    hi = first ? p.mean() : std::max(hi, p.mean());
    first = false;
  }
  std::string line;
  for (const auto& p : s.points()) {
    const int level =
        hi > lo ? static_cast<int>((p.mean() - lo) / (hi - lo) * 7.999) : 0;
    line += kBlocks[level];
  }
  std::printf("  %-20s %s  [%.4g, %.4g]  %zu pts @ %.3g s\n", name.c_str(),
              line.c_str(), lo, hi, s.points().size(), s.width());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eab;
  bool mobile = false;
  bool faults = false;
  bool outage = false;
  bool timeseries = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "mobile") mobile = true;
    if (arg == "--faults") faults = true;
    if (arg == "--outage") outage = true;
    if (arg == "--timeseries") timeseries = true;
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
  }
  const corpus::PageSpec page =
      mobile ? corpus::m_cnn_spec() : corpus::espn_sports_spec();

  core::ScenarioBuilder builder(browser::PipelineMode::kEnergyAware);
  builder.trace();
  if (faults) {
    net::FaultPlan plan;
    plan.seed = 20130707;
    plan.connection_loss_rate = 0.08;
    plan.stall_rate = 0.04;
    plan.truncate_rate = 0.04;
    plan.slow_first_byte_rate = 0.04;
    net::RetryPolicy retry;
    retry.request_timeout = 8.0;
    retry.max_retries = 2;
    retry.backoff_initial = 0.5;
    retry.backoff_factor = 2.0;
    builder.fault_plan(plan).retry(retry);
  }
  if (outage) {
    radio::OutagePlan plan;
    plan.seed = 20130707;
    plan.count = 2;
    plan.start = 1.0;
    plan.period = 6.0;
    plan.duration = 1.5;
    plan.reestablish_fail_rate = 0.5;
    builder.outage(plan);
  }

  const auto r = builder.build().run_single(page);
  const core::StackConfig config = builder.build().stack;
  const obs::TraceRecorder& trace = *r.trace;
  std::printf("page %s  load %.2f s  energy %.1f J  %zu trace events\n\n",
              page.site.c_str(), r.metrics.total_time(), r.energy.load_j,
              trace.size());

  // Per-kind counts, sorted by label.
  std::map<std::string, std::size_t> by_kind;
  for (const auto& event : trace.events()) {
    ++by_kind[obs::to_string(event.kind)];
  }
  std::printf("events by kind:\n");
  for (const auto& [kind, n] : by_kind) {
    std::printf("  %-22s %zu\n", kind.c_str(), n);
  }

  // RRC residency, reconstructed from the state-enter stream.
  std::printf("\nrrc residency (to %.2f s):\n", r.energy.window_s);
  for (const auto& span : trace.rrc_state_spans(r.energy.window_s)) {
    std::printf("  %-5s %8.3f - %8.3f  (%.3f s)\n",
                radio::to_string(static_cast<radio::RrcState>(span.tag)),
                span.begin, span.end, span.duration());
  }

  // Radio-failure timeline: coverage holes, RLFs and re-establishment
  // attempts, printed only when the recording holds any (i.e. --outage or a
  // chaos replay); a healthy-radio run's output is unchanged.
  bool any_radio = false;
  for (const auto& event : trace.events()) {
    switch (event.kind) {
      case obs::TraceKind::kRadioCoverageLost:
      case obs::TraceKind::kRadioCoverageBack:
      case obs::TraceKind::kRrcRlf:
      case obs::TraceKind::kRrcReestablishStart:
      case obs::TraceKind::kRrcReestablishOk:
      case obs::TraceKind::kRrcReestablishFail:
        any_radio = true;
        break;
      default:
        break;
    }
  }
  if (any_radio) {
    std::printf("\nradio failures:\n");
    for (const auto& event : trace.events()) {
      switch (event.kind) {
        case obs::TraceKind::kRadioCoverageLost:
          std::printf("  %8.3f  coverage lost\n", event.t);
          break;
        case obs::TraceKind::kRadioCoverageBack:
          std::printf("  %8.3f  coverage back\n", event.t);
          break;
        case obs::TraceKind::kRrcRlf:
          std::printf("  %8.3f  radio link failure (was %s)\n", event.t,
                      radio::to_string(
                          static_cast<radio::RrcState>(event.a)));
          break;
        case obs::TraceKind::kRrcReestablishStart:
          std::printf("  %8.3f  re-establish attempt %lld\n", event.t,
                      static_cast<long long>(event.a));
          break;
        case obs::TraceKind::kRrcReestablishOk:
          std::printf("  %8.3f  re-establish ok (attempt %lld)\n", event.t,
                      static_cast<long long>(event.a));
          break;
        case obs::TraceKind::kRrcReestablishFail:
          std::printf("  %8.3f  re-establish failed (attempt %lld)\n",
                      event.t, static_cast<long long>(event.a));
          break;
        default:
          break;
      }
    }
  }

  // Per-fetch table from the settled events.
  std::printf("\nfetches:\n");
  std::printf("  %-40s %8s %6s %10s %9s\n", "url", "settled", "tries", "bytes",
              "status");
  for (const auto& event : trace.events()) {
    if (event.kind != obs::TraceKind::kHttpFetchSettled) continue;
    std::printf("  %-40s %8.3f %6lld %10.0f %9s\n",
                trace.name(event.name).c_str(), event.t,
                static_cast<long long>(event.a), event.x,
                net::to_string(static_cast<net::FetchStatus>(event.b)));
  }

  // The cross-layer audit: legality, timers, markers, retries, energy.
  obs::AuditInputs inputs;
  inputs.rrc = config.rrc;
  inputs.power = config.power;
  inputs.max_retries = config.retry.max_retries;
  inputs.radio_energy = r.energy.radio_j;
  inputs.t_end = r.energy.window_s;
  const auto report = obs::TraceAuditor().audit(trace, inputs);
  std::printf("\naudit: %d transitions, %d fetches, trace energy %.6f J vs "
              "timeline %.6f J\n",
              report.transitions_checked, report.fetches_checked,
              report.trace_energy, report.reference_energy);
  if (report.ok()) {
    std::printf("audit: all invariants held\n");
  } else {
    std::printf("audit FAILED:\n%s\n", report.summary().c_str());
  }

  // --timeseries: rebuild the load as fixed-budget telemetry series from
  // the exact artifacts already in hand (the power timeline's change points
  // and the trace's fetch/flow pairings), then render them.
  obs::Telemetry telemetry{obs::TelemetryConfig{0.5, 128, false}};
  if (timeseries) {
    for (const auto& sample :
         r.total_power.sample(0.0, r.energy.window_s, 0.5)) {
      telemetry.sample("power_w", sample.time, sample.power);
    }
    std::int64_t flows = 0;
    std::int64_t fetches = 0;
    for (const auto& event : trace.events()) {
      switch (event.kind) {
        case obs::TraceKind::kLinkFlowStart:
          telemetry.sample("link_flows", event.t, static_cast<double>(++flows));
          break;
        case obs::TraceKind::kLinkFlowComplete:
        case obs::TraceKind::kLinkFlowCancel:
          telemetry.sample("link_flows", event.t, static_cast<double>(--flows));
          break;
        case obs::TraceKind::kHttpFetchQueued:
          telemetry.sample("fetches_outstanding", event.t,
                           static_cast<double>(++fetches));
          break;
        case obs::TraceKind::kHttpFetchSettled:
          telemetry.sample("fetches_outstanding", event.t,
                           static_cast<double>(--fetches));
          break;
        default:
          break;
      }
    }
    std::printf("\ntimeseries (window means):\n");
    for (const auto& [name, series] : telemetry.all()) {
      print_sparkline(name, series);
    }
    std::printf("timeseries json: %s\n", telemetry.to_json().c_str());
  }

  if (!json_path.empty()) {
    if (obs::write_chrome_trace(json_path, trace, r.energy.window_s,
                                timeseries ? &telemetry : nullptr)) {
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::printf("could not write %s\n", json_path.c_str());
    }
  }
  return report.ok() ? 0 : 1;
}
