// Minimal shared-cell walkthrough: 12 users on 4 DCH grants for five
// simulated minutes, stock vs energy-aware pipeline.  Shows the Fig 11
// mechanism end to end — fast dormancy returns grants sooner, so fewer
// arriving sessions find the pool exhausted — plus the per-UE energy the
// co-simulation tracks for free.
//
//   ./build/examples/cell_demo
#include <cstdio>

#include "cell/cell.hpp"
#include "core/scenario.hpp"
#include "corpus/page_spec.hpp"

using namespace eab;

namespace {

cell::CellResult run(browser::PipelineMode mode) {
  cell::CellConfig config;
  config.per_ue = core::ScenarioBuilder(mode).build();
  config.specs = corpus::mobile_benchmark();
  config.users = 12;
  config.channels = 4;
  config.horizon = 300.0;
  config.cell_seed = 1;
  return cell::run_cell(config);
}

double mean_ue_energy(const cell::CellResult& result) {
  double total = 0;
  for (const auto& ue : result.per_ue) total += ue.energy.with_reading_j;
  return total / static_cast<double>(result.per_ue.size());
}

void report(const char* label, const cell::CellResult& r) {
  std::printf(
      "%-12s offered %3llu  dropped %3llu (%.1f%%)  completed %3llu  "
      "mean grant hold %.2f s  mean UE energy %.1f J\n",
      label, static_cast<unsigned long long>(r.offered),
      static_cast<unsigned long long>(r.dropped),
      100.0 * r.drop_probability(),
      static_cast<unsigned long long>(r.completed), r.mean_grant_hold,
      mean_ue_energy(r));
}

}  // namespace

int main() {
  std::printf("shared cell: 12 users, 4 DCH grants, 300 s, mobile mix\n\n");
  const auto original = run(browser::PipelineMode::kOriginal);
  const auto energy_aware = run(browser::PipelineMode::kEnergyAware);
  report("original", original);
  report("energy-aware", energy_aware);
  std::printf(
      "\nenergy-aware holds each grant for less time, so the same pool\n"
      "blocks fewer sessions — the Fig 11 capacity gain from first\n"
      "principles (bench_fig11_capacity --cell sweeps the full curve).\n");
  return 0;
}
