// Quickstart: load one benchmark page with the stock pipeline and with the
// energy-aware pipeline, and compare what the paper's techniques change.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/scenario.hpp"
#include "corpus/page_spec.hpp"

int main() {
  using namespace eab;

  // The featured full-version page (espn.go.com/sports, ~760 KB).
  const corpus::PageSpec page = corpus::espn_sports_spec();
  std::printf("Page: %s  (%.0f KB across %d+ objects)\n\n", page.site.c_str(),
              to_kilobytes(page.total_bytes()),
              page.html_images + page.css_files + page.js_files + 1);

  // A scenario per pipeline; run_single assembles the radio, the link, the
  // CPU and the browser, then loads the page and lets a 20 s reading window
  // elapse.
  const auto original =
      core::ScenarioBuilder(browser::PipelineMode::kOriginal)
          .build()
          .run_single(page);
  const auto energy_aware =
      core::ScenarioBuilder(browser::PipelineMode::kEnergyAware)
          .build()
          .run_single(page);

  auto report = [](const char* name, const core::SingleLoadResult& r) {
    std::printf("%s\n", name);
    std::printf("  data transmission time : %6.1f s\n",
                r.metrics.transmission_time());
    std::printf("  total load time        : %6.1f s\n", r.metrics.total_time());
    std::printf("  first display          : %6.1f s\n",
                r.metrics.first_display - r.metrics.started);
    std::printf("  intermediate displays  : %6d\n",
                r.metrics.intermediate_displays);
    std::printf("  DCH residency          : %6.1f s\n", r.dch_time);
    std::printf("  energy (load)          : %6.1f J\n", r.energy.load_j);
    std::printf("  energy (load + 20 s)   : %6.1f J\n", r.energy.with_reading_j);
    std::printf("  bytes fetched          : %6.0f KB in %d objects\n\n",
                to_kilobytes(r.bytes_fetched), r.metrics.objects_fetched);
  };
  report("Original pipeline (stock browser)", original);
  report("Energy-aware pipeline (reorganized computation)", energy_aware);

  const double tx_saving = 1.0 - energy_aware.metrics.transmission_time() /
                                     original.metrics.transmission_time();
  const double total_saving =
      1.0 - energy_aware.metrics.total_time() / original.metrics.total_time();
  const double energy_saving =
      1.0 - energy_aware.energy.with_reading_j / original.energy.with_reading_j;
  std::printf("Energy-aware vs original:\n");
  std::printf("  transmission time  -%4.1f %%   (paper Fig 8: ~27 %%)\n",
              tx_saving * 100);
  std::printf("  total load time    -%4.1f %%   (paper Fig 8: ~17 %%)\n",
              total_saving * 100);
  std::printf("  energy w/ reading  -%4.1f %%   (paper Fig 10(b): ~43.6 %%)\n",
              energy_saving * 100);
  std::printf("  same final DOM     %s\n",
              original.dom_signature == energy_aware.dom_signature ? "yes"
                                                                   : "NO");
  return 0;
}
