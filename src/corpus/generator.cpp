#include "corpus/generator.hpp"

#include <functional>

#include "util/rng.hpp"

namespace eab::corpus {
namespace {

const char* const kWords[] = {
    "score",   "market", "travel",  "report", "update", "season",  "player",
    "stock",   "offer",  "review",  "photo",  "video",  "league",  "deal",
    "city",    "guide",  "match",   "trade",  "price",  "moment",  "story",
    "device",  "music",  "artist",  "track",  "flight", "hotel",   "game",
    "final",   "record", "weather", "coach",  "studio", "summer",  "ticket",
    "launch",  "editor", "global",  "mobile", "signal",
};
constexpr std::size_t kWordCount = sizeof(kWords) / sizeof(kWords[0]);

std::string sentence(Rng& rng, int word_count) {
  std::string out;
  for (int i = 0; i < word_count; ++i) {
    if (i > 0) out += ' ';
    out += kWords[rng.uniform_index(kWordCount)];
  }
  out += '.';
  return out;
}

/// Pads `content` to `target` bytes using the given filler maker; leaves the
/// content untouched if it is already large enough.
void pad_to(std::string& content, Bytes target,
            const std::function<std::string()>& filler) {
  while (content.size() < target) content += filler();
}

std::string make_inline_script(const PageSpec& spec, Rng& rng) {
  const int busy = std::max(50, spec.js_busy_iterations / 4);
  std::string script;
  script += "var warm = 0;\n";
  script += "for (var i = 0; i < " + std::to_string(busy) +
            "; i = i + 1) { warm = warm + i % 5; }\n";
  script += "document.write(\"<div class='promo'><p>" + sentence(rng, 10) +
            "</p></div>\");\n";
  return script;
}

std::string make_js_file(const PageSpec& spec, const std::string& base,
                         int file_index, Rng& rng) {
  // Era-typical structure: a config object, a busy analytics-ish loop, a
  // dynamic image loader keyed off the config, and a document.write footer.
  const std::string suffix = std::to_string(file_index);
  std::string script;
  script += "var cfg" + suffix + " = {base: \"" + base + "/img/\", prefix: \"dyn" +
            suffix + "_\", count: " + std::to_string(spec.js_images) +
            ", ext: \".jpg\"};\n";
  script += "var acc" + suffix + " = 0;\n";
  script += "var i" + suffix + " = 0;\n";
  script += "while (i" + suffix + " < " + std::to_string(spec.js_busy_iterations) +
            ") {\n";
  script += "  acc" + suffix + " = acc" + suffix + " + (i" + suffix +
            " * 7 + 3) % 11;\n";
  script += "  i" + suffix + " = i" + suffix + " + 1;\n";
  script += "}\n";
  if (spec.js_images > 0) {
    script += "if (typeof cfg" + suffix + " == 'object' && indexOf(cfg" + suffix +
              ".base, '/img/') >= 0) {\n";
    script += "  for (var j" + suffix + " = 0; j" + suffix + " < cfg" + suffix +
              ".count; j" + suffix + "++) {\n";
    script += "    loadImage(cfg" + suffix + ".base + cfg" + suffix +
              ".prefix + j" + suffix + " + cfg" + suffix + ".ext);\n";
    script += "  }\n";
    script += "}\n";
  }
  script += "document.write(\"<div class='dyn'><p>" + sentence(rng, 8) +
            "</p></div>\");\n";
  pad_to(script, spec.js_bytes,
         [&rng] { return "// " + sentence(rng, 9) + "\n"; });
  return script;
}

std::string make_css_file(const PageSpec& spec, const std::string& base,
                          int sheet_index, Rng& rng) {
  std::string css;
  for (int rule = 0; rule < 10; ++rule) {
    const std::string cls = "c" + std::to_string(rule);
    css += "." + cls + " { color: #" + std::to_string(100 + rule * 37) +
           "; margin: " + std::to_string(2 + rule) +
           "px; padding: " + std::to_string(1 + rule % 4) + "px; }\n";
    css += "div." + cls + " p { font-size: " + std::to_string(11 + rule % 5) +
           "px; line-height: 1." + std::to_string(2 + rule % 6) + "; }\n";
  }
  for (int image = 0; image < spec.css_images; ++image) {
    css += ".bg" + std::to_string(sheet_index) + "_" + std::to_string(image) +
           " { background-image: url(" + base + "/img/css" +
           std::to_string(sheet_index) + "_" + std::to_string(image) +
           ".jpg); }\n";
  }
  pad_to(css, spec.css_bytes, [&rng] {
    return "/* " + sentence(rng, 8) + " */\n.pad { margin: 0; }\n";
  });
  return css;
}

std::string make_html(const PageSpec& spec, const std::string& base, Rng& rng) {
  std::string html = "<!doctype html>\n<html>\n<head>\n<title>" + spec.site +
                     "</title>\n";
  for (int sheet = 0; sheet < spec.css_files; ++sheet) {
    html += "<link rel=\"stylesheet\" href=\"" + base + "/css/s" +
            std::to_string(sheet) + ".css\">\n";
  }
  html += "</head>\n<body>\n";
  html += "<div id=\"masthead\" class=\"c0\"><h1>" + sentence(rng, 3) +
          "</h1></div>\n";
  html += "<script>\n" + make_inline_script(spec, rng) + "</script>\n";

  // Navigation block carries most of the secondary URLs.
  html += "<ul class=\"c1\">\n";
  const int nav_anchors = spec.anchors / 2;
  for (int anchor = 0; anchor < nav_anchors; ++anchor) {
    html += "<li><a href=\"" + base + "/section/a" + std::to_string(anchor) +
            ".html\">" + kWords[rng.uniform_index(kWordCount)] + "</a></li>\n";
  }
  html += "</ul>\n";

  int emitted_images = 0;
  int emitted_anchors = nav_anchors;
  for (int paragraph = 0; paragraph < spec.paragraphs; ++paragraph) {
    html += "<div class=\"c" + std::to_string(2 + paragraph % 8) + "\">\n<p>" +
            sentence(rng, static_cast<int>(18 + rng.uniform_index(30)));
    if (emitted_anchors < spec.anchors && paragraph % 2 == 0) {
      html += " <a href=\"" + base + "/story/s" + std::to_string(paragraph) +
              ".html\">" + kWords[rng.uniform_index(kWordCount)] + "</a> " +
              sentence(rng, 6);
      ++emitted_anchors;
    }
    html += "</p>\n";
    if (emitted_images < spec.html_images && paragraph % 2 == 1) {
      const int width = static_cast<int>(120 + rng.uniform_index(200));
      const int height = static_cast<int>(80 + rng.uniform_index(160));
      html += "<img src=\"" + base + "/img/h" + std::to_string(emitted_images) +
              ".jpg\" width=\"" + std::to_string(width) + "\" height=\"" +
              std::to_string(height) + "\">\n";
      ++emitted_images;
    }
    html += "</div>\n";
  }
  // Anchors the paragraph loop did not fit go in a trailing link list.
  if (emitted_anchors < spec.anchors) {
    html += "<ul class=\"c3\">\n";
    while (emitted_anchors < spec.anchors) {
      html += "<li><a href=\"" + base + "/more/a" +
              std::to_string(emitted_anchors) + ".html\">" +
              kWords[rng.uniform_index(kWordCount)] + "</a></li>\n";
      ++emitted_anchors;
    }
    html += "</ul>\n";
  }
  // Any images the paragraph loop did not fit go in a trailing gallery.
  while (emitted_images < spec.html_images) {
    html += "<img src=\"" + base + "/img/h" + std::to_string(emitted_images) +
            ".jpg\" width=\"160\" height=\"120\">\n";
    ++emitted_images;
  }
  for (int flash = 0; flash < spec.flash_objects; ++flash) {
    html += "<embed src=\"" + base + "/media/f" + std::to_string(flash) +
            ".swf\" width=\"300\" height=\"150\">\n";
  }
  for (int script = 0; script < spec.js_files; ++script) {
    html += "<script src=\"" + base + "/js/a" + std::to_string(script) +
            ".js\"></script>\n";
  }
  html += "</body>\n</html>\n";
  pad_to(html, spec.html_bytes, [&rng] {
    return "<p class=\"c9\">" + sentence(rng, 22) + "</p>\n";
  });
  return html;
}

void host_text(net::WebServer& server, std::string url, net::ResourceKind kind,
               std::string body) {
  net::Resource resource;
  resource.url = std::move(url);
  resource.kind = kind;
  resource.size = body.size();
  resource.body = std::move(body);
  server.host(std::move(resource));
}

void host_binary(net::WebServer& server, std::string url,
                 net::ResourceKind kind, Bytes size) {
  net::Resource resource;
  resource.url = std::move(url);
  resource.kind = kind;
  resource.size = size;
  server.host(std::move(resource));
}

}  // namespace

std::string PageGenerator::host_page(const PageSpec& spec,
                                     net::WebServer& server) const {
  // Per-site deterministic stream: the same spec always yields byte-identical
  // content regardless of hosting order.
  std::uint64_t site_hash = 1469598103934665603ULL;
  for (char c : spec.site) {
    site_hash = (site_hash ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
  }
  Rng rng(seed_ ^ site_hash);
  const std::string base = "http://" + spec.site;

  host_text(server, spec.main_url(), net::ResourceKind::kHtml,
            make_html(spec, base, rng));
  for (int sheet = 0; sheet < spec.css_files; ++sheet) {
    host_text(server, base + "/css/s" + std::to_string(sheet) + ".css",
              net::ResourceKind::kCss, make_css_file(spec, base, sheet, rng));
    for (int image = 0; image < spec.css_images; ++image) {
      host_binary(server,
                  base + "/img/css" + std::to_string(sheet) + "_" +
                      std::to_string(image) + ".jpg",
                  net::ResourceKind::kImage,
                  static_cast<Bytes>(static_cast<double>(spec.css_image_bytes) *
                                     rng.uniform(0.75, 1.25)));
    }
  }
  for (int script = 0; script < spec.js_files; ++script) {
    host_text(server, base + "/js/a" + std::to_string(script) + ".js",
              net::ResourceKind::kJs, make_js_file(spec, base, script, rng));
    for (int image = 0; image < spec.js_images; ++image) {
      host_binary(server,
                  base + "/img/dyn" + std::to_string(script) + "_" +
                      std::to_string(image) + ".jpg",
                  net::ResourceKind::kImage,
                  static_cast<Bytes>(static_cast<double>(spec.js_image_bytes) *
                                     rng.uniform(0.75, 1.25)));
    }
  }
  for (int image = 0; image < spec.html_images; ++image) {
    host_binary(server, base + "/img/h" + std::to_string(image) + ".jpg",
                net::ResourceKind::kImage,
                static_cast<Bytes>(static_cast<double>(spec.image_bytes) *
                                   rng.uniform(0.7, 1.3)));
  }
  for (int flash = 0; flash < spec.flash_objects; ++flash) {
    host_binary(server, base + "/media/f" + std::to_string(flash) + ".swf",
                net::ResourceKind::kFlash, spec.flash_bytes);
  }
  return spec.main_url();
}

}  // namespace eab::corpus
