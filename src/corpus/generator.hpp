// Synthesises real page content from a PageSpec and hosts it on a WebServer.
//
// The emitted HTML, CSS and MiniScript are genuine inputs for the engine:
// the HTML parser discovers <img>/<link>/<script> references, the CSS
// scanner finds url(...) image chains, and the scripts — when *executed* —
// load further images and document.write() additional markup.  Everything a
// generated page references is hosted, so loads complete with zero 404s
// (failure-injection tests break this deliberately).
#pragma once

#include <cstdint>
#include <string>

#include "corpus/page_spec.hpp"
#include "net/web_server.hpp"

namespace eab::corpus {

/// Deterministic page synthesiser.
class PageGenerator {
 public:
  explicit PageGenerator(std::uint64_t seed) : seed_(seed) {}

  /// Generates all resources of `spec` into `server`; returns the main URL.
  std::string host_page(const PageSpec& spec, net::WebServer& server) const;

 private:
  std::uint64_t seed_;
};

}  // namespace eab::corpus
