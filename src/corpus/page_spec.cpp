#include "corpus/page_spec.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace eab::corpus {

const char* to_string(Topic topic) {
  switch (topic) {
    case Topic::kNews: return "news";
    case Topic::kSports: return "sports";
    case Topic::kGames: return "games";
    case Topic::kFinance: return "finance";
    case Topic::kShopping: return "shopping";
    case Topic::kSocial: return "social";
    case Topic::kVideo: return "video";
    case Topic::kTravel: return "travel";
  }
  return "?";
}

Bytes PageSpec::total_bytes() const {
  Bytes total = html_bytes;
  total += static_cast<Bytes>(css_files) * css_bytes;
  total += static_cast<Bytes>(css_files) * static_cast<Bytes>(css_images) *
           css_image_bytes;
  total += static_cast<Bytes>(js_files) * js_bytes;
  total += static_cast<Bytes>(js_files) * static_cast<Bytes>(js_images) *
           js_image_bytes;
  total += static_cast<Bytes>(html_images) * image_bytes;
  total += static_cast<Bytes>(flash_objects) * flash_bytes;
  return total;
}

namespace {

/// Builds a mobile-version spec around typical 2009 m.* page weights.
PageSpec mobile_site(const std::string& site, Topic topic, double scale) {
  PageSpec spec;
  spec.site = site;
  spec.mobile = true;
  spec.topic = topic;
  spec.html_bytes = kilobytes(26.0 * scale);
  spec.css_files = 2;
  spec.css_bytes = kilobytes(12.0 * scale);
  spec.css_images = 2;
  spec.css_image_bytes = kilobytes(5.0);
  spec.js_files = 2;
  spec.js_bytes = kilobytes(5.0 * scale);
  spec.js_busy_iterations = static_cast<int>(7000 * scale);
  spec.js_images = 1;
  spec.js_image_bytes = kilobytes(6.0);
  spec.html_images = static_cast<int>(4 * scale);
  spec.image_bytes = kilobytes(7.0);
  spec.flash_objects = 0;
  spec.anchors = static_cast<int>(36 * scale);
  spec.paragraphs = static_cast<int>(26 * scale);
  return spec;
}

/// Builds a full-version spec around typical 2009 desktop page weights.
PageSpec full_site(const std::string& site, Topic topic, double scale) {
  PageSpec spec;
  spec.site = site;
  spec.mobile = false;
  spec.topic = topic;
  spec.html_bytes = kilobytes(85.0 * scale);
  spec.css_files = 3;
  spec.css_bytes = kilobytes(24.0 * scale);
  spec.css_images = 6;
  spec.css_image_bytes = kilobytes(9.0);
  spec.js_files = 4;
  spec.js_bytes = kilobytes(12.0 * scale);
  spec.js_busy_iterations = static_cast<int>(9000 * scale);
  spec.js_images = 4;
  spec.js_image_bytes = kilobytes(10.0);
  spec.html_images = static_cast<int>(12 * scale);
  spec.image_bytes = kilobytes(16.0);
  spec.flash_objects = 1;
  spec.flash_bytes = kilobytes(42.0);
  spec.anchors = static_cast<int>(90 * scale);
  spec.paragraphs = static_cast<int>(55 * scale);
  return spec;
}

}  // namespace

PageSpec espn_sports_spec() {
  // Calibrated to the paper's Fig 4: 760 KB total.
  PageSpec spec = full_site("espn.go.com/sports", Topic::kSports, 1.0);
  spec.html_bytes = kilobytes(90);
  spec.css_files = 3;
  spec.css_bytes = kilobytes(25);
  spec.css_images = 6;
  spec.css_image_bytes = kilobytes(9);
  spec.js_files = 4;
  spec.js_bytes = kilobytes(12);
  spec.js_images = 4;
  spec.js_image_bytes = kilobytes(10);
  spec.html_images = 12;
  spec.image_bytes = kilobytes(16);
  spec.flash_objects = 1;
  spec.flash_bytes = kilobytes(40);
  return spec;
}

PageSpec m_cnn_spec() { return mobile_site("m.cnn.com", Topic::kNews, 1.0); }

std::vector<PageSpec> mobile_benchmark() {
  return {
      m_cnn_spec(),
      mobile_site("m.ebay.com", Topic::kShopping, 0.85),
      mobile_site("m.espn.go.com", Topic::kSports, 1.1),
      mobile_site("m.amazon.com", Topic::kShopping, 1.05),
      mobile_site("m.msn.com", Topic::kFinance, 0.9),
      mobile_site("m.myspace.com", Topic::kSocial, 1.2),
      mobile_site("m.bbc.co.uk", Topic::kTravel, 0.8),
      mobile_site("m.aol.com", Topic::kSocial, 0.95),
      mobile_site("m.nytimes.com", Topic::kNews, 1.15),
      mobile_site("m.youtube.com", Topic::kVideo, 0.75),
  };
}

std::vector<PageSpec> full_benchmark() {
  return {
      full_site("edition.cnn.com/WORLD", Topic::kNews, 0.95),
      full_site("www.motors.ebay.com", Topic::kShopping, 0.9),
      espn_sports_spec(),
      full_site("www.amazon.com", Topic::kShopping, 0.85),
      full_site("home.autos.msn.com", Topic::kTravel, 0.8),
      full_site("www.myspace.com/music", Topic::kSocial, 1.1),
      full_site("bbc.com/travel", Topic::kTravel, 0.75),
      full_site("www.popeater.com/celebrities", Topic::kSocial, 0.9),
      full_site("www.apple.com", Topic::kVideo, 0.7),
      full_site("hotjobs.yahoo.com", Topic::kFinance, 0.8),
  };
}

std::vector<PageSpec> spec_variants(const PageSpec& base, int count,
                                    std::uint64_t seed) {
  std::vector<PageSpec> variants;
  variants.reserve(static_cast<std::size_t>(count));
  variants.push_back(base);
  Rng rng(seed);
  for (int v = 1; v < count; ++v) {
    PageSpec spec = base;
    spec.site = base.site + "/p" + std::to_string(v);
    auto jitter = [&rng](double value, double spread) {
      return value * rng.uniform(1.0 - spread, 1.0 + spread);
    };
    spec.html_bytes = static_cast<Bytes>(jitter(static_cast<double>(base.html_bytes), 0.35));
    spec.css_bytes = static_cast<Bytes>(jitter(static_cast<double>(base.css_bytes), 0.3));
    spec.js_busy_iterations =
        std::max(100, static_cast<int>(jitter(base.js_busy_iterations, 0.5)));
    spec.html_images =
        std::max(1, static_cast<int>(jitter(base.html_images, 0.45)));
    spec.image_bytes = static_cast<Bytes>(jitter(static_cast<double>(base.image_bytes), 0.4));
    spec.anchors = std::max(2, static_cast<int>(jitter(base.anchors, 0.5)));
    spec.paragraphs = std::max(4, static_cast<int>(jitter(base.paragraphs, 0.5)));
    variants.push_back(std::move(spec));
  }
  return variants;
}

}  // namespace eab::corpus
