// Benchmark page specifications (the paper's Table 3).
//
// Each spec describes the composition of one synthetic page: how much HTML,
// how many stylesheets/scripts/images, how resources reference one another
// (CSS url() chains, JS-driven loads, document.write), and the site's topic
// (used by the trace generator's interest model).  The generator turns a
// spec into real HTML/CSS/MiniScript hosted on a WebServer, so both
// pipelines exercise genuine parsing and execution.
//
// Sizes are calibrated to the paper's measurements where it gives them
// (espn.go.com/sports: 760 KB total) and to typical 2009-era page weights
// elsewhere (mobile versions: tens of KB; full versions: hundreds).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace eab::corpus {

/// Content topics for the interest model (Section 4.3.4 motivates these).
enum class Topic {
  kNews,
  kSports,
  kGames,
  kFinance,
  kShopping,
  kSocial,
  kVideo,
  kTravel,
};

constexpr int kTopicCount = 8;
const char* to_string(Topic topic);

/// Composition of one synthetic benchmark page.
struct PageSpec {
  std::string site;          ///< e.g. "espn.go.com/sports"
  bool mobile = false;       ///< mobile version (small, simple layout)?
  Topic topic = Topic::kNews;

  Bytes html_bytes = kilobytes(40);  ///< main document size
  int css_files = 2;
  Bytes css_bytes = kilobytes(15);   ///< per stylesheet
  int css_images = 4;                ///< images referenced via url() per sheet
  Bytes css_image_bytes = kilobytes(6);

  int js_files = 2;
  Bytes js_bytes = kilobytes(8);     ///< per script file (padding-adjusted)
  int js_busy_iterations = 1500;     ///< busy-loop scale (drives run time)
  int js_images = 3;                 ///< images loaded from each script
  Bytes js_image_bytes = kilobytes(8);

  int html_images = 10;              ///< <img> tags in the document
  Bytes image_bytes = kilobytes(14); ///< per HTML-referenced image
  int flash_objects = 0;
  Bytes flash_bytes = kilobytes(50);

  int anchors = 30;                  ///< secondary URLs
  int paragraphs = 24;               ///< text blocks (drives page height)

  /// Main document URL for this spec.
  std::string main_url() const { return "http://" + site + "/index.html"; }

  /// Total bytes across every resource the page pulls in.
  Bytes total_bytes() const;
};

/// The ten mobile-version benchmark pages (Table 3, left column).
std::vector<PageSpec> mobile_benchmark();
/// The ten full-version benchmark pages (Table 3, right column).
std::vector<PageSpec> full_benchmark();

/// The two featured pages of Figs 8(b)-10(b).
PageSpec espn_sports_spec();  ///< espn.go.com/sports (full, 760 KB)
PageSpec m_cnn_spec();        ///< m.cnn.com (mobile)

/// Derives `count` size-jittered variants of a spec (distinct sub-pages of
/// the same site; used to diversify the browsing trace). Deterministic in
/// `seed`. Variant 0 is the spec itself.
std::vector<PageSpec> spec_variants(const PageSpec& base, int count,
                                    std::uint64_t seed);

}  // namespace eab::corpus
