// RRC (Radio Resource Control) state machine.
//
// Models a UMTS handset radio as seen from the phone: the three RRC states
// with their inactivity timers (T1: DCH->FACH, T2: FACH->IDLE), promotion
// signalling with realistic latency and power, and app-initiated fast
// dormancy ("force idle", the paper's Section 4.4 state-switch component).
//
// The machine drives a PowerTimeline so that every state change is energy
// accounted, and tracks cumulative per-state residency (DCH residency is the
// service time of the capacity model in Section 5.4).
#pragma once

#include <functional>
#include <vector>

#include "obs/trace.hpp"
#include "radio/rrc_config.hpp"
#include "sim/simulator.hpp"
#include "util/timeline.hpp"

namespace eab::radio {

/// What the radio is doing on top of its logical RRC state.
enum class RadioPhase {
  kStable,          ///< camped in state(), no signalling in flight
  kPromoting,       ///< signalling toward DCH
  kReleasing,       ///< fast-dormancy release toward IDLE
  kReestablishing,  ///< RRC re-establishment after radio-link failure
  kHandover,        ///< hard handover: context moving to another cell
};

/// The handset radio: RRC states, timers, promotions and fast dormancy.
class RrcMachine {
 public:
  using Ready = std::function<void()>;

  RrcMachine(sim::Simulator& sim, RrcConfig config, RadioPowerModel power);

  /// Logical RRC state (the target state while signalling is in flight).
  RrcState state() const { return state_; }
  RadioPhase phase() const { return phase_; }

  /// Requests dedicated channels for a data transfer.  The callback fires as
  /// soon as the radio is on DCH — immediately if already there, otherwise
  /// after the promotion signalling completes.  Multiple requests queue.
  void request_channel(Ready ready);

  /// Marks the start of a data transfer (raises power to the transfer level
  /// and pins the radio on DCH).  Must only be called once the channel-ready
  /// callback has fired.  Transfers may overlap; power follows the count.
  void begin_transfer();

  /// Marks the end of one transfer; when the last transfer ends the T1
  /// inactivity timer starts.
  void end_transfer();

  /// Resets the inactivity timers without transferring (signalling chatter,
  /// keep-alives).  No effect in IDLE.
  void touch();

  /// Attempts to send a small payload over the shared FACH channels without
  /// promoting (keep-alives, tiny beacons). Succeeds only when the radio is
  /// camped on FACH and the payload fits the common-channel budget; the
  /// transfer occupies the radio at FACH-transmit power and resets T2.
  /// Returns false (and does nothing) otherwise — callers fall back to
  /// request_channel().
  bool small_transfer(Bytes bytes, Ready done);

  /// Fast dormancy: asks the network to tear the signalling connection down
  /// now (FACH/DCH -> IDLE).  Ignored if a transfer is active, a release is
  /// already running, the radio is already IDLE, or coverage is lost.
  /// Returns whether the release was started.
  bool force_idle();

  // --- radio failure model (DESIGN.md "Radio failure model") ---------------

  /// Coverage went away (an outage window began).  Nested calls stack: the
  /// link is considered down until every source restored it.  The machine
  /// arms the T313-style detection timer; if coverage is still gone when it
  /// fires, the UE declares radio-link failure (from FACH/DCH — in-flight
  /// transfers are settled through the on_rlf hook, the context is marked
  /// for re-establishment) or simply camps OUT_OF_SERVICE (from IDLE).
  void radio_link_down();

  /// Coverage came back (the outage window ended).  A fade shorter than the
  /// detection window is absorbed silently; otherwise the UE either performs
  /// bounded re-establishment attempts with exponential backoff (context
  /// held) or re-enters IDLE directly (no context), flushing any queued
  /// channel requests through the normal promotion path.
  void radio_link_up();

  /// Decides whether re-establishment attempt `attempt` (1-based within one
  /// recovery) succeeds.  Must be pure/deterministic for reproducibility;
  /// unset (the default) every attempt succeeds.
  void set_reestablish_decider(std::function<bool(int attempt)> fn) {
    reestablish_decider_ = std::move(fn);
  }

  /// Invoked synchronously the moment radio-link failure is declared, while
  /// the machine is still in the failing state — the HTTP client settles its
  /// in-flight attempts (releasing transfer markers) here, before the
  /// machine tears the timers down and enters OUT_OF_SERVICE.
  void set_on_rlf(std::function<void()> fn) { on_rlf_ = std::move(fn); }

  // --- hard handover (metro layer; DESIGN.md "Metro layer") ----------------

  /// Starts a hard handover: the RRC context (and its DCH) moves to another
  /// cell in one signalling exchange.  Legal only from stable DCH with the
  /// link up — a handover is a *managed* transfer commanded while both
  /// cells are reachable, unlike RLF which is an unmanaged loss.  During
  /// the exchange the radio signals at handover_power, the inactivity
  /// timers are parked, and channel requests queue exactly as during a
  /// promotion.  `done` fires when the exchange completes (the caller
  /// re-routes flows through the target cell there); it never fires if a
  /// radio-link failure interrupts the exchange — RLF teardown cancels the
  /// completion like any other signalling.  Returns whether the handover
  /// was started.
  bool start_handover(Ready done);

  /// Hard handovers completed.
  int handovers() const { return handovers_; }

  /// True while any coverage source holds the radio link down (detection
  /// window included): a handover must not start into a hole.
  bool link_down() const { return link_down_depth_ > 0; }

  /// Radio-link failures declared (T313 expiry with an RRC connection up).
  int rlf_count() const { return rlf_count_; }
  /// Re-establishment attempts that succeeded / failed.
  int reestablish_ok() const { return reestablish_ok_; }
  int reestablish_fail() const { return reestablish_fail_; }

  /// Cumulative residency in each state (promotions count toward the state
  /// being left; the release counts toward the state being left).
  Seconds time_in(RrcState s) const;

  /// Number of IDLE->DCH promotions performed (capacity/diagnostics).
  int idle_promotions() const { return idle_promotions_; }
  /// Number of payloads that went over the shared FACH channels.
  int small_transfers() const { return small_transfers_; }
  /// Number of FACH->DCH promotions performed.
  int fach_promotions() const { return fach_promotions_; }
  /// Number of app-initiated releases that completed.
  int forced_releases() const { return forced_releases_; }
  /// Transfer markers currently held (begin_transfer minus end_transfer);
  /// must be 0 after every load teardown, user aborts included.
  int active_transfers() const { return active_transfers_; }

  /// Radio power over time (excludes CPU; sum with the CPU timeline for
  /// whole-phone power).
  const PowerTimeline& power() const { return power_; }

  const RrcConfig& config() const { return config_; }
  const RadioPowerModel& power_model() const { return power_model_; }

  /// Attaches a trace recorder (nullptr detaches).  Recording is synchronous
  /// and never schedules events, so behavior is identical either way.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

  /// Observer invoked synchronously on every state transition, after the
  /// machine has switched to `to` (the cell scheduler hooks DCH grants on
  /// this).  Must not schedule events if bit-identical traced/untraced runs
  /// are required; unset (the default) costs nothing.
  void set_on_state_change(std::function<void(RrcState from, RrcState to)> fn) {
    on_state_change_ = std::move(fn);
  }

 private:
  void enter_state(RrcState next);
  void start_promotion();
  void on_promotion_done();
  void update_power();
  void arm_t1();
  void arm_t2();
  void cancel_timers();
  void account_residency();
  void on_rlf_detect();
  void trigger_rlf();
  void start_reestablish(int attempt);
  void flush_waiting();

  sim::Simulator& sim_;
  RrcConfig config_;
  RadioPowerModel power_model_;
  obs::TraceRecorder* trace_ = nullptr;
  std::function<void(RrcState, RrcState)> on_state_change_;
  std::function<bool(int)> reestablish_decider_;
  std::function<void()> on_rlf_;

  RrcState state_ = RrcState::kIdle;
  RadioPhase phase_ = RadioPhase::kStable;
  int active_transfers_ = 0;
  std::vector<Ready> waiting_;

  sim::EventId t1_event_;
  sim::EventId t2_event_;
  sim::EventId signalling_event_;
  sim::EventId t313_event_;
  sim::EventId backoff_event_;

  PowerTimeline power_;
  Seconds residency_mark_ = 0;
  Seconds time_idle_ = 0;
  Seconds time_fach_ = 0;
  Seconds time_dch_ = 0;
  Seconds time_oos_ = 0;
  int small_transfers_ = 0;
  bool fach_transfer_active_ = false;
  int idle_promotions_ = 0;
  int fach_promotions_ = 0;
  int forced_releases_ = 0;
  int handovers_ = 0;

  /// How many coverage sources currently hold the link down (a UE outage
  /// window and a whole-cell outage may overlap; the link is up only when
  /// every source restored it).
  int link_down_depth_ = 0;
  /// An RRC context survived the failure and awaits re-establishment.
  bool rlf_context_ = false;
  int rlf_count_ = 0;
  int reestablish_ok_ = 0;
  int reestablish_fail_ = 0;
};

}  // namespace eab::radio
