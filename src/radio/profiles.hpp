// Named radio technology profiles.
//
// The reproduction's default constants model the paper's 2009-2013 UMTS
// testbed.  This header also provides an LTE profile (connected-mode DRX,
// calibrated to the published measurements of Huang et al., MobiSys'12) so
// the technique can be re-evaluated on the technology that displaced 3G:
// LTE's promotions are ~10x faster and its tail is shorter and cheaper, so
// the headroom the paper exploits shrinks — quantified by
// bench_ext_lte_profile.
//
// The three RRC states map as: kDch = RRC_CONNECTED (continuous reception),
// kFach = RRC_CONNECTED with DRX (the tail; effective mean power over the
// DRX cycle), kIdle = RRC_IDLE.
#pragma once

#include "radio/rrc_config.hpp"

namespace eab::radio {

/// The paper's testbed: T-Mobile UMTS, Table 5 power levels (the library
/// defaults — returned explicitly so experiments can name their profile).
struct RadioProfile {
  const char* name;
  RrcConfig rrc;
  RadioPowerModel power;
  LinkConfig link;
};

/// UMTS / 3G (the paper's environment).
RadioProfile umts_profile();

/// LTE with connected-mode DRX (Huang et al., MobiSys'12 calibration).
RadioProfile lte_profile();

}  // namespace eab::radio
