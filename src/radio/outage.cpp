#include "radio/outage.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace eab::radio {

namespace {
// Sub-stream tags keeping the window-phase and re-establishment draws
// independent of each other and of every other consumer of the plan seed.
constexpr std::uint64_t kOutageWindowStream = 0x0A7A'6E00'0000'0001ull;
constexpr std::uint64_t kReestablishStream = 0x0A7A'6E00'0000'0002ull;
}  // namespace

void validate_outage_plan(const OutagePlan& plan) {
  if (!plan.enabled()) return;
  if (plan.count < 0) {
    throw std::invalid_argument("OutagePlan: count must be >= 0");
  }
  if (!std::isfinite(plan.start) || plan.start < 0) {
    throw std::invalid_argument("OutagePlan: start must be finite and >= 0");
  }
  if (!std::isfinite(plan.duration) || plan.duration <= 0) {
    throw std::invalid_argument("OutagePlan: duration must be finite and > 0");
  }
  if (!std::isfinite(plan.period) || plan.period <= plan.duration) {
    throw std::invalid_argument(
        "OutagePlan: period must be finite and exceed duration");
  }
  if (!(plan.reestablish_fail_rate >= 0) || plan.reestablish_fail_rate > 1) {
    throw std::invalid_argument(
        "OutagePlan: reestablish_fail_rate must be in [0, 1]");
  }
}

std::vector<OutageWindow> outage_windows(const OutagePlan& plan,
                                         std::uint64_t ue_id) {
  if (!plan.enabled()) return {};
  validate_outage_plan(plan);
  Rng rng(derive_seed(plan.seed, kOutageWindowStream ^ ue_id));
  const Seconds phase = rng.uniform(0.0, plan.period);
  std::vector<OutageWindow> windows;
  windows.reserve(static_cast<std::size_t>(plan.count));
  for (int i = 0; i < plan.count; ++i) {
    const Seconds begin = plan.start + phase + i * plan.period;
    windows.push_back(OutageWindow{begin, begin + plan.duration});
  }
  return windows;
}

bool reestablish_succeeds(const OutagePlan& plan, std::uint64_t ue_id,
                          int attempt_index) {
  if (plan.reestablish_fail_rate <= 0) return true;
  Rng rng(derive_seed(derive_seed(plan.seed, kReestablishStream ^ ue_id),
                      static_cast<std::uint64_t>(attempt_index)));
  return rng.uniform() >= plan.reestablish_fail_rate;
}

}  // namespace eab::radio
