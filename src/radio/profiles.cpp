#include "radio/profiles.hpp"

namespace eab::radio {

RadioProfile umts_profile() {
  // The library defaults are the UMTS calibration.
  return RadioProfile{"UMTS (3G)", RrcConfig{}, RadioPowerModel{}, LinkConfig{}};
}

RadioProfile lte_profile() {
  RadioProfile profile;
  profile.name = "LTE";

  // Timers: short inactivity to DRX, ~10 s connected tail before release.
  profile.rrc.t1 = 1.0;    // continuous reception -> DRX
  profile.rrc.t2 = 10.0;   // DRX tail -> RRC_IDLE
  profile.rrc.idle_to_dch_delay = 0.26;  // RRC connection setup
  profile.rrc.fach_to_dch_delay = 0.03;  // DRX wake-up
  profile.rrc.release_delay = 0.10;
  profile.rrc.idle_to_dch_power = 1.20;
  profile.rrc.fach_to_dch_power = 1.10;
  profile.rrc.release_power = 1.00;
  profile.rrc.fach_data_threshold = 0;  // no shared-channel data path

  // Whole-phone power (display/system floor kept at the paper's 0.15 W so
  // the technologies are compared on radio behaviour alone).
  profile.power.idle = 0.15;
  profile.power.fach = 0.55;            // mean over the DRX cycle
  profile.power.dch_no_transfer = 1.15;
  profile.power.dch_transfer = 1.45;    // LTE radios draw more when active
  profile.power.fach_transfer = 0.55;   // unused (threshold 0)
  profile.power.cpu_busy_extra = 0.45;

  // Link: ~8x the UMTS goodput, much lower latency.
  profile.link.dch_bandwidth = 1100.0 * 1024.0;
  profile.link.fach_bandwidth = 0.0;
  profile.link.rtt = 0.05;
  profile.link.server_latency = 0.05;
  profile.link.slow_start_threshold = 32 * 1024;
  profile.link.slow_start_rounds_cap = 1.0;
  return profile;
}

}  // namespace eab::radio
