// Deterministic radio coverage outages.
//
// A real handset does not just see per-request faults: the whole radio link
// disappears when the user enters an elevator or the serving cell drops.
// OutagePlan describes seed-derived coverage loss windows with the same two
// guarantees net::FaultPlan gives the request-fault layer:
//
//  * Determinism.  The outage windows for a UE are a pure function of
//    (plan seed, ue_id): outage_windows() draws the per-UE phase offset from
//    Rng(derive_seed(seed, kOutageWindowStream ^ ue_id)) and nothing else, so
//    a cell sweep computes identical windows regardless of sharding, and the
//    re-establishment success stream is a pure per-UE sequence as well.
//  * Memo-cache soundness.  The plan is plain data carried inside
//    core::StackConfig; every field is serialised into batch_memo_key, so two
//    loads differing only in their outages never collide in the memo cache.
//
// The plan itself knows nothing about the RRC machine or the shared link —
// net::OutageInjector (net/outage.hpp) turns the windows into radio_link_down
// / radio_link_up calls plus link pauses.  A disabled plan (count == 0) is
// indistinguishable from no plan at all: nothing is scheduled, no state is
// touched, and every result byte matches the pre-outage build.
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.hpp"

namespace eab::radio {

/// Declarative coverage-outage process for one UE (or a whole cell when used
/// by the cell layer's cell_outage_* knobs, where ue_id folds to the cell).
struct OutagePlan {
  std::uint64_t seed = 1;  ///< window-phase and re-establishment stream seed
  /// Number of coverage-loss windows; 0 disables the subsystem entirely.
  int count = 0;
  /// Earliest possible start of the first window; the per-UE phase offset
  /// drawn in [0, period) is added on top.
  Seconds start = 5.0;
  /// Spacing between consecutive window starts.  Must exceed `duration` so a
  /// UE's own windows never overlap.
  Seconds period = 10.0;
  /// Length of each coverage hole.
  Seconds duration = 2.0;
  /// Probability that one re-establishment attempt fails (drawn per attempt
  /// from the per-UE pure stream; 0 = re-establishment always succeeds).
  double reestablish_fail_rate = 0;

  /// A disabled plan must be indistinguishable from no plan at all.
  bool enabled() const { return count > 0 && duration > 0; }
};

/// One coverage hole: the link is down in [begin, end).
struct OutageWindow {
  Seconds begin = 0;
  Seconds end = 0;
};

/// Throws std::invalid_argument naming the offending knob when the plan is
/// enabled but ill-formed (non-finite or negative timings, period <= duration
/// with more than one window, fail rate outside [0, 1]).
void validate_outage_plan(const OutagePlan& plan);

/// The coverage holes `ue_id` experiences under `plan`, in ascending order.
/// Pure in (plan, ue_id): no simulator state, no call-order dependence.
/// Returns an empty vector for a disabled plan.
std::vector<OutageWindow> outage_windows(const OutagePlan& plan,
                                         std::uint64_t ue_id);

/// Whether re-establishment attempt number `attempt_index` (a per-UE 1-based
/// counter over *all* attempts the UE ever makes) succeeds.  Pure in
/// (plan.seed, plan.reestablish_fail_rate, ue_id, attempt_index).
bool reestablish_succeeds(const OutagePlan& plan, std::uint64_t ue_id,
                          int attempt_index);

}  // namespace eab::radio
