#include "radio/rrc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eab::radio {

const char* to_string(RrcState state) {
  switch (state) {
    case RrcState::kIdle: return "IDLE";
    case RrcState::kFach: return "FACH";
    case RrcState::kDch: return "DCH";
    case RrcState::kOutOfService: return "OUT_OF_SERVICE";
  }
  return "?";
}

RrcMachine::RrcMachine(sim::Simulator& sim, RrcConfig config,
                       RadioPowerModel power)
    : sim_(sim),
      config_(config),
      power_model_(power),
      power_(power.idle),
      residency_mark_(sim.now()) {}

void RrcMachine::account_residency() {
  const Seconds elapsed = sim_.now() - residency_mark_;
  switch (state_) {
    case RrcState::kIdle: time_idle_ += elapsed; break;
    case RrcState::kFach: time_fach_ += elapsed; break;
    case RrcState::kDch: time_dch_ += elapsed; break;
    case RrcState::kOutOfService: time_oos_ += elapsed; break;
  }
  residency_mark_ = sim_.now();
}

Seconds RrcMachine::time_in(RrcState s) const {
  // Include the open interval since the last change.
  const Seconds open = sim_.now() - residency_mark_;
  switch (s) {
    case RrcState::kIdle: return time_idle_ + (state_ == s ? open : 0);
    case RrcState::kFach: return time_fach_ + (state_ == s ? open : 0);
    case RrcState::kDch: return time_dch_ + (state_ == s ? open : 0);
    case RrcState::kOutOfService:
      return time_oos_ + (state_ == s ? open : 0);
  }
  return 0;
}

void RrcMachine::update_power() {
  Watts level = power_model_.idle;
  switch (phase_) {
    case RadioPhase::kPromoting:
      level = state_ == RrcState::kIdle ? config_.idle_to_dch_power
                                        : config_.fach_to_dch_power;
      break;
    case RadioPhase::kReleasing:
      level = config_.release_power;
      break;
    case RadioPhase::kReestablishing:
      level = config_.reestablish_power;
      break;
    case RadioPhase::kHandover:
      level = config_.handover_power;
      break;
    case RadioPhase::kStable:
      switch (state_) {
        case RrcState::kIdle: level = power_model_.idle; break;
        case RrcState::kFach: level = power_model_.fach; break;
        case RrcState::kDch:
          level = active_transfers_ > 0 ? power_model_.dch_transfer
                                        : power_model_.dch_no_transfer;
          break;
        case RrcState::kOutOfService:
          level = power_model_.out_of_service;
          break;
      }
      break;
  }
  power_.set_power(sim_.now(), level);
}

void RrcMachine::cancel_timers() {
  if (sim_.cancel(t1_event_) && trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcTimerCancel, 1);
  }
  if (sim_.cancel(t2_event_) && trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcTimerCancel, 2);
  }
  t1_event_ = {};
  t2_event_ = {};
}

void RrcMachine::arm_t1() {
  if (sim_.cancel(t1_event_) && trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcTimerCancel, 1);
  }
  t1_event_ = sim_.schedule_in(config_.t1, [this] {
    if (trace_) [[unlikely]] trace_->record(sim_.now(), obs::TraceKind::kRrcTimerFire, 1);
    enter_state(RrcState::kFach);
    arm_t2();
  });
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcTimerSet, 1, 0,
                   sim_.now() + config_.t1);
  }
}

void RrcMachine::arm_t2() {
  if (sim_.cancel(t2_event_) && trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcTimerCancel, 2);
  }
  t2_event_ = sim_.schedule_in(config_.t2, [this] {
    if (trace_) [[unlikely]] trace_->record(sim_.now(), obs::TraceKind::kRrcTimerFire, 2);
    enter_state(RrcState::kIdle);
  });
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcTimerSet, 2, 0,
                   sim_.now() + config_.t2);
  }
}

void RrcMachine::enter_state(RrcState next) {
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcStateEnter,
                   static_cast<std::int64_t>(state_),
                   static_cast<std::int64_t>(next));
  }
  const RrcState from = state_;
  account_residency();
  state_ = next;
  update_power();
  if (on_state_change_) on_state_change_(from, next);
}

void RrcMachine::start_promotion() {
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcPromotionStart,
                   static_cast<std::int64_t>(state_));
  }
  phase_ = RadioPhase::kPromoting;
  cancel_timers();
  update_power();
  const bool from_idle = state_ == RrcState::kIdle;
  const Seconds delay =
      from_idle ? config_.idle_to_dch_delay : config_.fach_to_dch_delay;
  signalling_event_ = sim_.schedule_in(delay, [this, from_idle] {
    if (trace_) [[unlikely]] {
      trace_->record(sim_.now(), obs::TraceKind::kRrcPromotionDone,
                     static_cast<std::int64_t>(state_));
    }
    if (from_idle) {
      ++idle_promotions_;
    } else {
      ++fach_promotions_;
    }
    on_promotion_done();
  });
}

void RrcMachine::on_promotion_done() {
  phase_ = RadioPhase::kStable;
  enter_state(RrcState::kDch);
  // If no transfer starts (caller changed its mind), the inactivity timer
  // must still bring the radio back down.
  arm_t1();
  flush_waiting();
}

void RrcMachine::flush_waiting() {
  std::vector<Ready> ready;
  ready.swap(waiting_);
  for (auto& callback : ready) callback();
}

void RrcMachine::request_channel(Ready ready) {
  if (!ready) {
    throw std::invalid_argument("RrcMachine::request_channel: empty callback");
  }
  // While a coverage hole is open (detection window included) nothing can be
  // serviced or signalled: requests queue and recovery flushes them.  The
  // depth is 0 whenever the outage subsystem is disabled, so the fast path
  // is untouched.
  if (phase_ == RadioPhase::kStable && state_ == RrcState::kDch &&
      link_down_depth_ == 0) {
    ready();
    return;
  }
  waiting_.push_back(std::move(ready));
  if (phase_ == RadioPhase::kStable && state_ != RrcState::kOutOfService &&
      link_down_depth_ == 0) {
    start_promotion();
  }
  // kPromoting: the pending promotion will flush the queue.
  // kReleasing: the release completion handler starts a fresh promotion.
  // OUT_OF_SERVICE (any phase): recovery flushes the queue — through
  // re-establishment success or the post-context-release promotion.
}

void RrcMachine::begin_transfer() {
  if (state_ != RrcState::kDch || phase_ != RadioPhase::kStable) {
    throw std::logic_error("RrcMachine::begin_transfer: not on DCH");
  }
  ++active_transfers_;
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcTransferBegin, 0,
                   active_transfers_);
  }
  cancel_timers();
  update_power();
}

void RrcMachine::end_transfer() {
  if (active_transfers_ <= 0) {
    throw std::logic_error("RrcMachine::end_transfer: no active transfer");
  }
  --active_transfers_;
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcTransferEnd, 0,
                   active_transfers_);
  }
  if (active_transfers_ == 0) {
    // The last marker normally drops on stable DCH; during radio-link
    // failure handling the machine may already be tearing the state down,
    // and the inactivity timer must not be re-armed into OUT_OF_SERVICE.
    if (phase_ == RadioPhase::kStable && state_ == RrcState::kDch) arm_t1();
    update_power();
  }
}

void RrcMachine::touch() {
  if (phase_ != RadioPhase::kStable) return;
  switch (state_) {
    case RrcState::kIdle:
    case RrcState::kOutOfService:
      break;
    case RrcState::kFach:
      arm_t2();
      break;
    case RrcState::kDch:
      if (active_transfers_ == 0) arm_t1();
      break;
  }
}

bool RrcMachine::small_transfer(Bytes bytes, Ready done) {
  if (!done) {
    throw std::invalid_argument("RrcMachine::small_transfer: empty callback");
  }
  if (phase_ != RadioPhase::kStable || state_ != RrcState::kFach) return false;
  if (bytes > config_.fach_data_threshold) return false;
  if (fach_transfer_active_) return false;  // one shared-channel slot

  fach_transfer_active_ = true;
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcSmallTxStart, 0, 0,
                   static_cast<double>(bytes));
  }
  power_.set_power(sim_.now(), power_model_.fach_transfer);
  const Seconds duration = static_cast<double>(bytes) / 300.0;  // common rate
  sim_.schedule_in(duration, [this, done = std::move(done)] {
    if (trace_) [[unlikely]] trace_->record(sim_.now(), obs::TraceKind::kRrcSmallTxEnd);
    fach_transfer_active_ = false;
    ++small_transfers_;
    if (phase_ == RadioPhase::kStable && state_ == RrcState::kFach) {
      update_power();
      arm_t2();  // shared-channel activity resets the release timer
    }
    done();
  });
  return true;
}

bool RrcMachine::force_idle() {
  if (phase_ != RadioPhase::kStable) return false;
  if (state_ == RrcState::kIdle) return false;
  if (state_ == RrcState::kOutOfService) return false;
  if (active_transfers_ > 0) return false;
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcReleaseStart,
                   static_cast<std::int64_t>(state_));
  }
  phase_ = RadioPhase::kReleasing;
  cancel_timers();
  account_residency();
  update_power();
  signalling_event_ = sim_.schedule_in(config_.release_delay, [this] {
    if (trace_) [[unlikely]] trace_->record(sim_.now(), obs::TraceKind::kRrcReleaseDone);
    phase_ = RadioPhase::kStable;
    ++forced_releases_;
    enter_state(RrcState::kIdle);
    if (!waiting_.empty()) {
      // A transfer request arrived mid-release: bring the radio back up.
      start_promotion();
    }
  });
  return true;
}

bool RrcMachine::start_handover(Ready done) {
  if (!done) {
    throw std::invalid_argument("RrcMachine::start_handover: empty callback");
  }
  // A hard handover is commanded while the source cell is still serving the
  // UE: it needs a stable DCH context and a working link.  Anything else —
  // signalling in flight, FACH/IDLE camping, an open coverage hole — is the
  // caller's cue to fall back to reselection.
  if (phase_ != RadioPhase::kStable || state_ != RrcState::kDch) return false;
  if (link_down_depth_ > 0) return false;
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcHandoverStart,
                   active_transfers_);
  }
  phase_ = RadioPhase::kHandover;
  cancel_timers();
  update_power();
  signalling_event_ =
      sim_.schedule_in(config_.handover_delay, [this, done = std::move(done)] {
        if (trace_) [[unlikely]] {
          trace_->record(sim_.now(), obs::TraceKind::kRrcHandoverDone);
        }
        ++handovers_;
        phase_ = RadioPhase::kStable;
        update_power();
        // The context lands on the target cell's DCH exactly where the
        // source left it; with no transfer running the inactivity demotion
        // resumes, and requests queued during the exchange flush through
        // the normal path (unless a fade opened meanwhile — recovery
        // flushes them, as everywhere else).
        if (active_transfers_ == 0) arm_t1();
        if (link_down_depth_ == 0) flush_waiting();
        done();
      });
  return true;
}

void RrcMachine::radio_link_down() {
  if (++link_down_depth_ > 1) return;  // already down for another source
  if (state_ == RrcState::kOutOfService) {
    // Coverage vanished again while we were recovering from the previous
    // hole: abort the in-flight re-establishment exchange or the pending
    // backoff retry and camp until coverage returns.  The surviving context
    // (rlf_context_) keeps waiting.
    sim_.cancel(signalling_event_);
    signalling_event_ = {};
    sim_.cancel(backoff_event_);
    backoff_event_ = {};
    if (phase_ == RadioPhase::kReestablishing) {
      phase_ = RadioPhase::kStable;
      update_power();
    }
    return;
  }
  // Arm the detection window.  Fades shorter than rlf_detect never surface:
  // radio_link_up() cancels the timer and nothing observable happened.
  t313_event_ = sim_.schedule_in(config_.rlf_detect, [this] { on_rlf_detect(); });
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcTimerSet, 3, 0,
                   sim_.now() + config_.rlf_detect);
  }
}

void RrcMachine::on_rlf_detect() {
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcTimerFire, 3);
  }
  t313_event_ = {};
  if (state_ == RrcState::kIdle) {
    // No established RRC context to lose (IDLE, or promotion still
    // signalling from IDLE): abort any setup in flight and camp out of
    // service.  Queued channel requests survive in waiting_ and restart the
    // promotion once coverage returns.
    sim_.cancel(signalling_event_);
    signalling_event_ = {};
    cancel_timers();
    phase_ = RadioPhase::kStable;
    rlf_context_ = false;
    enter_state(RrcState::kOutOfService);
    return;
  }
  trigger_rlf();
}

void RrcMachine::trigger_rlf() {
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcRlf,
                   static_cast<std::int64_t>(state_));
  }
  ++rlf_count_;
  rlf_context_ = true;
  // Settle in-flight transfers while the machine is still in the failing
  // state: the HTTP client ends its transfer markers here (legal only on
  // DCH), and the T1 re-arm the last end_transfer performs is torn down
  // again just below.
  if (on_rlf_) on_rlf_();
  sim_.cancel(signalling_event_);
  signalling_event_ = {};
  cancel_timers();
  phase_ = RadioPhase::kStable;
  enter_state(RrcState::kOutOfService);
}

void RrcMachine::radio_link_up() {
  if (link_down_depth_ == 0) return;
  if (--link_down_depth_ > 0) return;  // another source still holds it down
  if (state_ != RrcState::kOutOfService) {
    // The fade stayed below the detection window: disarm it silently, then
    // service anything that queued while the hole was open.
    if (sim_.cancel(t313_event_) && trace_) [[unlikely]] {
      trace_->record(sim_.now(), obs::TraceKind::kRrcTimerCancel, 3);
    }
    t313_event_ = {};
    if (phase_ == RadioPhase::kStable && !waiting_.empty()) {
      if (state_ == RrcState::kDch) {
        flush_waiting();
      } else {
        start_promotion();
      }
    }
    return;
  }
  if (!rlf_context_) {
    // Nothing to re-establish: camp back on IDLE and let any queued channel
    // requests promote normally.
    enter_state(RrcState::kIdle);
    if (!waiting_.empty()) start_promotion();
    return;
  }
  start_reestablish(1);
}

void RrcMachine::start_reestablish(int attempt) {
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcReestablishStart, attempt);
  }
  phase_ = RadioPhase::kReestablishing;
  update_power();
  signalling_event_ =
      sim_.schedule_in(config_.reestablish_delay, [this, attempt] {
        const bool ok =
            !reestablish_decider_ || reestablish_decider_(attempt);
        if (ok) {
          if (trace_) [[unlikely]] {
            trace_->record(sim_.now(), obs::TraceKind::kRrcReestablishOk,
                           attempt);
          }
          ++reestablish_ok_;
          rlf_context_ = false;
          phase_ = RadioPhase::kStable;
          // The context comes back on dedicated channels, exactly where the
          // failure interrupted it; normal inactivity demotion resumes.
          enter_state(RrcState::kDch);
          arm_t1();
          flush_waiting();
          return;
        }
        if (trace_) [[unlikely]] {
          trace_->record(sim_.now(), obs::TraceKind::kRrcReestablishFail,
                         attempt);
        }
        ++reestablish_fail_;
        phase_ = RadioPhase::kStable;
        update_power();
        if (attempt >= config_.max_reestablish_attempts) {
          // Give up: release the RRC context and rebuild from IDLE.
          rlf_context_ = false;
          enter_state(RrcState::kIdle);
          if (!waiting_.empty()) start_promotion();
          return;
        }
        const Seconds backoff =
            config_.reestablish_backoff * static_cast<double>(1 << (attempt - 1));
        backoff_event_ = sim_.schedule_in(backoff, [this, attempt] {
          backoff_event_ = {};
          start_reestablish(attempt + 1);
        });
      });
}

Seconds LinkConfig::slow_start_delay(Bytes size) const {
  if (size <= slow_start_threshold || slow_start_threshold == 0) return 0.0;
  const double rounds = std::log2(
      1.0 + static_cast<double>(size) / static_cast<double>(slow_start_threshold));
  return rtt * std::min(slow_start_rounds_cap, rounds);
}

}  // namespace eab::radio

