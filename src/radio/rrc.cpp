#include "radio/rrc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eab::radio {

const char* to_string(RrcState state) {
  switch (state) {
    case RrcState::kIdle: return "IDLE";
    case RrcState::kFach: return "FACH";
    case RrcState::kDch: return "DCH";
  }
  return "?";
}

RrcMachine::RrcMachine(sim::Simulator& sim, RrcConfig config,
                       RadioPowerModel power)
    : sim_(sim),
      config_(config),
      power_model_(power),
      power_(power.idle),
      residency_mark_(sim.now()) {}

void RrcMachine::account_residency() {
  const Seconds elapsed = sim_.now() - residency_mark_;
  switch (state_) {
    case RrcState::kIdle: time_idle_ += elapsed; break;
    case RrcState::kFach: time_fach_ += elapsed; break;
    case RrcState::kDch: time_dch_ += elapsed; break;
  }
  residency_mark_ = sim_.now();
}

Seconds RrcMachine::time_in(RrcState s) const {
  // Include the open interval since the last change.
  const Seconds open = sim_.now() - residency_mark_;
  switch (s) {
    case RrcState::kIdle: return time_idle_ + (state_ == s ? open : 0);
    case RrcState::kFach: return time_fach_ + (state_ == s ? open : 0);
    case RrcState::kDch: return time_dch_ + (state_ == s ? open : 0);
  }
  return 0;
}

void RrcMachine::update_power() {
  Watts level = power_model_.idle;
  switch (phase_) {
    case RadioPhase::kPromoting:
      level = state_ == RrcState::kIdle ? config_.idle_to_dch_power
                                        : config_.fach_to_dch_power;
      break;
    case RadioPhase::kReleasing:
      level = config_.release_power;
      break;
    case RadioPhase::kStable:
      switch (state_) {
        case RrcState::kIdle: level = power_model_.idle; break;
        case RrcState::kFach: level = power_model_.fach; break;
        case RrcState::kDch:
          level = active_transfers_ > 0 ? power_model_.dch_transfer
                                        : power_model_.dch_no_transfer;
          break;
      }
      break;
  }
  power_.set_power(sim_.now(), level);
}

void RrcMachine::cancel_timers() {
  if (sim_.cancel(t1_event_) && trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcTimerCancel, 1);
  }
  if (sim_.cancel(t2_event_) && trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcTimerCancel, 2);
  }
  t1_event_ = {};
  t2_event_ = {};
}

void RrcMachine::arm_t1() {
  if (sim_.cancel(t1_event_) && trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcTimerCancel, 1);
  }
  t1_event_ = sim_.schedule_in(config_.t1, [this] {
    if (trace_) [[unlikely]] trace_->record(sim_.now(), obs::TraceKind::kRrcTimerFire, 1);
    enter_state(RrcState::kFach);
    arm_t2();
  });
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcTimerSet, 1, 0,
                   sim_.now() + config_.t1);
  }
}

void RrcMachine::arm_t2() {
  if (sim_.cancel(t2_event_) && trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcTimerCancel, 2);
  }
  t2_event_ = sim_.schedule_in(config_.t2, [this] {
    if (trace_) [[unlikely]] trace_->record(sim_.now(), obs::TraceKind::kRrcTimerFire, 2);
    enter_state(RrcState::kIdle);
  });
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcTimerSet, 2, 0,
                   sim_.now() + config_.t2);
  }
}

void RrcMachine::enter_state(RrcState next) {
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcStateEnter,
                   static_cast<std::int64_t>(state_),
                   static_cast<std::int64_t>(next));
  }
  const RrcState from = state_;
  account_residency();
  state_ = next;
  update_power();
  if (on_state_change_) on_state_change_(from, next);
}

void RrcMachine::start_promotion() {
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcPromotionStart,
                   static_cast<std::int64_t>(state_));
  }
  phase_ = RadioPhase::kPromoting;
  cancel_timers();
  update_power();
  const bool from_idle = state_ == RrcState::kIdle;
  const Seconds delay =
      from_idle ? config_.idle_to_dch_delay : config_.fach_to_dch_delay;
  signalling_event_ = sim_.schedule_in(delay, [this, from_idle] {
    if (trace_) [[unlikely]] {
      trace_->record(sim_.now(), obs::TraceKind::kRrcPromotionDone,
                     static_cast<std::int64_t>(state_));
    }
    if (from_idle) {
      ++idle_promotions_;
    } else {
      ++fach_promotions_;
    }
    on_promotion_done();
  });
}

void RrcMachine::on_promotion_done() {
  phase_ = RadioPhase::kStable;
  enter_state(RrcState::kDch);
  // If no transfer starts (caller changed its mind), the inactivity timer
  // must still bring the radio back down.
  arm_t1();
  std::vector<Ready> ready;
  ready.swap(waiting_);
  for (auto& callback : ready) callback();
}

void RrcMachine::request_channel(Ready ready) {
  if (!ready) {
    throw std::invalid_argument("RrcMachine::request_channel: empty callback");
  }
  if (phase_ == RadioPhase::kStable && state_ == RrcState::kDch) {
    ready();
    return;
  }
  waiting_.push_back(std::move(ready));
  if (phase_ == RadioPhase::kStable) {
    start_promotion();
  }
  // kPromoting: the pending promotion will flush the queue.
  // kReleasing: the release completion handler starts a fresh promotion.
}

void RrcMachine::begin_transfer() {
  if (state_ != RrcState::kDch || phase_ != RadioPhase::kStable) {
    throw std::logic_error("RrcMachine::begin_transfer: not on DCH");
  }
  ++active_transfers_;
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcTransferBegin, 0,
                   active_transfers_);
  }
  cancel_timers();
  update_power();
}

void RrcMachine::end_transfer() {
  if (active_transfers_ <= 0) {
    throw std::logic_error("RrcMachine::end_transfer: no active transfer");
  }
  --active_transfers_;
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcTransferEnd, 0,
                   active_transfers_);
  }
  if (active_transfers_ == 0) {
    arm_t1();
    update_power();
  }
}

void RrcMachine::touch() {
  if (phase_ != RadioPhase::kStable) return;
  switch (state_) {
    case RrcState::kIdle:
      break;
    case RrcState::kFach:
      arm_t2();
      break;
    case RrcState::kDch:
      if (active_transfers_ == 0) arm_t1();
      break;
  }
}

bool RrcMachine::small_transfer(Bytes bytes, Ready done) {
  if (!done) {
    throw std::invalid_argument("RrcMachine::small_transfer: empty callback");
  }
  if (phase_ != RadioPhase::kStable || state_ != RrcState::kFach) return false;
  if (bytes > config_.fach_data_threshold) return false;
  if (fach_transfer_active_) return false;  // one shared-channel slot

  fach_transfer_active_ = true;
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcSmallTxStart, 0, 0,
                   static_cast<double>(bytes));
  }
  power_.set_power(sim_.now(), power_model_.fach_transfer);
  const Seconds duration = static_cast<double>(bytes) / 300.0;  // common rate
  sim_.schedule_in(duration, [this, done = std::move(done)] {
    if (trace_) [[unlikely]] trace_->record(sim_.now(), obs::TraceKind::kRrcSmallTxEnd);
    fach_transfer_active_ = false;
    ++small_transfers_;
    if (phase_ == RadioPhase::kStable && state_ == RrcState::kFach) {
      update_power();
      arm_t2();  // shared-channel activity resets the release timer
    }
    done();
  });
  return true;
}

bool RrcMachine::force_idle() {
  if (phase_ != RadioPhase::kStable) return false;
  if (state_ == RrcState::kIdle) return false;
  if (active_transfers_ > 0) return false;
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRrcReleaseStart,
                   static_cast<std::int64_t>(state_));
  }
  phase_ = RadioPhase::kReleasing;
  cancel_timers();
  account_residency();
  update_power();
  signalling_event_ = sim_.schedule_in(config_.release_delay, [this] {
    if (trace_) [[unlikely]] trace_->record(sim_.now(), obs::TraceKind::kRrcReleaseDone);
    phase_ = RadioPhase::kStable;
    ++forced_releases_;
    enter_state(RrcState::kIdle);
    if (!waiting_.empty()) {
      // A transfer request arrived mid-release: bring the radio back up.
      start_promotion();
    }
  });
  return true;
}


Seconds LinkConfig::slow_start_delay(Bytes size) const {
  if (size <= slow_start_threshold || slow_start_threshold == 0) return 0.0;
  const double rounds = std::log2(
      1.0 + static_cast<double>(size) / static_cast<double>(slow_start_threshold));
  return rtt * std::min(slow_start_rounds_cap, rounds);
}

}  // namespace eab::radio

