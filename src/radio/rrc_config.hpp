// UMTS RRC configuration and power model constants.
//
// Timer values follow the paper (Section 2.1): T1 ~ 4 s controls DCH->FACH
// demotion, T2 ~ 15 s controls FACH->IDLE release.  Power levels reproduce
// the paper's Table 5 (whole-phone measurements including display and system
// maintenance).  Promotion/release signalling latencies and powers are
// calibrated so that the Fig 3 experiment reproduces the paper's observation:
// dropping to IDLE after a transfer only pays off when the next transfer is
// more than ~9 s away.
#pragma once

#include "util/units.hpp"

namespace eab::radio {

/// The three RRC states of Section 2.1, plus the coverage-loss state the
/// radio failure model adds (a UE that lost its serving cell and is hunting
/// for coverage; see DESIGN.md "Radio failure model").
enum class RrcState {
  kIdle,  ///< no signalling connection; radio nearly off
  kFach,  ///< shared channels only (a few hundred bytes/s)
  kDch,   ///< dedicated channels; full data rate
  kOutOfService,  ///< no coverage: cell search, no data path at all
};

/// Returns a short human-readable state name
/// ("IDLE", "FACH", "DCH", "OUT_OF_SERVICE").
const char* to_string(RrcState state);

/// Timer and signalling parameters of the radio resource control protocol.
struct RrcConfig {
  Seconds t1 = 4.0;   ///< DCH inactivity timer (DCH -> FACH)
  Seconds t2 = 15.0;  ///< FACH inactivity timer (FACH -> IDLE)

  /// IDLE -> DCH: RRC connection setup + radio bearer establishment.
  /// The paper measured ~1.75 s *extra* latency versus resuming from FACH.
  Seconds idle_to_dch_delay = 3.25;
  /// FACH -> DCH: dedicated channel allocation with signalling still up.
  Seconds fach_to_dch_delay = 1.5;
  /// App-requested release (fast dormancy): SCRI + RRC release exchange.
  Seconds release_delay = 2.0;

  /// Mean radio power during IDLE->DCH promotion signalling.
  Watts idle_to_dch_power = 1.55;
  /// Mean radio power during FACH->DCH promotion signalling.
  Watts fach_to_dch_power = 1.0;
  /// Mean radio power during the release exchange.
  Watts release_power = 1.5;

  /// Timer-driven demotions (T1/T2 expiry) are network-initiated and cheap;
  /// they complete instantaneously in this model.

  /// Largest payload the shared FACH channels accept without a DCH
  /// promotion (Section 2.1: "a few hundred bytes/second" on common
  /// channels; bigger transfers must promote).
  Bytes fach_data_threshold = 512;

  // --- radio-link failure / re-establishment (DESIGN.md "Radio failure
  // model").  These only matter once a coverage process drives
  // radio_link_down(); with no outage plan none of them is ever consulted.

  /// N313/T313-style detection window: how long the link must stay bad
  /// before the UE declares radio-link failure (or, in IDLE, simply camps
  /// out of service).  Fades shorter than this are absorbed silently.
  Seconds rlf_detect = 1.0;
  /// One RRC connection re-establishment exchange (cell search already done;
  /// comparable to an IDLE->DCH setup minus the paging round).
  Seconds reestablish_delay = 1.2;
  /// Mean radio power while a re-establishment exchange is in flight —
  /// signalling at full transmit power, like an IDLE->DCH promotion.
  Watts reestablish_power = 1.55;
  /// Backoff before retry k+1 after a failed attempt k:
  /// reestablish_backoff * 2^(k-1), spent camped OUT_OF_SERVICE.
  Seconds reestablish_backoff = 0.5;
  /// Attempts before the UE gives up, releases the RRC context and falls
  /// back to IDLE (the connection must then be rebuilt from scratch).
  int max_reestablish_attempts = 4;

  // --- hard handover (metro layer; DESIGN.md "Metro layer").  Consulted
  // only by start_handover(), which nothing calls in a single-cell run.

  /// One hard-handover exchange: measurement report, handover command,
  /// target-cell radio bearer reconfiguration + L2 re-sync.  Much cheaper
  /// than an IDLE->DCH setup (the context moves, it is not rebuilt) but
  /// not free like a timer demotion.
  Seconds handover_delay = 0.3;
  /// Mean radio power while the handover exchange is in flight —
  /// signalling at full transmit power, like an IDLE->DCH promotion.
  Watts handover_power = 1.55;
};

/// Whole-phone power levels per state (paper Table 5).
struct RadioPowerModel {
  Watts idle = 0.15;          ///< IDLE (display + system maintenance)
  Watts fach = 0.63;          ///< camped on shared channels
  Watts dch_no_transfer = 1.15;  ///< dedicated channels allocated, no data
  Watts dch_transfer = 1.25;  ///< actively transferring on DCH
  /// Transmitting on the shared FACH channels ("about half of the power in
  /// the DCH state", Section 2.1).
  Watts fach_transfer = 0.70;
  /// Additional draw of a fully busy CPU (Table 5: 0.6 W total at IDLE,
  /// i.e. 0.45 W above the 0.15 W floor).
  Watts cpu_busy_extra = 0.45;
  /// Camped out of service: continuous cell search burns more than the IDLE
  /// maintenance floor but far less than camping on shared channels —
  /// Table-5-consistent interpolation between idle (0.15) and FACH (0.63).
  Watts out_of_service = 0.50;
};

/// Link throughput parameters for the simulated T-Mobile UMTS path.
struct LinkConfig {
  /// DCH downlink goodput. Calibrated so a 760 KB bulk transfer completes in
  /// about 8 s once the channel is up (paper Fig 4).
  BytesPerSecond dch_bandwidth = 140.0 * 1024.0;
  /// FACH shared-channel rate ("up to a few hundred bytes per second").
  BytesPerSecond fach_bandwidth = 300.0;
  /// One-way network latency smartphone <-> server (3G RTT ~ 300-500 ms).
  Seconds rtt = 0.20;
  /// Server think time before the first response byte.
  Seconds server_latency = 0.05;
  /// TCP slow start over the high-RTT 3G path: every response larger than
  /// the threshold pays extra round trips before the stream reaches link
  /// rate. delay = rtt * min(cap, log2(1 + size/threshold)).
  Bytes slow_start_threshold = 16 * 1024;
  double slow_start_rounds_cap = 1.0;

  /// Extra request delay from slow start for a response of `size` bytes.
  Seconds slow_start_delay(Bytes size) const;
};

}  // namespace eab::radio
