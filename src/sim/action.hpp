// Action storage for the event engine: a small-buffer callable layout plus
// the free-list pool that backs oversized captures.
//
// An event's callable is type-erased through a per-type operations table
// (`ActionOps`) instead of std::function: the common case — captures of a
// few pointers — is placement-constructed straight into the event slot's
// inline buffer, so scheduling an event performs no heap allocation at all.
// Captures larger than the inline buffer go to `OverflowPool`, which recycles
// freed blocks through per-size-class free lists; a simulation that keeps
// scheduling the same oversized callable reuses the same few blocks forever.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace eab::sim {

/// Inline capture capacity of an event slot.  Sized so every callable the
/// reproduction schedules today (a handful of pointers/ints, or a copied
/// std::function in the trace-generator chains) stays inline.
inline constexpr std::size_t kInlineActionBytes = 48;

/// Per-callable-type operations table.  `size == 0` marks an inline action
/// (object lives in the slot buffer); nonzero is the byte size of the
/// externally pooled object.
struct ActionOps {
  void (*invoke)(void* obj);
  void (*destroy)(void* obj) noexcept;
  std::size_t size;
};

namespace detail {

template <typename Fn>
void invoke_action(void* obj) {
  (*static_cast<Fn*>(obj))();
}

template <typename Fn>
void destroy_action(void* obj) noexcept {
  static_cast<Fn*>(obj)->~Fn();
}

template <typename Fn, bool Inline>
inline constexpr ActionOps kActionOps{
    &invoke_action<Fn>, &destroy_action<Fn>, Inline ? 0 : sizeof(Fn)};

}  // namespace detail

/// Free-list allocator for oversized action captures.  Requests are binned
/// into power-of-two size classes (64 B .. 4 KiB); freed blocks park on the
/// class's free list and satisfy the next same-class request without going
/// back to the system allocator.  Blocks beyond the largest class fall
/// through to plain new/delete — captures that big do not exist on the hot
/// path.
class OverflowPool {
 public:
  OverflowPool() = default;
  OverflowPool(const OverflowPool&) = delete;
  OverflowPool& operator=(const OverflowPool&) = delete;

  ~OverflowPool() {
    for (auto& bin : bins_) {
      for (void* block : bin) ::operator delete(block);
    }
  }

  void* allocate(std::size_t bytes) {
    const int bin = bin_index(bytes);
    if (bin < 0) return ::operator new(bytes);
    if (!bins_[static_cast<std::size_t>(bin)].empty()) {
      void* block = bins_[static_cast<std::size_t>(bin)].back();
      bins_[static_cast<std::size_t>(bin)].pop_back();
      return block;
    }
    return ::operator new(kMinClass << bin);
  }

  void deallocate(void* block, std::size_t bytes) {
    const int bin = bin_index(bytes);
    if (bin < 0) {
      ::operator delete(block);
      return;
    }
    bins_[static_cast<std::size_t>(bin)].push_back(block);
  }

  /// Blocks currently parked on free lists (diagnostics/tests).
  std::size_t free_blocks() const {
    std::size_t n = 0;
    for (const auto& bin : bins_) n += bin.size();
    return n;
  }

 private:
  static constexpr std::size_t kMinClass = 64;
  static constexpr std::size_t kMaxClass = 4096;
  static constexpr std::size_t kBins = 7;  // 64,128,...,4096

  /// Size class for `bytes`, or -1 when it exceeds the largest class.
  static int bin_index(std::size_t bytes) {
    std::size_t cls = kMinClass;
    int bin = 0;
    while (cls < bytes) {
      cls <<= 1;
      ++bin;
    }
    return cls <= kMaxClass ? bin : -1;
  }

  std::vector<void*> bins_[kBins];
};

}  // namespace eab::sim
