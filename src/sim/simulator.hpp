// Discrete-event simulation core.
//
// Everything in the reproduction — radio state machine timers, HTTP
// transfers, browser CPU tasks, user think times — runs as events on one
// Simulator.  Events at equal timestamps fire in scheduling order, which
// keeps runs deterministic; events can be cancelled (RRC inactivity timers
// are rescheduled constantly).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace eab::sim {

/// Handle to a scheduled event; obtained from Simulator::schedule_*.
class EventId {
 public:
  EventId() = default;

  bool valid() const { return seq_ != 0; }

 private:
  friend class Simulator;
  explicit EventId(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

/// A single-threaded discrete-event simulator.
class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current simulated time.
  Seconds now() const { return now_; }

  /// Schedules `action` to run at absolute time `at` (>= now()).
  EventId schedule_at(Seconds at, Action action);

  /// Schedules `action` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(Seconds delay, Action action);

  /// Cancels a pending event. Cancelling an already-fired, already-cancelled
  /// or default-constructed id is a harmless no-op; returns whether a pending
  /// event was actually cancelled.
  bool cancel(EventId id);

  /// True if the event has been scheduled, not cancelled, and not yet fired.
  bool pending(EventId id) const;

  /// Runs events until the queue is empty. Returns the number of events run.
  std::size_t run();

  /// Runs events with timestamp <= until, then advances the clock to exactly
  /// `until` (even if the queue still holds later events).
  std::size_t run_until(Seconds until);

  /// Runs exactly one event if available; returns whether one ran.
  bool step();

  /// Number of events currently pending (excludes cancelled ones).
  std::size_t pending_count() const { return actions_.size(); }

 private:
  struct Entry {
    Seconds at;
    std::uint64_t seq;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Seconds now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  // Pending actions by seq; cancellation simply removes the action and the
  // queued entry becomes a no-op when it surfaces.
  std::unordered_map<std::uint64_t, Action> actions_;
};

}  // namespace eab::sim
