// Discrete-event simulation core.
//
// Everything in the reproduction — radio state machine timers, HTTP
// transfers, browser CPU tasks, user think times, N-UE cell runs — runs as
// events on one Simulator.  Events at equal timestamps fire in scheduling
// order, which keeps runs deterministic; events can be cancelled (RRC
// inactivity timers are rescheduled constantly).
//
// Hot-path layout (million-event regime):
//  - The pending queue is a flat 4-ary min-heap of 16-byte `{at, key}` nodes;
//    sift operations move trivially copyable keys only, never callables.
//    `key` packs the event's monotonically increasing order stamp (high bits,
//    the tie-breaker that preserves scheduling order at equal timestamps)
//    with its slot index (low bits).
//  - Callables live in a recycled slot pool: small captures are placement-
//    constructed into the slot's inline buffer (no heap allocation), larger
//    ones go through a per-simulator free-list pool (see action.hpp).  Fired
//    and cancelled slots return to a free list immediately, so a long cell
//    run holds constant memory instead of one state byte per event ever
//    scheduled; the order stamp doubles as a generation counter that makes a
//    stale heap node or EventId referring to a recycled slot detectable.
//  - Cancellation leaves a tombstone node in the heap.  Tombstones are
//    discarded when they surface, and compacted in place when they exceed
//    half of a sufficiently large heap — an RRC timer reschedule storm no
//    longer buries dead entries until their timestamps pass.
//  - Opt-in sharded multi-queue mode: K independent heaps with a
//    deterministic earliest-(time, order) merge.  Order stamps are global,
//    so the merged fire sequence is bit-identical to the single-queue engine
//    no matter how events are partitioned; shard placement is purely a
//    performance decision (cell runs partition non-interacting UE groups).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "sim/action.hpp"
#include "util/units.hpp"

namespace eab::sim {

/// Thrown when the simulator fires more events than its configured budget
/// allows — a liveness tripwire turning a would-be infinite event loop into
/// a diagnosable failure.  `what()` includes a dump of the pending heap.
class BudgetExhaustedError : public std::runtime_error {
 public:
  explicit BudgetExhaustedError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Outcome of a budgeted run (Simulator::run(max_events)).
enum class RunStatus {
  kDrained,          ///< the queue emptied normally
  kBudgetExhausted,  ///< max_events fired with work still pending
};

struct RunResult {
  RunStatus status = RunStatus::kDrained;
  std::size_t events = 0;  ///< events fired by this call

  bool drained() const { return status == RunStatus::kDrained; }
};

/// Handle to a scheduled event; obtained from Simulator::schedule_*.
class EventId {
 public:
  EventId() = default;

  bool valid() const { return handle_ != 0; }

 private:
  friend class Simulator;
  explicit EventId(std::uint64_t handle) : handle_(handle) {}
  std::uint64_t handle_ = 0;  ///< (order stamp << slot bits) | slot; 0 invalid
};

/// A single-threaded discrete-event simulator.
class Simulator {
 public:
  /// Compatibility alias: schedule_* accepts any void() callable; a
  /// std::function still works (and its emptiness is still rejected).
  using Action = std::function<void()>;

  /// Constructs the simulator with `shards` independent event queues
  /// (see set_shard_count); the default is the classic single queue.
  explicit Simulator(int shards = 1) { init_shards(shards); }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Current simulated time.
  Seconds now() const { return now_; }

  /// Schedules `action` to run at absolute time `at` (>= now()).
  template <typename F>
  EventId schedule_at(Seconds at, F&& action);

  /// Schedules `action` to run `delay` seconds from now (delay >= 0).
  template <typename F>
  EventId schedule_in(Seconds delay, F&& action) {
    if (delay < 0) throw_negative_delay(delay, now_);
    return schedule_at(now_ + delay, std::forward<F>(action));
  }

  /// Cancels a pending event. Cancelling an already-fired, already-cancelled
  /// or default-constructed id is a harmless no-op; returns whether a pending
  /// event was actually cancelled.  The cancelled callable is destroyed
  /// immediately (its captures are released now, not when the tombstone
  /// surfaces).
  bool cancel(EventId id);

  /// True if the event has been scheduled, not cancelled, and not yet fired.
  bool pending(EventId id) const {
    if (id.handle_ == 0) return false;
    const std::uint32_t slot_idx = slot_of(id.handle_);
    if (slot_idx >= slot_count_) return false;
    return slot_at(slot_idx).order == order_of(id.handle_);
  }

  /// Runs events until the queue is empty. Returns the number of events run.
  /// Throws BudgetExhaustedError when the lifetime event budget (see
  /// set_event_budget) runs out first.
  std::size_t run();

  /// Runs at most `max_events` events; reports whether the queue drained or
  /// the cap was hit with work still pending (never throws for the cap —
  /// callers inspect the status and pending_dump()).  The lifetime budget
  /// still applies underneath.
  RunResult run(std::size_t max_events);

  /// Runs events with timestamp <= until, then advances the clock to exactly
  /// `until` (even if the queue still holds later events).
  std::size_t run_until(Seconds until);

  /// Runs exactly one event if available; returns whether one ran.  Throws
  /// BudgetExhaustedError if firing it would exceed the lifetime budget.
  bool step();

  /// Caps the total number of events this simulator may fire over its
  /// lifetime.  Exceeding the cap makes step()/run()/run_until() throw
  /// BudgetExhaustedError carrying pending_dump() — a wedged simulation
  /// (events endlessly rescheduling each other) surfaces as a diagnosable
  /// error instead of a hang.  Default: effectively unlimited.
  void set_event_budget(std::uint64_t max_total_fired) {
    event_budget_ = max_total_fired;
  }
  std::uint64_t event_budget() const { return event_budget_; }

  /// Human-readable snapshot of the pending heap (earliest events first, up
  /// to `max_entries`), for liveness diagnostics.
  std::string pending_dump(std::size_t max_entries = 12) const;

  /// Number of events currently pending (excludes cancelled ones).
  std::size_t pending_count() const { return live_; }

  /// Total number of events that have fired over the simulator's lifetime.
  std::uint64_t fired_count() const { return fired_count_; }

  /// Total number of events cancelled before firing.
  std::uint64_t cancelled_count() const { return cancelled_count_; }

  /// Tombstoned heap entries removed without firing — surfaced at the top of
  /// a heap or swept by in-place compaction.  Over a drained run this equals
  /// cancelled_count().
  std::uint64_t tombstones_popped() const { return tombstones_popped_; }

  /// Largest pending-queue size observed, summed across shards (live nodes
  /// plus not-yet-collected tombstones).
  std::size_t peak_heap_size() const { return peak_heap_size_; }

  // --- sharded multi-queue mode ------------------------------------------

  /// Splits the pending queue into `shards` independent heaps merged in
  /// deterministic earliest-(time, order) order.  Because order stamps are
  /// global, results are bit-identical to the single-queue engine for any
  /// shard assignment; sharding only changes per-heap sizes and locality.
  /// Must be called before any event is ever scheduled.
  void set_shard_count(int shards);
  int shard_count() const { return static_cast<int>(shards_.size()); }

  /// Selects the shard that receives subsequently scheduled events.  While
  /// an event is firing, the scheduling shard is the firing event's shard
  /// (children inherit their parent's partition) and is restored afterwards;
  /// this setter positions top-level scheduling, e.g. per-UE setup code.
  void set_schedule_shard(int shard);
  int schedule_shard() const { return schedule_shard_; }

  /// Blocks parked on the oversized-capture free list (diagnostics/tests).
  std::size_t overflow_free_blocks() const { return overflow_.free_blocks(); }

 private:
  // Heap nodes are 16-byte trivially copyable keys; `key` packs the order
  // stamp above the slot index so comparing keys compares order stamps.
  struct Node {
    Seconds at;
    std::uint64_t key;
  };
  static_assert(sizeof(Node) == 16);

  static constexpr int kSlotBits = 24;
  static constexpr std::uint32_t kMaxSlots = 1u << kSlotBits;
  static constexpr std::uint64_t kSlotMask = kMaxSlots - 1;
  static constexpr std::uint64_t kMaxOrder =
      (std::uint64_t{1} << (64 - kSlotBits)) - 1;  // ~1.1e12 lifetime events
  static constexpr std::uint32_t kNilSlot = 0xFFFF'FFFFu;
  static constexpr int kPageBits = 9;
  static constexpr std::uint32_t kPageSize = 1u << kPageBits;
  static constexpr int kMaxShards = 256;
  /// Compaction floor: heaps smaller than this are never compacted, so the
  /// counters of modest runs (every single page load) are bit-identical to
  /// the pre-compaction engine.
  static constexpr std::size_t kCompactMinNodes = 1024;

  struct Slot {
    alignas(alignof(std::max_align_t))
        unsigned char inline_buf[kInlineActionBytes];
    const ActionOps* ops = nullptr;
    void* ext = nullptr;          ///< external object when ops->size != 0
    std::uint64_t order = 0;      ///< occupant's order stamp; 0 = not pending
    std::uint32_t next_free = kNilSlot;
    std::uint16_t shard = 0;
  };
  struct Page {
    Slot slots[kPageSize];
  };
  struct Shard {
    std::vector<Node> heap;
    std::size_t dead = 0;  ///< tombstone nodes currently buried in `heap`
  };

  static std::uint32_t slot_of(std::uint64_t key) {
    return static_cast<std::uint32_t>(key & kSlotMask);
  }
  static std::uint64_t order_of(std::uint64_t key) { return key >> kSlotBits; }

  static bool node_less(const Node& a, const Node& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.key < b.key;  // key order == order-stamp order (stamps unique)
  }

  static void sift_up(std::vector<Node>& heap, std::size_t hole, Node node) {
    while (hole > 0) {
      const std::size_t parent = (hole - 1) / 4;
      if (!node_less(node, heap[parent])) break;
      heap[hole] = heap[parent];
      hole = parent;
    }
    heap[hole] = node;
  }

  static void sift_down(std::vector<Node>& heap, std::size_t hole, Node node) {
    const std::size_t n = heap.size();
    while (true) {
      const std::size_t first = hole * 4 + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = first + 4 < n ? first + 4 : n;
      for (std::size_t child = first + 1; child < end; ++child) {
        if (node_less(heap[child], heap[best])) best = child;
      }
      if (!node_less(heap[best], node)) break;
      heap[hole] = heap[best];
      hole = best;
    }
    heap[hole] = node;
  }

  static void pop_root(std::vector<Node>& heap) {
    const Node last = heap.back();
    heap.pop_back();
    if (!heap.empty()) sift_down(heap, 0, last);
  }

  Slot& slot_at(std::uint32_t idx) {
    return pages_[idx >> kPageBits]->slots[idx & (kPageSize - 1)];
  }
  const Slot& slot_at(std::uint32_t idx) const {
    return pages_[idx >> kPageBits]->slots[idx & (kPageSize - 1)];
  }

  std::uint32_t acquire_slot() {
    if (free_head_ != kNilSlot) {
      const std::uint32_t idx = free_head_;
      free_head_ = slot_at(idx).next_free;
      return idx;
    }
    if (slot_count_ >= kMaxSlots) throw_slot_limit();
    if ((slot_count_ >> kPageBits) == pages_.size()) {
      pages_.push_back(std::make_unique<Page>());
    }
    return slot_count_++;
  }

  /// Destroys the slot's callable, returns any external buffer to the
  /// overflow pool, and parks the slot on the free list.
  void release_slot(std::uint32_t idx) {
    Slot& slot = slot_at(idx);
    void* obj = slot.ops->size ? slot.ext : slot.inline_buf;
    slot.ops->destroy(obj);
    if (slot.ops->size) overflow_.deallocate(slot.ext, slot.ops->size);
    slot.order = 0;
    slot.next_free = free_head_;
    free_head_ = idx;
  }

  /// Index of the shard whose head fires next.  Requires total_nodes_ > 0.
  int min_shard() const {
    if (shards_.size() == 1) return 0;
    int best = -1;
    Node best_node{0, 0};
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const auto& heap = shards_[s].heap;
      if (heap.empty()) continue;
      if (best < 0 || node_less(heap.front(), best_node)) {
        best = static_cast<int>(s);
        best_node = heap.front();
      }
    }
    return best;
  }

  /// Discards the tombstone at the top of `shard`'s heap.
  void drop_tombstone(Shard& shard) {
    pop_root(shard.heap);
    --total_nodes_;
    ++tombstones_popped_;
    --shard.dead;
  }

  void init_shards(int shards);
  void compact_shard(Shard& shard);

  [[noreturn]] void throw_budget_exhausted() const;
  [[noreturn]] static void throw_past_schedule(Seconds at, Seconds now);
  [[noreturn]] static void throw_negative_delay(Seconds delay, Seconds now);
  [[noreturn]] static void throw_empty_action();
  [[noreturn]] static void throw_slot_limit();
  [[noreturn]] static void throw_order_overflow();

  /// Restores engine state after an event fires, on both the normal and the
  /// exceptional path: the fired slot is recycled and the inherited
  /// scheduling shard is popped.
  struct FireCleanup {
    Simulator* sim;
    std::uint32_t slot;
    int prev_shard;
    ~FireCleanup() {
      sim->release_slot(slot);
      sim->schedule_shard_ = prev_shard;
    }
  };

  Seconds now_ = 0;
  std::uint64_t next_order_ = 1;
  std::uint64_t event_budget_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t fired_count_ = 0;
  std::uint64_t cancelled_count_ = 0;
  std::uint64_t tombstones_popped_ = 0;
  std::size_t peak_heap_size_ = 0;
  std::size_t live_ = 0;         ///< pending (scheduled, not cancelled/fired)
  std::size_t total_nodes_ = 0;  ///< heap nodes across shards, incl. tombstones
  int schedule_shard_ = 0;
  std::vector<Shard> shards_;
  std::uint32_t slot_count_ = 0;
  std::uint32_t free_head_ = kNilSlot;
  std::vector<std::unique_ptr<Page>> pages_;
  OverflowPool overflow_;
};

template <typename F>
EventId Simulator::schedule_at(Seconds at, F&& action) {
  if (at < now_) throw_past_schedule(at, now_);
  using Fn = std::decay_t<F>;
  static_assert(alignof(Fn) <= alignof(std::max_align_t),
                "Simulator actions with extended alignment are unsupported");
  if constexpr (requires(const Fn& f) { static_cast<bool>(f); }) {
    if (!static_cast<bool>(action)) throw_empty_action();
  }
  if (next_order_ > kMaxOrder) throw_order_overflow();

  const std::uint32_t slot_idx = acquire_slot();
  Slot& slot = slot_at(slot_idx);
  constexpr bool kInline = sizeof(Fn) <= kInlineActionBytes;
  void* obj;
  if constexpr (kInline) {
    obj = slot.inline_buf;
  } else {
    obj = overflow_.allocate(sizeof(Fn));
    slot.ext = obj;
  }
  try {
    ::new (obj) Fn(std::forward<F>(action));
  } catch (...) {
    if constexpr (!kInline) overflow_.deallocate(obj, sizeof(Fn));
    slot.next_free = free_head_;  // the slot never became pending
    free_head_ = slot_idx;
    throw;
  }
  slot.ops = &detail::kActionOps<Fn, kInline>;

  const std::uint64_t order = next_order_++;
  slot.order = order;
  slot.shard = static_cast<std::uint16_t>(schedule_shard_);
  ++live_;
  const Node node{at, (order << kSlotBits) | slot_idx};
  auto& heap = shards_[static_cast<std::size_t>(schedule_shard_)].heap;
  heap.push_back(node);
  sift_up(heap, heap.size() - 1, node);
  if (++total_nodes_ > peak_heap_size_) peak_heap_size_ = total_nodes_;
  return EventId(node.key);
}

inline bool Simulator::cancel(EventId id) {
  if (id.handle_ == 0) return false;
  const std::uint32_t slot_idx = slot_of(id.handle_);
  if (slot_idx >= slot_count_) return false;
  Slot& slot = slot_at(slot_idx);
  if (slot.order != order_of(id.handle_)) return false;
  Shard& shard = shards_[slot.shard];
  release_slot(slot_idx);  // the heap node is now a tombstone
  --live_;
  ++cancelled_count_;
  ++shard.dead;
  if (shard.heap.size() >= kCompactMinNodes &&
      shard.dead * 2 > shard.heap.size()) {
    compact_shard(shard);
  }
  return true;
}

inline bool Simulator::step() {
  while (total_nodes_ > 0) {
    if (fired_count_ >= event_budget_) throw_budget_exhausted();
    Shard& shard = shards_[static_cast<std::size_t>(min_shard())];
    const Node top = shard.heap.front();
    const std::uint32_t slot_idx = slot_of(top.key);
    Slot& slot = slot_at(slot_idx);
    if (slot.order != order_of(top.key)) {  // tombstone
      drop_tombstone(shard);
      continue;
    }
    pop_root(shard.heap);
    --total_nodes_;
    slot.order = 0;  // cancel()/pending() during our own execution see fired
    --live_;
    ++fired_count_;
    now_ = top.at;
    FireCleanup cleanup{this, slot_idx, schedule_shard_};
    schedule_shard_ = static_cast<int>(slot.shard);
    void* obj = slot.ops->size ? slot.ext : slot.inline_buf;
    slot.ops->invoke(obj);
    return true;
  }
  return false;
}

}  // namespace eab::sim
