// Discrete-event simulation core.
//
// Everything in the reproduction — radio state machine timers, HTTP
// transfers, browser CPU tasks, user think times — runs as events on one
// Simulator.  Events at equal timestamps fire in scheduling order, which
// keeps runs deterministic; events can be cancelled (RRC inactivity timers
// are rescheduled constantly).
//
// Hot path: the action lives inside the heap entry itself, so scheduling and
// firing an event never touches a hash table.  Cancellation flips a byte in
// a per-sequence state table; the heap entry becomes a tombstone that is
// discarded when it surfaces.  The cancelled action's captured state is
// therefore kept alive until its timestamp passes, but it is never invoked.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace eab::sim {

/// Thrown when the simulator fires more events than its configured budget
/// allows — a liveness tripwire turning a would-be infinite event loop into
/// a diagnosable failure.  `what()` includes a dump of the pending heap.
class BudgetExhaustedError : public std::runtime_error {
 public:
  explicit BudgetExhaustedError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Outcome of a budgeted run (Simulator::run(max_events)).
enum class RunStatus {
  kDrained,          ///< the queue emptied normally
  kBudgetExhausted,  ///< max_events fired with work still pending
};

struct RunResult {
  RunStatus status = RunStatus::kDrained;
  std::size_t events = 0;  ///< events fired by this call

  bool drained() const { return status == RunStatus::kDrained; }
};

/// Handle to a scheduled event; obtained from Simulator::schedule_*.
class EventId {
 public:
  EventId() = default;

  bool valid() const { return seq_ != 0; }

 private:
  friend class Simulator;
  explicit EventId(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

/// A single-threaded discrete-event simulator.
class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current simulated time.
  Seconds now() const { return now_; }

  /// Schedules `action` to run at absolute time `at` (>= now()).
  EventId schedule_at(Seconds at, Action action);

  /// Schedules `action` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(Seconds delay, Action action);

  /// Cancels a pending event. Cancelling an already-fired, already-cancelled
  /// or default-constructed id is a harmless no-op; returns whether a pending
  /// event was actually cancelled.
  bool cancel(EventId id);

  /// True if the event has been scheduled, not cancelled, and not yet fired.
  bool pending(EventId id) const;

  /// Runs events until the queue is empty. Returns the number of events run.
  /// Throws BudgetExhaustedError when the lifetime event budget (see
  /// set_event_budget) runs out first.
  std::size_t run();

  /// Runs at most `max_events` events; reports whether the queue drained or
  /// the cap was hit with work still pending (never throws for the cap —
  /// callers inspect the status and pending_dump()).  The lifetime budget
  /// still applies underneath.
  RunResult run(std::size_t max_events);

  /// Runs events with timestamp <= until, then advances the clock to exactly
  /// `until` (even if the queue still holds later events).
  std::size_t run_until(Seconds until);

  /// Runs exactly one event if available; returns whether one ran.  Throws
  /// BudgetExhaustedError if firing it would exceed the lifetime budget.
  bool step();

  /// Caps the total number of events this simulator may fire over its
  /// lifetime.  Exceeding the cap makes step()/run()/run_until() throw
  /// BudgetExhaustedError carrying pending_dump() — a wedged simulation
  /// (events endlessly rescheduling each other) surfaces as a diagnosable
  /// error instead of a hang.  Default: effectively unlimited.
  void set_event_budget(std::uint64_t max_total_fired) {
    event_budget_ = max_total_fired;
  }
  std::uint64_t event_budget() const { return event_budget_; }

  /// Human-readable snapshot of the pending heap (earliest events first, up
  /// to `max_entries`), for liveness diagnostics.
  std::string pending_dump(std::size_t max_entries = 12) const;

  /// Number of events currently pending (excludes cancelled ones).
  std::size_t pending_count() const { return live_; }

  /// Total number of events that have fired over the simulator's lifetime.
  std::uint64_t fired_count() const { return fired_count_; }

  /// Total number of events cancelled before firing.
  std::uint64_t cancelled_count() const { return cancelled_count_; }

  /// Tombstoned heap entries discarded when they surfaced at the top.
  std::uint64_t tombstones_popped() const { return tombstones_popped_; }

  /// Largest heap size observed (live entries plus unsurfaced tombstones).
  std::size_t peak_heap_size() const { return peak_heap_size_; }

 private:
  struct Entry {
    Seconds at;
    std::uint64_t seq;
    Action action;
  };
  // "Less" for std::push_heap/pop_heap: the max element under this ordering
  // is the entry that fires earliest, so heap_.front() is the next event.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  enum class EventState : std::uint8_t { kPending, kFired, kCancelled };

  /// Pops the heap top; returns the entry by move.
  Entry pop_top();

  Seconds now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t event_budget_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t fired_count_ = 0;
  std::uint64_t cancelled_count_ = 0;
  std::uint64_t tombstones_popped_ = 0;
  std::size_t peak_heap_size_ = 0;
  std::size_t live_ = 0;              ///< pending (scheduled, not cancelled/fired)
  std::vector<Entry> heap_;           ///< binary heap; tombstones stay until popped
  std::vector<EventState> state_;     ///< lifecycle per seq; index = seq - 1
};

}  // namespace eab::sim
