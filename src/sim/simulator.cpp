#include "sim/simulator.hpp"

namespace eab::sim {

EventId Simulator::schedule_at(Seconds at, Action action) {
  if (at < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  if (!action) {
    throw std::invalid_argument("Simulator::schedule_at: empty action");
  }
  const std::uint64_t seq = next_seq_++;
  queue_.push(Entry{at, seq});
  actions_.emplace(seq, std::move(action));
  return EventId(seq);
}

EventId Simulator::schedule_in(Seconds delay, Action action) {
  if (delay < 0) {
    throw std::invalid_argument("Simulator::schedule_in: negative delay");
  }
  return schedule_at(now_ + delay, std::move(action));
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  return actions_.erase(id.seq_) > 0;
}

bool Simulator::pending(EventId id) const {
  return id.valid() && actions_.contains(id.seq_);
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    queue_.pop();
    auto it = actions_.find(top.seq);
    if (it == actions_.end()) continue;  // cancelled
    Action action = std::move(it->second);
    actions_.erase(it);
    now_ = top.at;
    action();
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Simulator::run_until(Seconds until) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    if (!actions_.contains(top.seq)) {
      queue_.pop();
      continue;
    }
    if (top.at > until) break;
    if (step()) ++n;
  }
  if (until > now_) now_ = until;
  return n;
}

}  // namespace eab::sim
