#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdio>

namespace eab::sim {

EventId Simulator::schedule_at(Seconds at, Action action) {
  if (at < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  if (!action) {
    throw std::invalid_argument("Simulator::schedule_at: empty action");
  }
  const std::uint64_t seq = next_seq_++;
  state_.push_back(EventState::kPending);
  ++live_;
  heap_.push_back(Entry{at, seq, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  peak_heap_size_ = std::max(peak_heap_size_, heap_.size());
  return EventId(seq);
}

EventId Simulator::schedule_in(Seconds delay, Action action) {
  if (delay < 0) {
    throw std::invalid_argument("Simulator::schedule_in: negative delay");
  }
  return schedule_at(now_ + delay, std::move(action));
}

bool Simulator::cancel(EventId id) {
  if (!id.valid() || id.seq_ >= next_seq_) return false;
  EventState& state = state_[id.seq_ - 1];
  if (state != EventState::kPending) return false;
  state = EventState::kCancelled;  // heap entry becomes a tombstone
  --live_;
  ++cancelled_count_;
  return true;
}

bool Simulator::pending(EventId id) const {
  return id.valid() && id.seq_ < next_seq_ &&
         state_[id.seq_ - 1] == EventState::kPending;
}

Simulator::Entry Simulator::pop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  return entry;
}

bool Simulator::step() {
  while (!heap_.empty()) {
    if (fired_count_ >= event_budget_) {
      throw BudgetExhaustedError(
          "Simulator: event budget exhausted after " +
          std::to_string(fired_count_) + " events; " + pending_dump());
    }
    Entry entry = pop_top();
    if (state_[entry.seq - 1] == EventState::kCancelled) {  // tombstone
      ++tombstones_popped_;
      continue;
    }
    state_[entry.seq - 1] = EventState::kFired;
    --live_;
    ++fired_count_;
    now_ = entry.at;
    entry.action();
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

RunResult Simulator::run(std::size_t max_events) {
  RunResult result;
  while (result.events < max_events) {
    if (!step()) return result;  // kDrained
    ++result.events;
  }
  if (live_ > 0) result.status = RunStatus::kBudgetExhausted;
  return result;
}

std::string Simulator::pending_dump(std::size_t max_entries) const {
  // The heap is not sorted; collect the live entries and order them.
  std::vector<std::pair<Seconds, std::uint64_t>> live;
  live.reserve(live_);
  for (const Entry& entry : heap_) {
    if (state_[entry.seq - 1] == EventState::kPending) {
      live.emplace_back(entry.at, entry.seq);
    }
  }
  std::sort(live.begin(), live.end());
  char buf[96];
  std::snprintf(buf, sizeof buf, "pending heap: %zu live events at t=%.6f",
                live.size(), now_);
  std::string out = buf;
  const std::size_t shown = std::min(max_entries, live.size());
  for (std::size_t i = 0; i < shown; ++i) {
    std::snprintf(buf, sizeof buf, "%s[t=%.6f seq=%llu]", i == 0 ? ": " : " ",
                  live[i].first,
                  static_cast<unsigned long long>(live[i].second));
    out += buf;
  }
  if (shown < live.size()) {
    std::snprintf(buf, sizeof buf, " ... and %zu more", live.size() - shown);
    out += buf;
  }
  return out;
}

std::size_t Simulator::run_until(Seconds until) {
  std::size_t n = 0;
  while (!heap_.empty()) {
    const Entry& top = heap_.front();
    if (state_[top.seq - 1] == EventState::kCancelled) {
      pop_top();  // drop the tombstone
      ++tombstones_popped_;
      continue;
    }
    if (top.at > until) break;
    if (step()) ++n;
  }
  if (until > now_) now_ = until;
  return n;
}

}  // namespace eab::sim
