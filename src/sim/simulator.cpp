#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdio>

namespace eab::sim {

Simulator::~Simulator() {
  // Destroy the callables of still-pending events; freed/fired slots hold no
  // live object (order == 0).
  for (std::uint32_t idx = 0; idx < slot_count_; ++idx) {
    Slot& slot = slot_at(idx);
    if (slot.order == 0) continue;
    void* obj = slot.ops->size ? slot.ext : slot.inline_buf;
    slot.ops->destroy(obj);
    if (slot.ops->size) overflow_.deallocate(slot.ext, slot.ops->size);
  }
}

void Simulator::init_shards(int shards) {
  if (shards < 1 || shards > kMaxShards) {
    throw std::invalid_argument(
        "Simulator: shard count must be in [1, " +
        std::to_string(kMaxShards) + "] (got " + std::to_string(shards) + ")");
  }
  shards_.assign(static_cast<std::size_t>(shards), Shard{});
  schedule_shard_ = 0;
}

void Simulator::set_shard_count(int shards) {
  if (next_order_ != 1) {
    throw std::logic_error(
        "Simulator::set_shard_count: must be called before any event is "
        "scheduled (events seen: " +
        std::to_string(next_order_ - 1) + ")");
  }
  init_shards(shards);
}

void Simulator::set_schedule_shard(int shard) {
  if (shard < 0 || shard >= static_cast<int>(shards_.size())) {
    throw std::out_of_range("Simulator::set_schedule_shard: shard " +
                            std::to_string(shard) + " not in [0, " +
                            std::to_string(shards_.size()) + ")");
  }
  schedule_shard_ = shard;
}

void Simulator::compact_shard(Shard& shard) {
  // Keep the live nodes (slot occupant still carries the node's order stamp),
  // drop the tombstones, and restore the heap invariant with a Floyd
  // build-heap pass.  Node keys are unique, so any valid heap arrangement of
  // the same live set pops in the same (time, order) sequence — compaction
  // can never change the fire order.
  auto& heap = shard.heap;
  std::size_t kept = 0;
  for (const Node& node : heap) {
    if (slot_at(slot_of(node.key)).order == order_of(node.key)) {
      heap[kept++] = node;
    }
  }
  const std::size_t removed = heap.size() - kept;
  heap.resize(kept);
  tombstones_popped_ += removed;
  total_nodes_ -= removed;
  shard.dead -= removed;
  if (kept > 1) {
    for (std::size_t hole = (kept - 2) / 4 + 1; hole-- > 0;) {
      sift_down(heap, hole, heap[hole]);
    }
  }
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

RunResult Simulator::run(std::size_t max_events) {
  RunResult result;
  while (result.events < max_events) {
    if (!step()) return result;  // kDrained
    ++result.events;
  }
  if (live_ > 0) result.status = RunStatus::kBudgetExhausted;
  return result;
}

std::size_t Simulator::run_until(Seconds until) {
  std::size_t n = 0;
  while (total_nodes_ > 0) {
    Shard& shard = shards_[static_cast<std::size_t>(min_shard())];
    const Node top = shard.heap.front();
    if (slot_at(slot_of(top.key)).order != order_of(top.key)) {
      drop_tombstone(shard);
      continue;
    }
    if (top.at > until) break;
    if (step()) ++n;
  }
  if (until > now_) now_ = until;
  return n;
}

std::string Simulator::pending_dump(std::size_t max_entries) const {
  // Heaps are not sorted; collect the live entries across shards and order
  // them by firing order.
  std::vector<std::pair<Seconds, std::uint64_t>> live;  // (at, order stamp)
  live.reserve(live_);
  for (const Shard& shard : shards_) {
    for (const Node& node : shard.heap) {
      if (slot_at(slot_of(node.key)).order == order_of(node.key)) {
        live.emplace_back(node.at, order_of(node.key));
      }
    }
  }
  std::sort(live.begin(), live.end());
  char buf[96];
  std::snprintf(buf, sizeof buf, "pending heap: %zu live events at t=%.6f",
                live.size(), now_);
  std::string out = buf;
  const std::size_t shown = std::min(max_entries, live.size());
  for (std::size_t i = 0; i < shown; ++i) {
    std::snprintf(buf, sizeof buf, "%s[t=%.6f seq=%llu]", i == 0 ? ": " : " ",
                  live[i].first,
                  static_cast<unsigned long long>(live[i].second));
    out += buf;
  }
  if (shown < live.size()) {
    std::snprintf(buf, sizeof buf, " ... and %zu more", live.size() - shown);
    out += buf;
  }
  return out;
}

void Simulator::throw_budget_exhausted() const {
  throw BudgetExhaustedError("Simulator: event budget exhausted after " +
                             std::to_string(fired_count_) + " events; " +
                             pending_dump());
}

void Simulator::throw_past_schedule(Seconds at, Seconds now) {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "Simulator::schedule_at: time in the past (requested t=%.9g "
                "< now()=%.9g)",
                at, now);
  throw std::invalid_argument(buf);
}

void Simulator::throw_negative_delay(Seconds delay, Seconds now) {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "Simulator::schedule_in: negative delay (delay=%.9g at "
                "now()=%.9g)",
                delay, now);
  throw std::invalid_argument(buf);
}

void Simulator::throw_empty_action() {
  throw std::invalid_argument("Simulator::schedule_at: empty action");
}

void Simulator::throw_slot_limit() {
  throw std::length_error(
      "Simulator: event slot pool exhausted (" + std::to_string(kMaxSlots) +
      " events pending at once)");
}

void Simulator::throw_order_overflow() {
  throw std::overflow_error(
      "Simulator: event order stamps exhausted (2^40 events scheduled over "
      "this simulator's lifetime)");
}

}  // namespace eab::sim
