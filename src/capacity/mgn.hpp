// M/G/N loss-system capacity model (paper Section 5.4).
//
// The backbone cell owns N pairs of dedicated transmission channels and no
// queue: a data session that arrives when all N pairs are busy is dropped.
// Each of `users` smartphones generates sessions with exponential think
// times (Poisson arrivals, mean 25 s); a session holds one channel pair for
// a General service time — the data-transmission time of opening a webpage,
// sampled from an empirical distribution measured on our own browser
// pipelines.  Shorter transmission times (the energy-aware pipeline) free
// channels sooner, so the same cell carries more users at equal drop
// probability — Fig 11.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace eab::capacity {

/// Empirical service-time sampler.
class ServiceTimeDistribution {
 public:
  /// Takes the measured transmission times; must be non-empty, all > 0.
  explicit ServiceTimeDistribution(std::vector<Seconds> samples);

  /// Draws one service time (uniform over samples with +-10 % jitter, so the
  /// simulated distribution is a smoothed version of the measurements).
  Seconds sample(Rng& rng) const;

  Seconds mean() const { return mean_; }

 private:
  std::vector<Seconds> samples_;
  Seconds mean_ = 0;
};

/// Simulation parameters (defaults follow the paper).
struct CapacityConfig {
  int channels = 200;              ///< N dedicated channel pairs
  int users = 400;
  Seconds mean_interarrival = 25;  ///< per-user Poisson think time
  Seconds horizon = 4.0 * 3600.0;  ///< 4 hours

  // Service-time sampling controls.  The empirical distribution is measured
  // on the full stack by cell::measure_service_times (capacity itself never
  // runs loads — these knobs live here so one config names the whole
  // experiment): base seed for the per-sample load seeds, and loads per
  // page spec.  The defaults reproduce the historical single-sample,
  // seed-1 sweep, and the checked-in reference quantiles in
  // tests/cell_test.cpp regenerate bit-identically from them.
  std::uint64_t service_sample_seed = 1;
  int service_samples_per_spec = 1;
};

/// Results of one capacity run.
struct CapacityResult {
  std::uint64_t offered_sessions = 0;
  std::uint64_t dropped_sessions = 0;
  double drop_probability = 0;
  double mean_busy_channels = 0;  ///< time-averaged occupancy
};

/// Runs the loss system.
CapacityResult simulate_capacity(const CapacityConfig& config,
                                 const ServiceTimeDistribution& service,
                                 std::uint64_t seed);

/// Drop probability with a replication-based 95 % confidence interval:
/// `replications` independent runs (seeds derived from `seed`), normal
/// approximation over the per-run estimates.
struct CapacityEstimate {
  double mean_drop = 0;
  double ci_halfwidth = 0;  ///< 95 % CI is mean_drop +- ci_halfwidth
  int replications = 0;
};
CapacityEstimate estimate_capacity(const CapacityConfig& config,
                                   const ServiceTimeDistribution& service,
                                   std::uint64_t seed, int replications = 8);

/// Closed-form Erlang-B blocking probability (validation: with exponential
/// service the M/G/N and M/M/N loss systems agree — insensitivity property).
double erlang_b(double offered_erlangs, int channels);

}  // namespace eab::capacity
