#include "capacity/mgn.hpp"

#include <cmath>
#include <queue>
#include <stdexcept>

namespace eab::capacity {

ServiceTimeDistribution::ServiceTimeDistribution(std::vector<Seconds> samples)
    : samples_(std::move(samples)) {
  if (samples_.empty()) {
    throw std::invalid_argument("ServiceTimeDistribution: no samples");
  }
  double sum = 0;
  for (Seconds s : samples_) {
    if (s <= 0) {
      throw std::invalid_argument("ServiceTimeDistribution: non-positive time");
    }
    sum += s;
  }
  mean_ = sum / static_cast<double>(samples_.size());
}

Seconds ServiceTimeDistribution::sample(Rng& rng) const {
  const Seconds base = samples_[rng.uniform_index(samples_.size())];
  return base * rng.uniform(0.9, 1.1);
}

CapacityResult simulate_capacity(const CapacityConfig& config,
                                 const ServiceTimeDistribution& service,
                                 std::uint64_t seed) {
  if (config.channels < 1 || config.users < 1) {
    throw std::invalid_argument("simulate_capacity: bad config");
  }
  Rng rng(seed);

  // Event calendar: per-user next arrival plus service completions. A small
  // dedicated event loop keeps this hot path allocation-free.
  struct Event {
    Seconds at;
    bool is_completion;  // false = arrival; carries the user id
    int user;
    bool operator>(const Event& other) const { return at > other.at; }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> calendar;

  for (int user = 0; user < config.users; ++user) {
    calendar.push(Event{rng.exponential(config.mean_interarrival), false, user});
  }

  CapacityResult result;
  int busy = 0;
  Seconds previous_time = 0;
  double busy_integral = 0;

  while (!calendar.empty()) {
    const Event event = calendar.top();
    if (event.at > config.horizon) break;
    calendar.pop();
    busy_integral += busy * (event.at - previous_time);
    previous_time = event.at;

    if (event.is_completion) {
      --busy;
      continue;
    }
    // Arrival: claim a channel pair or drop.
    ++result.offered_sessions;
    if (busy >= config.channels) {
      ++result.dropped_sessions;
    } else {
      ++busy;
      calendar.push(Event{event.at + service.sample(rng), true, event.user});
    }
    // Next think-time arrival for this user.
    calendar.push(Event{event.at + rng.exponential(config.mean_interarrival),
                        false, event.user});
  }

  result.drop_probability =
      result.offered_sessions == 0
          ? 0.0
          : static_cast<double>(result.dropped_sessions) /
                static_cast<double>(result.offered_sessions);
  result.mean_busy_channels =
      previous_time > 0 ? busy_integral / previous_time : 0.0;
  return result;
}

CapacityEstimate estimate_capacity(const CapacityConfig& config,
                                   const ServiceTimeDistribution& service,
                                   std::uint64_t seed, int replications) {
  if (replications < 2) {
    throw std::invalid_argument("estimate_capacity: need >= 2 replications");
  }
  std::vector<double> drops;
  drops.reserve(static_cast<std::size_t>(replications));
  for (int r = 0; r < replications; ++r) {
    drops.push_back(
        simulate_capacity(config, service, seed + 0x9E37ULL * (r + 1))
            .drop_probability);
  }
  double sum = 0;
  for (double d : drops) sum += d;
  const double mean = sum / replications;
  double var = 0;
  for (double d : drops) var += (d - mean) * (d - mean);
  var /= (replications - 1);

  CapacityEstimate estimate;
  estimate.mean_drop = mean;
  // t_{0.975, n-1} ~ 2.36 for n=8; 1.96 asymptotically. Use a small lookup.
  const double t = replications >= 30 ? 1.96 : 2.36;
  estimate.ci_halfwidth = t * std::sqrt(var / replications);
  estimate.replications = replications;
  return estimate;
}

double erlang_b(double offered_erlangs, int channels) {
  if (channels < 0) throw std::invalid_argument("erlang_b: negative channels");
  // Stable recurrence: B(0) = 1; B(n) = a*B(n-1) / (n + a*B(n-1)).
  double blocking = 1.0;
  for (int n = 1; n <= channels; ++n) {
    blocking = offered_erlangs * blocking /
               (static_cast<double>(n) + offered_erlangs * blocking);
  }
  return blocking;
}

}  // namespace eab::capacity
