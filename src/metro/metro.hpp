// Metro-scale multi-cell simulation with mobility and handover.
//
// M cells (a grid_w x grid_h grid) run in ONE sim::Simulator — each cell is
// a cell::CellSim over the UEs currently attached to it, and each cell owns
// a contiguous range of event-queue shards (cell c owns shards
// [c*S, (c+1)*S) where S = cell.sim_shards), so the engine's
// shard-count-invariant merged fire order extends the serial ≡ sharded ≡
// supervised byte-identity contract to the whole metro.
//
// Mobility: each UE follows a seed-derived waypoint walk over the grid —
// exponential dwell (mean_dwell) in the current cell, then a uniform step
// to one of its 4-neighbors.  What a move costs depends on what the radio
// is doing (DESIGN.md "Metro layer"):
//
//   - IDLE/FACH (no DCH grant): cell reselection.  Cheap — the UE re-camps
//     and re-registers with the target scheduler; no radio exchange.  A UE
//     holding only an admission *reservation* re-reserves in the target if
//     a grant is free, else the session is dropped mid-load.
//   - stable DCH with a grant (HandoverPolicy::kHard): hard handover.  The
//     target must admit the grant (admission-or-drop); on admit the RRC
//     context moves in one signalling exchange (handover_delay at
//     handover_power, Table-5 calibrated), during which the UE's flows are
//     paused and then re-routed through the target cell's scheduler.  On
//     drop the load is aborted and the connection released.
//   - stable DCH under HandoverPolicy::kInstant: the idealized baseline —
//     the grant migrates with no radio exchange and no flow interruption
//     (admission-or-drop still applies).  bench_metro compares the two
//     policies to price handover signalling.
//   - DCH but the radio is mid-signalling, fading or releasing: the move
//     degenerates to a reselection; the RRC machine reconciles with the
//     target's grant pool through its normal state-change hooks when the
//     signalling settles (a re-established context force-acquires, a
//     completed release no-ops).
//
// Handover is structurally distinct from radio-link failure: a handover is
// a *commanded* transfer while both cells are reachable (bounded cost,
// context preserved), RLF is an uncommanded loss (detection window,
// OUT_OF_SERVICE camp, re-establishment ladder).  Whole-cell outages
// interact with mobility naturally: moving out of a dark cell restores
// coverage, moving into one loses it.
//
// Load imbalance: home cells are drawn from a hotspot-weighted largest-
// remainder apportionment (hotspot = 0 is uniform), so cells start
// unevenly loaded and mobility churns the imbalance.
//
// Determinism: per-cell seeds are cell_seed + c; UE seeds derive from
// their home cell exactly as in run_cell; mobility draws come from a
// dedicated per-UE sub-stream.  A 1-cell, zero-mobility metro is
// byte-identical to cell::run_cell on the same config (check.sh gates
// this), and metro sweeps are bit-identical across serial, sharded and
// supervised execution.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "cell/cell.hpp"
#include "core/sweep.hpp"
#include "obs/metrics.hpp"
#include "util/units.hpp"

namespace eab::cell {
struct CellUe;
class CellSim;
}  // namespace eab::cell

namespace eab::metro {

/// What a move costs for a UE holding a DCH grant.
enum class HandoverPolicy {
  /// Hard handover: one RRC signalling exchange (handover_delay at
  /// handover_power), flows paused across it.  The realistic default.
  kHard,
  /// Idealized baseline: the grant migrates instantly with no radio
  /// exchange (admission-or-drop still applies).  Prices the signalling.
  kInstant,
};

const char* to_string(HandoverPolicy policy);

/// One metro: a cell grid, a mobility process, a handover policy.
struct MetroConfig {
  /// Per-cell template.  `cell.users` is the MEAN number of UEs homed per
  /// cell (the hotspot distribution apportions users * grid_w * grid_h
  /// across cells); `cell.cell_seed` seeds cell c as cell_seed + c, so a
  /// 1-cell metro reproduces run_cell exactly.  `cell.sim_shards` is the
  /// per-cell shard count (the metro uses grid_w * grid_h * sim_shards
  /// simulator shards, which must stay within the engine's 256).
  cell::CellConfig cell;
  int grid_w = 1;
  int grid_h = 1;
  /// Mean exponential dwell time before a UE steps to a neighbor cell.
  /// 0 (the default) disables mobility entirely: no move events are
  /// scheduled and the run is bit-identical to independent cells.
  Seconds mean_dwell = 0;
  /// Home-cell load imbalance: cell weights are 1 + hotspot * u_c with u_c
  /// drawn uniformly per cell from the metro seed.  0 = uniform homes.
  double hotspot = 0;
  HandoverPolicy policy = HandoverPolicy::kHard;
};

/// Per-cell mobility accounting.
struct MetroCellStats {
  std::uint64_t reselects_in = 0;   ///< grant-less moves into this cell
  std::uint64_t reselects_out = 0;
  std::uint64_t handovers_in = 0;   ///< grant-carrying moves admitted here
  std::uint64_t handovers_out = 0;
  std::uint64_t handover_drops = 0; ///< moves this cell refused (no grant)
};

/// Results of one metro run.
struct MetroResult {
  int grid_w = 0;
  int grid_h = 0;
  int total_users = 0;
  std::vector<int> home_users;          ///< per cell, apportioned
  std::vector<cell::CellResult> cells;  ///< per cell, home-UE aggregation
  std::vector<MetroCellStats> mobility; ///< per cell
  std::uint64_t reselects = 0;
  std::uint64_t handovers = 0;
  std::uint64_t handover_drops = 0;
  // Session aggregates over all cells.
  std::uint64_t offered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t completed = 0;
  std::uint64_t aborted = 0;
  Seconds end_time = 0;
  std::uint64_t sim_events = 0;
  obs::MetricsRegistry metrics;

  double drop_probability() const {
    return offered == 0 ? 0.0
                        : static_cast<double>(dropped) /
                              static_cast<double>(offered);
  }
};

/// Validates a MetroConfig (the per-cell template goes through
/// cell::validate_cell_config — one validation path whether a cell is
/// built standalone or as a metro member).  Throws std::invalid_argument.
void validate_metro_config(const MetroConfig& config);

/// Fluent builder mirroring core::ScenarioBuilder: all contradictory-knob
/// validation happens at build(), which returns a config run_metro accepts
/// as-is.
class MetroBuilder {
 public:
  MetroBuilder& grid(int w, int h) {
    config_.grid_w = w;
    config_.grid_h = h;
    return *this;
  }
  MetroBuilder& cell(cell::CellConfig cell_template) {
    config_.cell = std::move(cell_template);
    return *this;
  }
  MetroBuilder& mean_dwell(Seconds dwell) {
    config_.mean_dwell = dwell;
    return *this;
  }
  MetroBuilder& hotspot(double strength) {
    config_.hotspot = strength;
    return *this;
  }
  MetroBuilder& policy(HandoverPolicy policy) {
    config_.policy = policy;
    return *this;
  }
  /// Validates and returns the config; throws std::invalid_argument on
  /// contradictions (bad grid, shard overflow, bad dwell/hotspot, or a
  /// per-cell template run_cell would reject).
  MetroConfig build() const;

 private:
  MetroConfig config_;
};

/// What one move did (move_ue's return; the metro engine folds these into
/// its counters).
enum class MoveOutcome {
  kReselect,      ///< grant-less re-camp (or DCH degraded to one)
  kHandover,      ///< grant migrated; under kHard the exchange is running
  kHandoverDrop,  ///< target refused the incoming DCH context
  kReselectDrop,  ///< target refused the incoming reservation
};

/// Moves one UE from its serving cell to `dst`, applying the full policy
/// table in the file comment (reselection, hard handover,
/// admission-or-drop, graceful degradation).  This IS the metro engine's
/// move — exposed so boundary tests can force a move at an exact instant.
/// Requires ue.cell != nullptr and dst != *ue.cell.
MoveOutcome move_ue(cell::CellUe& ue, cell::CellSim& dst,
                    HandoverPolicy policy);

/// Runs one metro to completion.  Deterministic: a pure function of the
/// config.  Throws std::invalid_argument on a contradictory config.
MetroResult run_metro(const MetroConfig& config);

/// Bit-exact binary encoding for cross-process transfer (supervised sweep
/// shards and checkpoint journal records).  Traced results cannot cross
/// the process boundary (throws std::invalid_argument).
std::string serialize_metro_result(const MetroResult& result);
/// Inverse; throws std::runtime_error on malformed bytes.
MetroResult deserialize_metro_result(std::string_view bytes);

/// Per-cell-users sweep on the unified core::SweepDriver: shard i is
/// run_metro(base with cell.users = users_axis[i]), consumed in ascending
/// index order on every tier (merge-on-arrival, constant memory in the
/// axis length).  The supervised tier requires tracing off.  Returns the
/// supervision report (serial/pooled tiers return an all-ok report and
/// propagate shard exceptions instead).
core::SupervisorReport run_metro_sweep(
    const MetroConfig& base, const std::vector<int>& users_axis,
    const core::SweepExecution& exec,
    const std::function<void(std::size_t index, const MetroResult& result)>&
        consume);

/// Per-cell users supported at `target` drop probability, linearly
/// interpolated over ascending (users, drop) sweep points.
double users_at_drop_target(const std::vector<int>& users_axis,
                            const std::vector<double>& drops, double target);

}  // namespace eab::metro
