#include "metro/metro.hpp"

#include <algorithm>
#include <climits>
#include <cmath>
#include <cstddef>
#include <limits>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "cell/cell_sim.hpp"
#include "sim/simulator.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace eab::metro {

namespace {

// Seed sub-streams (cell-layer streams end at ...0004; see cell_sim.cpp).
// Mobility draws hang off each UE's own seed so adding mobility never
// perturbs the arrival/spec/fault streams; the hotspot weights hang off the
// metro seed because they are a per-cell, not per-UE, property.
constexpr std::uint64_t kMobilityStream = 0x00A1'55EE'0000'0005ULL;
constexpr std::uint64_t kHotspotStream = 0x00A1'55EE'0000'0006ULL;

/// Hotspot-weighted largest-remainder apportionment of
/// users * cells home slots across cells.  hotspot == 0 is exactly uniform
/// (every cell homes `users` UEs, no RNG consumed).
std::vector<int> apportion_homes(const MetroConfig& config) {
  const int cells = config.grid_w * config.grid_h;
  if (config.hotspot <= 0) {
    return std::vector<int>(static_cast<std::size_t>(cells),
                            config.cell.users);
  }
  const std::int64_t total =
      static_cast<std::int64_t>(config.cell.users) * cells;
  Rng rng(derive_seed(config.cell.cell_seed, kHotspotStream));
  std::vector<double> weights(static_cast<std::size_t>(cells));
  double weight_sum = 0;
  for (double& w : weights) {
    w = 1.0 + config.hotspot * rng.uniform();
    weight_sum += w;
  }
  std::vector<int> homes(weights.size());
  std::vector<double> fractions(weights.size());
  std::int64_t assigned = 0;
  for (std::size_t c = 0; c < weights.size(); ++c) {
    const double quota =
        static_cast<double>(total) * weights[c] / weight_sum;
    homes[c] = static_cast<int>(std::floor(quota));
    fractions[c] = quota - std::floor(quota);
    assigned += homes[c];
  }
  // Hand the leftover slots to the largest fractional parts, ties to the
  // lower cell index — a total order, so the apportionment is a pure
  // function of the config.
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (fractions[a] != fractions[b]) return fractions[a] > fractions[b];
    return a < b;
  });
  for (std::size_t k = 0; assigned < total; ++k, ++assigned) {
    ++homes[order[k]];
  }
  return homes;
}

/// The metro engine: owns the cells, the UEs and the mobility process.
class MetroSim {
 public:
  MetroSim(sim::Simulator& sim, const MetroConfig& config,
           cell::TickCoordinator* ticks)
      : config_(config),
        sim_(sim),
        cell_count_(config.grid_w * config.grid_h),
        home_users_(apportion_homes(config)),
        stats_(static_cast<std::size_t>(cell_count_)) {
    // Per-cell configs differ from the template only in seed and home
    // count; they must be at their final addresses before any CellSim
    // takes a reference, hence the two-pass construction.
    cell_configs_.reserve(static_cast<std::size_t>(cell_count_));
    for (int c = 0; c < cell_count_; ++c) {
      cell::CellConfig cc = config_.cell;
      cc.cell_seed =
          config_.cell.cell_seed + static_cast<std::uint64_t>(c);
      cc.users = home_users_[static_cast<std::size_t>(c)];
      cell_configs_.push_back(std::move(cc));
    }
    int total = 0;
    for (int users : home_users_) total += users;
    total_users_ = total;
    mobiles_.reserve(static_cast<std::size_t>(total));
    // Cell construction and UE registration interleave exactly as
    // run_cell's (construct, then make_ue per local index), so a 1-cell
    // metro replays run_cell's event-scheduling sequence verbatim.
    const int S = config_.cell.sim_shards;
    cells_.reserve(static_cast<std::size_t>(cell_count_));
    int next_id = 0;
    for (int c = 0; c < cell_count_; ++c) {
      const auto uc = static_cast<std::size_t>(c);
      cells_.push_back(std::make_unique<cell::CellSim>(
          sim_, cell_configs_[uc], c, c * S, ticks));
      for (int local = 0; local < home_users_[uc]; ++local) {
        sim_.set_schedule_shard(c * S + local % S);
        std::unique_ptr<cell::CellUe> ue = cells_[uc]->make_ue(
            next_id++, derive_seed(cell_configs_[uc].cell_seed,
                                   static_cast<std::uint64_t>(local)));
        const std::uint64_t mobility_seed =
            derive_seed(ue->seed, kMobilityStream);
        mobiles_.push_back(Mobile{std::move(ue), Rng(mobility_seed)});
      }
    }
  }

  MetroSim(const MetroSim&) = delete;
  MetroSim& operator=(const MetroSim&) = delete;

  int total_users() const { return total_users_; }

  /// Whole-cell outages, session arrivals, then the mobility process —
  /// the same per-phase order run_cell uses, extended cell-major.
  void schedule() {
    const int S = config_.cell.sim_shards;
    if (config_.cell.cell_outage_count > 0) {
      for (int c = 0; c < cell_count_; ++c) {
        sim_.set_schedule_shard(c * S);
        cells_[static_cast<std::size_t>(c)]->schedule_cell_outages();
      }
    }
    for (Mobile& m : mobiles_) {
      sim_.set_schedule_shard(ue_shard(*m.ue));
      m.ue->home->schedule_first_arrival(*m.ue);
    }
    if (config_.mean_dwell > 0) {
      for (std::size_t i = 0; i < mobiles_.size(); ++i) {
        sim_.set_schedule_shard(ue_shard(*mobiles_[i].ue));
        schedule_first_move(i);
      }
    }
  }

  void start_telemetry() {
    const int S = config_.cell.sim_shards;
    for (int c = 0; c < cell_count_; ++c) {
      sim_.set_schedule_shard(c * S);
      cells_[static_cast<std::size_t>(c)]->start_telemetry();
    }
  }

  MetroResult finalize(Seconds end, std::uint64_t sim_events) {
    MetroResult result;
    result.grid_w = config_.grid_w;
    result.grid_h = config_.grid_h;
    result.total_users = total_users_;
    result.home_users = home_users_;
    result.mobility = stats_;
    result.reselects = reselects_;
    result.handovers = handovers_;
    result.handover_drops = handover_drops_;
    result.end_time = end;
    result.sim_events = sim_events;
    result.cells.reserve(cells_.size());
    for (auto& cell : cells_) {
      // Event attribution is metro-global: every cell reports the whole
      // run's fired count (which also keeps a 1-cell metro's CellResult
      // byte-identical to run_cell's).
      cell::CellResult cr = cell->finalize(end, sim_events);
      result.offered += cr.offered;
      result.dropped += cr.dropped;
      result.completed += cr.completed;
      result.aborted += cr.aborted;
      result.metrics.merge(cr.metrics);
      result.cells.push_back(std::move(cr));
    }
    result.metrics.set_max("metro.cells", static_cast<double>(cell_count_));
    result.metrics.set_max("metro.users", static_cast<double>(total_users_));
    result.metrics.observe("metro.drop_probability",
                           result.drop_probability());
    // Registered only when mobility is on: a zero-dwell metro's metrics
    // snapshot carries no trace of the mobility process.
    if (config_.mean_dwell > 0) {
      result.metrics.count("metro.reselects",
                           static_cast<double>(reselects_));
      result.metrics.count("metro.handovers",
                           static_cast<double>(handovers_));
      result.metrics.count("metro.handover_drops",
                           static_cast<double>(handover_drops_));
    }
    return result;
  }

 private:
  struct Mobile {
    std::unique_ptr<cell::CellUe> ue;
    Rng rng;  ///< dwell + waypoint stream (derive_seed(ue.seed, mobility))
  };

  int ue_shard(const cell::CellUe& ue) const {
    // A UE's events live on its HOME cell's shard range for the whole run
    // (shard assignment is a scheduling-order property, so it must not
    // follow the UE around); local index = id - home cell's first id.
    const int S = config_.cell.sim_shards;
    const int home = ue.home->index();
    int first_id = 0;
    for (int c = 0; c < home; ++c) {
      first_id += home_users_[static_cast<std::size_t>(c)];
    }
    return home * S + (ue.id - first_id) % S;
  }

  void schedule_first_move(std::size_t i) {
    const Seconds at = mobiles_[i].rng.exponential(config_.mean_dwell);
    if (at >= config_.cell.horizon) return;
    sim_.schedule_at(at, [this, i] { on_move(i); });
  }

  void schedule_next_move(std::size_t i) {
    const Seconds at =
        sim_.now() + mobiles_[i].rng.exponential(config_.mean_dwell);
    if (at >= config_.cell.horizon) return;
    sim_.schedule_at(at, [this, i] { on_move(i); });
  }

  /// Uniform step to a valid 4-neighbor; -1 when the grid has none
  /// (1x1 metro: the walk draws dwell times but never moves).
  int draw_neighbor(Rng& rng, int from) const {
    const int x = from % config_.grid_w;
    const int y = from / config_.grid_w;
    int candidates[4];
    int n = 0;
    if (x > 0) candidates[n++] = from - 1;
    if (x < config_.grid_w - 1) candidates[n++] = from + 1;
    if (y > 0) candidates[n++] = from - config_.grid_w;
    if (y < config_.grid_h - 1) candidates[n++] = from + config_.grid_w;
    if (n == 0) return -1;
    return candidates[rng.uniform_index(static_cast<std::uint64_t>(n))];
  }

  void on_move(std::size_t i) {
    Mobile& m = mobiles_[i];
    const int from = m.ue->cell->index();
    const int to = draw_neighbor(m.rng, from);
    if (to >= 0) {
      move(*m.ue, *cells_[static_cast<std::size_t>(from)],
           *cells_[static_cast<std::size_t>(to)]);
    }
    schedule_next_move(i);
  }

  void record(cell::CellUe& ue, obs::TraceKind kind, int from, int to) {
    if (ue.trace) [[unlikely]] {
      ue.trace->record(sim_.now(), kind, from, to);
    }
  }

  void move(cell::CellUe& ue, cell::CellSim& src, cell::CellSim& dst) {
    const auto from = static_cast<std::size_t>(src.index());
    const auto to = static_cast<std::size_t>(dst.index());
    switch (move_ue(ue, dst, config_.policy)) {
      case MoveOutcome::kReselect:
        ++reselects_;
        ++stats_[from].reselects_out;
        ++stats_[to].reselects_in;
        record(ue, obs::TraceKind::kMetroReselect, src.index(), dst.index());
        break;
      case MoveOutcome::kHandover:
        ++handovers_;
        ++stats_[from].handovers_out;
        ++stats_[to].handovers_in;
        record(ue, obs::TraceKind::kMetroHandover, src.index(), dst.index());
        break;
      case MoveOutcome::kHandoverDrop:
        ++handover_drops_;
        ++stats_[to].handover_drops;
        record(ue, obs::TraceKind::kMetroHandoverDrop, src.index(),
               dst.index());
        break;
      case MoveOutcome::kReselectDrop:
        ++reselects_;
        ++stats_[from].reselects_out;
        ++stats_[to].reselects_in;
        ++handover_drops_;
        ++stats_[to].handover_drops;
        record(ue, obs::TraceKind::kMetroHandoverDrop, src.index(),
               dst.index());
        break;
    }
  }

  const MetroConfig& config_;
  sim::Simulator& sim_;
  const int cell_count_;
  std::vector<int> home_users_;
  int total_users_ = 0;
  std::vector<cell::CellConfig> cell_configs_;
  std::vector<std::unique_ptr<cell::CellSim>> cells_;
  std::vector<Mobile> mobiles_;
  std::vector<MetroCellStats> stats_;
  std::uint64_t reselects_ = 0;
  std::uint64_t handovers_ = 0;
  std::uint64_t handover_drops_ = 0;
};

}  // namespace

namespace {

/// Kills the UE's in-flight session (abort settles every transfer and
/// books the outcome through the normal done hook, now owned by the new
/// serving cell) and releases the RRC connection.  If the radio is
/// mid-signalling force_idle refuses and the state-change hooks reconcile
/// with the new cell's grant pool when it settles (a completed promotion
/// force-acquires and counts an overcommit there).
void drop_session(cell::CellUe& ue) {
  if (ue.session_active && ue.load) ue.load->abort();
  ue.rrc.force_idle();
}

}  // namespace

MoveOutcome move_ue(cell::CellUe& ue, cell::CellSim& dst,
                    HandoverPolicy policy) {
  cell::CellSim& src = *ue.cell;
  const bool held = ue.grant == cell::Grant::kHeld;
  const bool stable_dch =
      ue.rrc.state() == radio::RrcState::kDch &&
      ue.rrc.phase() == radio::RadioPhase::kStable && !ue.rrc.link_down();
  if (held && stable_dch) {
    if (!dst.has_free_grant()) {
      // Admission-or-drop: the target has no grant for the incoming DCH
      // context, so the session dies with the move.
      src.detach(ue);
      dst.attach(ue);
      drop_session(ue);
      return MoveOutcome::kHandoverDrop;
    }
    src.detach(ue);
    dst.attach(ue);
    dst.hold_on_entry(ue);
    if (policy == HandoverPolicy::kHard) {
      // One signalling exchange at handover_power; flows freeze across it
      // and resume through the target scheduler when it completes.  Resume
      // only what we paused, and never into a faded link — if RLF
      // interrupts the exchange the completion is cancelled and the outage
      // machinery owns the resume (SharedLink::pause is idempotent, not
      // nested).
      const bool we_paused = !ue.link.paused();
      if (we_paused) ue.link.pause();
      ue.rrc.start_handover([&ue, we_paused] {
        if (we_paused && !ue.rrc.link_down()) ue.link.resume();
      });
    }
    return MoveOutcome::kHandover;
  }
  // Cell reselection: the cheap re-camp for IDLE/FACH movers — and the
  // graceful degradation for a DCH UE whose radio is mid-signalling,
  // fading or releasing: detach settles the grant ledger and the RRC
  // state-change hooks reconcile with the target pool when the radio
  // settles (a completed release no-ops, a re-establishment
  // force-acquires).
  const bool reserved = ue.grant == cell::Grant::kReserved;
  src.detach(ue);
  dst.attach(ue);
  if (reserved) {
    // An admitted-but-not-yet-promoted session needs a slot in the new
    // cell too: re-reserve, or drop the load at the boundary.
    if (dst.has_free_grant()) {
      dst.reserve_on_entry(ue);
    } else {
      drop_session(ue);
      return MoveOutcome::kReselectDrop;
    }
  }
  return MoveOutcome::kReselect;
}

const char* to_string(HandoverPolicy policy) {
  switch (policy) {
    case HandoverPolicy::kHard: return "hard";
    case HandoverPolicy::kInstant: return "instant";
  }
  return "?";
}

void validate_metro_config(const MetroConfig& config) {
  cell::validate_cell_config(config.cell);
  if (config.grid_w < 1 || config.grid_h < 1) {
    throw std::invalid_argument(
        "run_metro: grid dimensions must be >= 1");
  }
  const std::int64_t cells =
      static_cast<std::int64_t>(config.grid_w) * config.grid_h;
  if (cells * config.cell.sim_shards > 256) {
    throw std::invalid_argument(
        "run_metro: grid_w * grid_h * cell.sim_shards must be <= 256 "
        "(the engine's shard limit)");
  }
  if (cells * config.cell.users > INT_MAX) {
    throw std::invalid_argument("run_metro: total user count overflows");
  }
  if (!std::isfinite(config.mean_dwell) || config.mean_dwell < 0) {
    throw std::invalid_argument(
        "run_metro: mean_dwell must be finite and >= 0");
  }
  if (!std::isfinite(config.hotspot) || config.hotspot < 0) {
    throw std::invalid_argument(
        "run_metro: hotspot must be finite and >= 0");
  }
}

MetroConfig MetroBuilder::build() const {
  validate_metro_config(config_);
  return config_;
}

MetroResult run_metro(const MetroConfig& config) {
  validate_metro_config(config);
  const int cell_count = config.grid_w * config.grid_h;
  sim::Simulator sim;
  // The per-cell budget scales with the cell count (saturating: the knob
  // is a liveness guard, not an accounting device).
  const std::uint64_t per_cell = config.cell.sim_event_budget;
  const auto m = static_cast<std::uint64_t>(cell_count);
  sim.set_event_budget(
      per_cell > std::numeric_limits<std::uint64_t>::max() / m
          ? std::numeric_limits<std::uint64_t>::max()
          : per_cell * m);
  sim.set_shard_count(cell_count * config.cell.sim_shards);
  cell::TickCoordinator ticks;
  const bool telemetry = config.cell.telemetry_tick > 0;
  MetroSim metro(sim, config, telemetry ? &ticks : nullptr);
  metro.schedule();
  Seconds workload_end = 0;
  if (telemetry) {
    metro.start_telemetry();
    // Same exclusion as run_cell: the last non-tick event is the workload
    // end, so sampling leaves end_time and every energy window untouched.
    while (sim.step()) {
      if (!ticks.consume_tick_fired()) workload_end = sim.now();
    }
  } else {
    sim.run();
  }
  return metro.finalize(telemetry ? workload_end : sim.now(),
                        sim.fired_count());
}

namespace {
constexpr std::uint32_t kMetroResultVersion = 1;
}  // namespace

std::string serialize_metro_result(const MetroResult& result) {
  std::string out;
  BinaryWriter w(out);
  w.u32(kMetroResultVersion);
  w.i32(result.grid_w);
  w.i32(result.grid_h);
  w.i32(result.total_users);
  w.u64(result.reselects);
  w.u64(result.handovers);
  w.u64(result.handover_drops);
  w.u64(result.offered);
  w.u64(result.dropped);
  w.u64(result.completed);
  w.u64(result.aborted);
  w.f64(result.end_time);
  w.u64(result.sim_events);
  w.u64(result.cells.size());
  for (std::size_t c = 0; c < result.cells.size(); ++c) {
    w.i32(result.home_users[c]);
    const MetroCellStats& s = result.mobility[c];
    w.u64(s.reselects_in);
    w.u64(s.reselects_out);
    w.u64(s.handovers_in);
    w.u64(s.handovers_out);
    w.u64(s.handover_drops);
    w.str(cell::serialize_cell_result(result.cells[c]));
  }
  w.str(result.metrics.to_bytes());
  return out;
}

MetroResult deserialize_metro_result(std::string_view bytes) {
  BinaryReader r(bytes);
  if (r.u32() != kMetroResultVersion) {
    throw std::runtime_error(
        "deserialize_metro_result: unknown record version");
  }
  MetroResult result;
  result.grid_w = r.i32();
  result.grid_h = r.i32();
  result.total_users = r.i32();
  result.reselects = r.u64();
  result.handovers = r.u64();
  result.handover_drops = r.u64();
  result.offered = r.u64();
  result.dropped = r.u64();
  result.completed = r.u64();
  result.aborted = r.u64();
  result.end_time = r.f64();
  result.sim_events = r.u64();
  const std::uint64_t cells = r.u64();
  result.home_users.reserve(cells);
  result.mobility.reserve(cells);
  result.cells.reserve(cells);
  for (std::uint64_t c = 0; c < cells; ++c) {
    result.home_users.push_back(r.i32());
    MetroCellStats s;
    s.reselects_in = r.u64();
    s.reselects_out = r.u64();
    s.handovers_in = r.u64();
    s.handovers_out = r.u64();
    s.handover_drops = r.u64();
    result.mobility.push_back(s);
    result.cells.push_back(cell::deserialize_cell_result(r.str()));
  }
  result.metrics = obs::MetricsRegistry::from_bytes(r.str());
  r.expect_done();
  return result;
}

core::SupervisorReport run_metro_sweep(
    const MetroConfig& base, const std::vector<int>& users_axis,
    const core::SweepExecution& exec,
    const std::function<void(std::size_t index, const MetroResult& result)>&
        consume) {
  validate_metro_config(base);
  if (exec.tier() == core::SweepExecution::Tier::kSupervised &&
      base.cell.per_ue.stack.trace) {
    throw std::invalid_argument(
        "run_metro_sweep: tracing cannot cross the process boundary; run "
        "supervised sweeps with tracing off");
  }
  core::SweepDriver<MetroResult> driver;
  driver
      .shard([&base, &users_axis](std::size_t i) {
        MetroConfig config = base;
        config.cell.users = users_axis[i];
        return run_metro(config);
      })
      .codec(serialize_metro_result,
             [](std::string_view payload) {
               return deserialize_metro_result(payload);
             });
  if (consume) {
    driver.consume([&consume](std::size_t i, MetroResult&& result) {
      consume(i, result);
    });
  }
  return driver.run(users_axis.size(), exec);
}

double users_at_drop_target(const std::vector<int>& users_axis,
                            const std::vector<double>& drops, double target) {
  if (users_axis.size() != drops.size() || users_axis.empty()) {
    throw std::invalid_argument(
        "metro::users_at_drop_target: axis/drops size mismatch or empty");
  }
  double previous_users = users_axis.front();
  double previous_drop = drops.front();
  if (previous_drop >= target) return previous_users;
  for (std::size_t i = 1; i < users_axis.size(); ++i) {
    const double users = users_axis[i];
    const double drop = drops[i];
    if (drop >= target) {
      const double slope =
          (drop - previous_drop) / std::max(1e-9, users - previous_users);
      return previous_users + (target - previous_drop) / std::max(1e-9, slope);
    }
    previous_users = users;
    previous_drop = drop;
  }
  return users_axis.back();
}

}  // namespace eab::metro
