#include "cell/cell.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "browser/cpu.hpp"
#include "browser/pipeline.hpp"
#include "core/ril.hpp"
#include "corpus/generator.hpp"
#include "net/cache.hpp"
#include "net/fault.hpp"
#include "net/http_client.hpp"
#include "net/outage.hpp"
#include "net/shared_link.hpp"
#include "net/web_server.hpp"
#include "radio/rrc.hpp"
#include "sim/simulator.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/timeline.hpp"

namespace eab::cell {

const char* to_string(SharePolicy policy) {
  switch (policy) {
    case SharePolicy::kRoundRobin: return "round-robin";
    case SharePolicy::kProportionalFair: return "proportional-fair";
  }
  return "?";
}

namespace {

// Sub-stream indices under each UE's derive_seed(cell_seed, ue_id) root.
// Session load seeds use the session index directly, so these sit far
// outside any plausible session count.
constexpr std::uint64_t kArrivalStream = 0x00A1'55EE'0000'0001ULL;
constexpr std::uint64_t kFaultStream = 0x00A1'55EE'0000'0002ULL;
constexpr std::uint64_t kGeneratorStream = 0x00A1'55EE'0000'0003ULL;
constexpr std::uint64_t kOutageStream = 0x00A1'55EE'0000'0004ULL;

/// Proportional-fair reference volume: a UE that has already pulled this
/// many bytes weighs half of a fresh one.
constexpr double kFairShareRefBytes = 1024.0 * 1024.0;

void validate(const CellConfig& config) {
  // Re-validates the per-UE template exactly as every single-UE experiment
  // is validated; a Scenario assembled by hand gets the same checks here.
  core::ScenarioBuilder()
      .stack(config.per_ue.stack)
      .reading_window(config.per_ue.reading_window)
      .seed(config.per_ue.seed)
      .build();
  if (config.specs.empty()) {
    throw std::invalid_argument("run_cell: specs must be non-empty");
  }
  if (config.users < 1) {
    throw std::invalid_argument("run_cell: users must be >= 1");
  }
  if (config.channels < 1) {
    throw std::invalid_argument("run_cell: channels must be >= 1");
  }
  if (config.cell_bandwidth < 0) {
    throw std::invalid_argument("run_cell: cell_bandwidth must be >= 0");
  }
  if (!(config.mean_think_time > 0)) {
    throw std::invalid_argument("run_cell: mean_think_time must be > 0");
  }
  if (!(config.horizon > 0)) {
    throw std::invalid_argument("run_cell: horizon must be > 0");
  }
  if (config.abort_rate < 0 || config.abort_rate > 1) {
    throw std::invalid_argument("run_cell: abort_rate must be in [0, 1]");
  }
  if (config.sim_event_budget == 0) {
    throw std::invalid_argument("run_cell: sim_event_budget must be > 0");
  }
  if (config.sim_shards < 1 || config.sim_shards > 256) {
    throw std::invalid_argument("run_cell: sim_shards must be in [1, 256] (got " +
                                std::to_string(config.sim_shards) + ")");
  }
  if (config.telemetry_tick < 0 || !std::isfinite(config.telemetry_tick)) {
    throw std::invalid_argument(
        "run_cell: telemetry_tick must be >= 0 and finite");
  }
  if (config.telemetry_tick > 0 && config.telemetry_budget < 2) {
    throw std::invalid_argument("run_cell: telemetry_budget must be >= 2");
  }
  if (config.cell_outage_count < 0) {
    throw std::invalid_argument("run_cell: cell_outage_count must be >= 0");
  }
  if (config.cell_outage_count > 0) {
    if (!(config.cell_outage_start >= 0) ||
        !std::isfinite(config.cell_outage_start)) {
      throw std::invalid_argument(
          "run_cell: cell_outage_start must be >= 0 and finite");
    }
    if (!(config.cell_outage_duration > 0) ||
        !std::isfinite(config.cell_outage_duration)) {
      throw std::invalid_argument(
          "run_cell: cell_outage_duration must be > 0 and finite");
    }
    if (!(config.cell_outage_period > config.cell_outage_duration) ||
        !std::isfinite(config.cell_outage_period)) {
      throw std::invalid_argument(
          "run_cell: cell_outage_period must exceed cell_outage_duration "
          "(windows must not overlap) and be finite");
    }
  }
}

class CellSim {
 public:
  explicit CellSim(const CellConfig& config)
      : config_(config),
        per_ue_rate_(config.per_ue.stack.link.dch_bandwidth),
        cell_rate_(config.cell_bandwidth > 0
                       ? config.cell_bandwidth
                       : config.channels * per_ue_rate_),
        outage_enabled_(config.per_ue.stack.outage.enabled() ||
                        config.cell_outage_count > 0) {
    sim_.set_event_budget(config.sim_event_budget);
    sim_.set_shard_count(config.sim_shards);
    if (config.telemetry_tick > 0) {
      obs::TelemetryConfig telemetry_config;
      telemetry_config.tick = config.telemetry_tick;
      telemetry_config.point_budget = config.telemetry_budget;
      telemetry_config.per_ue = config.telemetry_per_ue;
      telemetry_result_ = std::make_shared<obs::Telemetry>(telemetry_config);
      telemetry_ = telemetry_result_.get();
    }
    grant_.assign(config.users, Grant::kFree);
    hold_start_.assign(config.users, 0.0);
    ues_.reserve(config.users);
    for (int id = 0; id < config.users; ++id) {
      // Everything a UE schedules — from wiring-time fade windows and cache
      // storms to every event its sessions spawn (children inherit the
      // firing event's shard) — lands on the UE's own shard.
      sim_.set_schedule_shard(id % config.sim_shards);
      ues_.push_back(std::make_unique<Ue>(sim_, config_, id));
      wire(*ues_.back());
    }
    if (config.cell_outage_count > 0) {
      // Whole-cell events touch every UE, so they live on shard 0 like the
      // telemetry tick; the merged fire order is shard-count-invariant.
      sim_.set_schedule_shard(0);
      for (int i = 0; i < config.cell_outage_count; ++i) {
        const Seconds begin =
            config.cell_outage_start + i * config.cell_outage_period;
        sim_.schedule_at(begin, [this] { cell_outage_begin(); });
        sim_.schedule_at(begin + config.cell_outage_duration,
                         [this] { cell_outage_end(); });
      }
    }
  }

  CellResult run();

 private:
  enum class Grant { kFree, kReserved, kHeld };

  struct Ue {
    int id;
    std::uint64_t seed;   ///< derive_seed(cell_seed, id)
    Rng rng;              ///< arrival/spec/abort decision stream
    radio::RrcMachine rrc;
    net::SharedLink link;
    browser::CpuScheduler cpu;
    core::RilStateSwitcher ril;
    net::WebServer server;
    corpus::PageGenerator generator;
    std::optional<net::FaultInjector> faults;
    std::optional<net::OutageInjector> outage;
    std::optional<net::ResourceCache> cache;
    std::vector<std::string> hosted_urls;  ///< per spec index, "" = unhosted
    std::unique_ptr<net::HttpClient> client;
    std::unique_ptr<browser::PageLoad> load;
    std::shared_ptr<obs::TraceRecorder> trace;
    int generation = 0;        ///< bumps on every teardown; stale events no-op
    int sessions_started = 0;  ///< per-load seed index
    UeStats stats;

    Ue(sim::Simulator& sim, const CellConfig& config, int id_)
        : id(id_),
          seed(derive_seed(config.cell_seed, static_cast<std::uint64_t>(id_))),
          rng(derive_seed(seed, kArrivalStream)),
          rrc(sim, config.per_ue.stack.rrc, config.per_ue.stack.power),
          link(sim, config.per_ue.stack.link.dch_bandwidth),
          cpu(sim, config.per_ue.stack.power.cpu_busy_extra),
          ril(sim, rrc),
          generator(derive_seed(seed, kGeneratorStream)),
          hosted_urls(config.specs.size()) {}
  };

  /// Attaches grant hooks, fault/cache/trace plumbing and the bandwidth
  /// observer; everything that outlives individual sessions.
  void wire(Ue& ue) {
    const auto& stack = config_.per_ue.stack;
    if (stack.fault_plan.enabled()) {
      net::FaultPlan plan = stack.fault_plan;
      plan.seed = derive_seed(ue.seed, kFaultStream);
      ue.faults.emplace(sim_, ue.link, plan);
    }
    if (outage_enabled_) {
      // A disabled per-UE plan still gets an injector when whole-cell
      // outages are on: it schedules no windows of its own and exists so
      // cell_outage_begin/end can drive coverage (and so the plan's
      // reestablish_fail_rate applies to cell-driven re-establishment too).
      radio::OutagePlan plan = stack.outage;
      plan.seed = derive_seed(ue.seed, kOutageStream);
      ue.outage.emplace(sim_, ue.link, ue.rrc, plan, ue.id);
      ue.rrc.set_on_rlf([&ue] {
        if (ue.client) ue.client->on_radio_lost();
      });
    }
    if (stack.use_browser_cache) {
      ue.cache.emplace(stack.browser_cache_bytes);
      if (stack.chaos.cache_storm_count > 0) {
        for (int i = 0; i < stack.chaos.cache_storm_count; ++i) {
          sim_.schedule_at(
              stack.chaos.cache_storm_start + i * stack.chaos.cache_storm_period,
              [&ue] { ue.cache->clear(); });
        }
      }
    }
    if (stack.chaos.ril_socket_failures > 0) {
      ue.ril.fail_next(stack.chaos.ril_socket_failures);
    }
    if (stack.trace) {
      ue.trace = std::make_shared<obs::TraceRecorder>();
      ue.rrc.set_trace(ue.trace.get());
      ue.link.set_trace(ue.trace.get());
      ue.ril.set_trace(ue.trace.get());
      if (ue.faults) ue.faults->set_trace(ue.trace.get());
      if (ue.outage) ue.outage->set_trace(ue.trace.get());
    }
    const int id = ue.id;
    ue.rrc.set_on_state_change([this, id](radio::RrcState from,
                                          radio::RrcState to) {
      if (to == radio::RrcState::kDch && from != radio::RrcState::kDch) {
        on_dch_enter(id);
      } else if (from == radio::RrcState::kDch &&
                 to != radio::RrcState::kDch) {
        on_dch_exit(id);
      }
    });
    ue.link.set_on_flow_change([this] { rebalance(); });
  }

  // --- grant pool ---------------------------------------------------------

  void note_busy() {
    busy_timeline_.set_power(sim_.now(), static_cast<double>(busy_));
    peak_busy_ = std::max(peak_busy_, busy_);
    // Piggyback sampling on the grant transition that already fired: exact
    // occupancy resolution with zero extra simulator events.
    if (telemetry_) {
      telemetry_->sample("cell.busy_grants", sim_.now(),
                         static_cast<double>(busy_));
    }
  }

  /// Admission check at session arrival.  A UE still holding a grant from
  /// its previous session (Original-pipeline tail across a short think
  /// time) is admitted on that grant — unless the whole cell is down, which
  /// blocks even grant holders (their grants are mid-drain via RLF).
  bool try_admit(int id) {
    if (cell_down_) return false;
    if (grant_[id] != Grant::kFree) return true;
    if (busy_ >= config_.channels) return false;
    grant_[id] = Grant::kReserved;
    ++busy_;
    note_busy();
    return true;
  }

  void on_dch_enter(int id) {
    if (grant_[id] == Grant::kReserved) {
      grant_[id] = Grant::kHeld;
    } else if (grant_[id] == Grant::kFree) {
      // Mid-session re-promotion (a stall let T1 demote the radio while the
      // load was still in flight): take a grant back rather than killing an
      // admitted session, and count the overcommit when none is free.
      if (busy_ >= config_.channels) ++overcommits_;
      grant_[id] = Grant::kHeld;
      ++busy_;
      note_busy();
    }
    hold_start_[id] = sim_.now();
  }

  void on_dch_exit(int id) {
    if (grant_[id] != Grant::kHeld) return;
    held_total_ += sim_.now() - hold_start_[id];
    ++hold_intervals_;
    grant_[id] = Grant::kFree;
    --busy_;
    note_busy();
  }

  /// Session ended without the radio ever promoting (fully cache-served
  /// load, or an abort before the promotion completed): give the
  /// reservation back.
  void release_if_reserved(int id) {
    if (grant_[id] != Grant::kReserved) return;
    grant_[id] = Grant::kFree;
    --busy_;
    note_busy();
  }

  // --- whole-cell outages -------------------------------------------------

  /// The cell goes dark: every UE loses coverage at once.  Grants are not
  /// freed here — each holder drains through its own RLF detection
  /// (T313-style) into OUT_OF_SERVICE, whose DCH-exit hook frees the grant;
  /// admission is blocked for the whole window via cell_down_.
  void cell_outage_begin() {
    cell_down_ = true;
    ++cell_outages_;
    if (telemetry_) {
      telemetry_->sample("cell.down", sim_.now(), 1.0);
    }
    for (auto& ue : ues_) ue->outage->coverage_lost();
  }

  /// Coverage returns: every RLF'd UE starts re-establishment (bounded
  /// attempts with backoff), idle campers re-camp silently, and admission
  /// re-ramps as re-established holders re-acquire grants.
  void cell_outage_end() {
    cell_down_ = false;
    if (telemetry_) {
      telemetry_->sample("cell.down", sim_.now(), 0.0);
    }
    for (auto& ue : ues_) ue->outage->coverage_restored();
  }

  // --- bandwidth sharing --------------------------------------------------

  /// Recomputes every active UE's link capacity.  Re-entrant calls (a
  /// set_capacity completing a flow whose callback starts another) fold
  /// into one loop pass; termination is guaranteed because set_capacity
  /// no-ops on an unchanged value and no simulated time passes in here.
  void rebalance() {
    if (rebalancing_) {
      rebalance_dirty_ = true;
      return;
    }
    rebalancing_ = true;
    do {
      rebalance_dirty_ = false;
      active_.clear();
      for (auto& ue : ues_) {
        if (ue->link.active_flows() > 0 && !ue->link.paused()) {
          active_.push_back(ue.get());
        }
      }
      if (active_.empty()) continue;
      if (config_.share == SharePolicy::kRoundRobin) {
        const BytesPerSecond share =
            cell_rate_ / static_cast<double>(active_.size());
        for (Ue* ue : active_) {
          ue->link.set_capacity(std::clamp(share, 1.0, per_ue_rate_));
        }
      } else {
        double total_weight = 0;
        for (Ue* ue : active_) {
          total_weight +=
              1.0 / (1.0 + static_cast<double>(ue->link.delivered()) /
                               kFairShareRefBytes);
        }
        for (Ue* ue : active_) {
          const double weight =
              1.0 / (1.0 + static_cast<double>(ue->link.delivered()) /
                               kFairShareRefBytes);
          const BytesPerSecond share = cell_rate_ * weight / total_weight;
          ue->link.set_capacity(std::clamp(share, 1.0, per_ue_rate_));
        }
      }
    } while (rebalance_dirty_);
    rebalancing_ = false;
  }

  // --- session process ----------------------------------------------------

  void schedule_first_arrival(Ue& ue) {
    const Seconds at = ue.rng.exponential(config_.mean_think_time);
    if (at >= config_.horizon) return;
    sim_.schedule_at(at, [this, &ue] { start_session(ue); });
  }

  void schedule_next_arrival(Ue& ue) {
    const Seconds at =
        sim_.now() + ue.rng.exponential(config_.mean_think_time);
    if (at >= config_.horizon) return;
    sim_.schedule_at(at, [this, &ue] { start_session(ue); });
  }

  void start_session(Ue& ue) {
    ++ue.stats.offered;
    // Draw the whole per-session decision tuple up front so the stream is
    // identical whether or not this session is admitted.
    const std::size_t spec_index = static_cast<std::size_t>(
        ue.rng.uniform_index(config_.specs.size()));
    const bool wants_abort =
        config_.abort_rate > 0 && ue.rng.chance(config_.abort_rate);
    const Seconds abort_after = wants_abort ? ue.rng.uniform(0.5, 10.0) : 0.0;
    if (!try_admit(ue.id)) {
      ++ue.stats.dropped;
      schedule_next_arrival(ue);
      return;
    }
    ++ue.stats.admitted;
    begin_load(ue, spec_index, wants_abort, abort_after);
  }

  void begin_load(Ue& ue, std::size_t spec_index, bool wants_abort,
                  Seconds abort_after) {
    // The previous session's objects stay alive through the think time (a
    // late watchdog or RRC event may still reference them) and are torn
    // down only now, when the next session needs the slot.
    if (ue.client) retired_retries_ += ue.client->stats().retries;
    ue.load.reset();
    ue.client.reset();
    ++ue.generation;

    const auto& stack = config_.per_ue.stack;
    const corpus::PageSpec& spec = config_.specs[spec_index];
    if (ue.hosted_urls[spec_index].empty()) {
      ue.hosted_urls[spec_index] = ue.generator.host_page(spec, ue.server);
    }
    ue.client = std::make_unique<net::HttpClient>(
        sim_, ue.server, ue.link, ue.rrc, stack.link,
        stack.max_parallel_connections);
    ue.client->set_retry_policy(stack.retry);
    if (ue.faults) ue.client->set_fault_injector(&*ue.faults);
    if (ue.cache) ue.client->set_cache(&*ue.cache);
    if (ue.trace) ue.client->set_trace(ue.trace.get());

    browser::PipelineConfig pipeline = stack.pipeline;
    pipeline.mobile_page = spec.mobile;
    const std::uint64_t load_seed = derive_seed(
        ue.seed, static_cast<std::uint64_t>(ue.sessions_started));
    ++ue.sessions_started;
    ue.load = std::make_unique<browser::PageLoad>(sim_, *ue.client, ue.cpu,
                                                  pipeline, load_seed);
    if (stack.force_idle_at_tx) {
      ue.load->set_on_transmission_complete([&ue] { ue.ril.request_idle(); });
    }
    if (ue.trace) ue.load->set_trace(ue.trace.get());

    const int gen = ue.generation;
    ue.load->start(ue.hosted_urls[spec_index],
                   [this, &ue, gen](const browser::LoadMetrics& m) {
                     if (ue.generation != gen) return;
                     on_session_done(ue, m);
                   });
    if (wants_abort) {
      sim_.schedule_in(abort_after, [&ue, gen] {
        // Stale by the time it fires (the load settled and the next session
        // replaced it): the generation check makes it a no-op.
        if (ue.generation == gen && ue.load) ue.load->abort();
      });
    }
  }

  void on_session_done(Ue& ue, const browser::LoadMetrics& m) {
    if (m.aborted) {
      ++ue.stats.aborted;
    } else {
      ++ue.stats.completed;
    }
    ue.stats.total_load_time += m.total_time();
    ue.stats.total_service_time += m.transmission_time();
    release_if_reserved(ue.id);
    schedule_next_arrival(ue);
  }

  const CellConfig& config_;
  sim::Simulator sim_;
  BytesPerSecond per_ue_rate_;
  BytesPerSecond cell_rate_;
  std::vector<std::unique_ptr<Ue>> ues_;

  std::vector<Grant> grant_;
  std::vector<Seconds> hold_start_;
  const bool outage_enabled_;      ///< any outage knob on (per-UE or cell)
  bool cell_down_ = false;         ///< inside a whole-cell outage window
  std::uint64_t cell_outages_ = 0;
  int busy_ = 0;
  int peak_busy_ = 0;
  std::uint64_t overcommits_ = 0;
  Seconds held_total_ = 0;
  std::uint64_t hold_intervals_ = 0;
  PowerTimeline busy_timeline_;  ///< busy-grant count as a step function

  bool rebalancing_ = false;
  bool rebalance_dirty_ = false;
  std::vector<Ue*> active_;  ///< scratch for rebalance()

  // --- telemetry ----------------------------------------------------------
  // Null-sink idiom (DESIGN.md §11): telemetry_ is null when disabled, and
  // every sampling site is guarded, so a disabled run schedules zero extra
  // events and stays bit-identical to a build without telemetry.

  /// Samples every cross-layer gauge at simulated time `t`.  Read-only over
  /// the simulation state: the workload trajectory is unchanged.
  void sample_gauges(Seconds t) {
    const radio::RadioPowerModel& power = config_.per_ue.stack.power;
    int idle = 0, fach = 0, dch = 0, oos = 0;
    double radio_w = 0, flows = 0, link_bps = 0;
    double energy_idle = 0, energy_fach = 0, energy_dch = 0, energy_oos = 0;
    std::uint64_t in_flight = 0, queued = 0, retries = retired_retries_;
    std::uint64_t offered = 0, dropped = 0, aborted = 0;
    std::uint64_t rlf = 0, reestablish_ok = 0, reestablish_fail = 0;
    for (const auto& owner : ues_) {
      const Ue& ue = *owner;
      const radio::RrcState state = ue.rrc.state();
      switch (state) {
        case radio::RrcState::kIdle: ++idle; break;
        case radio::RrcState::kFach: ++fach; break;
        case radio::RrcState::kDch: ++dch; break;
        case radio::RrcState::kOutOfService: ++oos; break;
      }
      radio_w += ue.rrc.power().current_power();
      // Residency-derived cumulative energy at the nominal per-state dwell
      // powers (Table 5); transfer and signalling overlays live in the exact
      // per-UE PowerTimeline, this series tracks where the joules accrue.
      energy_idle += ue.rrc.time_in(radio::RrcState::kIdle) * power.idle;
      energy_fach += ue.rrc.time_in(radio::RrcState::kFach) * power.fach;
      energy_dch +=
          ue.rrc.time_in(radio::RrcState::kDch) * power.dch_no_transfer;
      if (outage_enabled_) {
        energy_oos += ue.rrc.time_in(radio::RrcState::kOutOfService) *
                      power.out_of_service;
        rlf += static_cast<std::uint64_t>(ue.rrc.rlf_count());
        reestablish_ok += static_cast<std::uint64_t>(ue.rrc.reestablish_ok());
        reestablish_fail +=
            static_cast<std::uint64_t>(ue.rrc.reestablish_fail());
      }
      const std::size_t ue_flows = ue.link.active_flows();
      flows += static_cast<double>(ue_flows);
      if (ue_flows > 0 && !ue.link.paused()) link_bps += ue.link.capacity();
      std::uint64_t ue_fetches = 0;
      if (ue.client) {
        in_flight += static_cast<std::uint64_t>(ue.client->in_flight());
        queued += ue.client->queued();
        retries += ue.client->stats().retries;
        ue_fetches = static_cast<std::uint64_t>(ue.client->in_flight()) +
                     ue.client->queued();
      }
      offered += static_cast<std::uint64_t>(ue.stats.offered);
      dropped += static_cast<std::uint64_t>(ue.stats.dropped);
      aborted += static_cast<std::uint64_t>(ue.stats.aborted);
      if (telemetry_->config().per_ue) {
        char name[32];
        std::snprintf(name, sizeof name, "ue%03d.rrc_state", ue.id);
        telemetry_->sample(name, t, static_cast<double>(state));
        std::snprintf(name, sizeof name, "ue%03d.fetches", ue.id);
        telemetry_->sample(name, t, static_cast<double>(ue_fetches));
      }
    }
    telemetry_->sample("cell.rrc_idle", t, idle);
    telemetry_->sample("cell.rrc_fach", t, fach);
    telemetry_->sample("cell.rrc_dch", t, dch);
    telemetry_->sample("cell.busy_grants", t, static_cast<double>(busy_));
    telemetry_->sample("cell.grant_overcommits", t,
                       static_cast<double>(overcommits_));
    telemetry_->sample("cell.radio_power_w", t, radio_w);
    telemetry_->sample("cell.energy_idle_j", t, energy_idle);
    telemetry_->sample("cell.energy_fach_j", t, energy_fach);
    telemetry_->sample("cell.energy_dch_j", t, energy_dch);
    telemetry_->sample("cell.active_flows", t, flows);
    telemetry_->sample("cell.link_bps", t, link_bps);
    telemetry_->sample("cell.inflight_fetches", t,
                       static_cast<double>(in_flight));
    telemetry_->sample("cell.queued_fetches", t, static_cast<double>(queued));
    telemetry_->sample("cell.offered", t, static_cast<double>(offered));
    telemetry_->sample("cell.dropped", t, static_cast<double>(dropped));
    telemetry_->sample("cell.aborted", t, static_cast<double>(aborted));
    telemetry_->sample("cell.retries", t, static_cast<double>(retries));
    // Registered only when an outage knob is on: a disabled run's telemetry
    // blob stays byte-identical to a build without the radio failure model.
    if (outage_enabled_) {
      telemetry_->sample("cell.rrc_oos", t, oos);
      telemetry_->sample("cell.energy_oos_j", t, energy_oos);
      telemetry_->sample("cell.rlf", t, static_cast<double>(rlf));
      telemetry_->sample("cell.reestablish_ok", t,
                         static_cast<double>(reestablish_ok));
      telemetry_->sample("cell.reestablish_fail", t,
                         static_cast<double>(reestablish_fail));
    }
  }

  /// Self-rescheduling sampling tick.  The chain ends one tick after the
  /// workload drains (pending_count() == 0 once we fired), so the run
  /// terminates exactly as it would without telemetry — just later by the
  /// tick events themselves; run() excludes that trailing tick from the
  /// end-of-run accounting.
  void schedule_tick(Seconds at) {
    sim_.schedule_at(at, [this, at] {
      sample_gauges(at);
      if (sim_.pending_count() > 0) {
        schedule_tick(at + config_.telemetry_tick);
      }
    });
  }

  std::shared_ptr<obs::Telemetry> telemetry_result_;
  obs::Telemetry* telemetry_ = nullptr;  ///< null = sampling disabled
  std::uint64_t retired_retries_ = 0;    ///< retries of torn-down clients
};

CellResult CellSim::run() {
  for (auto& ue : ues_) {
    sim_.set_schedule_shard(ue->id % config_.sim_shards);
    schedule_first_arrival(*ue);
  }
  Seconds workload_end = 0;
  if (telemetry_) {
    // Baseline sample at t=0 (no event needed: the clock hasn't started),
    // then the self-rescheduling tick.  Ticks live on shard 0; descendants
    // inherit the firing event's shard, so the chain stays there and the
    // merged fire order is bit-identical at any shard count.
    sample_gauges(0.0);
    sim_.set_schedule_shard(0);
    schedule_tick(config_.telemetry_tick);
    // The trailing tick — the one that finds the queue drained — is always
    // the very last event, so the event fired just before it is the last
    // workload event.  Tracking its time makes end_time, every energy
    // window and mean_busy_grants bit-identical to an unsampled run; the
    // only observable delta of sampling stays sim_events itself.
    Seconds current = 0;
    while (sim_.step()) {
      workload_end = current;
      current = sim_.now();
    }
  } else {
    sim_.run();
  }
  const Seconds end = telemetry_ ? workload_end : sim_.now();
  note_busy();

  CellResult result;
  result.users = config_.users;
  result.channels = config_.channels;
  result.end_time = end;
  result.sim_events = sim_.fired_count();
  result.grant_overcommits = overcommits_;
  result.peak_busy_grants = peak_busy_;
  result.mean_busy_grants = end > 0 ? busy_timeline_.energy(0, end) / end : 0;
  result.mean_grant_hold =
      hold_intervals_ > 0 ? held_total_ / static_cast<double>(hold_intervals_)
                          : 0;
  result.per_ue.reserve(ues_.size());
  for (auto& ue : ues_) {
    ue->stats.energy = core::EnergyReport::measure(
        PowerTimeline::sum(ue->rrc.power(), ue->cpu.power()), ue->rrc.power(),
        end, end);
    ue->stats.trace = ue->trace;
    ue->stats.radio_outages = ue->outage ? ue->outage->outages_started() : 0;
    ue->stats.rlf = ue->rrc.rlf_count();
    ue->stats.reestablish_ok = ue->rrc.reestablish_ok();
    ue->stats.reestablish_fail = ue->rrc.reestablish_fail();
    ue->stats.out_of_service_time =
        ue->rrc.time_in(radio::RrcState::kOutOfService);
    result.radio_outages += static_cast<std::uint64_t>(ue->stats.radio_outages);
    result.rlf += static_cast<std::uint64_t>(ue->stats.rlf);
    result.reestablish_ok +=
        static_cast<std::uint64_t>(ue->stats.reestablish_ok);
    result.reestablish_fail +=
        static_cast<std::uint64_t>(ue->stats.reestablish_fail);
    result.offered += static_cast<std::uint64_t>(ue->stats.offered);
    result.dropped += static_cast<std::uint64_t>(ue->stats.dropped);
    result.completed += static_cast<std::uint64_t>(ue->stats.completed);
    result.aborted += static_cast<std::uint64_t>(ue->stats.aborted);
    result.leaked_flows +=
        static_cast<std::uint64_t>(ue->link.active_flows());
    result.per_ue.push_back(ue->stats);
  }

  result.metrics.count("cell.offered", static_cast<double>(result.offered));
  result.metrics.count("cell.dropped", static_cast<double>(result.dropped));
  result.metrics.count("cell.completed",
                       static_cast<double>(result.completed));
  result.metrics.count("cell.aborted", static_cast<double>(result.aborted));
  result.metrics.count("cell.grant_overcommits",
                       static_cast<double>(overcommits_));
  result.metrics.count("cell.sim_events",
                       static_cast<double>(result.sim_events));
  result.metrics.set_max("cell.peak_busy_grants",
                         static_cast<double>(peak_busy_));
  result.metrics.set_max("cell.users", static_cast<double>(config_.users));
  result.metrics.observe("cell.mean_busy_grants", result.mean_busy_grants);
  result.metrics.observe("cell.drop_probability", result.drop_probability());
  result.cell_outages = cell_outages_;
  // Registered only when an outage knob is on, so a disabled run's metrics
  // snapshot is byte-identical to a build without the radio failure model.
  if (outage_enabled_) {
    result.metrics.count("cell.outages", static_cast<double>(cell_outages_));
    result.metrics.count("cell.radio_outages",
                         static_cast<double>(result.radio_outages));
    result.metrics.count("cell.rlf", static_cast<double>(result.rlf));
    result.metrics.count("cell.reestablish_ok",
                         static_cast<double>(result.reestablish_ok));
    result.metrics.count("cell.reestablish_fail",
                         static_cast<double>(result.reestablish_fail));
  }
  result.telemetry = telemetry_result_;
  return result;
}

}  // namespace

CellResult run_cell(const CellConfig& config) {
  validate(config);
  CellSim sim(config);
  return sim.run();
}

namespace {

// v2 appends the optional telemetry blob after the metrics registry; v3
// adds the radio-failure accounting (cell aggregates + per-UE fields).
constexpr std::uint32_t kCellResultVersion = 3;

void write_energy(BinaryWriter& w, const core::EnergyReport& energy) {
  w.f64(energy.load_j);
  w.f64(energy.with_reading_j);
  w.f64(energy.radio_j);
  w.f64(energy.window_s);
}

core::EnergyReport read_energy(BinaryReader& r) {
  core::EnergyReport energy;
  energy.load_j = r.f64();
  energy.with_reading_j = r.f64();
  energy.radio_j = r.f64();
  energy.window_s = r.f64();
  return energy;
}

}  // namespace

std::string serialize_cell_result(const CellResult& result) {
  for (const UeStats& ue : result.per_ue) {
    if (ue.trace) {
      throw std::invalid_argument(
          "serialize_cell_result: traced results cannot cross the process "
          "boundary; run supervised sweeps with tracing off");
    }
  }
  std::string out;
  BinaryWriter w(out);
  w.u32(kCellResultVersion);
  w.i32(result.users);
  w.i32(result.channels);
  w.u64(result.offered);
  w.u64(result.dropped);
  w.u64(result.completed);
  w.u64(result.aborted);
  w.u64(result.grant_overcommits);
  w.u64(result.radio_outages);
  w.u64(result.rlf);
  w.u64(result.reestablish_ok);
  w.u64(result.reestablish_fail);
  w.u64(result.cell_outages);
  w.f64(result.mean_busy_grants);
  w.i32(result.peak_busy_grants);
  w.f64(result.mean_grant_hold);
  w.u64(result.leaked_flows);
  w.f64(result.end_time);
  w.u64(result.sim_events);
  w.u64(result.per_ue.size());
  for (const UeStats& ue : result.per_ue) {
    w.i32(ue.offered);
    w.i32(ue.admitted);
    w.i32(ue.dropped);
    w.i32(ue.completed);
    w.i32(ue.aborted);
    w.f64(ue.total_load_time);
    w.f64(ue.total_service_time);
    w.i32(ue.radio_outages);
    w.i32(ue.rlf);
    w.i32(ue.reestablish_ok);
    w.i32(ue.reestablish_fail);
    w.f64(ue.out_of_service_time);
    write_energy(w, ue.energy);
  }
  w.str(result.metrics.to_bytes());
  if (result.telemetry) {
    w.u8(1);
    w.str(result.telemetry->to_bytes());
  } else {
    w.u8(0);
  }
  return out;
}

CellResult deserialize_cell_result(std::string_view bytes) {
  BinaryReader r(bytes);
  if (r.u32() != kCellResultVersion) {
    throw std::runtime_error(
        "deserialize_cell_result: unknown record version");
  }
  CellResult result;
  result.users = r.i32();
  result.channels = r.i32();
  result.offered = r.u64();
  result.dropped = r.u64();
  result.completed = r.u64();
  result.aborted = r.u64();
  result.grant_overcommits = r.u64();
  result.radio_outages = r.u64();
  result.rlf = r.u64();
  result.reestablish_ok = r.u64();
  result.reestablish_fail = r.u64();
  result.cell_outages = r.u64();
  result.mean_busy_grants = r.f64();
  result.peak_busy_grants = r.i32();
  result.mean_grant_hold = r.f64();
  result.leaked_flows = r.u64();
  result.end_time = r.f64();
  result.sim_events = r.u64();
  const std::uint64_t ue_count = r.u64();
  result.per_ue.reserve(ue_count);
  for (std::uint64_t i = 0; i < ue_count; ++i) {
    UeStats ue;
    ue.offered = r.i32();
    ue.admitted = r.i32();
    ue.dropped = r.i32();
    ue.completed = r.i32();
    ue.aborted = r.i32();
    ue.total_load_time = r.f64();
    ue.total_service_time = r.f64();
    ue.radio_outages = r.i32();
    ue.rlf = r.i32();
    ue.reestablish_ok = r.i32();
    ue.reestablish_fail = r.i32();
    ue.out_of_service_time = r.f64();
    ue.energy = read_energy(r);
    result.per_ue.push_back(std::move(ue));
  }
  result.metrics = obs::MetricsRegistry::from_bytes(r.str());
  if (r.u8() != 0) {
    result.telemetry =
        std::make_shared<obs::Telemetry>(obs::Telemetry::from_bytes(r.str()));
  }
  r.expect_done();
  return result;
}

core::SupervisorReport run_cell_sweep_streaming(
    const CellConfig& base, const std::vector<int>& users_axis,
    core::Supervisor& supervisor,
    const std::function<void(std::size_t index, const CellResult& result)>&
        consume) {
  validate(base);
  if (base.per_ue.stack.trace) {
    throw std::invalid_argument(
        "run_cell_sweep_streaming: tracing cannot cross the process "
        "boundary; use the in-process run_cell_sweep for traced sweeps");
  }
  return supervisor.run(
      users_axis.size(),
      [&](std::size_t i) {  // worker process
        CellConfig config = base;
        config.users = users_axis[i];
        return serialize_cell_result(run_cell(config));
      },
      [&](std::size_t i, std::string_view payload) {  // orchestrator
        if (consume) consume(i, deserialize_cell_result(payload));
      });
}

std::vector<CellResult> run_cell_sweep_supervised(
    const CellConfig& base, const std::vector<int>& users_axis,
    core::Supervisor& supervisor) {
  std::vector<CellResult> results(users_axis.size());
  const core::SupervisorReport report = run_cell_sweep_streaming(
      base, users_axis, supervisor,
      [&](std::size_t i, const CellResult& result) { results[i] = result; });
  if (!report.ok()) {
    std::string what = "run_cell_sweep_supervised: shard(s) failed:";
    for (const core::ShardError& e : report.errors) {
      what += " [" + std::to_string(e.shard) + "] " + e.what + ";";
    }
    throw std::runtime_error(what);
  }
  return results;
}

std::vector<CellResult> run_cell_sweep(const CellConfig& base,
                                       const std::vector<int>& users_axis,
                                       core::BatchRunner& runner) {
  std::vector<CellResult> results(users_axis.size());
  runner.run_indexed(users_axis.size(), [&](std::size_t i) {
    CellConfig config = base;
    config.users = users_axis[i];
    results[i] = run_cell(config);
  });
  return results;
}

double users_at_drop_target(const std::vector<int>& users_axis,
                            const std::vector<CellResult>& results,
                            double target) {
  if (users_axis.size() != results.size() || users_axis.empty()) {
    throw std::invalid_argument(
        "users_at_drop_target: axis/results size mismatch or empty");
  }
  double previous_users = users_axis.front();
  double previous_drop = results.front().drop_probability();
  if (previous_drop >= target) return previous_users;
  for (std::size_t i = 1; i < users_axis.size(); ++i) {
    const double users = users_axis[i];
    const double drop = results[i].drop_probability();
    if (drop >= target) {
      const double slope =
          (drop - previous_drop) / std::max(1e-9, users - previous_users);
      return previous_users + (target - previous_drop) / std::max(1e-9, slope);
    }
    previous_users = users;
    previous_drop = drop;
  }
  return users_axis.back();
}

}  // namespace eab::cell
