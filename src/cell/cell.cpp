#include "cell/cell.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "cell/cell_sim.hpp"
#include "core/sweep.hpp"
#include "sim/simulator.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace eab::cell {

const char* to_string(SharePolicy policy) {
  switch (policy) {
    case SharePolicy::kRoundRobin: return "round-robin";
    case SharePolicy::kProportionalFair: return "proportional-fair";
  }
  return "?";
}

CellResult run_cell(const CellConfig& config) {
  validate_cell_config(config);
  sim::Simulator sim;
  sim.set_event_budget(config.sim_event_budget);
  sim.set_shard_count(config.sim_shards);
  TickCoordinator ticks;
  const bool telemetry = config.telemetry_tick > 0;
  CellSim cell(sim, config, /*cell_index=*/0, /*shard_base=*/0,
               telemetry ? &ticks : nullptr);
  std::vector<std::unique_ptr<CellUe>> ues;
  ues.reserve(config.users);
  for (int id = 0; id < config.users; ++id) {
    // Everything a UE schedules — from wiring-time fade windows and cache
    // storms to every event its sessions spawn (children inherit the
    // firing event's shard) — lands on the UE's own shard.
    sim.set_schedule_shard(id % config.sim_shards);
    ues.push_back(cell.make_ue(
        id, derive_seed(config.cell_seed, static_cast<std::uint64_t>(id))));
  }
  if (config.cell_outage_count > 0) {
    // Whole-cell events touch every UE, so they live on shard 0 like the
    // telemetry tick; the merged fire order is shard-count-invariant.
    sim.set_schedule_shard(0);
    cell.schedule_cell_outages();
  }
  for (auto& ue : ues) {
    sim.set_schedule_shard(ue->id % config.sim_shards);
    cell.schedule_first_arrival(*ue);
  }
  Seconds workload_end = 0;
  if (telemetry) {
    sim.set_schedule_shard(0);
    cell.start_telemetry();
    // The trailing tick — the one that finds the queue drained — is always
    // the very last event, so the last non-tick event is the last workload
    // event.  Tracking its time makes end_time, every energy window and
    // mean_busy_grants bit-identical to an unsampled run; the only
    // observable delta of sampling stays sim_events itself.
    while (sim.step()) {
      if (!ticks.consume_tick_fired()) workload_end = sim.now();
    }
  } else {
    sim.run();
  }
  const Seconds end = telemetry ? workload_end : sim.now();
  return cell.finalize(end, sim.fired_count());
}

namespace {

// v2 appends the optional telemetry blob after the metrics registry; v3
// adds the radio-failure accounting (cell aggregates + per-UE fields).
constexpr std::uint32_t kCellResultVersion = 3;

void write_energy(BinaryWriter& w, const core::EnergyReport& energy) {
  w.f64(energy.load_j);
  w.f64(energy.with_reading_j);
  w.f64(energy.radio_j);
  w.f64(energy.window_s);
}

core::EnergyReport read_energy(BinaryReader& r) {
  core::EnergyReport energy;
  energy.load_j = r.f64();
  energy.with_reading_j = r.f64();
  energy.radio_j = r.f64();
  energy.window_s = r.f64();
  return energy;
}

}  // namespace

std::string serialize_cell_result(const CellResult& result) {
  for (const UeStats& ue : result.per_ue) {
    if (ue.trace) {
      throw std::invalid_argument(
          "serialize_cell_result: traced results cannot cross the process "
          "boundary; run supervised sweeps with tracing off");
    }
  }
  std::string out;
  BinaryWriter w(out);
  w.u32(kCellResultVersion);
  w.i32(result.users);
  w.i32(result.channels);
  w.u64(result.offered);
  w.u64(result.dropped);
  w.u64(result.completed);
  w.u64(result.aborted);
  w.u64(result.grant_overcommits);
  w.u64(result.radio_outages);
  w.u64(result.rlf);
  w.u64(result.reestablish_ok);
  w.u64(result.reestablish_fail);
  w.u64(result.cell_outages);
  w.f64(result.mean_busy_grants);
  w.i32(result.peak_busy_grants);
  w.f64(result.mean_grant_hold);
  w.u64(result.leaked_flows);
  w.f64(result.end_time);
  w.u64(result.sim_events);
  w.u64(result.per_ue.size());
  for (const UeStats& ue : result.per_ue) {
    w.i32(ue.offered);
    w.i32(ue.admitted);
    w.i32(ue.dropped);
    w.i32(ue.completed);
    w.i32(ue.aborted);
    w.f64(ue.total_load_time);
    w.f64(ue.total_service_time);
    w.i32(ue.radio_outages);
    w.i32(ue.rlf);
    w.i32(ue.reestablish_ok);
    w.i32(ue.reestablish_fail);
    w.f64(ue.out_of_service_time);
    write_energy(w, ue.energy);
  }
  w.str(result.metrics.to_bytes());
  if (result.telemetry) {
    w.u8(1);
    w.str(result.telemetry->to_bytes());
  } else {
    w.u8(0);
  }
  return out;
}

CellResult deserialize_cell_result(std::string_view bytes) {
  BinaryReader r(bytes);
  if (r.u32() != kCellResultVersion) {
    throw std::runtime_error(
        "deserialize_cell_result: unknown record version");
  }
  CellResult result;
  result.users = r.i32();
  result.channels = r.i32();
  result.offered = r.u64();
  result.dropped = r.u64();
  result.completed = r.u64();
  result.aborted = r.u64();
  result.grant_overcommits = r.u64();
  result.radio_outages = r.u64();
  result.rlf = r.u64();
  result.reestablish_ok = r.u64();
  result.reestablish_fail = r.u64();
  result.cell_outages = r.u64();
  result.mean_busy_grants = r.f64();
  result.peak_busy_grants = r.i32();
  result.mean_grant_hold = r.f64();
  result.leaked_flows = r.u64();
  result.end_time = r.f64();
  result.sim_events = r.u64();
  const std::uint64_t ue_count = r.u64();
  result.per_ue.reserve(ue_count);
  for (std::uint64_t i = 0; i < ue_count; ++i) {
    UeStats ue;
    ue.offered = r.i32();
    ue.admitted = r.i32();
    ue.dropped = r.i32();
    ue.completed = r.i32();
    ue.aborted = r.i32();
    ue.total_load_time = r.f64();
    ue.total_service_time = r.f64();
    ue.radio_outages = r.i32();
    ue.rlf = r.i32();
    ue.reestablish_ok = r.i32();
    ue.reestablish_fail = r.i32();
    ue.out_of_service_time = r.f64();
    ue.energy = read_energy(r);
    result.per_ue.push_back(std::move(ue));
  }
  result.metrics = obs::MetricsRegistry::from_bytes(r.str());
  if (r.u8() != 0) {
    result.telemetry =
        std::make_shared<obs::Telemetry>(obs::Telemetry::from_bytes(r.str()));
  }
  r.expect_done();
  return result;
}

namespace {

/// The one sweep definition all three deprecated entry points share: shard
/// i is run_cell(base with users = users_axis[i]).
core::SweepDriver<CellResult> cell_sweep_driver(
    const CellConfig& base, const std::vector<int>& users_axis) {
  core::SweepDriver<CellResult> driver;
  driver
      .shard([&base, &users_axis](std::size_t i) {
        CellConfig config = base;
        config.users = users_axis[i];
        return run_cell(config);
      })
      .codec(serialize_cell_result,
             [](std::string_view payload) {
               return deserialize_cell_result(payload);
             });
  return driver;
}

}  // namespace

core::SupervisorReport run_cell_sweep_streaming(
    const CellConfig& base, const std::vector<int>& users_axis,
    core::Supervisor& supervisor,
    const std::function<void(std::size_t index, const CellResult& result)>&
        consume) {
  validate_cell_config(base);
  if (base.per_ue.stack.trace) {
    throw std::invalid_argument(
        "run_cell_sweep_streaming: tracing cannot cross the process "
        "boundary; use the in-process run_cell_sweep for traced sweeps");
  }
  core::SweepDriver<CellResult> driver = cell_sweep_driver(base, users_axis);
  if (consume) {
    driver.consume([&consume](std::size_t i, CellResult&& result) {
      consume(i, result);
    });
  }
  return driver.run(users_axis.size(),
                    core::SweepExecution::supervised(supervisor));
}

std::vector<CellResult> run_cell_sweep_supervised(
    const CellConfig& base, const std::vector<int>& users_axis,
    core::Supervisor& supervisor) {
  std::vector<CellResult> results(users_axis.size());
  const core::SupervisorReport report = run_cell_sweep_streaming(
      base, users_axis, supervisor,
      [&](std::size_t i, const CellResult& result) { results[i] = result; });
  if (!report.ok()) {
    std::string what = "run_cell_sweep_supervised: shard(s) failed:";
    for (const core::ShardError& e : report.errors) {
      what += " [" + std::to_string(e.shard) + "] " + e.what + ";";
    }
    throw std::runtime_error(what);
  }
  return results;
}

std::vector<CellResult> run_cell_sweep(const CellConfig& base,
                                       const std::vector<int>& users_axis,
                                       core::BatchRunner& runner) {
  std::vector<CellResult> results(users_axis.size());
  core::SweepDriver<CellResult> driver = cell_sweep_driver(base, users_axis);
  driver.consume([&results](std::size_t i, CellResult&& result) {
    results[i] = std::move(result);
  });
  driver.run(users_axis.size(), core::SweepExecution::pooled(runner));
  return results;
}

double users_at_drop_target(const std::vector<int>& users_axis,
                            const std::vector<CellResult>& results,
                            double target) {
  if (users_axis.size() != results.size() || users_axis.empty()) {
    throw std::invalid_argument(
        "users_at_drop_target: axis/results size mismatch or empty");
  }
  double previous_users = users_axis.front();
  double previous_drop = results.front().drop_probability();
  if (previous_drop >= target) return previous_users;
  for (std::size_t i = 1; i < users_axis.size(); ++i) {
    const double users = users_axis[i];
    const double drop = results[i].drop_probability();
    if (drop >= target) {
      const double slope =
          (drop - previous_drop) / std::max(1e-9, users - previous_users);
      return previous_users + (target - previous_drop) / std::max(1e-9, slope);
    }
    previous_users = users;
    previous_drop = drop;
  }
  return users_axis.back();
}

}  // namespace eab::cell
