#include "cell/cell_sim.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/bytes.hpp"

namespace eab::cell {

namespace {

// Sub-stream indices under each UE's derive_seed(cell_seed, ue_id) root.
// Session load seeds use the session index directly, so these sit far
// outside any plausible session count.
constexpr std::uint64_t kArrivalStream = 0x00A1'55EE'0000'0001ULL;
constexpr std::uint64_t kFaultStream = 0x00A1'55EE'0000'0002ULL;
constexpr std::uint64_t kGeneratorStream = 0x00A1'55EE'0000'0003ULL;
constexpr std::uint64_t kOutageStream = 0x00A1'55EE'0000'0004ULL;

/// Proportional-fair reference volume: a UE that has already pulled this
/// many bytes weighs half of a fresh one.
constexpr double kFairShareRefBytes = 1024.0 * 1024.0;

}  // namespace

void validate_cell_config(const CellConfig& config) {
  // Re-validates the per-UE template exactly as every single-UE experiment
  // is validated; a Scenario assembled by hand gets the same checks here.
  core::ScenarioBuilder()
      .stack(config.per_ue.stack)
      .reading_window(config.per_ue.reading_window)
      .seed(config.per_ue.seed)
      .build();
  if (config.specs.empty()) {
    throw std::invalid_argument("run_cell: specs must be non-empty");
  }
  if (config.users < 1) {
    throw std::invalid_argument("run_cell: users must be >= 1");
  }
  if (config.channels < 1) {
    throw std::invalid_argument("run_cell: channels must be >= 1");
  }
  if (config.cell_bandwidth < 0) {
    throw std::invalid_argument("run_cell: cell_bandwidth must be >= 0");
  }
  if (!(config.mean_think_time > 0)) {
    throw std::invalid_argument("run_cell: mean_think_time must be > 0");
  }
  if (!(config.horizon > 0)) {
    throw std::invalid_argument("run_cell: horizon must be > 0");
  }
  if (config.abort_rate < 0 || config.abort_rate > 1) {
    throw std::invalid_argument("run_cell: abort_rate must be in [0, 1]");
  }
  if (config.sim_event_budget == 0) {
    throw std::invalid_argument("run_cell: sim_event_budget must be > 0");
  }
  if (config.sim_shards < 1 || config.sim_shards > 256) {
    throw std::invalid_argument("run_cell: sim_shards must be in [1, 256] (got " +
                                std::to_string(config.sim_shards) + ")");
  }
  if (config.telemetry_tick < 0 || !std::isfinite(config.telemetry_tick)) {
    throw std::invalid_argument(
        "run_cell: telemetry_tick must be >= 0 and finite");
  }
  if (config.telemetry_tick > 0 && config.telemetry_budget < 2) {
    throw std::invalid_argument("run_cell: telemetry_budget must be >= 2");
  }
  if (config.cell_outage_count < 0) {
    throw std::invalid_argument("run_cell: cell_outage_count must be >= 0");
  }
  if (config.cell_outage_count > 0) {
    if (!(config.cell_outage_start >= 0) ||
        !std::isfinite(config.cell_outage_start)) {
      throw std::invalid_argument(
          "run_cell: cell_outage_start must be >= 0 and finite");
    }
    if (!(config.cell_outage_duration > 0) ||
        !std::isfinite(config.cell_outage_duration)) {
      throw std::invalid_argument(
          "run_cell: cell_outage_duration must be > 0 and finite");
    }
    if (!(config.cell_outage_period > config.cell_outage_duration) ||
        !std::isfinite(config.cell_outage_period)) {
      throw std::invalid_argument(
          "run_cell: cell_outage_period must exceed cell_outage_duration "
          "(windows must not overlap) and be finite");
    }
  }
}

CellUe::CellUe(sim::Simulator& sim, const CellConfig& config, int id_,
               std::uint64_t seed_)
    : id(id_),
      seed(seed_),
      rng(derive_seed(seed, kArrivalStream)),
      rrc(sim, config.per_ue.stack.rrc, config.per_ue.stack.power),
      link(sim, config.per_ue.stack.link.dch_bandwidth),
      cpu(sim, config.per_ue.stack.power.cpu_busy_extra),
      ril(sim, rrc),
      generator(derive_seed(seed, kGeneratorStream)),
      hosted_urls(config.specs.size()) {}

CellSim::CellSim(sim::Simulator& sim, const CellConfig& config,
                 int cell_index, int shard_base, TickCoordinator* ticks)
    : config_(config),
      sim_(sim),
      index_(cell_index),
      shard_base_(shard_base),
      per_ue_rate_(config.per_ue.stack.link.dch_bandwidth),
      cell_rate_(config.cell_bandwidth > 0
                     ? config.cell_bandwidth
                     : config.channels * per_ue_rate_),
      outage_enabled_(config.per_ue.stack.outage.enabled() ||
                      config.cell_outage_count > 0),
      ticks_(ticks) {
  if (config.telemetry_tick > 0) {
    if (ticks_ == nullptr) {
      throw std::invalid_argument(
          "CellSim: telemetry requires a TickCoordinator");
    }
    obs::TelemetryConfig telemetry_config;
    telemetry_config.tick = config.telemetry_tick;
    telemetry_config.point_budget = config.telemetry_budget;
    telemetry_config.per_ue = config.telemetry_per_ue;
    telemetry_result_ = std::make_shared<obs::Telemetry>(telemetry_config);
    telemetry_ = telemetry_result_.get();
  }
}

std::unique_ptr<CellUe> CellSim::make_ue(int id, std::uint64_t seed) {
  auto ue = std::make_unique<CellUe>(sim_, config_, id, seed);
  ue->cell = this;
  ue->home = this;
  members_.push_back(ue.get());
  home_ues_.push_back(ue.get());
  wire(*ue);
  return ue;
}

void CellSim::schedule_cell_outages() {
  // Whole-cell events touch every UE, so they live on the cell's base
  // shard like the telemetry tick; the merged fire order is
  // shard-count-invariant.
  for (int i = 0; i < config_.cell_outage_count; ++i) {
    const Seconds begin =
        config_.cell_outage_start + i * config_.cell_outage_period;
    sim_.schedule_at(begin, [this] { cell_outage_begin(); });
    sim_.schedule_at(begin + config_.cell_outage_duration,
                     [this] { cell_outage_end(); });
  }
}

void CellSim::wire(CellUe& ue) {
  const auto& stack = config_.per_ue.stack;
  if (stack.fault_plan.enabled()) {
    net::FaultPlan plan = stack.fault_plan;
    plan.seed = derive_seed(ue.seed, kFaultStream);
    ue.faults.emplace(sim_, ue.link, plan);
  }
  if (outage_enabled_) {
    // A disabled per-UE plan still gets an injector when whole-cell
    // outages are on: it schedules no windows of its own and exists so
    // cell_outage_begin/end can drive coverage (and so the plan's
    // reestablish_fail_rate applies to cell-driven re-establishment too).
    radio::OutagePlan plan = stack.outage;
    plan.seed = derive_seed(ue.seed, kOutageStream);
    ue.outage.emplace(sim_, ue.link, ue.rrc, plan, ue.id);
    ue.rrc.set_on_rlf([&ue] {
      if (ue.client) ue.client->on_radio_lost();
    });
  }
  if (stack.use_browser_cache) {
    ue.cache.emplace(stack.browser_cache_bytes);
    if (stack.chaos.cache_storm_count > 0) {
      for (int i = 0; i < stack.chaos.cache_storm_count; ++i) {
        sim_.schedule_at(
            stack.chaos.cache_storm_start + i * stack.chaos.cache_storm_period,
            [&ue] { ue.cache->clear(); });
      }
    }
  }
  if (stack.chaos.ril_socket_failures > 0) {
    ue.ril.fail_next(stack.chaos.ril_socket_failures);
  }
  if (stack.trace) {
    ue.trace = std::make_shared<obs::TraceRecorder>();
    ue.rrc.set_trace(ue.trace.get());
    ue.link.set_trace(ue.trace.get());
    ue.ril.set_trace(ue.trace.get());
    if (ue.faults) ue.faults->set_trace(ue.trace.get());
    if (ue.outage) ue.outage->set_trace(ue.trace.get());
  }
  // Hooks route through ue.cell, the SERVING cell: after a reselection or
  // handover the UE's grant transitions and rebalances land in the right
  // scheduler without re-wiring.
  ue.rrc.set_on_state_change([&ue](radio::RrcState from, radio::RrcState to) {
    if (to == radio::RrcState::kDch && from != radio::RrcState::kDch) {
      ue.cell->on_dch_enter(ue);
    } else if (from == radio::RrcState::kDch &&
               to != radio::RrcState::kDch) {
      ue.cell->on_dch_exit(ue);
    }
  });
  ue.link.set_on_flow_change([&ue] { ue.cell->rebalance(); });
}

// --- grant pool -----------------------------------------------------------

void CellSim::note_busy() {
  busy_timeline_.set_power(sim_.now(), static_cast<double>(busy_));
  peak_busy_ = std::max(peak_busy_, busy_);
  // Piggyback sampling on the grant transition that already fired: exact
  // occupancy resolution with zero extra simulator events.
  if (telemetry_) {
    telemetry_->sample("cell.busy_grants", sim_.now(),
                       static_cast<double>(busy_));
  }
}

/// Admission check at session arrival.  A UE still holding a grant from
/// its previous session (Original-pipeline tail across a short think
/// time) is admitted on that grant — unless the whole cell is down, which
/// blocks even grant holders (their grants are mid-drain via RLF).
bool CellSim::try_admit(CellUe& ue) {
  if (cell_down_) return false;
  if (ue.grant != Grant::kFree) return true;
  if (busy_ >= config_.channels) return false;
  ue.grant = Grant::kReserved;
  ++busy_;
  note_busy();
  return true;
}

void CellSim::on_dch_enter(CellUe& ue) {
  if (ue.grant == Grant::kReserved) {
    ue.grant = Grant::kHeld;
  } else if (ue.grant == Grant::kFree) {
    // Mid-session re-promotion (a stall let T1 demote the radio while the
    // load was still in flight): take a grant back rather than killing an
    // admitted session, and count the overcommit when none is free.
    if (busy_ >= config_.channels) ++overcommits_;
    ue.grant = Grant::kHeld;
    ++busy_;
    note_busy();
  }
  ue.hold_start = sim_.now();
}

void CellSim::on_dch_exit(CellUe& ue) {
  if (ue.grant != Grant::kHeld) return;
  held_total_ += sim_.now() - ue.hold_start;
  ++hold_intervals_;
  ue.grant = Grant::kFree;
  --busy_;
  note_busy();
}

/// Session ended without the radio ever promoting (fully cache-served
/// load, or an abort before the promotion completed): give the
/// reservation back.
void CellSim::release_if_reserved(CellUe& ue) {
  if (ue.grant != Grant::kReserved) return;
  ue.grant = Grant::kFree;
  --busy_;
  note_busy();
}

// --- membership seams -----------------------------------------------------

void CellSim::attach(CellUe& ue) {
  ue.cell = this;
  members_.push_back(&ue);
  // Entering a dark cell is entering the outage: the UE loses coverage the
  // moment it camps.
  if (cell_down_ && ue.outage) ue.outage->coverage_lost();
  rebalance();
}

void CellSim::detach(CellUe& ue) {
  // Settle the grant ledger before the UE leaves: a held grant books its
  // hold interval here (the target cell starts a fresh one), a reservation
  // is simply released.  The RRC machine is untouched — whether the move
  // is a cheap reselection or a hard handover is the caller's policy.
  if (ue.grant == Grant::kHeld) {
    held_total_ += sim_.now() - ue.hold_start;
    ++hold_intervals_;
    ue.grant = Grant::kFree;
    --busy_;
    note_busy();
  } else if (ue.grant == Grant::kReserved) {
    ue.grant = Grant::kFree;
    --busy_;
    note_busy();
  }
  // Leaving a dark cell restores coverage (the target applies its own
  // outage state on attach).
  if (cell_down_ && ue.outage) ue.outage->coverage_restored();
  members_.erase(std::find(members_.begin(), members_.end(), &ue));
  ue.cell = nullptr;
  rebalance();
}

void CellSim::reserve_on_entry(CellUe& ue) {
  ue.grant = Grant::kReserved;
  ++busy_;
  note_busy();
}

void CellSim::hold_on_entry(CellUe& ue) {
  ue.grant = Grant::kHeld;
  ++busy_;
  ue.hold_start = sim_.now();
  note_busy();
}

// --- whole-cell outages ---------------------------------------------------

/// The cell goes dark: every attached UE loses coverage at once.  Grants
/// are not freed here — each holder drains through its own RLF detection
/// (T313-style) into OUT_OF_SERVICE, whose DCH-exit hook frees the grant;
/// admission is blocked for the whole window via cell_down_.
void CellSim::cell_outage_begin() {
  cell_down_ = true;
  ++cell_outages_;
  if (telemetry_) {
    telemetry_->sample("cell.down", sim_.now(), 1.0);
  }
  for (CellUe* ue : members_) {
    if (ue->outage) ue->outage->coverage_lost();
  }
}

/// Coverage returns: every RLF'd UE starts re-establishment (bounded
/// attempts with backoff), idle campers re-camp silently, and admission
/// re-ramps as re-established holders re-acquire grants.
void CellSim::cell_outage_end() {
  cell_down_ = false;
  if (telemetry_) {
    telemetry_->sample("cell.down", sim_.now(), 0.0);
  }
  for (CellUe* ue : members_) {
    if (ue->outage) ue->outage->coverage_restored();
  }
}

// --- bandwidth sharing ----------------------------------------------------

/// Recomputes every active UE's link capacity.  Re-entrant calls (a
/// set_capacity completing a flow whose callback starts another) fold
/// into one loop pass; termination is guaranteed because set_capacity
/// no-ops on an unchanged value and no simulated time passes in here.
void CellSim::rebalance() {
  if (rebalancing_) {
    rebalance_dirty_ = true;
    return;
  }
  rebalancing_ = true;
  do {
    rebalance_dirty_ = false;
    active_.clear();
    for (CellUe* ue : members_) {
      if (ue->link.active_flows() > 0 && !ue->link.paused()) {
        active_.push_back(ue);
      }
    }
    if (active_.empty()) continue;
    if (config_.share == SharePolicy::kRoundRobin) {
      const BytesPerSecond share =
          cell_rate_ / static_cast<double>(active_.size());
      for (CellUe* ue : active_) {
        ue->link.set_capacity(std::clamp(share, 1.0, per_ue_rate_));
      }
    } else {
      double total_weight = 0;
      for (CellUe* ue : active_) {
        total_weight +=
            1.0 / (1.0 + static_cast<double>(ue->link.delivered()) /
                             kFairShareRefBytes);
      }
      for (CellUe* ue : active_) {
        const double weight =
            1.0 / (1.0 + static_cast<double>(ue->link.delivered()) /
                             kFairShareRefBytes);
        const BytesPerSecond share = cell_rate_ * weight / total_weight;
        ue->link.set_capacity(std::clamp(share, 1.0, per_ue_rate_));
      }
    }
  } while (rebalance_dirty_);
  rebalancing_ = false;
}

// --- session process ------------------------------------------------------

void CellSim::schedule_first_arrival(CellUe& ue) {
  const Seconds at = ue.rng.exponential(config_.mean_think_time);
  if (at >= config_.horizon) return;
  sim_.schedule_at(at, [&ue] { ue.cell->start_session(ue); });
}

void CellSim::schedule_next_arrival(CellUe& ue) {
  const Seconds at =
      sim_.now() + ue.rng.exponential(config_.mean_think_time);
  if (at >= config_.horizon) return;
  sim_.schedule_at(at, [&ue] { ue.cell->start_session(ue); });
}

void CellSim::start_session(CellUe& ue) {
  ++ue.stats.offered;
  // Draw the whole per-session decision tuple up front so the stream is
  // identical whether or not this session is admitted.
  const std::size_t spec_index = static_cast<std::size_t>(
      ue.rng.uniform_index(config_.specs.size()));
  const bool wants_abort =
      config_.abort_rate > 0 && ue.rng.chance(config_.abort_rate);
  const Seconds abort_after = wants_abort ? ue.rng.uniform(0.5, 10.0) : 0.0;
  if (!try_admit(ue)) {
    ++ue.stats.dropped;
    schedule_next_arrival(ue);
    return;
  }
  ++ue.stats.admitted;
  begin_load(ue, spec_index, wants_abort, abort_after);
}

void CellSim::begin_load(CellUe& ue, std::size_t spec_index, bool wants_abort,
                         Seconds abort_after) {
  // The previous session's objects stay alive through the think time (a
  // late watchdog or RRC event may still reference them) and are torn
  // down only now, when the next session needs the slot.  The retired
  // retries accrue in the cell that serves the NEW session.
  if (ue.client) retired_retries_ += ue.client->stats().retries;
  ue.load.reset();
  ue.client.reset();
  ++ue.generation;

  const auto& stack = config_.per_ue.stack;
  const corpus::PageSpec& spec = config_.specs[spec_index];
  if (ue.hosted_urls[spec_index].empty()) {
    ue.hosted_urls[spec_index] = ue.generator.host_page(spec, ue.server);
  }
  ue.client = std::make_unique<net::HttpClient>(
      sim_, ue.server, ue.link, ue.rrc, stack.link,
      stack.max_parallel_connections);
  ue.client->set_retry_policy(stack.retry);
  if (ue.faults) ue.client->set_fault_injector(&*ue.faults);
  if (ue.cache) ue.client->set_cache(&*ue.cache);
  if (ue.trace) ue.client->set_trace(ue.trace.get());

  browser::PipelineConfig pipeline = stack.pipeline;
  pipeline.mobile_page = spec.mobile;
  const std::uint64_t load_seed = derive_seed(
      ue.seed, static_cast<std::uint64_t>(ue.sessions_started));
  ++ue.sessions_started;
  ue.load = std::make_unique<browser::PageLoad>(sim_, *ue.client, ue.cpu,
                                                pipeline, load_seed);
  if (stack.force_idle_at_tx) {
    ue.load->set_on_transmission_complete([&ue] { ue.ril.request_idle(); });
  }
  if (ue.trace) ue.load->set_trace(ue.trace.get());

  ue.session_active = true;
  const int gen = ue.generation;
  ue.load->start(ue.hosted_urls[spec_index],
                 [&ue, gen](const browser::LoadMetrics& m) {
                   if (ue.generation != gen) return;
                   ue.cell->on_session_done(ue, m);
                 });
  if (wants_abort) {
    sim_.schedule_in(abort_after, [&ue, gen] {
      // Stale by the time it fires (the load settled and the next session
      // replaced it): the generation check makes it a no-op.
      if (ue.generation == gen && ue.load) ue.load->abort();
    });
  }
}

void CellSim::on_session_done(CellUe& ue, const browser::LoadMetrics& m) {
  ue.session_active = false;
  if (m.aborted) {
    ++ue.stats.aborted;
  } else {
    ++ue.stats.completed;
  }
  ue.stats.total_load_time += m.total_time();
  ue.stats.total_service_time += m.transmission_time();
  release_if_reserved(ue);
  schedule_next_arrival(ue);
}

// --- telemetry ------------------------------------------------------------
// Null-sink idiom (DESIGN.md §11): telemetry_ is null when disabled, and
// every sampling site is guarded, so a disabled run schedules zero extra
// events and stays bit-identical to a build without telemetry.

/// Samples every cross-layer gauge at simulated time `t`.  Read-only over
/// the simulation state: the workload trajectory is unchanged.  Gauges
/// cover the UEs currently attached to this cell.
void CellSim::sample_gauges(Seconds t) {
  const radio::RadioPowerModel& power = config_.per_ue.stack.power;
  int idle = 0, fach = 0, dch = 0, oos = 0;
  double radio_w = 0, flows = 0, link_bps = 0;
  double energy_idle = 0, energy_fach = 0, energy_dch = 0, energy_oos = 0;
  std::uint64_t in_flight = 0, queued = 0, retries = retired_retries_;
  std::uint64_t offered = 0, dropped = 0, aborted = 0;
  std::uint64_t rlf = 0, reestablish_ok = 0, reestablish_fail = 0;
  for (const CellUe* owner : members_) {
    const CellUe& ue = *owner;
    const radio::RrcState state = ue.rrc.state();
    switch (state) {
      case radio::RrcState::kIdle: ++idle; break;
      case radio::RrcState::kFach: ++fach; break;
      case radio::RrcState::kDch: ++dch; break;
      case radio::RrcState::kOutOfService: ++oos; break;
    }
    radio_w += ue.rrc.power().current_power();
    // Residency-derived cumulative energy at the nominal per-state dwell
    // powers (Table 5); transfer and signalling overlays live in the exact
    // per-UE PowerTimeline, this series tracks where the joules accrue.
    energy_idle += ue.rrc.time_in(radio::RrcState::kIdle) * power.idle;
    energy_fach += ue.rrc.time_in(radio::RrcState::kFach) * power.fach;
    energy_dch +=
        ue.rrc.time_in(radio::RrcState::kDch) * power.dch_no_transfer;
    if (outage_enabled_) {
      energy_oos += ue.rrc.time_in(radio::RrcState::kOutOfService) *
                    power.out_of_service;
      rlf += static_cast<std::uint64_t>(ue.rrc.rlf_count());
      reestablish_ok += static_cast<std::uint64_t>(ue.rrc.reestablish_ok());
      reestablish_fail +=
          static_cast<std::uint64_t>(ue.rrc.reestablish_fail());
    }
    const std::size_t ue_flows = ue.link.active_flows();
    flows += static_cast<double>(ue_flows);
    if (ue_flows > 0 && !ue.link.paused()) link_bps += ue.link.capacity();
    std::uint64_t ue_fetches = 0;
    if (ue.client) {
      in_flight += static_cast<std::uint64_t>(ue.client->in_flight());
      queued += ue.client->queued();
      retries += ue.client->stats().retries;
      ue_fetches = static_cast<std::uint64_t>(ue.client->in_flight()) +
                   ue.client->queued();
    }
    offered += static_cast<std::uint64_t>(ue.stats.offered);
    dropped += static_cast<std::uint64_t>(ue.stats.dropped);
    aborted += static_cast<std::uint64_t>(ue.stats.aborted);
    if (telemetry_->config().per_ue) {
      char name[32];
      std::snprintf(name, sizeof name, "ue%03d.rrc_state", ue.id);
      telemetry_->sample(name, t, static_cast<double>(state));
      std::snprintf(name, sizeof name, "ue%03d.fetches", ue.id);
      telemetry_->sample(name, t, static_cast<double>(ue_fetches));
    }
  }
  telemetry_->sample("cell.rrc_idle", t, idle);
  telemetry_->sample("cell.rrc_fach", t, fach);
  telemetry_->sample("cell.rrc_dch", t, dch);
  telemetry_->sample("cell.busy_grants", t, static_cast<double>(busy_));
  telemetry_->sample("cell.grant_overcommits", t,
                     static_cast<double>(overcommits_));
  telemetry_->sample("cell.radio_power_w", t, radio_w);
  telemetry_->sample("cell.energy_idle_j", t, energy_idle);
  telemetry_->sample("cell.energy_fach_j", t, energy_fach);
  telemetry_->sample("cell.energy_dch_j", t, energy_dch);
  telemetry_->sample("cell.active_flows", t, flows);
  telemetry_->sample("cell.link_bps", t, link_bps);
  telemetry_->sample("cell.inflight_fetches", t,
                     static_cast<double>(in_flight));
  telemetry_->sample("cell.queued_fetches", t, static_cast<double>(queued));
  telemetry_->sample("cell.offered", t, static_cast<double>(offered));
  telemetry_->sample("cell.dropped", t, static_cast<double>(dropped));
  telemetry_->sample("cell.aborted", t, static_cast<double>(aborted));
  telemetry_->sample("cell.retries", t, static_cast<double>(retries));
  // Registered only when an outage knob is on: a disabled run's telemetry
  // blob stays byte-identical to a build without the radio failure model.
  if (outage_enabled_) {
    telemetry_->sample("cell.rrc_oos", t, oos);
    telemetry_->sample("cell.energy_oos_j", t, energy_oos);
    telemetry_->sample("cell.rlf", t, static_cast<double>(rlf));
    telemetry_->sample("cell.reestablish_ok", t,
                       static_cast<double>(reestablish_ok));
    telemetry_->sample("cell.reestablish_fail", t,
                       static_cast<double>(reestablish_fail));
  }
}

/// Self-rescheduling sampling tick.  The chain ends one tick after the
/// whole simulator's workload drains (TickCoordinator::keep_alive), so the
/// run terminates exactly as it would without telemetry — just later by
/// the tick events themselves; the driver's run loop excludes tick events
/// from the end-of-run accounting via consume_tick_fired().
void CellSim::schedule_tick(Seconds at) {
  sim_.schedule_at(at, [this, at] {
    ticks_->mark_tick();
    sample_gauges(at);
    if (ticks_->keep_alive(sim_.pending_count())) {
      schedule_tick(at + config_.telemetry_tick);
    }
  });
}

void CellSim::start_telemetry() {
  // Baseline sample at t=0 (no event needed: the clock hasn't started),
  // then the self-rescheduling tick.  Ticks live on the cell's base shard;
  // descendants inherit the firing event's shard, so the chain stays there
  // and the merged fire order is bit-identical at any shard count.
  sample_gauges(0.0);
  ticks_->chain_started();
  schedule_tick(config_.telemetry_tick);
}

// --- end of run -----------------------------------------------------------

CellResult CellSim::finalize(Seconds end, std::uint64_t sim_events) {
  note_busy();

  CellResult result;
  result.users = config_.users;
  result.channels = config_.channels;
  result.end_time = end;
  result.sim_events = sim_events;
  result.grant_overcommits = overcommits_;
  result.peak_busy_grants = peak_busy_;
  result.mean_busy_grants = end > 0 ? busy_timeline_.energy(0, end) / end : 0;
  result.mean_grant_hold =
      hold_intervals_ > 0 ? held_total_ / static_cast<double>(hold_intervals_)
                          : 0;
  result.per_ue.reserve(home_ues_.size());
  for (CellUe* ue : home_ues_) {
    ue->stats.energy = core::EnergyReport::measure(
        PowerTimeline::sum(ue->rrc.power(), ue->cpu.power()), ue->rrc.power(),
        end, end);
    ue->stats.trace = ue->trace;
    ue->stats.radio_outages = ue->outage ? ue->outage->outages_started() : 0;
    ue->stats.rlf = ue->rrc.rlf_count();
    ue->stats.reestablish_ok = ue->rrc.reestablish_ok();
    ue->stats.reestablish_fail = ue->rrc.reestablish_fail();
    ue->stats.out_of_service_time =
        ue->rrc.time_in(radio::RrcState::kOutOfService);
    result.radio_outages += static_cast<std::uint64_t>(ue->stats.radio_outages);
    result.rlf += static_cast<std::uint64_t>(ue->stats.rlf);
    result.reestablish_ok +=
        static_cast<std::uint64_t>(ue->stats.reestablish_ok);
    result.reestablish_fail +=
        static_cast<std::uint64_t>(ue->stats.reestablish_fail);
    result.offered += static_cast<std::uint64_t>(ue->stats.offered);
    result.dropped += static_cast<std::uint64_t>(ue->stats.dropped);
    result.completed += static_cast<std::uint64_t>(ue->stats.completed);
    result.aborted += static_cast<std::uint64_t>(ue->stats.aborted);
    result.leaked_flows +=
        static_cast<std::uint64_t>(ue->link.active_flows());
    result.per_ue.push_back(ue->stats);
  }

  result.metrics.count("cell.offered", static_cast<double>(result.offered));
  result.metrics.count("cell.dropped", static_cast<double>(result.dropped));
  result.metrics.count("cell.completed",
                       static_cast<double>(result.completed));
  result.metrics.count("cell.aborted", static_cast<double>(result.aborted));
  result.metrics.count("cell.grant_overcommits",
                       static_cast<double>(overcommits_));
  result.metrics.count("cell.sim_events",
                       static_cast<double>(result.sim_events));
  result.metrics.set_max("cell.peak_busy_grants",
                         static_cast<double>(peak_busy_));
  result.metrics.set_max("cell.users", static_cast<double>(config_.users));
  result.metrics.observe("cell.mean_busy_grants", result.mean_busy_grants);
  result.metrics.observe("cell.drop_probability", result.drop_probability());
  result.cell_outages = cell_outages_;
  // Registered only when an outage knob is on, so a disabled run's metrics
  // snapshot is byte-identical to a build without the radio failure model.
  if (outage_enabled_) {
    result.metrics.count("cell.outages", static_cast<double>(cell_outages_));
    result.metrics.count("cell.radio_outages",
                         static_cast<double>(result.radio_outages));
    result.metrics.count("cell.rlf", static_cast<double>(result.rlf));
    result.metrics.count("cell.reestablish_ok",
                         static_cast<double>(result.reestablish_ok));
    result.metrics.count("cell.reestablish_fail",
                         static_cast<double>(result.reestablish_fail));
  }
  result.telemetry = telemetry_result_;
  return result;
}

}  // namespace eab::cell
