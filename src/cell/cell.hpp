// Multi-UE shared-cell co-simulation (paper Section 5.4, from first
// principles).
//
// The M/G/N loss model of capacity/mgn.hpp assumes each session's service
// time: here we derive it.  N independent UE stacks — each with its own
// RrcMachine, SharedLink, HttpClient, pipeline and fault plan, all seeded
// from derive_seed(cell_seed, ue_id) — run in ONE sim::Simulator against a
// CellScheduler that owns a bounded pool of channel pairs (DCH grants) and
// a shared downlink bandwidth budget.  A session that arrives while every
// grant is busy is dropped (admission blocking, no queue), which is exactly
// the dropping probability Fig 11 plots; the energy-aware pipeline's
// fast-dormancy release frees its grant at transmission-complete instead of
// after the T1 tail, so the same pool admits more users.
//
// The per-UE template is a core::Scenario — the same validated object every
// single-UE experiment is built from — so a config that passed
// ScenarioBuilder::build() is valid here too.  Within the cell:
//   - per-UE seeds:     derive_seed(cell_seed, ue_id)
//   - arrival stream:   Rng(derive_seed(ue_seed, kArrivalStream))
//   - per-load seed:    derive_seed(ue_seed, session_index)
//   - fault plan seed:  derive_seed(ue_seed, kFaultStream) (when enabled)
// Chaos directives: ril_socket_failures and cache storms apply per UE;
// abort_at does not map onto an open-ended session stream and is ignored —
// use CellConfig::abort_rate, which aborts a random fraction of admitted
// sessions at a uniform 0.5–10 s offset.
//
// Grant lifecycle (kFree → kReserved → kHeld → kFree): admission reserves a
// grant, DCH promotion converts the reservation to a hold, demotion (T1
// expiry or fast-dormancy release) frees it.  A promotion with no
// reservation — a mid-session re-promotion after a stall demoted the radio —
// force-acquires and counts an overcommit rather than killing the session.
//
// Bandwidth: each UE owns a SharedLink whose capacity is recomputed on
// every flow start/finish/pause/resume (SharedLink::set_on_flow_change →
// CellScheduler rebalance → SharedLink::set_capacity): round-robin splits
// the cell budget equally across UEs with active unpaused flows,
// proportional-fair weights each UE by 1/(1 + delivered/1MB); both cap a
// UE's share at its own DCH bearer rate.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/batch.hpp"
#include "core/energy_report.hpp"
#include "core/scenario.hpp"
#include "core/supervisor.hpp"
#include "corpus/page_spec.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/units.hpp"

namespace eab::cell {

/// How the cell splits its downlink budget across active UEs.
enum class SharePolicy {
  kRoundRobin,         ///< equal split across UEs with active flows
  kProportionalFair,   ///< weight 1/(1 + delivered/1MB): lighter users first
};

const char* to_string(SharePolicy policy);

/// One cell: N users, a grant pool, a bandwidth budget, a session process.
struct CellConfig {
  /// Per-UE stack template (validated through ScenarioBuilder).  The
  /// reading window is unused here — think times cover reading — and the
  /// per-scenario seed is superseded by cell_seed-derived per-UE seeds.
  core::Scenario per_ue;
  /// Session page mix (Table 3); each session picks uniformly.  Must be
  /// non-empty.
  std::vector<corpus::PageSpec> specs;
  int users = 16;
  /// Bounded pool of dedicated channel pairs (the M/G/N "N").
  int channels = 8;
  /// Shared downlink budget in bytes/s; 0 resolves to
  /// channels * per_ue.stack.link.dch_bandwidth (grant-limited, no
  /// bandwidth contention — the paper's regime).
  BytesPerSecond cell_bandwidth = 0;
  SharePolicy share = SharePolicy::kRoundRobin;
  /// Mean exponential think time between a session's end and the same
  /// user's next arrival (paper: 25 s).
  Seconds mean_think_time = 25.0;
  /// No arrivals are scheduled at or past the horizon; in-flight sessions
  /// drain to completion (paper: 4 hours).
  Seconds horizon = 4.0 * 3600.0;
  std::uint64_t cell_seed = 1;
  /// Fraction of admitted sessions the user abandons mid-load (chaos atom;
  /// 0 = never).  Abort offset is uniform in [0.5, 10] s after start.
  double abort_rate = 0.0;
  /// Whole-cell coverage outages (robustness extension): `cell_outage_count`
  /// windows of `cell_outage_duration` seconds, the first beginning at
  /// `cell_outage_start` and subsequent ones `cell_outage_period` apart.
  /// While the cell is down every UE loses coverage simultaneously — the
  /// grant pool drains as radio-link failure demotes the holders into
  /// OUT_OF_SERVICE — and arrivals are dropped at admission; on restore
  /// every RLF'd UE runs re-establishment and admission re-ramps.  0
  /// disables: the run is byte-identical to a build without the feature.
  /// Independent of the per-UE OutagePlan in per_ue.stack.outage (whose
  /// seed-derived windows hit one UE at a time); both may be enabled.
  int cell_outage_count = 0;
  Seconds cell_outage_start = 60.0;
  Seconds cell_outage_period = 120.0;
  Seconds cell_outage_duration = 5.0;
  /// Liveness guard for the whole cell (many stacks share one simulator,
  /// so the budget is far above the single-load default).
  std::uint64_t sim_event_budget = 2'000'000'000;
  /// Event-queue shards (sim::Simulator::set_shard_count).  UE `i` and every
  /// event transitively scheduled by it live on shard `i % sim_shards`, so
  /// the engine stops paying one global heap for all UEs.  The merged fire
  /// order is bit-identical to the single-queue engine for any value; 1 (the
  /// default) keeps the classic single heap.
  int sim_shards = 1;
  /// Simulated-time telemetry sampling period (DESIGN.md §11).  0 (the
  /// default) disables telemetry entirely: no series, no tick events, the
  /// run is bit-identical — sim_events included — to a build without the
  /// telemetry layer.  When positive, a self-rescheduling tick samples
  /// cross-layer gauges (RRC census, grant occupancy, link flows, fetch
  /// queues, energy by state, drop/retry/abort counters) every
  /// telemetry_tick simulated seconds; grant-occupancy changes additionally
  /// piggyback on already-fired events.  The tick never mutates simulation
  /// state, so the workload trajectory matches the untelemetered run; only
  /// sim_events grows by the tick count.
  Seconds telemetry_tick = 0;
  /// Per-series point budget: past it, adjacent windows merge (power-of-two
  /// downsampling) so memory stays constant on arbitrarily long runs.
  std::size_t telemetry_budget = 256;
  /// Also record per-UE series (ue<id>.rrc_state, ue<id>.fetches); off by
  /// default because they scale the series count by the user count.
  bool telemetry_per_ue = false;
};

/// Per-UE accounting.
struct UeStats {
  int offered = 0;    ///< sessions that arrived (admitted + dropped)
  int admitted = 0;
  int dropped = 0;    ///< blocked at admission: every grant busy
  int completed = 0;  ///< loads that reached final display
  int aborted = 0;    ///< admitted loads abandoned by the abort atom
  Seconds total_load_time = 0;     ///< sum of total_time over settled loads
  Seconds total_service_time = 0;  ///< sum of data-transmission times
  // Radio-failure accounting (all zero unless an outage knob is enabled).
  int radio_outages = 0;  ///< coverage losses this UE saw (incl. cell-wide)
  int rlf = 0;            ///< radio-link failures declared
  int reestablish_ok = 0;
  int reestablish_fail = 0;
  Seconds out_of_service_time = 0;  ///< residency camped without coverage
  /// Energy over the whole run (load_j == with_reading_j: the window is the
  /// full cell run, there is no separate reading tail).
  core::EnergyReport energy;
  /// Per-UE structured trace when per_ue.stack.trace is set (each UE owns
  /// its recorder, so TraceAuditor runs per UE); null otherwise.
  std::shared_ptr<obs::TraceRecorder> trace;
};

/// Results of one cell run.
struct CellResult {
  int users = 0;
  int channels = 0;
  std::uint64_t offered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t completed = 0;
  std::uint64_t aborted = 0;
  /// DCH promotions that found no reservation and every grant busy.
  std::uint64_t grant_overcommits = 0;
  // Radio-failure aggregates (sums of the per-UE fields; all zero unless an
  // outage knob is enabled).
  std::uint64_t radio_outages = 0;
  std::uint64_t rlf = 0;
  std::uint64_t reestablish_ok = 0;
  std::uint64_t reestablish_fail = 0;
  std::uint64_t cell_outages = 0;  ///< whole-cell windows that began
  double mean_busy_grants = 0;  ///< time-averaged busy (reserved+held) grants
  int peak_busy_grants = 0;
  Seconds mean_grant_hold = 0;  ///< mean DCH occupancy per hold interval
  /// Link flows still registered after the simulator drained (0 on any
  /// healthy run; a leak here means a fetch path lost track of a flow).
  std::uint64_t leaked_flows = 0;
  Seconds end_time = 0;         ///< simulator clock after draining
  std::uint64_t sim_events = 0;
  std::vector<UeStats> per_ue;
  obs::MetricsRegistry metrics;
  /// Cross-layer time series when CellConfig::telemetry_tick > 0; null
  /// otherwise.  Serialized with the result (unlike traces), so supervised
  /// sweeps carry series across process boundaries bit-identically.
  std::shared_ptr<obs::Telemetry> telemetry;

  double drop_probability() const {
    return offered == 0 ? 0.0
                        : static_cast<double>(dropped) /
                              static_cast<double>(offered);
  }
};

/// Runs one cell to completion.  Deterministic: a pure function of the
/// config.  Throws std::invalid_argument on a contradictory config (the
/// per-UE template is re-validated through ScenarioBuilder::build()).
CellResult run_cell(const CellConfig& config);

/// Users-axis sweep sharded across a BatchRunner: results[i] is
/// run_cell(base with users = users_axis[i]), bit-identical to the serial
/// loop regardless of worker count.
/// DEPRECATED: thin wrapper over core::SweepDriver<CellResult> (the pooled
/// tier); new call sites should build the driver directly.
std::vector<CellResult> run_cell_sweep(const CellConfig& base,
                                       const std::vector<int>& users_axis,
                                       core::BatchRunner& runner);

/// Bit-exact binary encoding of a CellResult for cross-process transfer
/// (supervised sweeps checkpoint these records): every field including the
/// per-UE stats and the metrics registry round-trips exactly — doubles as
/// bit patterns — so a shard recovered from the journal is byte-identical
/// to one recomputed in-process.  Traces are not carried: serializing a
/// result whose UEs hold trace recorders throws std::invalid_argument.
std::string serialize_cell_result(const CellResult& result);
/// Inverse of serialize_cell_result; throws std::runtime_error on
/// truncated or malformed bytes (a torn checkpoint record).
CellResult deserialize_cell_result(std::string_view bytes);

/// run_cell_sweep on the process-level supervision layer: each users-axis
/// point is one forked worker shard, completed points stream back to
/// `consume` in ascending axis order (merge-on-arrival; each result is
/// released after the callback returns, so aggregation is constant-memory
/// in the axis length), and — when the supervisor has a checkpoint path —
/// a killed run resumes with bit-identical results.  The per-UE template
/// must not enable tracing (recorders cannot cross the process boundary);
/// throws std::invalid_argument otherwise.  Returns the supervision report;
/// a failed shard surfaces there and `consume` skips it.
/// DEPRECATED: thin wrapper over core::SweepDriver<CellResult> (the
/// supervised tier); new call sites should build the driver directly.
core::SupervisorReport run_cell_sweep_streaming(
    const CellConfig& base, const std::vector<int>& users_axis,
    core::Supervisor& supervisor,
    const std::function<void(std::size_t index, const CellResult& result)>&
        consume);

/// Convenience wrapper over run_cell_sweep_streaming that collects the
/// results into a vector (results[i] corresponds to users_axis[i]); throws
/// std::runtime_error if any shard failed.  Bit-identical to
/// run_cell_sweep() over the same axis for any worker count, kill schedule
/// or resume history.
/// DEPRECATED: thin wrapper over run_cell_sweep_streaming (itself a
/// core::SweepDriver wrapper); new call sites should build the driver.
std::vector<CellResult> run_cell_sweep_supervised(
    const CellConfig& base, const std::vector<int>& users_axis,
    core::Supervisor& supervisor);

/// Users supported at `target` drop probability, linearly interpolated over
/// a sweep (results must correspond to ascending users_axis entries).
/// Returns the last axis value if the target is never reached.
double users_at_drop_target(const std::vector<int>& users_axis,
                            const std::vector<CellResult>& results,
                            double target);

}  // namespace eab::cell
