#include "cell/service_times.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/scenario.hpp"
#include "util/rng.hpp"

namespace eab::cell {

std::vector<Seconds> measure_service_times(
    const std::vector<corpus::PageSpec>& specs, browser::PipelineMode mode,
    const capacity::CapacityConfig& config, core::BatchRunner& runner) {
  if (config.service_samples_per_spec < 1) {
    throw std::invalid_argument(
        "measure_service_times: service_samples_per_spec must be >= 1");
  }
  const core::StackConfig stack = core::ScenarioBuilder(mode).build().stack;
  std::vector<core::BatchJob> jobs;
  jobs.reserve(specs.size() *
               static_cast<std::size_t>(config.service_samples_per_spec));
  for (const auto& spec : specs) {
    for (int k = 0; k < config.service_samples_per_spec; ++k) {
      const std::uint64_t seed =
          k == 0 ? config.service_sample_seed
                 : derive_seed(config.service_sample_seed,
                               static_cast<std::uint64_t>(k));
      jobs.push_back(core::BatchJob{spec, stack, 20.0, seed});
    }
  }
  std::vector<Seconds> times;
  times.reserve(jobs.size());
  for (const auto& r : runner.run(jobs)) {
    times.push_back(r.metrics.transmission_time());
  }
  return times;
}

std::vector<Seconds> service_time_quantiles(std::vector<Seconds> times,
                                            const std::vector<double>& probs) {
  if (times.empty()) {
    throw std::invalid_argument("service_time_quantiles: empty sample set");
  }
  std::sort(times.begin(), times.end());
  std::vector<Seconds> result;
  result.reserve(probs.size());
  for (const double p : probs) {
    if (p < 0 || p > 1) {
      throw std::invalid_argument(
          "service_time_quantiles: probability out of [0, 1]");
    }
    const double h = p * static_cast<double>(times.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(h));
    const std::size_t hi = std::min(lo + 1, times.size() - 1);
    result.push_back(times[lo] + (h - static_cast<double>(lo)) *
                                     (times[hi] - times[lo]));
  }
  return result;
}

}  // namespace eab::cell
