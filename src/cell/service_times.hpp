// Empirical service-time measurement for the M/G/N capacity model.
//
// Section 5.4 feeds the loss system the measured data-transmission time of
// opening each benchmark page.  This is the one place those measurements
// are taken: full-stack loads through ScenarioBuilder, sampling controlled
// by CapacityConfig::service_sample_seed / service_samples_per_spec so the
// checked-in reference quantiles (tests/cell_test.cpp) regenerate
// bit-identically from config alone.
#pragma once

#include <vector>

#include "browser/pipeline.hpp"
#include "capacity/mgn.hpp"
#include "core/batch.hpp"
#include "corpus/page_spec.hpp"
#include "util/units.hpp"

namespace eab::cell {

/// One data-transmission time per (spec, sample), in spec-major order:
/// spec 0's samples, then spec 1's, ...  Sample k of every spec uses load
/// seed service_sample_seed when k == 0 (so the default config reproduces
/// the historical single-sample sweep exactly) and
/// derive_seed(service_sample_seed, k) otherwise.  Loads fan out over the
/// runner's pool; results are submission-ordered, so the vector is
/// bit-identical for any worker count.
std::vector<Seconds> measure_service_times(
    const std::vector<corpus::PageSpec>& specs, browser::PipelineMode mode,
    const capacity::CapacityConfig& config, core::BatchRunner& runner);

/// Deterministic quantiles of a sample set: sorts a copy and evaluates each
/// probability with linear interpolation between order statistics (the
/// standard type-7 estimator).  `probs` entries must lie in [0, 1];
/// `times` must be non-empty.
std::vector<Seconds> service_time_quantiles(std::vector<Seconds> times,
                                            const std::vector<double>& probs);

}  // namespace eab::cell
