// The cell engine behind run_cell, exposed so a metro (src/metro/) can run
// M cells in ONE simulator with UEs migrating between them.
//
// Ownership split: CellSim no longer owns the simulator or the UEs.  The
// driver (run_cell, or metro::run_metro) owns the sim::Simulator and a flat
// vector of CellUe; each CellSim is one cell's scheduler — grant pool,
// bandwidth budget, session process, whole-cell outages, telemetry — over
// the UEs currently *attached* to it.  A UE's serving cell is `ue.cell`;
// every per-session hook (arrival, DCH enter/exit, flow change) routes
// through that pointer, so after a reselection or handover the UE's next
// event lands in the right scheduler with no re-wiring.
//
// Membership seams (the handover substrate):
//   attach(ue)   — ue joins this cell's member set; if the cell is mid
//                  whole-cell outage the UE loses coverage on entry.
//   detach(ue)   — grant bookkeeping is settled (a held grant books its
//                  hold interval, a reservation is released), coverage is
//                  restored if the cell was dark, the UE leaves the member
//                  set.  The UE's RRC state is deliberately untouched:
//                  reselection vs hard handover is the caller's policy
//                  (metro::run_metro), not the cell's.
//   has_free_grant()/reserve_on_entry(ue)/hold_on_entry(ue) — target-side
//                  admission for a migrating UE.
//
// A 1-cell, zero-mobility metro run and run_cell drive this class through
// the identical event-scheduling sequence, so their results are
// byte-identical (enforced by check.sh).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "browser/cpu.hpp"
#include "browser/pipeline.hpp"
#include "cell/cell.hpp"
#include "core/ril.hpp"
#include "corpus/generator.hpp"
#include "net/cache.hpp"
#include "net/fault.hpp"
#include "net/http_client.hpp"
#include "net/outage.hpp"
#include "net/shared_link.hpp"
#include "net/web_server.hpp"
#include "obs/trace.hpp"
#include "radio/rrc.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/timeline.hpp"
#include "util/units.hpp"

namespace eab::cell {

/// Validates a CellConfig exactly as run_cell does (the per-UE template is
/// re-validated through ScenarioBuilder::build()).  Public so a metro can
/// validate its per-cell template once without duplicating the checks.
/// Throws std::invalid_argument on a contradictory config.
void validate_cell_config(const CellConfig& config);

/// DCH grant lifecycle: admission reserves, promotion holds, demotion frees.
enum class Grant { kFree, kReserved, kHeld };

class CellSim;

/// One UE's full stack plus its cell-membership state.  Constructed via
/// CellSim::make_ue (which wires the hooks); owned by the driver.
struct CellUe {
  int id;               ///< globally unique across the whole run
  std::uint64_t seed;   ///< derive_seed(cell_seed, local_index)
  Rng rng;              ///< arrival/spec/abort decision stream
  radio::RrcMachine rrc;
  net::SharedLink link;
  browser::CpuScheduler cpu;
  core::RilStateSwitcher ril;
  net::WebServer server;
  corpus::PageGenerator generator;
  std::optional<net::FaultInjector> faults;
  std::optional<net::OutageInjector> outage;
  std::optional<net::ResourceCache> cache;
  std::vector<std::string> hosted_urls;  ///< per spec index, "" = unhosted
  std::unique_ptr<net::HttpClient> client;
  std::unique_ptr<browser::PageLoad> load;
  std::shared_ptr<obs::TraceRecorder> trace;
  int generation = 0;        ///< bumps on every teardown; stale events no-op
  int sessions_started = 0;  ///< per-load seed index
  UeStats stats;

  CellSim* cell = nullptr;  ///< serving cell (membership; updated on moves)
  CellSim* home = nullptr;  ///< creating cell (stats aggregate here)
  Grant grant = Grant::kFree;
  Seconds hold_start = 0;          ///< when the current hold began
  bool session_active = false;     ///< a load is in flight (begin_load set)

  CellUe(sim::Simulator& sim, const CellConfig& config, int id_,
         std::uint64_t seed_);
};

/// Ends every cell's telemetry tick chain exactly when the whole
/// simulator's workload drains.  With M live chains, each chain holds
/// exactly one pending tick between events, so when a tick fires and only
/// the other chains' ticks remain (pending == live - 1) the workload is
/// done and this chain stops; with M == 1 this reduces to the classic
/// `pending_count() > 0` check.  consume_tick_fired() lets the run loop
/// exclude tick events from end-of-run accounting, keeping end_time and
/// every energy window bit-identical to an unsampled run.
class TickCoordinator {
 public:
  void chain_started() { ++live_; }
  /// Called from inside a tick after sampling; true = reschedule.
  bool keep_alive(std::size_t pending) {
    if (pending > live_ - 1) return true;
    --live_;
    return false;
  }
  void mark_tick() { tick_fired_ = true; }
  /// True (and resets) iff the event just fired was a telemetry tick.
  bool consume_tick_fired() {
    const bool fired = tick_fired_;
    tick_fired_ = false;
    return fired;
  }

 private:
  std::size_t live_ = 0;
  bool tick_fired_ = false;
};

/// One cell's scheduler: grant pool, bandwidth budget, session process,
/// whole-cell outages, telemetry.  See file comment for the ownership
/// split and the membership seams.
class CellSim {
 public:
  /// `config` and `ticks` must outlive the CellSim.  `ticks` is required
  /// when config.telemetry_tick > 0 and ignored otherwise.  `shard_base`
  /// is the first simulator shard of this cell's shard range (cell c of a
  /// metro owns shards [c*S, (c+1)*S) where S = config.sim_shards);
  /// whole-cell events (outage windows, telemetry ticks) live on it.
  CellSim(sim::Simulator& sim, const CellConfig& config, int cell_index = 0,
          int shard_base = 0, TickCoordinator* ticks = nullptr);

  CellSim(const CellSim&) = delete;
  CellSim& operator=(const CellSim&) = delete;

  const CellConfig& config() const { return config_; }
  int index() const { return index_; }
  int shard_base() const { return shard_base_; }
  bool down() const { return cell_down_; }
  std::shared_ptr<obs::Telemetry> telemetry() const {
    return telemetry_result_;
  }

  // --- construction-time registration (driver sets the schedule shard
  //     before each call; events scheduled inside inherit it) -------------

  /// Builds a UE homed in this cell, wires its hooks (grant transitions,
  /// fault/outage/cache/trace plumbing, bandwidth observer) and registers
  /// it as a member.  The caller owns the UE and must keep it alive until
  /// finalize().
  std::unique_ptr<CellUe> make_ue(int id, std::uint64_t seed);

  /// Schedules this cell's whole-cell outage windows (no-op when
  /// cell_outage_count == 0).
  void schedule_cell_outages();

  /// Schedules the UE's first session arrival (exponential think time from
  /// t = 0; skipped when it lands at or past the horizon).
  void schedule_first_arrival(CellUe& ue);

  /// Samples the t = 0 baseline and starts the self-rescheduling telemetry
  /// tick chain.  Requires config.telemetry_tick > 0.
  void start_telemetry();

  // --- membership seams (reselection / handover substrate) ---------------

  void attach(CellUe& ue);
  void detach(CellUe& ue);
  bool has_free_grant() const {
    return !cell_down_ && busy_ < config_.channels;
  }
  /// Target-side admission for a migrating UE that held only a reservation.
  void reserve_on_entry(CellUe& ue);
  /// Target-side grant hold for a hard handover (UE arrives in DCH).
  void hold_on_entry(CellUe& ue);
  /// Recomputes every active member's link capacity (public so a move
  /// between cells can rebalance both sides).
  void rebalance();

  // --- end of run ---------------------------------------------------------

  /// Builds this cell's CellResult over its HOME UEs (creation order).
  /// `end` is the workload end time, `sim_events` the events attributable
  /// to this cell (the whole run's fired count for a standalone cell).
  CellResult finalize(Seconds end, std::uint64_t sim_events);

 private:
  /// Attaches grant hooks, fault/cache/trace plumbing and the bandwidth
  /// observer; everything that outlives individual sessions.
  void wire(CellUe& ue);

  // --- grant pool ---------------------------------------------------------

  void note_busy();
  bool try_admit(CellUe& ue);
  void on_dch_enter(CellUe& ue);
  void on_dch_exit(CellUe& ue);
  void release_if_reserved(CellUe& ue);

  // --- whole-cell outages -------------------------------------------------

  void cell_outage_begin();
  void cell_outage_end();

  // --- session process ----------------------------------------------------

  void schedule_next_arrival(CellUe& ue);
  void start_session(CellUe& ue);
  void begin_load(CellUe& ue, std::size_t spec_index, bool wants_abort,
                  Seconds abort_after);
  void on_session_done(CellUe& ue, const browser::LoadMetrics& m);

  // --- telemetry ----------------------------------------------------------

  void sample_gauges(Seconds t);
  void schedule_tick(Seconds at);

  const CellConfig& config_;
  sim::Simulator& sim_;
  const int index_;
  const int shard_base_;
  BytesPerSecond per_ue_rate_;
  BytesPerSecond cell_rate_;
  std::vector<CellUe*> members_;    ///< currently attached (serving set)
  std::vector<CellUe*> home_ues_;   ///< created here, creation order

  const bool outage_enabled_;      ///< any outage knob on (per-UE or cell)
  bool cell_down_ = false;         ///< inside a whole-cell outage window
  std::uint64_t cell_outages_ = 0;
  int busy_ = 0;
  int peak_busy_ = 0;
  std::uint64_t overcommits_ = 0;
  Seconds held_total_ = 0;
  std::uint64_t hold_intervals_ = 0;
  PowerTimeline busy_timeline_;  ///< busy-grant count as a step function

  bool rebalancing_ = false;
  bool rebalance_dirty_ = false;
  std::vector<CellUe*> active_;  ///< scratch for rebalance()

  std::shared_ptr<obs::Telemetry> telemetry_result_;
  obs::Telemetry* telemetry_ = nullptr;  ///< null = sampling disabled
  TickCoordinator* ticks_ = nullptr;
  std::uint64_t retired_retries_ = 0;    ///< retries of torn-down clients
};

}  // namespace eab::cell
