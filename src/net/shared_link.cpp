#include "net/shared_link.hpp"

#include <algorithm>
#include <stdexcept>

namespace eab::net {

SharedLink::SharedLink(sim::Simulator& sim, BytesPerSecond capacity)
    : sim_(sim), capacity_(capacity), rate_(0.0) {
  if (capacity <= 0) {
    throw std::invalid_argument("SharedLink: capacity must be positive");
  }
}

SharedLink::FlowId SharedLink::start_flow(Bytes bytes, OnComplete done) {
  if (!done) throw std::invalid_argument("SharedLink::start_flow: empty callback");
  advance_and_reschedule();  // settle elapsed progress before the set changes
  const FlowId id = next_id_++;
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kLinkFlowStart,
                   static_cast<std::int64_t>(id), 0,
                   static_cast<double>(bytes));
  }
  flows_.push_back(Flow{id, static_cast<double>(bytes), bytes, std::move(done)});
  advance_and_reschedule();
  if (on_flow_change_) on_flow_change_();
  return id;
}

void SharedLink::set_capacity(BytesPerSecond capacity) {
  if (capacity <= 0) {
    throw std::invalid_argument("SharedLink::set_capacity: must be positive");
  }
  if (capacity == capacity_) return;
  advance_and_reschedule();  // bank progress earned at the old rate
  capacity_ = capacity;
  advance_and_reschedule();  // reschedule completions at the new rate
}

bool SharedLink::cancel_flow(FlowId id) {
  // Settle progress first: the flow may in fact have completed at exactly
  // now(), in which case its callback fires here and the cancel is a miss.
  advance_and_reschedule();
  const auto it = std::find_if(flows_.begin(), flows_.end(),
                               [id](const Flow& f) { return f.id == id; });
  if (it == flows_.end()) return false;
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kLinkFlowCancel,
                   static_cast<std::int64_t>(id));
  }
  flows_.erase(it);
  advance_and_reschedule();  // remaining flows split the freed capacity
  if (on_flow_change_) on_flow_change_();
  return true;
}

void SharedLink::pause() {
  if (paused_) return;
  if (trace_) [[unlikely]] trace_->record(sim_.now(), obs::TraceKind::kLinkPause);
  advance_and_reschedule();  // bank progress earned before the fade
  paused_ = true;
  advance_and_reschedule();  // cancels the pending completion, zeroes the rate
  if (on_flow_change_) on_flow_change_();
}

void SharedLink::resume() {
  if (!paused_) return;
  if (trace_) [[unlikely]] trace_->record(sim_.now(), obs::TraceKind::kLinkResume);
  // Settle the clock across the frozen window (no bytes drain while paused),
  // then un-freeze and reschedule from the banked progress.
  advance_and_reschedule();
  paused_ = false;
  advance_and_reschedule();
  if (on_flow_change_) on_flow_change_();
}

void SharedLink::advance_and_reschedule() {
  const Seconds now = sim_.now();
  const Seconds elapsed = now - last_advance_;
  if (elapsed > 0 && !flows_.empty() && !paused_) {
    const double drained = capacity_ / static_cast<double>(flows_.size()) * elapsed;
    for (auto& flow : flows_) {
      flow.remaining = std::max(0.0, flow.remaining - drained);
    }
  }
  last_advance_ = now;

  // Complete every flow that has fully drained (including zero-byte flows).
  // The epsilon is a millibyte: far below transfer granularity, but large
  // enough that the residual's drain time never rounds to zero against the
  // simulation clock's double-precision ulp (which would freeze time).
  constexpr double kResidualBytes = 1e-3;
  std::vector<Flow> finished;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->remaining <= kResidualBytes) {
      finished.push_back(std::move(*it));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }

  rate_.set_power(now, flows_.empty() || paused_ ? 0.0 : capacity_);

  sim_.cancel(next_completion_);
  next_completion_ = {};
  if (!flows_.empty() && !paused_) {
    const double min_remaining =
        std::min_element(flows_.begin(), flows_.end(),
                         [](const Flow& a, const Flow& b) {
                           return a.remaining < b.remaining;
                         })
            ->remaining;
    const double per_flow_rate = capacity_ / static_cast<double>(flows_.size());
    // Never reschedule at a sub-nanosecond delay: it could alias to the
    // current timestamp and make no progress.
    const Seconds delay = std::max(1e-9, min_remaining / per_flow_rate);
    next_completion_ =
        sim_.schedule_in(delay, [this] { advance_and_reschedule(); });
  }

  for (auto& flow : finished) {
    delivered_ += flow.total;
    if (trace_) [[unlikely]] {
      trace_->record(now, obs::TraceKind::kLinkFlowComplete,
                     static_cast<std::int64_t>(flow.id));
    }
    flow.done();
  }
  // After the completion callbacks: they may have started replacement flows,
  // and the observer should see the settled set.
  if (!finished.empty() && on_flow_change_) on_flow_change_();
}

}  // namespace eab::net
