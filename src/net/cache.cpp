#include "net/cache.hpp"

#include <stdexcept>

namespace eab::net {

ResourceCache::ResourceCache(Bytes capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("ResourceCache: zero capacity");
  }
}

bool ResourceCache::cacheable(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kCss:
    case ResourceKind::kJs:
    case ResourceKind::kImage:
    case ResourceKind::kFlash:
      return true;
    case ResourceKind::kHtml:
    case ResourceKind::kOther:
      return false;  // documents and unknowns revalidate every visit
  }
  return false;
}

const Resource* ResourceCache::lookup(const std::string& url) {
  auto it = entries_.find(url);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  recency_.erase(it->second.recency);
  recency_.push_front(url);
  it->second.recency = recency_.begin();
  return &it->second.resource;
}

void ResourceCache::insert(const Resource& resource) {
  if (!cacheable(resource.kind) || resource.size > capacity_) return;
  auto existing = entries_.find(resource.url);
  if (existing != entries_.end()) {
    used_ -= existing->second.resource.size;
    recency_.erase(existing->second.recency);
    entries_.erase(existing);
  }
  while (used_ + resource.size > capacity_) evict_one();
  recency_.push_front(resource.url);
  used_ += resource.size;
  entries_.emplace(resource.url, Entry{resource, recency_.begin()});
}

void ResourceCache::evict_one() {
  if (recency_.empty()) return;
  const std::string victim = recency_.back();
  recency_.pop_back();
  auto it = entries_.find(victim);
  if (it != entries_.end()) {
    used_ -= it->second.resource.size;
    entries_.erase(it);
    ++evictions_;
  }
}

void ResourceCache::clear() {
  entries_.clear();
  recency_.clear();
  used_ = 0;
}

}  // namespace eab::net
