#include "net/http_client.hpp"

#include <memory>
#include <stdexcept>

namespace eab::net {
namespace {
/// Reading a cached object off flash (Android 1.6-era storage).
constexpr Seconds kCacheLookupLatency = 0.012;
}  // namespace

HttpClient::HttpClient(sim::Simulator& sim, const WebServer& server,
                       SharedLink& link, radio::RrcMachine& rrc,
                       radio::LinkConfig link_config, int max_parallel)
    : sim_(sim),
      server_(server),
      link_(link),
      rrc_(rrc),
      link_config_(link_config),
      max_parallel_(max_parallel) {
  if (max_parallel < 1) {
    throw std::invalid_argument("HttpClient: max_parallel must be >= 1");
  }
}

void HttpClient::fetch(const std::string& url, OnFetched done,
                       bool high_priority) {
  if (!done) throw std::invalid_argument("HttpClient::fetch: empty callback");
  if (cache_ != nullptr) {
    if (const Resource* cached = cache_->lookup(url)) {
      // Local hit: flash-read latency, no radio, no link.
      const Seconds requested_at = sim_.now();
      if (stats_.first_request_at < 0) stats_.first_request_at = requested_at;
      sim_.schedule_in(kCacheLookupLatency,
                       [this, cached, url, requested_at,
                        done = std::move(done)] {
                         ++stats_.fetches;
                         ++stats_.cache_hits;
                         FetchResult result;
                         result.resource = cached;
                         result.url = url;
                         result.requested_at = requested_at;
                         result.completed_at = sim_.now();
                         done(result);
                       });
      return;
    }
  }
  if (high_priority) {
    queue_.push_front(PendingRequest{url, std::move(done)});
  } else {
    queue_.push_back(PendingRequest{url, std::move(done)});
  }
  pump();
}

void HttpClient::pump() {
  while (in_flight_ < max_parallel_ && !queue_.empty()) {
    PendingRequest request = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    start_request(std::move(request));
  }
}

void HttpClient::start_request(PendingRequest request) {
  const Seconds requested_at = sim_.now();
  if (stats_.first_request_at < 0) stats_.first_request_at = requested_at;

  // Shared state for the request's completion path. A shared_ptr keeps it
  // alive through the chain of scheduled callbacks.
  auto state = std::make_shared<PendingRequest>(std::move(request));

  rrc_.request_channel([this, state, requested_at] {
    // Channel is up; the request goes on the air now.
    rrc_.begin_transfer();
    const Resource* lookup = server_.find(state->url);
    const Seconds setup = link_config_.rtt + link_config_.server_latency +
                          link_config_.slow_start_delay(lookup ? lookup->size : 0);
    sim_.schedule_in(setup, [this, state, requested_at] {
      const Resource* resource = server_.find(state->url);
      const Bytes size = resource ? resource->size : 0;
      link_.start_flow(size, [this, state, requested_at, resource] {
        rrc_.end_transfer();
        --in_flight_;
        ++stats_.fetches;
        if (resource) {
          stats_.bytes_fetched += resource->size;
          if (cache_ != nullptr) cache_->insert(*resource);
        } else {
          ++stats_.not_found;
        }
        stats_.last_byte_at = sim_.now();
        FetchResult result;
        result.resource = resource;
        result.url = state->url;
        result.requested_at = requested_at;
        result.completed_at = sim_.now();
        state->done(result);
        pump();
      });
    });
  });
}

}  // namespace eab::net
