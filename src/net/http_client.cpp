#include "net/http_client.hpp"

#include <algorithm>
#include <stdexcept>

namespace eab::net {
namespace {
/// Reading a cached object off flash (Android 1.6-era storage).
constexpr Seconds kCacheLookupLatency = 0.012;
}  // namespace

const char* to_string(FetchStatus status) {
  switch (status) {
    case FetchStatus::kOk: return "ok";
    case FetchStatus::kNotFound: return "not-found";
    case FetchStatus::kTruncated: return "truncated";
    case FetchStatus::kTimedOut: return "timed-out";
    case FetchStatus::kAborted: return "aborted";
    case FetchStatus::kRadioLost: return "radio-lost";
  }
  return "?";
}

HttpClient::HttpClient(sim::Simulator& sim, const WebServer& server,
                       SharedLink& link, radio::RrcMachine& rrc,
                       radio::LinkConfig link_config, int max_parallel)
    : sim_(sim),
      server_(server),
      link_(link),
      rrc_(rrc),
      link_config_(link_config),
      max_parallel_(max_parallel) {
  if (max_parallel < 1) {
    throw std::invalid_argument("HttpClient: max_parallel must be >= 1");
  }
}

void HttpClient::fetch(const std::string& url, OnFetched done,
                       bool high_priority) {
  if (!done) throw std::invalid_argument("HttpClient::fetch: empty callback");
  const std::uint32_t trace_name = trace_ ? trace_->intern(url) : 0;
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kHttpFetchQueued, 0, 0, 0,
                   trace_name);
  }
  if (cache_ != nullptr) {
    if (const Resource* cached = cache_->lookup(url)) {
      // Local hit: flash-read latency, no radio, no link.
      const Seconds requested_at = sim_.now();
      if (stats_.first_request_at < 0) stats_.first_request_at = requested_at;
      sim_.schedule_in(kCacheLookupLatency,
                       [this, cached, url, requested_at, trace_name,
                        done = std::move(done)] {
                         ++stats_.fetches;
                         ++stats_.cache_hits;
                         stats_.last_byte_at = sim_.now();
                         if (trace_) [[unlikely]] {
                           trace_->record(sim_.now(),
                                          obs::TraceKind::kHttpCacheHit, 0, 0,
                                          0, trace_name);
                           trace_->record(
                               sim_.now(), obs::TraceKind::kHttpFetchSettled, 0,
                               static_cast<std::int64_t>(FetchStatus::kOk),
                               static_cast<double>(cached->size), trace_name);
                         }
                         FetchResult result;
                         result.resource = cached;
                         result.status = FetchStatus::kOk;
                         result.attempts = 0;
                         result.url = url;
                         result.requested_at = requested_at;
                         result.completed_at = sim_.now();
                         done(result);
                       });
      return;
    }
  }
  if (high_priority) {
    queue_.push_front(PendingRequest{url, std::move(done)});
  } else {
    queue_.push_back(PendingRequest{url, std::move(done)});
  }
  pump();
}

void HttpClient::pump() {
  while (in_flight_ < max_parallel_ && !queue_.empty()) {
    PendingRequest request = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    start_request(std::move(request));
  }
}

void HttpClient::start_request(PendingRequest request) {
  auto state = std::make_shared<RequestState>();
  state->url = std::move(request.url);
  state->done = std::move(request.done);
  state->requested_at = sim_.now();
  state->trace_name = trace_ ? trace_->intern(state->url) : 0;
  if (stats_.first_request_at < 0) stats_.first_request_at = state->requested_at;
  active_.push_back(state);
  run_attempt(state);
}

std::size_t HttpClient::abort_all() {
  std::size_t aborted = 0;
  // Queued requests first: they never started an attempt, so they settle
  // directly (attempts = 0, like a cache hit's accounting) without touching
  // the radio.  Drain the queue before settling in-flight ones so that the
  // pump() at the end of each finish() finds nothing to start.
  std::deque<PendingRequest> queued = std::move(queue_);
  queue_.clear();
  for (PendingRequest& request : queued) {
    ++aborted;
    ++stats_.fetches;
    ++stats_.failed;
    stats_.last_byte_at = sim_.now();
    if (trace_) [[unlikely]] {
      trace_->record(sim_.now(), obs::TraceKind::kHttpFetchSettled, 0,
                     static_cast<std::int64_t>(FetchStatus::kAborted), 0,
                     trace_->intern(request.url));
    }
    FetchResult result;
    result.status = FetchStatus::kAborted;
    result.attempts = 0;
    result.url = std::move(request.url);
    result.requested_at = sim_.now();
    result.completed_at = sim_.now();
    request.done(result);
  }
  // In-flight requests: tear down the current attempt (watchdog, pending
  // first-byte event, link flow, RRC transfer marker) and settle terminally.
  // finish() erases each from active_, so iterate over a copy.
  std::vector<StatePtr> active = active_;
  for (const StatePtr& state : active) {
    if (state->settled) continue;
    ++aborted;
    abort_attempt(*state);
    finish(state, nullptr, nullptr, FetchStatus::kAborted, 0);
  }
  return aborted;
}

std::size_t HttpClient::on_radio_lost() {
  std::size_t torn_down = 0;
  // retry_or_fail may settle a fetch terminally, which erases it from
  // active_ inside finish(); iterate over a copy.
  std::vector<StatePtr> active = active_;
  for (const StatePtr& state : active) {
    if (state->settled) continue;
    ++torn_down;
    ++stats_.radio_losses;
    abort_attempt(*state);
    retry_or_fail(state, FetchStatus::kRadioLost);
  }
  return torn_down;
}

void HttpClient::run_attempt(const StatePtr& state) {
  ++state->attempt;
  state->attempt_live = true;
  const int attempt = state->attempt;
  const FaultDecision fault =
      faults_ != nullptr ? faults_->decide(state->url, attempt)
                         : FaultDecision{};
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kHttpAttemptStart, attempt, 0, 0,
                   state->trace_name);
    if (fault.kind != FaultKind::kNone) {
      trace_->record(sim_.now(), obs::TraceKind::kFaultDecision, attempt,
                     static_cast<std::int64_t>(fault.kind),
                     fault.extra_first_byte_latency, state->trace_name);
    }
  }

  // Arm the watchdog for this attempt.  Promotion time counts against it —
  // a phone that cannot get dedicated channels is as stuck as one whose
  // server went silent.
  if (retry_.request_timeout > 0) {
    state->timeout_event = sim_.schedule_in(
        retry_.request_timeout,
        [this, state, attempt] { on_timeout(state, attempt); });
  }

  rrc_.request_channel([this, state, attempt, fault] {
    // The promotion may complete after the watchdog already abandoned (or
    // even terminally failed) this attempt; a stale notification must not
    // touch the radio.
    if (stale(*state, attempt)) return;
    rrc_.begin_transfer();
    state->transfer_active = true;

    if (fault.kind == FaultKind::kConnectionLost) {
      // The connection drops before the response; TCP surfaces the reset
      // after about one round trip, so the failure is detected (unlike a
      // stall) and retried without waiting for the watchdog.  The radio
      // was up and transmitting for the attempt — that energy is spent.
      state->setup_event =
          sim_.schedule_in(link_config_.rtt, [this, state, attempt] {
            if (stale(*state, attempt)) return;
            ++stats_.connection_losses;
            abort_attempt(*state);
            retry_or_fail(state, FetchStatus::kAborted);
          });
      return;
    }
    if (fault.kind == FaultKind::kStall) {
      // Response blackhole: the request went out, nothing ever comes back.
      // Only the watchdog rescues the attempt; until then the transfer
      // marker pins the radio at transmit power — the realistic cost of a
      // dead server on a 3G link.
      return;
    }

    const Resource* lookup = server_.find(state->url);
    const Seconds setup = link_config_.rtt + link_config_.server_latency +
                          link_config_.slow_start_delay(lookup ? lookup->size : 0) +
                          fault.extra_first_byte_latency;
    state->setup_event = sim_.schedule_in(setup, [this, state, attempt, fault] {
      if (stale(*state, attempt)) return;
      state->setup_event = {};
      const Resource* resource = server_.find(state->url);
      if (resource == nullptr) {
        // 404: the error response is headers-only (a zero-byte flow).
        if (trace_) [[unlikely]] {
          trace_->record(sim_.now(), obs::TraceKind::kHttpFirstByte, attempt, 0,
                         0, state->trace_name);
        }
        state->flow = link_.start_flow(0, [this, state, attempt] {
          if (stale(*state, attempt)) return;
          finish(state, nullptr, nullptr, FetchStatus::kNotFound, 0);
        });
        return;
      }
      Bytes wire_bytes = resource->size;
      bool truncate = fault.kind == FaultKind::kTruncate && resource->size >= 2;
      if (truncate) {
        // Cut at a random byte offset strictly inside the transfer.
        const auto offset = static_cast<Bytes>(
            fault.truncate_fraction * static_cast<double>(resource->size));
        wire_bytes = std::clamp<Bytes>(offset, 1, resource->size - 1);
      }
      if (trace_) [[unlikely]] {
        trace_->record(sim_.now(), obs::TraceKind::kHttpFirstByte, attempt, 0,
                       static_cast<double>(wire_bytes), state->trace_name);
      }
      state->flow = link_.start_flow(
          wire_bytes, [this, state, attempt, resource, truncate, wire_bytes] {
            if (stale(*state, attempt)) return;
            state->flow = 0;
            if (!truncate) {
              finish(state, resource, nullptr, FetchStatus::kOk,
                     resource->size);
              return;
            }
            // The connection died mid-body: synthesize the partial resource
            // the browser actually holds.  The body is cut at the same
            // offset as the wire transfer (capped by the real text length;
            // binary resources carry no body to cut).
            auto partial = std::make_shared<Resource>();
            partial->url = resource->url;
            partial->kind = resource->kind;
            partial->size = wire_bytes;
            partial->body = resource->body.substr(
                0, std::min<std::size_t>(resource->body.size(),
                                         static_cast<std::size_t>(wire_bytes)));
            // Grab the raw pointer before the shared_ptr argument is moved
            // from (argument evaluation order is unspecified).
            const Resource* body = partial.get();
            finish(state, body, std::move(partial), FetchStatus::kTruncated,
                   wire_bytes);
          });
    });
  });
}

void HttpClient::abort_attempt(RequestState& state) {
  state.attempt_live = false;
  sim_.cancel(state.timeout_event);
  state.timeout_event = {};
  sim_.cancel(state.setup_event);
  state.setup_event = {};
  if (state.flow != 0) {
    link_.cancel_flow(state.flow);
    state.flow = 0;
  }
  if (state.transfer_active) {
    // Abandoning the attempt must release the radio transfer marker, or the
    // RRC machine would pin DCH-transmit power forever (and never rearm its
    // inactivity timers).
    rrc_.end_transfer();
    state.transfer_active = false;
  }
}

void HttpClient::on_timeout(const StatePtr& state, int attempt) {
  if (stale(*state, attempt)) return;
  ++stats_.timeouts;
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kHttpWatchdogFire, attempt, 0, 0,
                   state->trace_name);
  }
  abort_attempt(*state);
  retry_or_fail(state, FetchStatus::kTimedOut);
}

void HttpClient::retry_or_fail(const StatePtr& state, FetchStatus failure) {
  const int retry_number = state->attempt;  // retry n follows attempt n
  if (retry_number > retry_.max_retries) {
    finish(state, nullptr, nullptr, failure, 0);
    return;
  }
  ++stats_.retries;
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kHttpRetryScheduled,
                   retry_number, 0, retry_.backoff_before_retry(retry_number),
                   state->trace_name);
  }
  // Exponential backoff before re-driving the whole path — channel request,
  // transfer marker, first byte — from scratch.  The radio may demote (T1)
  // during a long backoff; the retry then pays the promotion again, which
  // is exactly the recovery energy the fault benches measure.
  sim_.schedule_in(retry_.backoff_before_retry(retry_number),
                   [this, state] {
                     if (state->settled) return;
                     run_attempt(state);
                   });
}

void HttpClient::finish(const StatePtr& state, const Resource* resource,
                        std::shared_ptr<const Resource> owned,
                        FetchStatus status, Bytes delivered_bytes) {
  sim_.cancel(state->timeout_event);
  state->timeout_event = {};
  state->flow = 0;
  if (state->transfer_active) {
    rrc_.end_transfer();
    state->transfer_active = false;
  }
  state->settled = true;
  --in_flight_;
  for (auto it = active_.begin(); it != active_.end(); ++it) {
    if (it->get() == state.get()) {
      active_.erase(it);
      break;
    }
  }
  ++stats_.fetches;
  switch (status) {
    case FetchStatus::kOk:
      stats_.bytes_fetched += delivered_bytes;
      if (cache_ != nullptr && resource != nullptr) cache_->insert(*resource);
      break;
    case FetchStatus::kTruncated:
      // Partial bytes crossed the air interface and are charged, but a
      // truncated body never enters the cache (a real cache drops entries
      // shorter than their Content-Length).
      stats_.bytes_fetched += delivered_bytes;
      ++stats_.truncated;
      break;
    case FetchStatus::kNotFound:
      ++stats_.not_found;
      break;
    case FetchStatus::kTimedOut:
    case FetchStatus::kAborted:
    case FetchStatus::kRadioLost:
      ++stats_.failed;
      break;
  }
  stats_.last_byte_at = sim_.now();
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kHttpFetchSettled,
                   state->attempt, static_cast<std::int64_t>(status),
                   static_cast<double>(delivered_bytes), state->trace_name);
  }
  FetchResult result;
  result.resource = resource;
  result.owned = std::move(owned);
  result.status = status;
  result.attempts = state->attempt;
  result.url = state->url;
  result.requested_at = state->requested_at;
  result.completed_at = sim_.now();
  state->done(result);
  pump();
}

}  // namespace eab::net
