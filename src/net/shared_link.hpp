// Processor-sharing link model.
//
// All concurrent HTTP responses drain through one radio downlink; the link
// splits its capacity equally among active flows (a standard fluid-flow
// approximation of TCP fairness on a shared bottleneck).  The link also
// exposes its instantaneous aggregate rate as a timeline, which is how the
// Fig 4 traffic-shape experiment observes transfer burstiness.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.hpp"
#include "util/timeline.hpp"
#include "util/units.hpp"

namespace eab::net {

/// A capacity-shared downlink with per-flow completion callbacks.
class SharedLink {
 public:
  using OnComplete = std::function<void()>;

  SharedLink(sim::Simulator& sim, BytesPerSecond capacity);

  /// Starts a flow of `bytes`; `done` fires when the last byte has drained.
  /// Zero-byte flows complete on the next simulator step.
  void start_flow(Bytes bytes, OnComplete done);

  /// Number of flows currently draining.
  std::size_t active_flows() const { return flows_.size(); }

  /// Aggregate delivered-rate history in bytes/second (capacity when at
  /// least one flow is active, 0 when idle).
  const PowerTimeline& rate_history() const { return rate_; }

  /// Total bytes fully delivered so far.
  Bytes delivered() const { return delivered_; }

  BytesPerSecond capacity() const { return capacity_; }

 private:
  struct Flow {
    std::uint64_t id;
    double remaining;  // bytes still to deliver (fractional during sharing)
    Bytes total;       // original size, for delivered-byte accounting
    OnComplete done;
  };

  /// Advances all remaining-byte counters to now() and reschedules the next
  /// completion event.
  void advance_and_reschedule();

  sim::Simulator& sim_;
  BytesPerSecond capacity_;
  std::vector<Flow> flows_;
  Seconds last_advance_ = 0;
  sim::EventId next_completion_;
  std::uint64_t next_id_ = 1;
  Bytes delivered_ = 0;
  PowerTimeline rate_;  // reused as a bytes/s step function
};

}  // namespace eab::net
