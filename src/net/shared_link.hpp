// Processor-sharing link model.
//
// All concurrent HTTP responses drain through one radio downlink; the link
// splits its capacity equally among active flows (a standard fluid-flow
// approximation of TCP fairness on a shared bottleneck).  The link also
// exposes its instantaneous aggregate rate as a timeline, which is how the
// Fig 4 traffic-shape experiment observes transfer burstiness.
//
// Robustness hooks: flows can be cancelled mid-drain (an HTTP timeout
// abandoning a stalled response) and the whole link can be paused/resumed
// (a fault-injected fade window during which every in-flight flow stalls).
// Neither facility costs anything when unused: a run that never cancels or
// pauses schedules exactly the same events as before they existed.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/timeline.hpp"
#include "util/units.hpp"

namespace eab::net {

/// A capacity-shared downlink with per-flow completion callbacks.
class SharedLink {
 public:
  using OnComplete = std::function<void()>;
  /// Handle to an in-flight flow; 0 is never a valid id.
  using FlowId = std::uint64_t;

  SharedLink(sim::Simulator& sim, BytesPerSecond capacity);

  /// Starts a flow of `bytes`; `done` fires when the last byte has drained.
  /// Zero-byte flows complete on the next simulator step.  Returns a handle
  /// usable with cancel_flow until `done` fires.
  FlowId start_flow(Bytes bytes, OnComplete done);

  /// Abandons an in-flight flow: its callback never fires and its partially
  /// delivered bytes are not counted toward delivered().  Returns false if
  /// the id is unknown (already completed or cancelled).
  bool cancel_flow(FlowId id);

  /// Freezes the link: in-flight flows stop draining and the delivered rate
  /// drops to zero until resume().  Flows may still be started (they queue
  /// at zero progress) and cancelled while paused.  Idempotent.
  void pause();

  /// Ends a pause; flows resume draining from their frozen progress.
  void resume();

  bool paused() const { return paused_; }

  /// Number of flows currently draining (or frozen by a pause).
  std::size_t active_flows() const { return flows_.size(); }

  /// Aggregate delivered-rate history in bytes/second (capacity when at
  /// least one flow is active and the link is not paused, else 0).
  const PowerTimeline& rate_history() const { return rate_; }

  /// Total bytes fully delivered so far (cancelled flows excluded).
  Bytes delivered() const { return delivered_; }

  BytesPerSecond capacity() const { return capacity_; }

  /// Rebinds the link's capacity mid-simulation: progress earned so far is
  /// banked at the old rate, then the remaining bytes drain at the new one.
  /// A no-op when the value is unchanged (which also bounds the recursion
  /// when an on-flow-change observer rebalances several links).
  void set_capacity(BytesPerSecond capacity);

  /// Observer invoked synchronously whenever the set of active flows
  /// changes — start, cancel, completion, pause, resume.  The cell
  /// scheduler uses it to recompute per-UE bandwidth shares.  May call
  /// set_capacity on this or other links (idempotent rebalances terminate
  /// because set_capacity no-ops on equal values).  Unset costs nothing.
  void set_on_flow_change(std::function<void()> fn) {
    on_flow_change_ = std::move(fn);
  }

  /// Attaches a trace recorder (nullptr detaches).  Recording is synchronous
  /// and never schedules events, so behavior is identical either way.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

 private:
  struct Flow {
    FlowId id;
    double remaining;  // bytes still to deliver (fractional during sharing)
    Bytes total;       // original size, for delivered-byte accounting
    OnComplete done;
  };

  /// Advances all remaining-byte counters to now() and reschedules the next
  /// completion event.
  void advance_and_reschedule();

  sim::Simulator& sim_;
  BytesPerSecond capacity_;
  obs::TraceRecorder* trace_ = nullptr;
  std::function<void()> on_flow_change_;
  std::vector<Flow> flows_;
  Seconds last_advance_ = 0;
  sim::EventId next_completion_;
  FlowId next_id_ = 1;
  Bytes delivered_ = 0;
  bool paused_ = false;
  PowerTimeline rate_;  // reused as a bytes/s step function
};

}  // namespace eab::net
