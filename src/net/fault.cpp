#include "net/fault.hpp"

#include <stdexcept>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace eab::net {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kConnectionLost: return "connection-lost";
    case FaultKind::kStall: return "stall";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kSlowFirstByte: return "slow-first-byte";
  }
  return "?";
}

namespace {

void validate(const FaultPlan& plan) {
  const double rates[] = {plan.connection_loss_rate, plan.stall_rate,
                          plan.truncate_rate, plan.slow_first_byte_rate};
  double sum = 0;
  for (const double rate : rates) {
    if (rate < 0 || rate > 1) {
      throw std::invalid_argument("FaultPlan: rates must be in [0, 1]");
    }
    sum += rate;
  }
  if (sum > 1.0 + 1e-12) {
    throw std::invalid_argument("FaultPlan: fault rates must sum to <= 1");
  }
  if (plan.fade_count < 0) {
    throw std::invalid_argument("FaultPlan: fade_count must be >= 0");
  }
  if (plan.has_fades()) {
    if (plan.fade_start < 0 || plan.fade_duration <= 0) {
      throw std::invalid_argument("FaultPlan: bad fade window geometry");
    }
    if (plan.fade_count > 1 && plan.fade_period <= plan.fade_duration) {
      throw std::invalid_argument(
          "FaultPlan: fade_period must exceed fade_duration");
    }
  }
  if (plan.slow_first_byte_rate > 0 && plan.slow_first_byte_extra < 0) {
    throw std::invalid_argument("FaultPlan: negative slow-first-byte latency");
  }
}

}  // namespace

FaultInjector::FaultInjector(sim::Simulator& sim, SharedLink& link,
                             FaultPlan plan)
    : sim_(sim), link_(link), plan_(plan) {
  validate(plan_);
  // Fade windows are scheduled as a bounded, explicit list so the event
  // queue always drains — an open-ended repeating fade would keep every
  // simulation alive forever.
  for (int i = 0; i < plan_.fade_count; ++i) {
    const Seconds begin = plan_.fade_start + i * plan_.fade_period;
    sim_.schedule_at(begin, [this, i] {
      if (trace_) trace_->record(sim_.now(), obs::TraceKind::kLinkFadeStart, i);
      ++fades_started_;
      link_.pause();
    });
    sim_.schedule_at(begin + plan_.fade_duration, [this, i] {
      if (trace_) trace_->record(sim_.now(), obs::TraceKind::kLinkFadeEnd, i);
      link_.resume();
    });
  }
}

FaultDecision FaultInjector::decide(const std::string& url,
                                    int attempt) const {
  FaultDecision decision;
  if (!plan_.has_request_faults()) return decision;
  // Seeded by (plan seed, url, attempt) only: the same attempt at the same
  // URL meets the same fate regardless of pipeline, concurrency or call
  // order.  Retries (attempt 2, 3, ...) draw fresh outcomes.
  Rng rng(derive_seed(plan_.seed ^ fnv1a_64(url),
                      static_cast<std::uint64_t>(attempt)));
  const double roll = rng.uniform();
  double edge = plan_.connection_loss_rate;
  if (roll < edge) {
    decision.kind = FaultKind::kConnectionLost;
    return decision;
  }
  edge += plan_.stall_rate;
  if (roll < edge) {
    decision.kind = FaultKind::kStall;
    return decision;
  }
  edge += plan_.truncate_rate;
  if (roll < edge) {
    decision.kind = FaultKind::kTruncate;
    // Keep the cut strictly inside the body: at least a sliver arrives, and
    // at least a sliver is missing.
    decision.truncate_fraction = 0.05 + 0.90 * rng.uniform();
    return decision;
  }
  edge += plan_.slow_first_byte_rate;
  if (roll < edge) {
    decision.kind = FaultKind::kSlowFirstByte;
    decision.extra_first_byte_latency =
        plan_.slow_first_byte_extra * rng.uniform(0.5, 1.5);
    return decision;
  }
  return decision;
}

}  // namespace eab::net
