#include "net/web_server.hpp"

#include <stdexcept>

namespace eab::net {

void WebServer::host(Resource resource) {
  if (resource.url.empty()) {
    throw std::invalid_argument("WebServer::host: empty URL");
  }
  resources_[resource.url] = std::move(resource);
}

const Resource* WebServer::find(const std::string& url) const {
  auto it = resources_.find(url);
  return it == resources_.end() ? nullptr : &it->second;
}

Bytes WebServer::total_bytes() const {
  Bytes total = 0;
  for (const auto& [url, res] : resources_) total += res.size;
  return total;
}

}  // namespace eab::net
