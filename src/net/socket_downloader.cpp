#include "net/socket_downloader.hpp"

#include <memory>
#include <stdexcept>

namespace eab::net {

SocketDownloader::SocketDownloader(sim::Simulator& sim, SharedLink& link,
                                   radio::RrcMachine& rrc,
                                   radio::LinkConfig link_config)
    : sim_(sim), link_(link), rrc_(rrc), link_config_(link_config) {}

void SocketDownloader::download(Bytes bytes, OnDone done) {
  if (!done) throw std::invalid_argument("SocketDownloader: empty callback");
  const Seconds started = sim_.now();
  auto callback = std::make_shared<OnDone>(std::move(done));
  rrc_.request_channel([this, bytes, started, callback] {
    rrc_.begin_transfer();
    const Seconds setup = link_config_.rtt + link_config_.server_latency;
    sim_.schedule_in(setup, [this, bytes, started, callback] {
      link_.start_flow(bytes, [this, started, callback] {
        rrc_.end_transfer();
        (*callback)(started, sim_.now());
      });
    });
  });
}

}  // namespace eab::net
