#include "net/resource.hpp"

#include <algorithm>

namespace eab::net {

const char* to_string(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kHtml: return "html";
    case ResourceKind::kCss: return "css";
    case ResourceKind::kJs: return "js";
    case ResourceKind::kImage: return "image";
    case ResourceKind::kFlash: return "flash";
    case ResourceKind::kOther: return "other";
  }
  return "?";
}

ResourceKind kind_from_url(const std::string& url) {
  // Strip a query string before looking at the extension.
  const std::string path = url.substr(0, url.find('?'));
  const auto dot = path.rfind('.');
  if (dot == std::string::npos) {
    return path.find('/') != std::string::npos ? ResourceKind::kHtml
                                               : ResourceKind::kOther;
  }
  std::string ext = path.substr(dot + 1);
  std::transform(ext.begin(), ext.end(), ext.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (ext == "css") return ResourceKind::kCss;
  if (ext == "js") return ResourceKind::kJs;
  if (ext == "png" || ext == "jpg" || ext == "jpeg" || ext == "gif" ||
      ext == "bmp" || ext == "webp" || ext == "ico") {
    return ResourceKind::kImage;
  }
  if (ext == "swf") return ResourceKind::kFlash;
  if (ext == "html" || ext == "htm" || ext == "php" || ext == "asp") {
    return ResourceKind::kHtml;
  }
  return ResourceKind::kOther;
}

}  // namespace eab::net
