// Deterministic network fault injection for the simulated 3G path.
//
// A real UMTS link loses packets, stalls mid-response and fades when the
// user walks behind a building; the energy argument of the paper has to
// survive those dynamics.  FaultInjector turns a declarative FaultPlan into
// concrete per-request outcomes and timed link-fade windows, with two hard
// guarantees:
//
//  * Determinism.  Every per-request decision is a pure function of
//    (plan seed, URL, attempt number): the decision Rng is seeded with
//    derive_seed(seed ^ fnv1a_64(url), attempt).  Outcomes therefore do not
//    depend on request arrival order, on how many other requests are in
//    flight, or on which pipeline issued the fetch — the same URL suffers
//    the same fate on its n-th attempt under Original and Energy-Aware
//    alike, which is what makes "identical DOM given identical fault
//    outcomes" a testable invariant.
//  * Memo-cache soundness.  A FaultPlan is plain data carried inside
//    core::StackConfig; every field is serialised into batch_memo_key
//    (DESIGN.md §6b), so two loads differing only in their faults never
//    collide in the batch engine's cache.
//
// Fade windows are scheduled up front (a bounded count, so simulations
// always drain), pausing the SharedLink: in-flight flows stop draining and
// the delivered-rate timeline drops to zero for the window.
#pragma once

#include <cstdint>
#include <string>

#include "net/shared_link.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace eab::net {

/// What happens to one request attempt.
enum class FaultKind {
  kNone,            ///< the attempt proceeds normally
  kConnectionLost,  ///< connection drops before the response (detected ~1 RTT)
  kStall,           ///< response blackhole: no byte ever arrives (watchdog only)
  kTruncate,        ///< body cut at a random offset, then the connection dies
  kSlowFirstByte,   ///< inflated time to first byte (deep fade, far cell edge)
};

const char* to_string(FaultKind kind);

/// Declarative fault mix; all rates are independent per request *attempt*.
/// connection_loss + stall + truncate + slow_first_byte must sum to <= 1.
struct FaultPlan {
  std::uint64_t seed = 1;          ///< decision stream seed
  double connection_loss_rate = 0; ///< probability of kConnectionLost
  double stall_rate = 0;           ///< probability of kStall
  double truncate_rate = 0;        ///< probability of kTruncate
  double slow_first_byte_rate = 0; ///< probability of kSlowFirstByte
  /// Mean extra first-byte latency for kSlowFirstByte; the drawn value is
  /// uniform in [0.5, 1.5] x this.
  Seconds slow_first_byte_extra = 2.0;

  /// Timed link fades: `fade_count` windows of `fade_duration` seconds, the
  /// first starting at `fade_start`, subsequent ones `fade_period` apart.
  /// During a window all in-flight flows stall (SharedLink::pause).
  int fade_count = 0;
  Seconds fade_start = 5.0;
  Seconds fade_period = 10.0;
  Seconds fade_duration = 2.0;

  bool has_request_faults() const {
    return connection_loss_rate > 0 || stall_rate > 0 || truncate_rate > 0 ||
           slow_first_byte_rate > 0;
  }
  bool has_fades() const { return fade_count > 0 && fade_duration > 0; }
  /// A disabled plan must be indistinguishable from no plan at all.
  bool enabled() const { return has_request_faults() || has_fades(); }
};

/// The outcome drawn for one (url, attempt) pair.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  /// kTruncate: fraction of the transfer delivered before the cut, in (0, 1).
  double truncate_fraction = 0;
  /// kSlowFirstByte: extra seconds before the first response byte.
  Seconds extra_first_byte_latency = 0;
};

/// Draws per-request fault outcomes and drives link-fade windows.
class FaultInjector {
 public:
  /// Validates the plan (rates in [0,1] summing to <= 1; sensible fade
  /// geometry) and schedules the fade windows on `sim` against `link`.
  FaultInjector(sim::Simulator& sim, SharedLink& link, FaultPlan plan);

  /// The outcome of the `attempt`-th try (1-based) at fetching `url`.
  /// Pure: independent of call order and of simulation state.
  FaultDecision decide(const std::string& url, int attempt) const;

  const FaultPlan& plan() const { return plan_; }
  /// Fade windows that have begun so far.
  int fades_started() const { return fades_started_; }

  /// Attaches a trace recorder (nullptr detaches).  Fade windows record at
  /// fire time, so attaching after construction still captures them.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

 private:
  sim::Simulator& sim_;
  SharedLink& link_;
  FaultPlan plan_;
  obs::TraceRecorder* trace_ = nullptr;
  int fades_started_ = 0;
};

}  // namespace eab::net
