// HTTP client over the simulated 3G path.
//
// Fetches resources from a WebServer with a bounded number of parallel
// connections (mobile browsers of the paper's era used 2-4).  Every fetch:
//   1. waits for a free connection slot,
//   2. asks the RRC machine for dedicated channels (promotion if needed),
//   3. spends RTT + server think time for the request/first byte,
//   4. drains the response body through the processor-shared downlink.
// The radio transfer marker is held from request send to last byte, so the
// power model sees exactly when the air interface is busy.
#pragma once

#include <deque>
#include <functional>
#include <string>

#include "net/cache.hpp"
#include "net/shared_link.hpp"
#include "net/web_server.hpp"
#include "radio/rrc.hpp"
#include "sim/simulator.hpp"

namespace eab::net {

/// Result of one fetch.
struct FetchResult {
  const Resource* resource = nullptr;  ///< nullptr when the URL 404s
  std::string url;
  Seconds requested_at = 0;
  Seconds completed_at = 0;
};

/// Statistics over the life of a client.
struct HttpClientStats {
  std::size_t fetches = 0;
  std::size_t not_found = 0;
  std::size_t cache_hits = 0;
  Bytes bytes_fetched = 0;
  Seconds first_request_at = -1;
  Seconds last_byte_at = 0;
};

/// Bounded-parallelism HTTP client bound to one server, link and radio.
class HttpClient {
 public:
  using OnFetched = std::function<void(const FetchResult&)>;

  HttpClient(sim::Simulator& sim, const WebServer& server, SharedLink& link,
             radio::RrcMachine& rrc, radio::LinkConfig link_config,
             int max_parallel = 3);

  /// Attaches a browser cache (not owned; may outlive this client — caches
  /// persist across page loads within a session). Cache hits complete after
  /// a local lookup latency without touching the radio.
  void set_cache(ResourceCache* cache) { cache_ = cache; }

  /// Queues a fetch; `done` fires when the body has fully arrived (or
  /// immediately-ish with a null resource for unknown URLs).  High-priority
  /// requests jump ahead of queued normal ones (the energy-aware pipeline
  /// fetches discovery-bearing resources — HTML/CSS/JS — before leaf
  /// images, so the reference chain unrolls as early as possible).
  void fetch(const std::string& url, OnFetched done, bool high_priority = false);

  /// Number of requests queued but not yet started.
  std::size_t queued() const { return queue_.size(); }
  /// Number of requests currently in flight.
  int in_flight() const { return in_flight_; }

  const HttpClientStats& stats() const { return stats_; }

 private:
  struct PendingRequest {
    std::string url;
    OnFetched done;
  };

  void pump();
  void start_request(PendingRequest request);

  sim::Simulator& sim_;
  const WebServer& server_;
  SharedLink& link_;
  radio::RrcMachine& rrc_;
  radio::LinkConfig link_config_;
  int max_parallel_;
  ResourceCache* cache_ = nullptr;
  int in_flight_ = 0;
  std::deque<PendingRequest> queue_;
  HttpClientStats stats_;
};

}  // namespace eab::net
