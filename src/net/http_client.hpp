// HTTP client over the simulated 3G path.
//
// Fetches resources from a WebServer with a bounded number of parallel
// connections (mobile browsers of the paper's era used 2-4).  Every fetch:
//   1. waits for a free connection slot,
//   2. asks the RRC machine for dedicated channels (promotion if needed),
//   3. spends RTT + server think time for the request/first byte,
//   4. drains the response body through the processor-shared downlink.
// The radio transfer marker is held from request send to last byte, so the
// power model sees exactly when the air interface is busy.
//
// Robustness: each network attempt may run under a watchdog timeout
// (RetryPolicy) and may be perturbed by an attached FaultInjector.  Failed
// attempts — lost connections, blackholed responses, watchdog expiries —
// are retried with exponential backoff up to a bounded count; every retry
// re-drives the radio (channel request, transfer marker) so failed
// transfers burn realistic promotion and tail energy, and an abandoned
// attempt always releases its transfer marker before the retry or the
// terminal report.  A fetch therefore always settles with a terminal
// FetchStatus; truncated bodies are delivered as partial resources for the
// fuzz-hardened parsers to chew on.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "net/cache.hpp"
#include "net/fault.hpp"
#include "obs/trace.hpp"
#include "net/shared_link.hpp"
#include "net/web_server.hpp"
#include "radio/rrc.hpp"
#include "sim/simulator.hpp"

namespace eab::net {

/// Terminal outcome of one fetch (after all retries).
enum class FetchStatus {
  kOk,         ///< full body delivered
  kNotFound,   ///< the server does not host the URL (404)
  kTruncated,  ///< connection died mid-body; a partial body was delivered
  kTimedOut,   ///< watchdog expired on every attempt; nothing usable arrived
  kAborted,    ///< connection lost on every attempt before the response
  kRadioLost,  ///< radio-link failure killed the final attempt
};

const char* to_string(FetchStatus status);

/// Watchdog and retry knobs.  The defaults keep the zero-fault network
/// byte-identical to a client without any retry machinery: no watchdog
/// event is ever scheduled when request_timeout is 0, and the retry path
/// is only reachable through faults or timeouts.
struct RetryPolicy {
  /// Per-attempt watchdog; 0 disables it (a blackholed response then hangs
  /// the load, so enable it whenever stalls are possible).
  Seconds request_timeout = 0.0;
  /// Extra attempts after the first (0 = fail fast).
  int max_retries = 2;
  /// Backoff before retry n (1-based) is backoff_initial * factor^(n-1).
  Seconds backoff_initial = 0.5;
  double backoff_factor = 2.0;

  Seconds backoff_before_retry(int retry_number) const {
    Seconds wait = backoff_initial;
    for (int i = 1; i < retry_number; ++i) wait *= backoff_factor;
    return wait;
  }
};

/// Result of one fetch.
struct FetchResult {
  const Resource* resource = nullptr;  ///< nullptr unless kOk / kTruncated
  /// Backing storage when `resource` is a synthesized partial body
  /// (kTruncated); keep this alive for as long as `resource` is used.
  std::shared_ptr<const Resource> owned;
  FetchStatus status = FetchStatus::kNotFound;
  int attempts = 1;  ///< network attempts consumed (0 for a cache hit)
  std::string url;
  Seconds requested_at = 0;
  Seconds completed_at = 0;
};

/// Statistics over the life of a client.
struct HttpClientStats {
  std::size_t fetches = 0;      ///< settled fetches, any status, cache included
  std::size_t not_found = 0;
  std::size_t cache_hits = 0;
  std::size_t retries = 0;      ///< extra attempts scheduled after failures
  std::size_t timeouts = 0;     ///< watchdog expiries (attempt-level)
  std::size_t truncated = 0;    ///< fetches settled with a partial body
  std::size_t connection_losses = 0;  ///< attempts killed by connection loss
  std::size_t radio_losses = 0;  ///< attempts killed by radio-link failure
  std::size_t failed = 0;  ///< fetches settled kTimedOut/kAborted/kRadioLost
  Bytes bytes_fetched = 0;      ///< full + partial bytes actually delivered
  Seconds first_request_at = -1;
  /// When the most recent fetch settled — network last byte, cache read
  /// completion, or terminal failure.  Cache hits count: the transfer
  /// window reported for a cache-heavy revisit load ends at the last
  /// *delivery*, wherever the bytes came from.
  Seconds last_byte_at = 0;
};

/// Bounded-parallelism HTTP client bound to one server, link and radio.
class HttpClient {
 public:
  using OnFetched = std::function<void(const FetchResult&)>;

  HttpClient(sim::Simulator& sim, const WebServer& server, SharedLink& link,
             radio::RrcMachine& rrc, radio::LinkConfig link_config,
             int max_parallel = 3);

  /// Attaches a browser cache (not owned; may outlive this client — caches
  /// persist across page loads within a session). Cache hits complete after
  /// a local lookup latency without touching the radio.
  void set_cache(ResourceCache* cache) { cache_ = cache; }

  /// Attaches a fault injector (not owned; must outlive the client).  Null
  /// detaches.  Without one, every attempt proceeds fault-free.
  void set_fault_injector(const FaultInjector* injector) { faults_ = injector; }

  /// Replaces the watchdog/retry policy for subsequently started attempts.
  void set_retry_policy(RetryPolicy policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// Attaches a trace recorder (nullptr detaches).  Recording is synchronous
  /// and never schedules events, so behavior is identical either way.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

  /// Queues a fetch; `done` fires when the fetch settles — full body, partial
  /// body, 404, or terminal network failure after retries.  High-priority
  /// requests jump ahead of queued normal ones (the energy-aware pipeline
  /// fetches discovery-bearing resources — HTML/CSS/JS — before leaf
  /// images, so the reference chain unrolls as early as possible).
  void fetch(const std::string& url, OnFetched done, bool high_priority = false);

  /// Gracefully cancels every unsettled fetch — queued and in flight — as
  /// part of a user abort.  Each one settles terminally with kAborted (its
  /// callback fires, its trace settle event is recorded, so queued/settled
  /// counts stay balanced for the auditor), every in-flight attempt's
  /// watchdog and pending events are cancelled, its link flow is torn down,
  /// and its RRC transfer marker is released.  Returns the number of
  /// fetches aborted.  Idempotent: a client with nothing unsettled is a
  /// no-op.
  std::size_t abort_all();

  /// Radio-link failure: tears down every in-flight attempt (watchdog,
  /// pending events, link flow, RRC transfer marker) and re-queues each one
  /// under the existing retry budget; a fetch whose budget is spent settles
  /// terminally as kRadioLost.  Invoked from the RRC machine's on_rlf hook
  /// while the radio is still in the failing state, so the transfer markers
  /// are released legally on DCH.  Queued (not yet started) fetches are
  /// untouched — they never reached the radio.  Returns the number of
  /// attempts torn down.
  std::size_t on_radio_lost();

  /// Number of requests queued but not yet started.
  std::size_t queued() const { return queue_.size(); }
  /// Number of requests currently holding a connection slot (a request in
  /// backoff between attempts keeps its slot: the connection is dedicated
  /// to the request until it settles).
  int in_flight() const { return in_flight_; }

  const HttpClientStats& stats() const { return stats_; }

 private:
  struct PendingRequest {
    std::string url;
    OnFetched done;
  };

  /// One fetch's mutable state across its attempts.  A shared_ptr keeps it
  /// alive through the chain of scheduled callbacks; `attempt` doubles as a
  /// generation counter so stale callbacks from an aborted attempt (e.g. a
  /// channel-ready notification arriving after the watchdog fired) are
  /// recognised and dropped.
  struct RequestState {
    std::string url;
    OnFetched done;
    Seconds requested_at = 0;
    int attempt = 0;             ///< 1-based; bumped by every run_attempt
    bool settled = false;        ///< terminal callback delivered
    /// False once abort_attempt abandoned the current attempt.  The attempt
    /// number alone cannot tell a live attempt from an abandoned one between
    /// the watchdog firing and the backoff retry bumping the counter — and a
    /// channel-ready callback landing in that window (routine when the radio
    /// camps out of service) must not touch the radio.
    bool attempt_live = false;
    bool transfer_active = false;  ///< begin_transfer not yet matched
    sim::EventId timeout_event;
    sim::EventId setup_event;
    SharedLink::FlowId flow = 0;
    std::uint32_t trace_name = 0;  ///< interned url (0 when tracing is off)
  };
  using StatePtr = std::shared_ptr<RequestState>;

  void pump();
  void start_request(PendingRequest request);
  void run_attempt(const StatePtr& state);
  /// True when a callback belonging to attempt `attempt` is stale.
  static bool stale(const RequestState& state, int attempt) {
    return state.settled || state.attempt != attempt || !state.attempt_live;
  }
  /// Tears down the current attempt's in-flight pieces: watchdog, pending
  /// first-byte event, link flow, and — critically — the RRC transfer
  /// marker, which must never outlive an abandoned attempt.
  void abort_attempt(RequestState& state);
  void on_timeout(const StatePtr& state, int attempt);
  /// Schedules the next attempt after backoff, or settles terminally.
  void retry_or_fail(const StatePtr& state, FetchStatus failure);
  /// Settles the fetch and frees its connection slot.
  void finish(const StatePtr& state, const Resource* resource,
              std::shared_ptr<const Resource> owned, FetchStatus status,
              Bytes delivered_bytes);

  sim::Simulator& sim_;
  const WebServer& server_;
  SharedLink& link_;
  radio::RrcMachine& rrc_;
  radio::LinkConfig link_config_;
  int max_parallel_;
  ResourceCache* cache_ = nullptr;
  const FaultInjector* faults_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  RetryPolicy retry_;
  int in_flight_ = 0;
  std::deque<PendingRequest> queue_;
  /// Unsettled requests holding a connection slot (for abort_all).
  std::vector<StatePtr> active_;
  HttpClientStats stats_;
};

}  // namespace eab::net
