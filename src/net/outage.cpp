#include "net/outage.hpp"

namespace eab::net {

OutageInjector::OutageInjector(sim::Simulator& sim, SharedLink& link,
                               radio::RrcMachine& rrc, radio::OutagePlan plan,
                               std::uint64_t ue_id)
    : sim_(sim), link_(link), rrc_(rrc), plan_(plan), ue_id_(ue_id) {
  validate_outage_plan(plan_);
  if (plan_.reestablish_fail_rate > 0) {
    rrc_.set_reestablish_decider([this](int) {
      return radio::reestablish_succeeds(plan_, ue_id_, ++reestablish_draws_);
    });
  }
  for (const radio::OutageWindow& window : outage_windows(plan_, ue_id_)) {
    sim_.schedule_at(window.begin, [this] { coverage_lost(); });
    sim_.schedule_at(window.end, [this] { coverage_restored(); });
  }
}

void OutageInjector::coverage_lost() {
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRadioCoverageLost,
                   outages_started_);
  }
  ++outages_started_;
  // Pause the link before the radio reacts: bytes stop moving the instant
  // coverage is gone, while RLF detection takes its T313 window.
  link_.pause();
  rrc_.radio_link_down();
}

void OutageInjector::coverage_restored() {
  if (trace_) [[unlikely]] {
    trace_->record(sim_.now(), obs::TraceKind::kRadioCoverageBack,
                   outages_started_ - 1);
  }
  // Resume the link before the radio recovers, so flows started by the
  // flushed channel-request queue drain immediately.
  link_.resume();
  rrc_.radio_link_up();
}

}  // namespace eab::net
