// Web resource model: the objects a page is made of.
#pragma once

#include <string>

#include "util/units.hpp"

namespace eab::net {

/// The content types the browser distinguishes (paper Section 2.2).
enum class ResourceKind {
  kHtml,
  kCss,
  kJs,
  kImage,
  kFlash,
  kOther,
};

/// Returns a short name for a resource kind ("html", "css", ...).
const char* to_string(ResourceKind kind);

/// Guesses a resource kind from a URL's extension (".css", ".js", images,
/// ".swf"); anything unrecognised is kHtml for path-like URLs and kOther
/// otherwise. Used when a scanner discovers a bare URL.
ResourceKind kind_from_url(const std::string& url);

/// One downloadable object. `body` carries real generated markup/code for
/// HTML, CSS and JS so the parsers operate on genuine content; binary
/// resources (images, flash) carry only their size.
struct Resource {
  std::string url;
  ResourceKind kind = ResourceKind::kOther;
  Bytes size = 0;  ///< transfer size in bytes (>= body.size() for text)
  std::string body;
};

}  // namespace eab::net
