// An origin server hosting the resources of one or more pages.
//
// The paper's testbed talks to the live web; here the corpus generator
// populates a WebServer with synthetic replicas of those pages and the HTTP
// client fetches from it through the simulated 3G path.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "net/resource.hpp"

namespace eab::net {

/// In-memory resource store keyed by URL.
class WebServer {
 public:
  /// Publishes a resource; replaces any previous resource at the same URL.
  void host(Resource resource);

  /// Looks a URL up; nullptr when the URL is unknown (a 404).
  const Resource* find(const std::string& url) const;

  /// Number of hosted resources.
  std::size_t resource_count() const { return resources_.size(); }

  /// Sum of all hosted resource sizes in bytes.
  Bytes total_bytes() const;

 private:
  std::unordered_map<std::string, Resource> resources_;
};

}  // namespace eab::net
