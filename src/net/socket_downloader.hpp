// Raw bulk downloader — the paper's Fig 4 comparator.
//
// The paper opens a plain socket and pulls the same 760 KB the browser needed
// 47 s for; the socket finishes in ~8 s because nothing interrupts the
// stream.  This class reproduces that measurement path: one channel request,
// one continuous flow, transfer markers held for the whole stream.
#pragma once

#include <functional>

#include "net/shared_link.hpp"
#include "radio/rrc.hpp"
#include "sim/simulator.hpp"

namespace eab::net {

/// Downloads a byte blob in one uninterrupted stream.
class SocketDownloader {
 public:
  using OnDone = std::function<void(Seconds started, Seconds finished)>;

  SocketDownloader(sim::Simulator& sim, SharedLink& link,
                   radio::RrcMachine& rrc, radio::LinkConfig link_config);

  /// Starts the bulk transfer; `done` receives the first-request and
  /// last-byte timestamps.
  void download(Bytes bytes, OnDone done);

 private:
  sim::Simulator& sim_;
  SharedLink& link_;
  radio::RrcMachine& rrc_;
  radio::LinkConfig link_config_;
};

}  // namespace eab::net
