// Drives radio coverage outages against one UE's link + RRC machine.
//
// radio::OutagePlan describes *when* coverage disappears (pure windows per
// (seed, ue_id)); OutageInjector is the wiring that makes it happen: at each
// window edge it pauses/resumes the SharedLink (in-flight bytes stop moving)
// and tells the RrcMachine the link went down/came back, which runs the
// whole detection -> RLF -> OUT_OF_SERVICE -> re-establishment machinery.
// It also installs the plan's pure re-establishment success stream as the
// machine's decider.
//
// The cell layer drives whole-cell outages through the same object: it calls
// coverage_lost()/coverage_restored() directly on every UE's injector, so a
// cell-wide hole and a per-UE hole stack correctly (the RRC machine counts
// link-down depth) and both render identically in traces.
//
// Null-path: a disabled plan schedules nothing, installs no decider, and the
// injector is never constructed by the assembly path in the first place —
// results are byte-identical to a build without the subsystem.
#pragma once

#include <cstdint>

#include "net/shared_link.hpp"
#include "obs/trace.hpp"
#include "radio/outage.hpp"
#include "radio/rrc.hpp"
#include "sim/simulator.hpp"

namespace eab::net {

/// Schedules a plan's coverage windows and forwards them to link + radio.
class OutageInjector {
 public:
  /// Validates the plan, installs the re-establishment decider (when the
  /// plan carries a fail rate) and schedules the outage windows for `ue_id`.
  /// A disabled plan is accepted and schedules nothing — the cell layer
  /// still drives cell-wide outages through such an injector.
  OutageInjector(sim::Simulator& sim, SharedLink& link, radio::RrcMachine& rrc,
                 radio::OutagePlan plan, std::uint64_t ue_id = 0);

  /// Coverage went away / came back from a source outside the plan's own
  /// windows (the cell layer's whole-cell outages).  Safe to interleave with
  /// scheduled windows: the RRC machine stacks the sources.
  void coverage_lost();
  void coverage_restored();

  const radio::OutagePlan& plan() const { return plan_; }
  /// Outage windows (scheduled or cell-driven) that have begun so far.
  int outages_started() const { return outages_started_; }

  /// Attaches a trace recorder (nullptr detaches).  Window edges record at
  /// fire time, so attaching after construction still captures them.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

 private:
  sim::Simulator& sim_;
  SharedLink& link_;
  radio::RrcMachine& rrc_;
  radio::OutagePlan plan_;
  std::uint64_t ue_id_ = 0;
  obs::TraceRecorder* trace_ = nullptr;
  int outages_started_ = 0;
  /// Per-UE 1-based counter over every re-establishment attempt, feeding
  /// the pure success stream.
  int reestablish_draws_ = 0;
};

}  // namespace eab::net
