// Browser resource cache (LRU by bytes).
//
// The paper's testbed browses with a cold cache (each measured load is a
// fresh visit); real sessions revisit sites, and a warm cache removes
// transfers entirely — radio savings that stack with the paper's technique.
// This is the extension quantified by bench_ext_cache: an LRU store keyed by
// URL, capacity-bounded in bytes, holding subresources (HTML documents are
// always revalidated, matching the era's cache heuristics).
#pragma once

#include <list>
#include <string>
#include <unordered_map>

#include "net/resource.hpp"

namespace eab::net {

/// Byte-capacity LRU cache of fetched resources.
class ResourceCache {
 public:
  /// 4 MB default — the Android 1.6 browser's on-disk cache order.
  explicit ResourceCache(Bytes capacity = 4 * 1024 * 1024);

  /// True if the kind is cacheable at all (documents always revalidate).
  static bool cacheable(ResourceKind kind);

  /// Looks `url` up; refreshes recency on a hit. Returns nullptr on miss.
  const Resource* lookup(const std::string& url);

  /// Inserts a fetched resource (no-op for non-cacheable kinds or resources
  /// bigger than the whole cache); evicts least-recently-used entries until
  /// the new total fits.
  void insert(const Resource& resource);

  void clear();

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  std::size_t entry_count() const { return entries_.size(); }
  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }
  std::size_t evictions() const { return evictions_; }

 private:
  struct Entry {
    Resource resource;
    std::list<std::string>::iterator recency;  // position in the LRU list
  };

  void evict_one();

  Bytes capacity_;
  Bytes used_ = 0;
  std::list<std::string> recency_;  // front = most recent
  std::unordered_map<std::string, Entry> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace eab::net
