// Replayable chaos reproducers.
//
// A failing (usually shrunk) scenario serializes to a small, stable JSON
// document that can be checked into tests/chaos_corpus/ and replayed by
// tests, scripts/check.sh and the chaos_replay CLI.  The format is the
// scenario identity verbatim — seed, page index, pipeline mode, fault
// atoms — so replaying a reproducer reconstructs the exact batch job that
// failed, bit for bit, on any machine.
//
// Parsing is strict: unknown domains, missing fields, wrong types and
// trailing garbage all throw (std::runtime_error), never silently default —
// a corrupted reproducer must fail loudly, not replay the wrong scenario.
#pragma once

#include <string>

#include "chaos/plan.hpp"

namespace eab::chaos {

/// Serializes a scenario (deterministic field order, `%.17g` doubles, so
/// round-tripping is exact).
std::string scenario_to_json(const ChaosScenario& scenario);

/// Parses a scenario_to_json document.  Throws std::runtime_error with a
/// position-carrying message on any malformed input.
ChaosScenario scenario_from_json(const std::string& json);

}  // namespace eab::chaos
