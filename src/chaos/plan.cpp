#include "chaos/plan.hpp"

#include <algorithm>
#include <cstring>

#include "util/rng.hpp"

namespace eab::chaos {

const char* to_string(ChaosDomain domain) {
  switch (domain) {
    case ChaosDomain::kNetLoss: return "net.loss";
    case ChaosDomain::kNetStall: return "net.stall";
    case ChaosDomain::kNetTruncate: return "net.truncate";
    case ChaosDomain::kNetSlowFirstByte: return "net.slow_first_byte";
    case ChaosDomain::kNetFade: return "net.fade";
    case ChaosDomain::kRilFailure: return "ril.failure";
    case ChaosDomain::kTimerDrift: return "rrc.timer_drift";
    case ChaosDomain::kAbort: return "browser.abort";
    case ChaosDomain::kCacheStorm: return "browser.cache_storm";
    case ChaosDomain::kCpuSlowdown: return "browser.cpu_slowdown";
    case ChaosDomain::kUeOutage: return "radio.ue_outage";
    case ChaosDomain::kCellOutage: return "cell.outage";
  }
  return "unknown";
}

bool domain_from_string(const std::string& name, ChaosDomain& out) {
  for (int i = 0; i < kChaosDomainCount; ++i) {
    const auto domain = static_cast<ChaosDomain>(i);
    if (name == to_string(domain)) {
      out = domain;
      return true;
    }
  }
  return false;
}

const std::vector<corpus::PageSpec>& chaos_spec_pool() {
  static const std::vector<corpus::PageSpec> pool = [] {
    std::vector<corpus::PageSpec> specs = corpus::mobile_benchmark();
    const std::vector<corpus::PageSpec> full = corpus::full_benchmark();
    specs.insert(specs.end(), full.begin(), full.end());
    return specs;
  }();
  return pool;
}

namespace {

ChaosFault draw_fault(Rng& rng) {
  ChaosFault fault;
  fault.domain = static_cast<ChaosDomain>(
      rng.uniform_index(static_cast<std::uint64_t>(kChaosDomainCount)));
  auto& p = fault.params;
  switch (fault.domain) {
    case ChaosDomain::kNetLoss:
      p[0] = rng.uniform(0.05, 0.30);
      break;
    case ChaosDomain::kNetStall:
      p[0] = rng.uniform(0.05, 0.25);
      break;
    case ChaosDomain::kNetTruncate:
      p[0] = rng.uniform(0.05, 0.30);
      break;
    case ChaosDomain::kNetSlowFirstByte:
      p[0] = rng.uniform(0.10, 0.40);
      p[1] = rng.uniform(0.5, 3.0);
      break;
    case ChaosDomain::kNetFade:
      p[0] = 1.0 + static_cast<double>(rng.uniform_index(3));
      p[1] = rng.uniform(0.5, 3.0);          // start
      p[2] = rng.uniform(1.0, 3.0);          // period
      p[3] = rng.uniform(0.2, 0.8) * p[2];   // duration, strictly < period
      break;
    case ChaosDomain::kRilFailure:
      p[0] = 1.0 + static_cast<double>(rng.uniform_index(3));
      break;
    case ChaosDomain::kTimerDrift:
      p[0] = rng.uniform(0.25, 2.5);  // T1 drift
      p[1] = rng.uniform(0.25, 2.5);  // T2 drift
      break;
    case ChaosDomain::kAbort:
      p[0] = rng.uniform(0.2, 8.0);
      break;
    case ChaosDomain::kCacheStorm:
      p[0] = 1.0 + static_cast<double>(rng.uniform_index(4));
      p[1] = rng.uniform(0.2, 2.0);   // start
      p[2] = rng.uniform(0.3, 1.5);   // period
      break;
    case ChaosDomain::kCpuSlowdown:
      p[0] = rng.uniform(1.2, 4.0);
      break;
    case ChaosDomain::kUeOutage:
      p[0] = 1.0 + static_cast<double>(rng.uniform_index(3));
      p[1] = rng.uniform(0.3, 3.0);          // start
      p[2] = rng.uniform(1.5, 4.0);          // period
      p[3] = rng.uniform(0.2, 0.7) * p[2];   // duration, strictly < period
      break;
    case ChaosDomain::kCellOutage:
      // One long blackout early in the load (the window that catches
      // promotions mid-flight), with a re-establishment failure rate.
      p[0] = rng.uniform(0.2, 2.0);   // start
      p[1] = rng.uniform(1.5, 5.0);   // duration
      p[2] = rng.uniform(0.0, 0.8);   // reestablish fail rate
      break;
  }
  return fault;
}

}  // namespace

ChaosScenario make_chaos_scenario(std::uint64_t seed) {
  // Decorrelate the scenario stream from the page generator, which is
  // seeded with the raw scenario seed inside run_single_load.
  Rng rng(derive_seed(seed, 0xC4A05));
  ChaosScenario scenario;
  scenario.seed = seed;
  scenario.spec_index =
      static_cast<int>(rng.uniform_index(chaos_spec_pool().size()));
  scenario.mode = rng.chance(0.5) ? browser::PipelineMode::kEnergyAware
                                  : browser::PipelineMode::kOriginal;
  const int atoms = 1 + static_cast<int>(rng.uniform_index(4));
  scenario.faults.reserve(static_cast<std::size_t>(atoms));
  for (int i = 0; i < atoms; ++i) scenario.faults.push_back(draw_fault(rng));
  return scenario;
}

core::BatchJob apply_chaos(const ChaosScenario& scenario,
                           Seconds reading_window) {
  core::BatchJob job;
  const auto& pool = chaos_spec_pool();
  job.spec = pool[static_cast<std::size_t>(scenario.spec_index) % pool.size()];
  job.config = core::StackConfig::for_mode(scenario.mode);
  job.reading_window = reading_window;
  job.seed = scenario.seed;

  core::StackConfig& config = job.config;
  // The oracle replays the trace; every chaos job records one.
  config.trace = true;
  net::FaultPlan& plan = config.fault_plan;
  plan.seed = derive_seed(scenario.seed, 0xFA17);
  config.outage.seed = derive_seed(scenario.seed, 0x07A6E);

  bool stalls_possible = false;
  for (const ChaosFault& fault : scenario.faults) {
    const auto& p = fault.params;
    switch (fault.domain) {
      case ChaosDomain::kNetLoss:
        plan.connection_loss_rate += p[0];
        break;
      case ChaosDomain::kNetStall:
        plan.stall_rate += p[0];
        stalls_possible = true;
        break;
      case ChaosDomain::kNetTruncate:
        plan.truncate_rate += p[0];
        break;
      case ChaosDomain::kNetSlowFirstByte:
        plan.slow_first_byte_rate += p[0];
        plan.slow_first_byte_extra = p[1];
        break;
      case ChaosDomain::kNetFade:
        plan.fade_count += static_cast<int>(p[0]);
        plan.fade_start = p[1];
        plan.fade_period = p[2];
        plan.fade_duration = p[3];
        break;
      case ChaosDomain::kRilFailure:
        // The fast-dormancy path only runs when the controller releases at
        // transmission-complete; force it on so the failures can bite.
        config.force_idle_at_tx = true;
        config.chaos.ril_socket_failures += static_cast<int>(p[0]);
        break;
      case ChaosDomain::kTimerDrift:
        config.rrc.t1 = std::max(0.2, config.rrc.t1 * p[0]);
        config.rrc.t2 = std::max(0.2, config.rrc.t2 * p[1]);
        break;
      case ChaosDomain::kAbort:
        config.chaos.abort_at = config.chaos.abort_at > 0
                                    ? std::min(config.chaos.abort_at, p[0])
                                    : p[0];
        break;
      case ChaosDomain::kCacheStorm:
        config.use_browser_cache = true;
        config.chaos.cache_storm_count += static_cast<int>(p[0]);
        config.chaos.cache_storm_start = p[1];
        config.chaos.cache_storm_period = p[2];
        break;
      case ChaosDomain::kUeOutage:
        // Counts add (each atom contributes its windows), timing is
        // last-writer-wins like fades; the drawn duration is strictly below
        // the drawn period so the folded plan is valid by construction.
        config.outage.count += static_cast<int>(p[0]);
        config.outage.start = p[1];
        config.outage.period = p[2];
        config.outage.duration = p[3];
        break;
      case ChaosDomain::kCellOutage:
        // In a single-UE stack a whole-cell blackout is one more coverage
        // window; the fail rate folds as max (removing the atom removes
        // exactly its contribution, keeping ddmin sound).  The period only
        // matters if a kUeOutage atom also raised the count; duration + 4 s
        // keeps it valid either way.
        config.outage.count += 1;
        config.outage.start = p[0];
        config.outage.duration = p[1];
        config.outage.period = p[1] + 4.0;
        config.outage.reestablish_fail_rate =
            std::max(config.outage.reestablish_fail_rate, p[2]);
        break;
      case ChaosDomain::kCpuSlowdown: {
        browser::ComputeCostModel& costs = config.pipeline.costs;
        costs.html_parse_per_kb *= p[0];
        costs.css_scan_per_kb *= p[0];
        costs.js_per_kilo_op *= p[0];
        costs.css_parse_per_kb *= p[0];
        costs.image_decode_per_kb *= p[0];
        costs.style_format_per_node *= p[0];
        costs.layout_per_node *= p[0];
        costs.render_per_node *= p[0];
        costs.display_overhead *= p[0];
        break;
      }
    }
  }

  // Keep the per-attempt fault mix a valid (sub-)distribution when several
  // network atoms stacked up.
  const double rate_sum = plan.connection_loss_rate + plan.stall_rate +
                          plan.truncate_rate + plan.slow_first_byte_rate;
  if (rate_sum > 0.9) {
    const double scale = 0.9 / rate_sum;
    plan.connection_loss_rate *= scale;
    plan.stall_rate *= scale;
    plan.truncate_rate *= scale;
    plan.slow_first_byte_rate *= scale;
  }
  if (stalls_possible && config.retry.request_timeout <= 0) {
    config.retry.request_timeout = 4.0;
  }
  return job;
}

std::vector<std::uint64_t> chaos_seeds(std::uint64_t base, int count) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(static_cast<std::size_t>(std::max(count, 0)));
  for (int i = 0; i < count; ++i) {
    seeds.push_back(derive_seed(base, static_cast<std::uint64_t>(i)));
  }
  return seeds;
}

}  // namespace eab::chaos
