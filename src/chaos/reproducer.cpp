#include "chaos/reproducer.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace eab::chaos {
namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Minimal strict parser for the reproducer schema: objects, arrays,
/// strings (no escapes beyond \" and \\; the schema emits none), numbers
/// and unsigned integers.  Errors carry the byte offset.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool try_consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        c = text_[pos_++];
        if (c != '"' && c != '\\') fail("unsupported escape");
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  double parse_double() {
    skip_ws();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) fail("expected number");
    pos_ += static_cast<std::size_t>(end - start);
    return value;
  }

  std::uint64_t parse_u64() {
    skip_ws();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(start, &end, 10);
    if (end == start) fail("expected unsigned integer");
    pos_ += static_cast<std::size_t>(end - start);
    return static_cast<std::uint64_t>(value);
  }

  /// The document must end here (whitespace aside).
  void expect_end() {
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
  }

  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("chaos reproducer: " + what + " at byte " +
                             std::to_string(pos_));
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string scenario_to_json(const ChaosScenario& scenario) {
  std::string out = "{\n";
  out += "  \"version\": 1,\n";
  out += "  \"seed\": " + std::to_string(scenario.seed) + ",\n";
  out += "  \"spec_index\": " + std::to_string(scenario.spec_index) + ",\n";
  out += std::string("  \"mode\": \"") +
         (scenario.mode == browser::PipelineMode::kEnergyAware
              ? "energy_aware"
              : "original") +
         "\",\n";
  out += "  \"faults\": [";
  for (std::size_t i = 0; i < scenario.faults.size(); ++i) {
    const ChaosFault& fault = scenario.faults[i];
    out += i == 0 ? "\n" : ",\n";
    out += std::string("    {\"domain\": \"") + to_string(fault.domain) +
           "\", \"params\": [";
    for (std::size_t j = 0; j < fault.params.size(); ++j) {
      if (j > 0) out += ", ";
      out += format_double(fault.params[j]);
    }
    out += "]}";
  }
  out += scenario.faults.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

ChaosScenario scenario_from_json(const std::string& json) {
  Parser p(json);
  ChaosScenario scenario;
  p.expect('{');

  auto expect_key = [&p](const char* key) {
    const std::string got = p.parse_string();
    if (got != key) {
      p.fail(std::string("expected key \"") + key + "\", got \"" + got + "\"");
    }
    p.expect(':');
  };

  expect_key("version");
  if (p.parse_u64() != 1) p.fail("unsupported version");
  p.expect(',');

  expect_key("seed");
  scenario.seed = p.parse_u64();
  p.expect(',');

  expect_key("spec_index");
  const std::uint64_t index = p.parse_u64();
  if (index >= chaos_spec_pool().size()) p.fail("spec_index out of range");
  scenario.spec_index = static_cast<int>(index);
  p.expect(',');

  expect_key("mode");
  const std::string mode = p.parse_string();
  if (mode == "original") {
    scenario.mode = browser::PipelineMode::kOriginal;
  } else if (mode == "energy_aware") {
    scenario.mode = browser::PipelineMode::kEnergyAware;
  } else {
    p.fail("unknown mode \"" + mode + "\"");
  }
  p.expect(',');

  expect_key("faults");
  p.expect('[');
  if (!p.try_consume(']')) {
    do {
      p.expect('{');
      ChaosFault fault;
      expect_key("domain");
      const std::string domain = p.parse_string();
      if (!domain_from_string(domain, fault.domain)) {
        p.fail("unknown domain \"" + domain + "\"");
      }
      p.expect(',');
      expect_key("params");
      p.expect('[');
      for (std::size_t j = 0; j < fault.params.size(); ++j) {
        if (j > 0) p.expect(',');
        fault.params[j] = p.parse_double();
      }
      p.expect(']');
      p.expect('}');
      scenario.faults.push_back(fault);
    } while (p.try_consume(','));
    p.expect(']');
  }

  p.expect('}');
  p.expect_end();
  return scenario;
}

}  // namespace eab::chaos
