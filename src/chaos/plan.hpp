// Chaos scenario planning: seed-derived cross-layer fault compositions.
//
// A ChaosScenario is a page load plus a small list of fault atoms drawn
// from every disturbance domain the stack exposes: the network fault
// injector (loss, stalls, truncation, slow first bytes, link fades), RIL
// fast-dormancy failures, RRC timer drift, mid-load user abort, browser
// cache eviction storms and CPU slowdown.  Scenarios are pure functions of
// their seed — make_chaos_scenario(s) yields the same atom list on every
// machine, every run — and atoms are the unit the delta-debugging shrinker
// removes, so a failing composition minimizes to the smallest atom subset
// that still trips an invariant.
//
// apply_chaos folds a scenario into an ordinary core::BatchJob.  Everything
// an atom perturbs is plain StackConfig data (fault plan rates, RRC timers,
// pipeline cost scales, ChaosDirectives), all of it serialized into
// batch_memo_key, so chaos jobs flow through the unmodified BatchRunner —
// memoisation, parallel fan-out and metrics merging included — and a sweep
// is bit-identical serial or parallel.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/batch.hpp"

namespace eab::chaos {

/// The fault domains a scenario can compose.  Network domains map onto
/// net::FaultPlan; the rest ride StackConfig knobs (rrc timers, pipeline
/// costs) or core::ChaosDirectives.
enum class ChaosDomain {
  kNetLoss,          ///< params[0] = connection loss rate
  kNetStall,         ///< params[0] = blackhole rate (forces a watchdog on)
  kNetTruncate,      ///< params[0] = mid-body truncation rate
  kNetSlowFirstByte, ///< params[0] = rate, params[1] = mean extra latency s
  kNetFade,          ///< params[0..3] = count, start, period, duration
  kRilFailure,       ///< params[0] = failed framework->rild socket hops
  kTimerDrift,       ///< params[0..1] = T1, T2 multiplicative drift
  kAbort,            ///< params[0] = user abort time (s into the load)
  kCacheStorm,       ///< params[0..2] = eviction count, start, period
  kCpuSlowdown,      ///< params[0] = multiplicative CPU cost factor
  kUeOutage,         ///< params[0..3] = count, start, period, duration
  kCellOutage,       ///< params[0..2] = start, duration, reestablish fail rate
};

constexpr int kChaosDomainCount = 12;

const char* to_string(ChaosDomain domain);
/// Inverse of to_string; returns false (and leaves `out` alone) on an
/// unknown name.
bool domain_from_string(const std::string& name, ChaosDomain& out);

/// One fault atom: a domain plus up to four parameters (meaning per domain,
/// documented on ChaosDomain).  Unused slots stay 0.
struct ChaosFault {
  ChaosDomain domain = ChaosDomain::kNetLoss;
  std::array<double, 4> params{};

  friend bool operator==(const ChaosFault&, const ChaosFault&) = default;
};

/// A full scenario: which benchmark page, which pipeline, which atoms.
struct ChaosScenario {
  std::uint64_t seed = 1;  ///< scenario seed; also seeds the page generator
  int spec_index = 0;      ///< index into chaos_spec_pool()
  browser::PipelineMode mode = browser::PipelineMode::kOriginal;
  std::vector<ChaosFault> faults;

  friend bool operator==(const ChaosScenario&, const ChaosScenario&) = default;
};

/// The pages scenarios draw from: the ten mobile plus ten full Table-3
/// benchmarks, in that order.  Deterministic and index-stable.
const std::vector<corpus::PageSpec>& chaos_spec_pool();

/// Derives a scenario from a seed: page, pipeline mode and 1-4 fault atoms,
/// every draw from one deterministic Rng stream.
ChaosScenario make_chaos_scenario(std::uint64_t seed);

/// Folds a scenario into a runnable batch job.  Atom semantics compose
/// deterministically and monotonically (removing an atom removes exactly
/// its contribution, which is what makes ddmin sound): rates add (clamped
/// so the fault plan stays a valid distribution), RIL failures and cache
/// evictions sum, timer drift and CPU slowdown multiply, the earliest abort
/// wins, fade/storm timing is last-writer-wins.  The job always records a
/// trace (the invariant oracle replays it) and arms the watchdog whenever
/// stalls are possible.
core::BatchJob apply_chaos(const ChaosScenario& scenario,
                           Seconds reading_window = 6.0);

/// The seed list for a sweep: derive_seed(base, i) for i in [0, count).
std::vector<std::uint64_t> chaos_seeds(std::uint64_t base, int count);

}  // namespace eab::chaos
