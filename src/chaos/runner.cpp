#include "chaos/runner.hpp"

#include <cmath>

#include "chaos/reproducer.hpp"
#include "obs/audit.hpp"

namespace eab::chaos {
namespace {

constexpr double kTimeEps = 1e-9;

}  // namespace

std::string ChaosFinding::reproducer_json() const {
  return scenario_to_json(minimal);
}

std::vector<std::string> default_chaos_oracle(
    const core::BatchJob& job, const core::SingleLoadResult& result) {
  std::vector<std::string> violations;
  const browser::LoadMetrics& m = result.metrics;

  // Liveness / shape: the load terminated with a coherent timeline.
  if (result.sim_events == 0) {
    violations.push_back("liveness: simulator fired no events");
  }
  if (m.final_display + kTimeEps < m.first_display) {
    violations.push_back("timeline: final display precedes first display");
  }
  if (m.final_display + kTimeEps < m.started) {
    violations.push_back("timeline: final display precedes load start");
  }
  if (m.aborted && std::abs(m.final_display - m.aborted_at) > kTimeEps) {
    violations.push_back(
        "abort: load not finalized at the abort instant (final_display=" +
        std::to_string(m.final_display) +
        ", aborted_at=" + std::to_string(m.aborted_at) + ")");
  }
  if (!m.aborted && job.config.chaos.abort_at > 0 &&
      job.config.chaos.abort_at + kTimeEps < m.final_display) {
    violations.push_back("abort: scheduled abort before final display "
                         "did not take effect");
  }

  // Energy accounting must be monotone over the observed window, partial
  // loads included.
  if (result.energy.load_j < -kTimeEps) {
    violations.push_back("energy: negative load energy");
  }
  if (result.energy.with_reading_j + kTimeEps < result.energy.load_j) {
    violations.push_back("energy: reading-window energy below load energy");
  }

  // Cross-layer replay: RRC legality, timer discipline, transfer-marker
  // balance, retry budgets, queued==settled, energy reconciliation.
  if (!result.trace) {
    violations.push_back("trace: chaos job produced no recording");
  } else {
    obs::AuditInputs inputs;
    inputs.rrc = job.config.rrc;
    inputs.power = job.config.power;
    inputs.max_retries = job.config.retry.max_retries;
    inputs.radio_energy = result.energy.radio_j;
    inputs.t_end = result.energy.window_s;
    const obs::TraceAuditor auditor;
    const obs::AuditReport report = auditor.audit(*result.trace, inputs);
    violations.insert(violations.end(), report.violations.begin(),
                      report.violations.end());
  }
  return violations;
}

std::vector<std::string> ChaosRunner::evaluate(
    const core::BatchJob& job, const core::SingleLoadResult& result) const {
  return oracle_ ? oracle_(job, result) : default_chaos_oracle(job, result);
}

std::vector<std::string> ChaosRunner::check(const ChaosScenario& scenario,
                                            Seconds reading_window) {
  const core::BatchJob job = apply_chaos(scenario, reading_window);
  const std::vector<core::SingleLoadResult> results = batch_.run({job});
  for (const core::JobError& error : batch_.last_errors()) {
    if (error.index == 0) return {"quarantined: " + error.what};
  }
  return evaluate(job, results[0]);
}

ChaosFinding ChaosRunner::shrink(const ChaosScenario& scenario,
                                 Seconds reading_window) {
  ChaosFinding finding;
  finding.scenario = scenario;
  finding.violations = check(scenario, reading_window);
  finding.minimal = scenario;
  if (finding.violations.empty()) return finding;

  auto still_fails = [&](const std::vector<ChaosFault>& subset) {
    ChaosScenario candidate = scenario;
    candidate.faults = subset;
    return !check(candidate, reading_window).empty();
  };
  const ShrinkOutcome outcome = ddmin(scenario.faults, still_fails);
  finding.minimal.faults = outcome.minimal;
  finding.shrink_tests = outcome.tests;
  return finding;
}

ChaosReport ChaosRunner::sweep(const std::vector<std::uint64_t>& seeds,
                               Seconds reading_window) {
  ChaosReport report;
  report.scenarios = static_cast<int>(seeds.size());

  std::vector<ChaosScenario> scenarios;
  std::vector<core::BatchJob> jobs;
  scenarios.reserve(seeds.size());
  jobs.reserve(seeds.size());
  for (const std::uint64_t seed : seeds) {
    scenarios.push_back(make_chaos_scenario(seed));
    jobs.push_back(apply_chaos(scenarios.back(), reading_window));
  }

  const std::vector<core::SingleLoadResult> results = batch_.run(jobs);
  // Snapshot the quarantine list before ddmin probes overwrite it.
  const std::vector<core::JobError> errors = batch_.last_errors();
  std::vector<std::string> quarantine_reason(jobs.size());
  std::vector<char> quarantined(jobs.size(), 0);
  for (const core::JobError& error : errors) {
    if (error.index < jobs.size()) {
      quarantined[error.index] = 1;
      quarantine_reason[error.index] = error.what;
    }
  }

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    std::vector<std::string> violations;
    if (quarantined[i]) {
      ++report.quarantined;
      violations.push_back("quarantined: " + quarantine_reason[i]);
    } else {
      violations = evaluate(jobs[i], results[i]);
    }
    if (violations.empty()) {
      ++report.survived;
      continue;
    }
    ++report.failures;
    ChaosFinding finding;
    finding.scenario = scenarios[i];
    finding.violations = std::move(violations);
    finding.minimal = scenarios[i];
    if (scenarios[i].faults.size() > 1) {
      auto still_fails = [&](const std::vector<ChaosFault>& subset) {
        ChaosScenario candidate = scenarios[i];
        candidate.faults = subset;
        return !check(candidate, reading_window).empty();
      };
      const ShrinkOutcome outcome = ddmin(scenarios[i].faults, still_fails);
      finding.minimal.faults = outcome.minimal;
      finding.shrink_tests = outcome.tests;
    }
    report.findings.push_back(std::move(finding));
  }
  return report;
}

}  // namespace eab::chaos
