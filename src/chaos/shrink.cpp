#include "chaos/shrink.hpp"

#include <algorithm>
#include <cstddef>

namespace eab::chaos {
namespace {

/// The atoms of `from` outside [begin, end).
std::vector<ChaosFault> complement_of(const std::vector<ChaosFault>& from,
                                      std::size_t begin, std::size_t end) {
  std::vector<ChaosFault> out;
  out.reserve(from.size() - (end - begin));
  for (std::size_t i = 0; i < from.size(); ++i) {
    if (i < begin || i >= end) out.push_back(from[i]);
  }
  return out;
}

}  // namespace

ShrinkOutcome ddmin(
    const std::vector<ChaosFault>& failing,
    const std::function<bool(const std::vector<ChaosFault>&)>& still_fails) {
  ShrinkOutcome outcome;
  outcome.minimal = failing;
  if (failing.size() <= 1) return outcome;

  std::vector<ChaosFault>& current = outcome.minimal;
  std::size_t granularity = 2;
  while (current.size() >= 2) {
    const std::size_t n = current.size();
    const std::size_t chunk = (n + granularity - 1) / granularity;
    bool reduced = false;

    // Try each chunk alone, then each complement.  Chunk-alone wins shrink
    // the hardest, so probe them first.
    for (std::size_t begin = 0; begin < n && !reduced; begin += chunk) {
      const std::size_t end = std::min(begin + chunk, n);
      std::vector<ChaosFault> subset(current.begin() + static_cast<long>(begin),
                                     current.begin() + static_cast<long>(end));
      if (subset.size() == n) continue;  // degenerate split
      ++outcome.tests;
      if (still_fails(subset)) {
        current = std::move(subset);
        granularity = 2;
        reduced = true;
      }
    }
    for (std::size_t begin = 0; begin < n && !reduced; begin += chunk) {
      const std::size_t end = std::min(begin + chunk, n);
      std::vector<ChaosFault> rest = complement_of(current, begin, end);
      if (rest.empty() || rest.size() == n) continue;
      ++outcome.tests;
      if (still_fails(rest)) {
        current = std::move(rest);
        granularity = std::max<std::size_t>(granularity - 1, 2);
        reduced = true;
      }
    }
    if (reduced) continue;
    if (granularity >= current.size()) break;  // 1-minimal
    granularity = std::min(granularity * 2, current.size());
  }
  return outcome;
}

}  // namespace eab::chaos
