// Chaos sweep driver: seeded scenarios -> batch execution -> invariant
// oracle -> shrunk reproducers.
//
// A ChaosRunner turns a list of seeds into scenarios (plan.hpp), fans the
// resulting jobs through an ordinary core::BatchRunner (crash-isolated: a
// job that throws is quarantined, not fatal), and checks every completed
// run against an invariant oracle.  The default oracle composes
//
//  * the PR-3 obs::TraceAuditor over the run's full recording — RRC
//    legality, timer discipline, transfer-marker balance (no leaked
//    markers, aborts included), retry budgets, queued==settled fetches and
//    energy reconciliation over the partial window, and
//  * liveness/shape invariants on the measured result: the load terminated
//    (a budget-exhausted simulation surfaces as a quarantined JobError),
//    display ordering is sane, energy is monotone in the window, an aborted
//    load is finalized exactly at its abort instant.
//
// Every failing scenario is delta-debugged (shrink.hpp) down to a locally
// minimal fault-atom subset and reported as a ChaosFinding carrying a
// replayable reproducer (reproducer.hpp).  The oracle is injectable so
// tests can plant a synthetic invariant bug and verify the whole
// find->shrink->reproduce loop end to end.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "chaos/plan.hpp"
#include "chaos/shrink.hpp"

namespace eab::chaos {

/// One invariant-violating scenario, shrunk.
struct ChaosFinding {
  ChaosScenario scenario;                ///< the full failing composition
  std::vector<std::string> violations;   ///< oracle output for the full run
  ChaosScenario minimal;                 ///< ddmin-shrunk reproducer
  int shrink_tests = 0;                  ///< scenario re-runs ddmin consumed

  /// Replayable JSON of the shrunk reproducer.
  std::string reproducer_json() const;
};

/// Outcome of one sweep.
struct ChaosReport {
  int scenarios = 0;      ///< seeds swept
  int survived = 0;       ///< runs with every invariant intact
  int quarantined = 0;    ///< jobs that threw inside the batch engine
  int failures = 0;       ///< findings.size(): invariant violations
  std::vector<ChaosFinding> findings;

  bool ok() const { return failures == 0; }
  double survival_rate() const {
    return scenarios == 0
               ? 1.0
               : static_cast<double>(survived) / static_cast<double>(scenarios);
  }
};

/// Violations found in one run; empty = healthy.
using ChaosOracle = std::function<std::vector<std::string>(
    const core::BatchJob& job, const core::SingleLoadResult& result)>;

/// The standard oracle described in the header comment.  Exposed so
/// harnesses can compose it with extra checks.
std::vector<std::string> default_chaos_oracle(
    const core::BatchJob& job, const core::SingleLoadResult& result);

/// Sweeps seeded chaos scenarios through a shared batch engine.
class ChaosRunner {
 public:
  /// The runner borrows `batch` (not owned); its memo cache makes repeated
  /// ddmin probes of the same subset free.
  explicit ChaosRunner(core::BatchRunner& batch) : batch_(batch) {}

  /// Replaces the invariant oracle (tests plant bugs here).  An empty
  /// function restores the default.
  void set_oracle(ChaosOracle oracle) { oracle_ = std::move(oracle); }

  /// Runs make_chaos_scenario(seed) for every seed, checks each run, and
  /// shrinks every failure.  Deterministic in (seeds, oracle): the report
  /// is bit-identical whether `batch` is serial or parallel.
  ChaosReport sweep(const std::vector<std::uint64_t>& seeds,
                    Seconds reading_window = 6.0);

  /// Runs one explicit scenario (e.g. a parsed reproducer) and returns its
  /// violations; a quarantined run yields a single "quarantined: ..." entry.
  std::vector<std::string> check(const ChaosScenario& scenario,
                                 Seconds reading_window = 6.0);

  /// Minimizes a failing scenario's atom list under the current oracle.
  /// Returns the scenario unchanged (zero tests) if it no longer fails.
  ChaosFinding shrink(const ChaosScenario& scenario,
                      Seconds reading_window = 6.0);

 private:
  std::vector<std::string> evaluate(const core::BatchJob& job,
                                    const core::SingleLoadResult& result) const;

  core::BatchRunner& batch_;
  ChaosOracle oracle_;
};

}  // namespace eab::chaos
