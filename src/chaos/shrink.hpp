// Delta-debugging minimization of failing fault compositions.
//
// Classic ddmin (Zeller & Hildebrandt) over a scenario's fault-atom list:
// given a composition that trips an invariant and a deterministic predicate
// that re-runs a subset, find a locally-minimal subset that still fails —
// removing any single remaining atom makes the failure disappear.  Because
// every scenario re-run is a pure function of its (seed, atoms) identity,
// the predicate is stable and the shrink is reproducible; the memo cache in
// BatchRunner even makes repeated subset probes cheap.
#pragma once

#include <functional>
#include <vector>

#include "chaos/plan.hpp"

namespace eab::chaos {

/// Result of one minimization.
struct ShrinkOutcome {
  std::vector<ChaosFault> minimal;  ///< locally-minimal failing subset
  int tests = 0;                    ///< predicate evaluations consumed
};

/// Minimizes `failing` under `still_fails`.  The predicate must be
/// deterministic and must hold for `failing` itself (callers verify before
/// shrinking); it is never invoked on the empty list.  Returns a 1-minimal
/// subset: still failing, but no single-atom removal keeps it failing.
ShrinkOutcome ddmin(
    const std::vector<ChaosFault>& failing,
    const std::function<bool(const std::vector<ChaosFault>&)>& still_fails);

}  // namespace eab::chaos
