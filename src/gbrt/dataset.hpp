// Tabular dataset for regression: feature rows plus a real-valued target.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace eab::gbrt {

/// A fixed-width feature matrix with targets.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t feature_count) : feature_count_(feature_count) {}

  /// Optional column names (diagnostics, correlation tables).
  void set_feature_names(std::vector<std::string> names);
  const std::vector<std::string>& feature_names() const { return names_; }

  /// Appends one sample. The first row fixes the feature count.
  void add(std::vector<double> features, double target);

  std::size_t size() const { return targets_.size(); }
  bool empty() const { return targets_.empty(); }
  std::size_t feature_count() const { return feature_count_; }

  const std::vector<double>& row(std::size_t i) const { return rows_.at(i); }
  double target(std::size_t i) const { return targets_.at(i); }
  const std::vector<double>& targets() const { return targets_; }

  /// Column i as a vector (for correlation analysis).
  std::vector<double> column(std::size_t feature) const;

  /// Splits into (train, test): the first `train_fraction` of samples train.
  /// Callers shuffle beforehand if they need randomisation; keeping the split
  /// positional makes time-ordered splits (train on past, test on future)
  /// possible, which is how reading-time models deploy in practice.
  std::pair<Dataset, Dataset> split(double train_fraction) const;

 private:
  std::size_t feature_count_ = 0;
  std::vector<std::vector<double>> rows_;
  std::vector<double> targets_;
  std::vector<std::string> names_;
};

}  // namespace eab::gbrt
