#include "gbrt/model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace eab::gbrt {

double GbrtModel::predict(const std::vector<double>& features) const {
  double sum = base_;
  for (const auto& tree : trees_) sum += shrinkage_ * tree.predict(features);
  return sum;
}

std::vector<double> GbrtModel::predict_all(const Dataset& data) const {
  std::vector<double> out;
  out.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) out.push_back(predict(data.row(i)));
  return out;
}

std::vector<double> GbrtModel::feature_importance(
    std::size_t feature_count) const {
  std::vector<double> importance(feature_count, 0.0);
  double total = 0;
  for (const auto& tree : trees_) {
    const auto& gains = tree.split_gains();
    for (std::size_t f = 0; f < std::min(feature_count, gains.size()); ++f) {
      importance[f] += gains[f];
      total += gains[f];
    }
  }
  if (total > 0) {
    for (double& value : importance) value /= total;
  }
  return importance;
}

std::string GbrtModel::serialize() const {
  std::string out;
  char buf[96];
  std::snprintf(buf, sizeof buf, "gbrt %.17g %.17g %zu\n", base_, shrinkage_,
                trees_.size());
  out += buf;
  for (const auto& tree : trees_) {
    out += tree.serialize();
    out += '\n';
  }
  return out;
}

GbrtModel GbrtModel::parse(const std::string& text) {
  std::stringstream stream(text);
  std::string magic;
  double base = 0;
  double shrinkage = 0;
  std::size_t count = 0;
  stream >> magic >> base >> shrinkage >> count;
  if (magic != "gbrt" || !stream) {
    throw std::invalid_argument("GbrtModel::parse: bad header");
  }
  std::string line;
  std::getline(stream, line);  // consume end of header line
  std::vector<RegressionTree> trees;
  trees.reserve(count);
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    trees.push_back(RegressionTree::parse(line));
  }
  if (trees.size() != count) {
    throw std::invalid_argument("GbrtModel::parse: tree count mismatch");
  }
  return assemble(base, shrinkage, std::move(trees));
}

GbrtModel GbrtModel::assemble(double base, double shrinkage,
                              std::vector<RegressionTree> trees) {
  GbrtModel model;
  model.base_ = base;
  model.shrinkage_ = shrinkage;
  model.trees_ = std::move(trees);
  return model;
}

GbrtModel GbrtModel::random_model(std::size_t trees, std::size_t leaves,
                                  std::size_t feature_count,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<RegressionTree> forest;
  forest.reserve(trees);
  for (std::size_t i = 0; i < trees; ++i) {
    forest.push_back(
        RegressionTree::random_structure(feature_count, leaves, rng.next_u64()));
  }
  return assemble(0.0, 0.1, std::move(forest));
}

GbrtModel train_gbrt(const Dataset& data, const GbrtParams& params,
                     std::uint64_t seed, BoostTrace* trace,
                     const Dataset* validation) {
  if (data.empty()) throw std::invalid_argument("train_gbrt: empty dataset");
  if (params.shrinkage <= 0 || params.shrinkage > 1) {
    throw std::invalid_argument("train_gbrt: shrinkage out of (0, 1]");
  }
  if (params.subsample <= 0 || params.subsample > 1) {
    throw std::invalid_argument("train_gbrt: subsample out of (0, 1]");
  }
  if (params.huber_quantile <= 0 || params.huber_quantile > 1) {
    throw std::invalid_argument("train_gbrt: huber_quantile out of (0, 1]");
  }

  // F0 = median of the targets (Algorithm 1's constant initialiser).
  const double base = median(data.targets());

  std::vector<double> current(data.size(), base);  // F_{m-1}(x_i)
  std::vector<double> valid_current;
  if (validation != nullptr) valid_current.assign(validation->size(), base);
  std::vector<RegressionTree> trees;
  trees.reserve(params.trees);
  Rng rng(seed);

  double best_valid = 1e300;
  std::size_t best_iteration = 0;
  std::size_t rounds_without_improvement = 0;

  std::vector<double> residuals(data.size());
  for (std::size_t m = 0; m < params.trees; ++m) {
    // Pseudo-residuals: y_i - F(x_i) for L2; for Huber, the raw residual is
    // clipped at delta = the huber_quantile of |residuals| (Friedman's
    // M-regression), so outliers pull with bounded force.
    for (std::size_t i = 0; i < data.size(); ++i) {
      residuals[i] = data.target(i) - current[i];
    }
    if (params.loss == Loss::kHuber) {
      std::vector<double> magnitudes(residuals.size());
      for (std::size_t i = 0; i < residuals.size(); ++i) {
        magnitudes[i] = std::abs(residuals[i]);
      }
      const double delta =
          std::max(1e-12, percentile(std::move(magnitudes),
                                     params.huber_quantile * 100.0));
      for (double& r : residuals) {
        r = std::clamp(r, -delta, delta);
      }
    }

    RegressionTree tree = [&] {
      if (params.subsample >= 1.0) {
        return RegressionTree::fit(data, residuals, params.tree);
      }
      // Stochastic variant: fit on a sampled subset.
      Dataset sample(data.feature_count());
      std::vector<double> sample_residuals;
      for (std::size_t i = 0; i < data.size(); ++i) {
        if (rng.chance(params.subsample)) {
          sample.add(data.row(i), data.target(i));
          sample_residuals.push_back(residuals[i]);
        }
      }
      if (sample.size() < 2 * params.tree.min_samples_leaf) {
        return RegressionTree::fit(data, residuals, params.tree);
      }
      return RegressionTree::fit(sample, sample_residuals, params.tree);
    }();

    for (std::size_t i = 0; i < data.size(); ++i) {
      current[i] += params.shrinkage * tree.predict(data.row(i));
    }
    trees.push_back(std::move(tree));

    if (trace != nullptr) {
      double error = 0;
      for (std::size_t i = 0; i < data.size(); ++i) {
        const double diff = data.target(i) - current[i];
        error += diff * diff;
      }
      trace->train_mse.push_back(error / static_cast<double>(data.size()));
    }

    if (validation != nullptr) {
      double error = 0;
      for (std::size_t i = 0; i < validation->size(); ++i) {
        valid_current[i] += params.shrinkage * trees.back().predict(validation->row(i));
        const double diff = validation->target(i) - valid_current[i];
        error += diff * diff;
      }
      const double valid_mse =
          error / static_cast<double>(validation->size());
      if (trace != nullptr) trace->valid_mse.push_back(valid_mse);
      if (valid_mse < best_valid - 1e-12) {
        best_valid = valid_mse;
        best_iteration = m;
        rounds_without_improvement = 0;
      } else if (params.early_stopping_rounds > 0 &&
                 ++rounds_without_improvement >= params.early_stopping_rounds) {
        if (trace != nullptr) trace->stopped_early = true;
        break;
      }
    }
  }

  if (validation != nullptr) {
    // Keep the ensemble at its validation optimum.
    trees.resize(std::min(trees.size(), best_iteration + 1));
    if (trace != nullptr) trace->best_iteration = best_iteration;
  }
  return GbrtModel::assemble(base, params.shrinkage, std::move(trees));
}

double mse(const GbrtModel& model, const Dataset& data) {
  if (data.empty()) return 0;
  double error = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double diff = model.predict(data.row(i)) - data.target(i);
    error += diff * diff;
  }
  return error / static_cast<double>(data.size());
}

double threshold_accuracy(const std::vector<double>& predicted,
                          const std::vector<double>& actual, double threshold) {
  if (predicted.size() != actual.size()) {
    throw std::invalid_argument("threshold_accuracy: size mismatch");
  }
  if (predicted.empty()) return 0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if ((predicted[i] > threshold) == (actual[i] > threshold)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

}  // namespace eab::gbrt
