// The boosted ensemble and its trainer (the paper's Algorithm 1).
//
// Least-squares gradient boosting: start from the target median, then
// repeatedly fit a J-leaf regression tree to the residuals and add it with a
// shrinkage factor.  For the squared-error loss the per-leaf line search
// gamma_jm reduces to the leaf mean, which RegressionTree::fit already
// produces — exactly Friedman's special case the paper uses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gbrt/tree.hpp"

namespace eab::gbrt {

/// Loss functions for the gradient (Friedman 2001; the paper uses kSquared).
enum class Loss {
  kSquared,  ///< L(y,F) = (y-F)^2 — the paper's choice
  kHuber,    ///< robust to outliers: quadratic near 0, linear in the tail
};

/// Boosting hyperparameters.
struct GbrtParams {
  std::size_t trees = 300;      ///< M: boosting iterations
  TreeParams tree;              ///< base learner shape (J = tree.max_leaves)
  double shrinkage = 0.08;      ///< learning rate applied to every tree
  /// Row subsampling per iteration (1.0 = deterministic classic boosting).
  double subsample = 1.0;
  Loss loss = Loss::kSquared;
  /// Huber transition point as a residual quantile (Friedman's alpha).
  double huber_quantile = 0.9;
  /// Early stopping: if > 0 and a validation set is supplied, stop after
  /// this many consecutive iterations without validation-MSE improvement.
  std::size_t early_stopping_rounds = 0;
};

/// A trained model.
class GbrtModel {
 public:
  /// Prediction: F(x) = F0 + shrinkage * sum_m tree_m(x).
  double predict(const std::vector<double>& features) const;

  /// Predictions for a whole dataset.
  std::vector<double> predict_all(const Dataset& data) const;

  std::size_t tree_count() const { return trees_.size(); }
  double base_score() const { return base_; }
  double shrinkage() const { return shrinkage_; }

  /// Total split gain per feature across the ensemble, normalised to sum 1.
  std::vector<double> feature_importance(std::size_t feature_count) const;

  /// Multi-line text serialization; parse() inverts it.
  std::string serialize() const;
  static GbrtModel parse(const std::string& text);

  /// Assembles a model from parts (trainer and synthetic-model helpers).
  static GbrtModel assemble(double base, double shrinkage,
                            std::vector<RegressionTree> trees);

  /// A structurally random model for inference-cost experiments (Table 7).
  static GbrtModel random_model(std::size_t trees, std::size_t leaves,
                                std::size_t feature_count, std::uint64_t seed);

 private:
  double base_ = 0;
  double shrinkage_ = 1.0;
  std::vector<RegressionTree> trees_;
};

/// Per-iteration training diagnostics.
struct BoostTrace {
  std::vector<double> train_mse;  ///< after each iteration
  std::vector<double> valid_mse;  ///< when a validation set is supplied
  std::size_t best_iteration = 0; ///< iteration with the lowest valid MSE
  bool stopped_early = false;
};

/// Trains a GbrtModel on `data` (Algorithm 1). When params.subsample < 1 the
/// trainer draws rows with the given seed (stochastic gradient boosting).
/// A non-null `validation` set enables the early-stopping rule and the
/// valid_mse trace; the returned model is truncated at the best iteration.
GbrtModel train_gbrt(const Dataset& data, const GbrtParams& params,
                     std::uint64_t seed = 1, BoostTrace* trace = nullptr,
                     const Dataset* validation = nullptr);

// --- metrics ---------------------------------------------------------------

/// Mean squared error of predictions vs. the dataset's targets.
double mse(const GbrtModel& model, const Dataset& data);

/// The paper's accuracy criterion (Section 5.6.1): a prediction is correct
/// when it falls on the same side of `threshold` as the true value.
double threshold_accuracy(const std::vector<double>& predicted,
                          const std::vector<double>& actual, double threshold);

}  // namespace eab::gbrt
