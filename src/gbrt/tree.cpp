#include "gbrt/tree.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdint>
#include <sstream>

#include "util/rng.hpp"

namespace eab::gbrt {
namespace {

/// A proposed split of one leaf's samples.
struct SplitProposal {
  bool valid = false;
  int feature = -1;
  double threshold = 0;
  double gain = 0;  ///< SSE reduction
  std::vector<std::size_t> left;
  std::vector<std::size_t> right;
  double left_mean = 0;
  double right_mean = 0;
};

double mean_of(const std::vector<double>& targets,
               const std::vector<std::size_t>& indices) {
  if (indices.empty()) return 0;
  double sum = 0;
  for (std::size_t i : indices) sum += targets[i];
  return sum / static_cast<double>(indices.size());
}

/// Exact greedy best split across all features.
SplitProposal best_split(const Dataset& data, const std::vector<double>& targets,
                         const std::vector<std::size_t>& indices,
                         const TreeParams& params) {
  SplitProposal best;
  const std::size_t n = indices.size();
  if (n < 2 * params.min_samples_leaf) return best;

  double total_sum = 0;
  for (std::size_t i : indices) total_sum += targets[i];
  const double parent_score = total_sum * total_sum / static_cast<double>(n);

  std::vector<std::pair<double, double>> sorted;  // (feature value, target)
  sorted.reserve(n);

  for (std::size_t feature = 0; feature < data.feature_count(); ++feature) {
    sorted.clear();
    for (std::size_t i : indices) {
      sorted.emplace_back(data.row(i)[feature], targets[i]);
    }
    std::sort(sorted.begin(), sorted.end());

    double left_sum = 0;
    for (std::size_t cut = 1; cut < n; ++cut) {
      left_sum += sorted[cut - 1].second;
      // Only split between distinct feature values.
      if (sorted[cut - 1].first == sorted[cut].first) continue;
      if (cut < params.min_samples_leaf || n - cut < params.min_samples_leaf) {
        continue;
      }
      const double right_sum = total_sum - left_sum;
      const double score =
          left_sum * left_sum / static_cast<double>(cut) +
          right_sum * right_sum / static_cast<double>(n - cut);
      const double gain = score - parent_score;
      if (gain > best.gain) {
        best.valid = true;
        best.feature = static_cast<int>(feature);
        best.threshold = (sorted[cut - 1].first + sorted[cut].first) / 2.0;
        best.gain = gain;
      }
    }
  }

  if (best.valid) {
    for (std::size_t i : indices) {
      auto& side = data.row(i)[static_cast<std::size_t>(best.feature)] <=
                           best.threshold
                       ? best.left
                       : best.right;
      side.push_back(i);
    }
    best.left_mean = mean_of(targets, best.left);
    best.right_mean = mean_of(targets, best.right);
  }
  return best;
}

}  // namespace

RegressionTree RegressionTree::fit(const Dataset& data,
                                   const std::vector<double>& targets,
                                   const TreeParams& params) {
  if (targets.size() != data.size()) {
    throw std::invalid_argument("RegressionTree::fit: target size mismatch");
  }
  if (data.empty()) {
    throw std::invalid_argument("RegressionTree::fit: empty dataset");
  }
  if (params.max_leaves < 1) {
    throw std::invalid_argument("RegressionTree::fit: max_leaves must be >= 1");
  }

  RegressionTree tree;
  tree.split_gains_.assign(data.feature_count(), 0.0);

  std::vector<std::size_t> all(data.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;

  Node root;
  root.value = mean_of(targets, all);
  tree.nodes_.push_back(root);

  // Best-first growth: always expand the leaf whose best split removes the
  // most squared error.
  struct Candidate {
    double gain;
    int node;
    SplitProposal split;
    bool operator<(const Candidate& other) const { return gain < other.gain; }
  };
  std::vector<Candidate> frontier;  // max-heap via push_heap/pop_heap

  auto propose = [&](int node, const std::vector<std::size_t>& indices) {
    SplitProposal split = best_split(data, targets, indices, params);
    if (split.valid && split.gain > 1e-12) {
      frontier.push_back(Candidate{split.gain, node, std::move(split)});
      std::push_heap(frontier.begin(), frontier.end());
    }
  };

  propose(0, all);
  std::size_t leaves = 1;
  while (leaves < params.max_leaves && !frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end());
    Candidate candidate = std::move(frontier.back());
    frontier.pop_back();
    SplitProposal& split = candidate.split;

    Node left;
    left.value = split.left_mean;
    Node right;
    right.value = split.right_mean;
    const int left_index = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back(left);
    const int right_index = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back(right);

    Node& parent = tree.nodes_[static_cast<std::size_t>(candidate.node)];
    parent.feature = split.feature;
    parent.threshold = split.threshold;
    parent.left = left_index;
    parent.right = right_index;
    tree.split_gains_[static_cast<std::size_t>(split.feature)] += split.gain;

    ++leaves;  // one leaf became two
    if (leaves < params.max_leaves) {
      propose(left_index, split.left);
      propose(right_index, split.right);
    }
  }
  return tree;
}

double RegressionTree::predict(const std::vector<double>& features) const {
  std::size_t node = 0;
  for (;;) {
    const Node& current = nodes_[node];
    if (current.feature < 0) return current.value;
    const double value = features[static_cast<std::size_t>(current.feature)];
    node = static_cast<std::size_t>(value <= current.threshold ? current.left
                                                               : current.right);
  }
}

std::size_t RegressionTree::leaf_count() const {
  std::size_t leaves = 0;
  for (const Node& node : nodes_) {
    if (node.feature < 0) ++leaves;
  }
  return leaves;
}

std::string RegressionTree::serialize() const {
  std::string out;
  char buf[128];
  for (const Node& node : nodes_) {
    std::snprintf(buf, sizeof buf, "%d:%.17g:%d:%d:%.17g;", node.feature,
                  node.threshold, node.left, node.right, node.value);
    out += buf;
  }
  return out;
}

RegressionTree RegressionTree::parse(const std::string& text) {
  RegressionTree tree;
  std::stringstream stream(text);
  std::string piece;
  while (std::getline(stream, piece, ';')) {
    if (piece.empty()) continue;
    Node node;
    char c1 = 0, c2 = 0, c3 = 0, c4 = 0;
    std::stringstream fields(piece);
    if (!(fields >> node.feature >> c1 >> node.threshold >> c2 >> node.left >>
          c3 >> node.right >> c4 >> node.value) ||
        c1 != ':' || c2 != ':' || c3 != ':' || c4 != ':') {
      throw std::invalid_argument("RegressionTree::parse: malformed node '" +
                                  piece + "'");
    }
    tree.nodes_.push_back(node);
  }
  if (tree.nodes_.empty()) {
    throw std::invalid_argument("RegressionTree::parse: empty tree");
  }
  // Validate child indices so predict() cannot walk out of bounds.
  const int n = static_cast<int>(tree.nodes_.size());
  for (const Node& node : tree.nodes_) {
    if (node.feature >= 0 &&
        (node.left < 0 || node.left >= n || node.right < 0 || node.right >= n)) {
      throw std::invalid_argument("RegressionTree::parse: bad child index");
    }
  }
  return tree;
}

RegressionTree RegressionTree::constant(double value) {
  RegressionTree tree;
  Node leaf;
  leaf.value = value;
  tree.nodes_.push_back(leaf);
  return tree;
}

RegressionTree RegressionTree::random_structure(std::size_t feature_count,
                                                std::size_t leaves,
                                                std::uint64_t seed) {
  if (feature_count == 0 || leaves == 0) {
    throw std::invalid_argument("RegressionTree::random_structure: bad sizes");
  }
  Rng rng(seed);
  RegressionTree tree;
  Node root;
  root.value = rng.normal();
  tree.nodes_.push_back(root);
  std::vector<int> open_leaves{0};
  while (tree.leaf_count() < leaves && !open_leaves.empty()) {
    const std::size_t pick = rng.uniform_index(open_leaves.size());
    const int node_index = open_leaves[pick];
    open_leaves.erase(open_leaves.begin() + static_cast<long>(pick));

    const int left = static_cast<int>(tree.nodes_.size());
    Node child_left;
    child_left.value = rng.normal();
    tree.nodes_.push_back(child_left);
    const int right = static_cast<int>(tree.nodes_.size());
    Node child_right;
    child_right.value = rng.normal();
    tree.nodes_.push_back(child_right);

    Node& parent = tree.nodes_[static_cast<std::size_t>(node_index)];
    parent.feature = static_cast<int>(rng.uniform_index(feature_count));
    parent.threshold = rng.uniform(-1, 1);
    parent.left = left;
    parent.right = right;
    open_leaves.push_back(left);
    open_leaves.push_back(right);
  }
  return tree;
}

}  // namespace eab::gbrt
