#include "gbrt/dataset.hpp"

namespace eab::gbrt {

void Dataset::set_feature_names(std::vector<std::string> names) {
  if (feature_count_ != 0 && names.size() != feature_count_) {
    throw std::invalid_argument("Dataset: feature name count mismatch");
  }
  if (feature_count_ == 0) feature_count_ = names.size();
  names_ = std::move(names);
}

void Dataset::add(std::vector<double> features, double target) {
  if (feature_count_ == 0) feature_count_ = features.size();
  if (features.size() != feature_count_) {
    throw std::invalid_argument("Dataset::add: feature count mismatch");
  }
  rows_.push_back(std::move(features));
  targets_.push_back(target);
}

std::vector<double> Dataset::column(std::size_t feature) const {
  if (feature >= feature_count_) {
    throw std::out_of_range("Dataset::column: bad feature index");
  }
  std::vector<double> out;
  out.reserve(size());
  for (const auto& row : rows_) out.push_back(row[feature]);
  return out;
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction) const {
  if (train_fraction < 0 || train_fraction > 1) {
    throw std::invalid_argument("Dataset::split: fraction out of range");
  }
  Dataset train(feature_count_);
  Dataset test(feature_count_);
  train.names_ = names_;
  test.names_ = names_;
  const auto cut = static_cast<std::size_t>(train_fraction * static_cast<double>(size()));
  for (std::size_t i = 0; i < size(); ++i) {
    (i < cut ? train : test).add(rows_[i], targets_[i]);
  }
  return {std::move(train), std::move(test)};
}

}  // namespace eab::gbrt
