// J-terminal-node regression trees (the GBRT base learner).
//
// Exact greedy least-squares CART: each split minimises the summed squared
// error of the two children; trees grow best-first (largest SSE reduction
// next) until they reach the configured number of terminal nodes, matching
// the paper's "J-terminal node decision tree" base learner (Section 4.3.1).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "gbrt/dataset.hpp"

namespace eab::gbrt {

/// Growth limits of a single tree.
struct TreeParams {
  std::size_t max_leaves = 8;       ///< J: terminal nodes per tree
  std::size_t min_samples_leaf = 5; ///< no split may create a smaller child
};

/// One fitted regression tree.
class RegressionTree {
 public:
  /// Fits to (dataset features, `targets`) — `targets` replaces the dataset's
  /// own targets so the booster can pass residuals. Sizes must match.
  static RegressionTree fit(const Dataset& data,
                            const std::vector<double>& targets,
                            const TreeParams& params);

  /// Prediction for one feature row.
  double predict(const std::vector<double>& features) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t leaf_count() const;
  /// Total SSE reduction contributed by splits on each feature
  /// (length = feature count; used for importance reports).
  const std::vector<double>& split_gains() const { return split_gains_; }

  /// Compact text serialization (one line); parse() inverts it.
  std::string serialize() const;
  static RegressionTree parse(const std::string& text);

  /// Builds a single-leaf constant tree (serialization edge cases, tests).
  static RegressionTree constant(double value);

  /// Builds a random tree of the given leaf count over `feature_count`
  /// features — structure only, for prediction-cost experiments (Table 7
  /// measures inference cost, which is independent of how trees were fit).
  static RegressionTree random_structure(std::size_t feature_count,
                                         std::size_t leaves,
                                         std::uint64_t seed);

 private:
  struct Node {
    int feature = -1;   ///< -1 marks a leaf
    double threshold = 0;
    int left = -1;
    int right = -1;
    double value = 0;   ///< leaf output (mean target in the region)
  };

  std::vector<Node> nodes_;
  std::vector<double> split_gains_;
};

}  // namespace eab::gbrt
