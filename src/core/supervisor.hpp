// Process-level supervised execution over job shards.
//
// BatchRunner's threads give parallelism but share one address space: a
// segfault, OOM kill or runaway loop in any job takes the whole sweep with
// it, and PR 4's in-process quarantine can only catch what surfaces as a
// C++ exception.  Supervisor is the layer above: an orchestrator forks one
// worker process per shard (up to `workers` concurrently), so whole-worker
// death — SIGSEGV, SIGKILL, the OOM killer — costs exactly one shard
// attempt, never the run.
//
// Supervision contract:
//   - each worker sends heartbeat frames on its result pipe every
//     `heartbeat_interval`; a worker silent for `heartbeat_timeout` is
//     declared hung, SIGKILLed and retried;
//   - each attempt also carries a wall-clock `shard_deadline`;
//   - retries back off exponentially (backoff_initial doubling up to
//     backoff_max) and give up after `max_attempts`, surfacing a
//     ShardError — a shard whose *function* throws is a deterministic
//     failure and is recorded immediately, without retries, exactly like
//     BatchRunner's quarantine;
//   - completed shards stream into a CheckpointJournal (when
//     `checkpoint_path` is set): a re-launched run — even after the
//     orchestrator itself was killed — resumes from the journal and
//     recomputes only the shards that never committed, so its merged
//     output is byte-identical to an uninterrupted run;
//   - results are merged on arrival in submission (shard-index) order:
//     shard k is handed to the merge callback as soon as it and every
//     shard below it have completed, and its payload is released
//     immediately afterwards — aggregation is streaming, no
//     vector-of-results is retained.
//
// Self-chaos (the crash-recovery soak): with `self_chaos_seed` set the
// orchestrator SIGKILLs its own workers at seed-derived commit points
// (`self_chaos_worker_kills` per launch) and — once, on the first launch,
// when `self_chaos_kill_orchestrator` is set and a journal exists —
// SIGKILLs itself right after a durable commit.  scripts/check.sh drives
// this and byte-compares the recovered outputs against an uninterrupted
// run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "util/units.hpp"

namespace eab::core {

struct SupervisorConfig {
  /// Max concurrent worker processes; <= 0 resolves via resolve_workers()
  /// (hardware_concurrency).  Always clamped to the shard count.
  int workers = 0;
  /// Worker liveness: heartbeat frames every `heartbeat_interval`; a worker
  /// silent for `heartbeat_timeout` is killed and the attempt retried.
  Seconds heartbeat_interval = 0.1;
  Seconds heartbeat_timeout = 10.0;
  /// Wall-clock budget for one shard attempt.
  Seconds shard_deadline = 600.0;
  /// Attempts per shard per launch before the shard surfaces a ShardError.
  int max_attempts = 8;
  /// Exponential restart backoff: attempt n waits
  /// min(backoff_initial * 2^(n-1), backoff_max) before respawning.
  Seconds backoff_initial = 0.05;
  Seconds backoff_max = 2.0;
  /// Durable checkpoint journal path; empty = supervise without durability.
  std::string checkpoint_path;
  /// Run identity guard for the journal: when non-empty, the first launch
  /// writes it and every resume verifies it — resuming a journal written by
  /// a different sweep (other axis, seed or mode) throws instead of
  /// silently merging foreign results.
  std::string fingerprint;
  /// Self-chaos: 0 = off.  See file comment.
  std::uint64_t self_chaos_seed = 0;
  int self_chaos_worker_kills = 0;
  bool self_chaos_kill_orchestrator = false;
  /// Live wall-clock progress lines on stderr (per-shard census, heartbeat
  /// age of the stalest worker, shards/s, ETA), throttled to ~1 Hz.  Off by
  /// default; benches enable it via EAB_PROGRESS=1.  Progress reporting is
  /// observability of the supervision process itself and — like the
  /// SupervisorReport metrics — never part of a deterministic snapshot.
  bool progress = false;
};

/// A shard that could not be completed: either its function threw
/// (deterministic, recorded without retries and journaled so resumes do not
/// re-run it) or its worker died `max_attempts` times.
struct ShardError {
  std::size_t shard = 0;
  std::string what;
  bool deterministic = false;  ///< true: the shard fn threw (quarantined)
};

struct SupervisorReport {
  std::size_t shards = 0;
  std::size_t completed = 0;   ///< shards merged (recovered + computed)
  std::size_t recovered = 0;   ///< shards served from the journal
  std::size_t spawned = 0;     ///< worker processes forked
  std::size_t retries = 0;     ///< attempts beyond each shard's first
  std::size_t kills = 0;       ///< workers SIGKILLed (hang, deadline, chaos)
  std::size_t chaos_kills = 0; ///< the subset injected by self-chaos
  std::size_t launch = 0;      ///< 0 = first launch, n = n-th resume
  std::vector<ShardError> errors;  ///< sorted by shard index
  /// Supervision accounting under the same names the in-process engine
  /// uses (batch.quarantined) plus supervisor.* counters, so supervised
  /// and in-process runs report failures uniformly.  Deliberately NOT part
  /// of any per-run deterministic snapshot: retry/kill counts depend on
  /// where crashes landed, and the bit-identity contract covers results,
  /// not the supervision log.
  obs::MetricsRegistry metrics;

  bool ok() const { return errors.empty(); }
  /// One-line summary for stderr logging.
  std::string summary() const;
};

class Supervisor {
 public:
  /// Runs in the WORKER process: compute shard `i`, return its payload
  /// bytes.  Anything thrown becomes a deterministic ShardError.
  using ShardFn = std::function<std::string(std::size_t shard)>;
  /// Runs in the ORCHESTRATOR, strictly in shard order 0..N-1 (failed
  /// shards are skipped); the payload view dies with the call.
  using MergeFn =
      std::function<void(std::size_t shard, std::string_view payload)>;

  explicit Supervisor(SupervisorConfig config = {});

  /// Executes `shard_count` shards under supervision and streams completed
  /// payloads into `merge` in shard order.  Throws std::invalid_argument on
  /// a contradictory config, std::runtime_error on journal corruption or a
  /// fingerprint mismatch.
  SupervisorReport run(std::size_t shard_count, const ShardFn& work,
                       const MergeFn& merge);

  const SupervisorConfig& config() const { return config_; }

  /// <= 0 becomes hardware_concurrency (min 1).  EAB_WORKERS is resolved by
  /// the bench layer (strictly parsed) and passed in via the config.
  static int resolve_workers(int requested);

  // Journal record types and payload codecs, public so tests can pre-seed
  // or inspect journals.  Payloads: fingerprint = raw bytes; launch =
  // u64 launch index; shard result = u64 shard + length-prefixed bytes;
  // shard error = u64 shard + length-prefixed what().
  static constexpr std::uint32_t kRecordFingerprint = 1;
  static constexpr std::uint32_t kRecordLaunch = 2;
  static constexpr std::uint32_t kRecordShardResult = 3;
  static constexpr std::uint32_t kRecordShardError = 4;
  static std::string encode_shard_payload(std::size_t shard,
                                          std::string_view bytes);
  static void decode_shard_payload(std::string_view payload, std::size_t& shard,
                                   std::string& bytes);

 private:
  SupervisorConfig config_;
};

}  // namespace eab::core
