// Shared energy/time accounting for every experiment result.
//
// The single-load, proxy-load and session runners all integrate the same
// PowerTimelines over the same two windows (the active load/session window
// and the observed window including reading time); before this struct each
// result type carried its own copies of the fields and every bench
// hand-rolled the same JSON keys.  EnergyReport is the one shape they all
// share, with a deterministic to_json so emitted artifacts diff
// byte-for-byte across runs.
#pragma once

#include <string>

#include "util/timeline.hpp"
#include "util/units.hpp"

namespace eab::core {

/// Energy integrals and the window they cover, common to every runner.
struct EnergyReport {
  Joules load_j = 0;          ///< energy over the active window (load/session)
  Joules with_reading_j = 0;  ///< including the reading window(s)
  Joules radio_j = 0;         ///< radio-only integral over [0, window_s]
  Seconds window_s = 0;       ///< end of the accounted (observed) window

  /// Deterministic JSON object with fixed key order:
  ///   {"load_j":...,"with_reading_j":...,"radio_j":...,"window_s":...}
  /// Doubles print as %.17g (round-trip exact), the same convention as the
  /// chaos reproducer format.
  std::string to_json() const;

  /// Integrates `total` (radio + CPU) and `radio` over the standard windows:
  /// the active window is [0, active_end], the observed window
  /// [0, observed_end]; requires active_end <= observed_end.
  static EnergyReport measure(const PowerTimeline& total,
                              const PowerTimeline& radio, Seconds active_end,
                              Seconds observed_end);
};

}  // namespace eab::core
