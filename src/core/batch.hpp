// Parallel batch experiment engine.
//
// Every figure/table harness runs hundreds of fully independent
// run_single_load stacks — each load owns its own sim::Simulator, WebServer
// and radio, so they parallelise perfectly.  BatchRunner fans
// (PageSpec, StackConfig, reading window, seed) jobs out over a fixed thread
// pool and returns results in submission order, so a batched sweep is
// bit-identical to the serial loop it replaces.
//
// A content-addressed memo cache sits in front of the pool: each job is
// serialised to a canonical byte key (batch_memo_key) hashed with FNV-1a,
// and jobs whose keys match an already-computed load — paired
// Original/Energy-Aware sweeps re-measuring the same pages, the page
// library's repeated per-variant feature loads — reuse the stored
// SingleLoadResult instead of simulating again.  run_single_load is a pure
// function of the key's fields, which is what makes memoisation sound.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/experiment.hpp"
#include "util/hash.hpp"

namespace eab::core {

// The memo cache's hash function lives in util/hash.hpp (the fault layer
// seeds per-URL decisions with the same function); keep the historical
// core::fnv1a_64 name valid.
using ::eab::fnv1a_64;

/// One unit of batch work: a single page load and its reading window.
struct BatchJob {
  corpus::PageSpec spec;
  StackConfig config;
  Seconds reading_window = 20.0;
  std::uint64_t seed = 1;
};

/// Canonical byte encoding of everything run_single_load's output depends
/// on: every PageSpec field, every StackConfig field (including the nested
/// radio, power, link, pipeline and chaos configs), the reading window and
/// the seed.  Two jobs with equal keys produce bit-identical
/// SingleLoadResults.
/// NOTE: any new field added to PageSpec or StackConfig (the fault plan,
/// retry policy and chaos directives included) must be appended here, or
/// loads differing only in that field would collide in the cache.
std::string batch_memo_key(const BatchJob& job);

/// One quarantined batch job: the load threw instead of returning.  The
/// runner records what happened — exception text, the job's memo-key digest
/// and its seed (enough to re-run the exact load in isolation) — fills the
/// job's result slot with a value-initialized SingleLoadResult, and keeps
/// going; one poisoned configuration no longer aborts a 500-job sweep.
struct JobError {
  std::size_t index = 0;          ///< submission-order slot in the batch
  std::string what;               ///< exception text ("unknown exception" if not std::exception)
  std::uint64_t key_digest = 0;   ///< fnv1a_64(batch_memo_key(job))
  std::uint64_t seed = 0;         ///< the job's seed (chaos scenarios key off this)
};

/// Fixed-size thread pool + memo cache for batches of single-load jobs.
class BatchRunner {
 public:
  /// `jobs` > 0 pins the worker count; 0 resolves it from the EAB_JOBS
  /// environment variable, falling back to hardware_concurrency().  A runner
  /// with one worker executes jobs inline on the calling thread.
  explicit BatchRunner(int jobs = 0);
  ~BatchRunner();

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  /// Runs every job and returns results in submission order.  Jobs with
  /// identical memo keys are simulated once; previously-run keys are served
  /// from the cache.  A job that throws is quarantined, never rethrown: its
  /// slot holds a value-initialized SingleLoadResult, a JobError describing
  /// the failure is available from last_errors(), the poisoned key is NOT
  /// committed to the memo cache, and every other job still completes.
  std::vector<SingleLoadResult> run(const std::vector<BatchJob>& jobs);

  /// Quarantined jobs from the most recent run(), sorted by submission
  /// index; empty when every job succeeded.  Deterministic: depends only on
  /// the job list, never on worker scheduling.
  const std::vector<JobError>& last_errors() const { return last_errors_; }

  /// Generic sharding primitive: invokes fn(0) .. fn(count-1), fanned out
  /// over the pool (inline on the calling thread when threads() == 1).
  /// Each invocation must touch only its own slot of any shared output —
  /// the completion handshake publishes the writes.  Blocks until every
  /// index has run; if any invocation threw, rethrows the lowest-index
  /// failure as std::runtime_error after the batch completes (deterministic
  /// regardless of worker scheduling).  The memo cache is not involved: use
  /// run() for single-load jobs.
  void run_indexed(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Worker threads this runner uses (1 = serial).
  int threads() const { return threads_; }

  /// Jobs served from the memo cache (including duplicates within a batch).
  std::size_t cache_hits() const { return cache_hits_; }
  /// Jobs that required an actual simulation.
  std::size_t cache_misses() const { return cache_misses_; }
  /// Distinct loads currently memoised.
  std::size_t cache_size() const { return cache_.size(); }
  void clear_cache() { cache_.clear(); }

  /// Accumulated metrics over every job this runner has executed: each
  /// job's per-load registry (SingleLoadResult::job_metrics) merged in
  /// submission order — the merge order, and therefore the snapshot, is
  /// identical whether the runner had one worker or many — plus batch.jobs
  /// and batch.memo_hits counters for the engine itself.
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  void clear_metrics() { metrics_ = {}; }

  /// EAB_JOBS / hardware_concurrency resolution (exposed for tests).
  static int resolve_jobs(int requested);

 private:
  struct Fnv1aHash {
    std::size_t operator()(const std::string& key) const {
      return static_cast<std::size_t>(fnv1a_64(key));
    }
  };
  class Pool;

  int threads_ = 1;
  std::unique_ptr<Pool> pool_;  ///< null when threads_ == 1
  std::unordered_map<std::string, SingleLoadResult, Fnv1aHash> cache_;
  std::size_t cache_hits_ = 0;
  std::size_t cache_misses_ = 0;
  std::vector<JobError> last_errors_;
  obs::MetricsRegistry metrics_;
};

}  // namespace eab::core
