#include "core/batch.hpp"

#include <algorithm>
#include <bit>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>

namespace eab::core {
namespace {

/// Appends fields to a memo key in a fixed, portable byte order.
class KeyWriter {
 public:
  explicit KeyWriter(std::string& out) : out_(out) {}

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void i32(int v) { u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  void boolean(bool v) { out_.push_back(v ? '\1' : '\0'); }
  void str(const std::string& s) {
    u64(s.size());
    out_.append(s);
  }

 private:
  std::string& out_;
};

void write_spec(KeyWriter& w, const corpus::PageSpec& spec) {
  w.str(spec.site);
  w.boolean(spec.mobile);
  w.i32(static_cast<int>(spec.topic));
  w.u64(spec.html_bytes);
  w.i32(spec.css_files);
  w.u64(spec.css_bytes);
  w.i32(spec.css_images);
  w.u64(spec.css_image_bytes);
  w.i32(spec.js_files);
  w.u64(spec.js_bytes);
  w.i32(spec.js_busy_iterations);
  w.i32(spec.js_images);
  w.u64(spec.js_image_bytes);
  w.i32(spec.html_images);
  w.u64(spec.image_bytes);
  w.i32(spec.flash_objects);
  w.u64(spec.flash_bytes);
  w.i32(spec.anchors);
  w.i32(spec.paragraphs);
}

void write_config(KeyWriter& w, const StackConfig& config) {
  const auto& rrc = config.rrc;
  w.f64(rrc.t1);
  w.f64(rrc.t2);
  w.f64(rrc.idle_to_dch_delay);
  w.f64(rrc.fach_to_dch_delay);
  w.f64(rrc.release_delay);
  w.f64(rrc.idle_to_dch_power);
  w.f64(rrc.fach_to_dch_power);
  w.f64(rrc.release_power);
  w.u64(rrc.fach_data_threshold);

  const auto& power = config.power;
  w.f64(power.idle);
  w.f64(power.fach);
  w.f64(power.dch_no_transfer);
  w.f64(power.dch_transfer);
  w.f64(power.fach_transfer);
  w.f64(power.cpu_busy_extra);

  const auto& link = config.link;
  w.f64(link.dch_bandwidth);
  w.f64(link.fach_bandwidth);
  w.f64(link.rtt);
  w.f64(link.server_latency);
  w.u64(link.slow_start_threshold);
  w.f64(link.slow_start_rounds_cap);

  const auto& pipeline = config.pipeline;
  w.i32(static_cast<int>(pipeline.mode));
  const auto& costs = pipeline.costs;
  w.f64(costs.html_parse_per_kb);
  w.f64(costs.css_scan_per_kb);
  w.f64(costs.js_per_kilo_op);
  w.f64(costs.css_parse_per_kb);
  w.f64(costs.image_decode_per_kb);
  w.f64(costs.style_format_per_node);
  w.f64(costs.layout_per_node);
  w.f64(costs.render_per_node);
  w.f64(costs.display_overhead);
  w.f64(costs.reflow_factor);
  w.f64(costs.text_display_discount);
  const auto& viewport = pipeline.viewport;
  w.i32(viewport.width_px);
  w.i32(viewport.avg_char_width_px);
  w.i32(viewport.line_height_px);
  w.i32(viewport.default_image_height_px);
  w.i32(viewport.default_image_width_px);
  w.f64(pipeline.redraw_min_interval);
  w.boolean(pipeline.mobile_page);
  w.boolean(pipeline.priority_fetch);
  w.boolean(pipeline.defer_css_parse);
  w.boolean(pipeline.intermediate_text_display);

  w.boolean(config.force_idle_at_tx);
  w.i32(config.max_parallel_connections);
  w.boolean(config.use_browser_cache);
  w.u64(config.browser_cache_bytes);
  // Tracing never changes simulation results, but a traced SingleLoadResult
  // carries its recording — an untraced job must not be served one (or vice
  // versa), so the flag is part of the identity.
  w.boolean(config.trace);

  const auto& fault = config.fault_plan;
  w.u64(fault.seed);
  w.f64(fault.connection_loss_rate);
  w.f64(fault.stall_rate);
  w.f64(fault.truncate_rate);
  w.f64(fault.slow_first_byte_rate);
  w.f64(fault.slow_first_byte_extra);
  w.i32(fault.fade_count);
  w.f64(fault.fade_start);
  w.f64(fault.fade_period);
  w.f64(fault.fade_duration);

  const auto& retry = config.retry;
  w.f64(retry.request_timeout);
  w.i32(retry.max_retries);
  w.f64(retry.backoff_initial);
  w.f64(retry.backoff_factor);

  const auto& chaos = config.chaos;
  w.f64(chaos.abort_at);
  w.i32(chaos.ril_socket_failures);
  w.i32(chaos.cache_storm_count);
  w.f64(chaos.cache_storm_start);
  w.f64(chaos.cache_storm_period);

  w.u64(config.sim_event_budget);

  // Radio failure model (appended so older fields keep their offsets; the
  // key is in-process only, so growing it is safe).
  w.f64(rrc.rlf_detect);
  w.f64(rrc.reestablish_delay);
  w.f64(rrc.reestablish_power);
  w.f64(rrc.reestablish_backoff);
  w.i32(rrc.max_reestablish_attempts);
  w.f64(power.out_of_service);
  const auto& outage = config.outage;
  w.u64(outage.seed);
  w.i32(outage.count);
  w.f64(outage.start);
  w.f64(outage.period);
  w.f64(outage.duration);
  w.f64(outage.reestablish_fail_rate);
}

}  // namespace

std::string batch_memo_key(const BatchJob& job) {
  std::string key;
  key.reserve(512);
  KeyWriter w(key);
  write_spec(w, job.spec);
  write_config(w, job.config);
  w.f64(job.reading_window);
  w.u64(job.seed);
  return key;
}

/// A plain fixed-size worker pool: tasks queue under one mutex, run_all
/// blocks until every queued task has finished.
class BatchRunner::Pool {
 public:
  explicit Pool(int threads) {
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    work_ready_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  /// Enqueues every task and blocks until all have completed.
  void run_all(std::vector<std::function<void()>> tasks) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      inflight_ += tasks.size();
      for (auto& task : tasks) queue_.push_back(std::move(task));
    }
    work_ready_.notify_all();
    std::unique_lock<std::mutex> lock(mutex_);
    batch_done_.wait(lock, [this] { return inflight_ == 0; });
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--inflight_ == 0) batch_done_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t inflight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

int BatchRunner::resolve_jobs(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("EAB_JOBS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value > 0 && value <= 1024) {
      return static_cast<int>(value);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

BatchRunner::BatchRunner(int jobs) : threads_(resolve_jobs(jobs)) {
  if (threads_ > 1) pool_ = std::make_unique<Pool>(threads_);
}

BatchRunner::~BatchRunner() = default;

void BatchRunner::run_indexed(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (!fn) {
    throw std::invalid_argument("BatchRunner::run_indexed: empty function");
  }
  std::vector<std::string> failures(count);
  std::vector<char> failed(count, 0);
  auto execute = [&](std::size_t index) {
    try {
      fn(index);
    } catch (const std::exception& e) {
      failed[index] = 1;
      failures[index] = e.what();
    } catch (...) {
      failed[index] = 1;
      failures[index] = "unknown exception";
    }
  };
  if (pool_) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      tasks.push_back([&execute, i] { execute(i); });
    }
    pool_->run_all(std::move(tasks));
  } else {
    for (std::size_t i = 0; i < count; ++i) execute(i);
  }
  // Rethrow the lowest-index failure: deterministic no matter which worker
  // hit it first.
  for (std::size_t i = 0; i < count; ++i) {
    if (failed[i]) {
      throw std::runtime_error("BatchRunner::run_indexed: task " +
                               std::to_string(i) + " failed: " + failures[i]);
    }
  }
}

std::vector<SingleLoadResult> BatchRunner::run(
    const std::vector<BatchJob>& jobs) {
  std::vector<SingleLoadResult> results(jobs.size());
  const std::size_t hits_before = cache_hits_;

  // Resolve each job against the memo cache and collapse within-batch
  // duplicates, leaving one work item per distinct uncached key.
  struct Work {
    const BatchJob* job;
    std::string key;
    std::vector<std::size_t> targets;  ///< result slots this load fills
  };
  std::vector<Work> work;
  std::unordered_map<std::string, std::size_t, Fnv1aHash> in_batch;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    std::string key = batch_memo_key(jobs[i]);
    if (const auto cached = cache_.find(key); cached != cache_.end()) {
      results[i] = cached->second;
      ++cache_hits_;
      continue;
    }
    if (const auto dup = in_batch.find(key); dup != in_batch.end()) {
      work[dup->second].targets.push_back(i);
      ++cache_hits_;
      continue;
    }
    in_batch.emplace(key, work.size());
    work.push_back(Work{&jobs[i], std::move(key), {i}});
    ++cache_misses_;
  }

  // Simulate the distinct loads.  Each task writes only its own slot of
  // `computed` / `failures`; run_all's completion handshake publishes the
  // writes.  A throwing load is quarantined in place: its failure text is
  // captured, its slot stays value-initialized, and no exception escapes
  // a worker — the rest of the batch always completes.
  std::vector<SingleLoadResult> computed(work.size());
  std::vector<std::string> failures(work.size());
  std::vector<char> failed(work.size(), 0);
  auto execute = [&](std::size_t index) {
    try {
      const BatchJob& job = *work[index].job;
      computed[index] =
          run_single_load(job.spec, job.config, job.reading_window, job.seed);
    } catch (const std::exception& e) {
      failed[index] = 1;
      failures[index] = e.what();
    } catch (...) {
      failed[index] = 1;
      failures[index] = "unknown exception";
    }
  };
  if (pool_) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(work.size());
    for (std::size_t i = 0; i < work.size(); ++i) {
      tasks.push_back([&execute, i] { execute(i); });
    }
    pool_->run_all(std::move(tasks));
  } else {
    for (std::size_t i = 0; i < work.size(); ++i) execute(i);
  }

  // Fan results out in submission order; commit only healthy loads to the
  // cache (a quarantined key must be retried, not served, next time) and
  // record one JobError per affected result slot.
  last_errors_.clear();
  for (std::size_t i = 0; i < work.size(); ++i) {
    if (failed[i]) {
      const std::uint64_t digest = fnv1a_64(work[i].key);
      for (const std::size_t target : work[i].targets) {
        last_errors_.push_back(
            JobError{target, failures[i], digest, work[i].job->seed});
      }
      continue;
    }
    for (const std::size_t target : work[i].targets) {
      results[target] = computed[i];
    }
    cache_.emplace(std::move(work[i].key), std::move(computed[i]));
  }
  std::sort(last_errors_.begin(), last_errors_.end(),
            [](const JobError& a, const JobError& b) { return a.index < b.index; });

  // Merge per-job registries in submission order over the fanned-out
  // results (memo hits included: a served job still happened; a quarantined
  // job contributes an empty registry).  The merge order — and with it the
  // snapshot — depends only on the job list, never on which worker finished
  // first.
  metrics_.count("batch.jobs", static_cast<double>(jobs.size()));
  metrics_.count("batch.memo_hits",
                 static_cast<double>(cache_hits_ - hits_before));
  metrics_.count("batch.quarantined",
                 static_cast<double>(last_errors_.size()));
  for (const SingleLoadResult& r : results) metrics_.merge(r.job_metrics);
  return results;
}

}  // namespace eab::core
