#include "core/session.hpp"

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>

#include "core/ril.hpp"
#include "net/fault.hpp"
#include "net/outage.hpp"
#include "sim/simulator.hpp"

namespace eab::core {

const char* to_string(SessionPolicy policy) {
  switch (policy) {
    case SessionPolicy::kBaseline: return "Original";
    case SessionPolicy::kOriginalAlwaysOff: return "Original Always-off";
    case SessionPolicy::kEnergyAwareAlwaysOff: return "Energy-Aware Always-off";
    case SessionPolicy::kAccurate: return "Accurate";
    case SessionPolicy::kPredict: return "Predict";
    case SessionPolicy::kAlgorithm2: return "Algorithm-2";
  }
  return "?";
}

namespace {

bool uses_original_pipeline(SessionPolicy policy) {
  return policy == SessionPolicy::kBaseline ||
         policy == SessionPolicy::kOriginalAlwaysOff;
}  // every other policy runs the reorganized pipeline

}  // namespace

SessionResult run_session(const std::vector<PageVisit>& visits,
                          const SessionConfig& config, std::uint64_t seed) {
  if ((config.policy == SessionPolicy::kPredict ||
       config.policy == SessionPolicy::kAlgorithm2) &&
      config.predictor.model == nullptr) {
    throw std::invalid_argument("run_session: this policy needs a model");
  }
  for (const PageVisit& visit : visits) {
    if (visit.spec == nullptr) {
      throw std::invalid_argument("run_session: null page spec");
    }
  }

  sim::Simulator sim;
  net::WebServer server;
  corpus::PageGenerator generator(seed);
  std::set<std::string> hosted;
  for (const PageVisit& visit : visits) {
    if (hosted.insert(visit.spec->site).second) {
      generator.host_page(*visit.spec, server);
    }
  }

  radio::RrcMachine rrc(sim, config.stack.rrc, config.stack.power);
  net::SharedLink link(sim, config.stack.link.dch_bandwidth);
  browser::CpuScheduler cpu(sim, config.stack.power.cpu_busy_extra);
  RilStateSwitcher ril(sim, rrc);
  if (config.ril_socket_failures > 0) ril.fail_next(config.ril_socket_failures);
  net::ResourceCache cache(config.stack.browser_cache_bytes);

  // One injector for the whole session: fade windows are absolute-time
  // events on the shared link, and per-request outcomes are stateless.
  validate_fault_wiring(config.stack);
  std::optional<net::FaultInjector> faults;
  if (config.stack.fault_plan.enabled()) {
    faults.emplace(sim, link, config.stack.fault_plan);
  }

  SessionResult result;
  std::vector<std::unique_ptr<net::HttpClient>> clients;
  std::vector<std::unique_ptr<browser::PageLoad>> loads;

  // Like faults, one coverage process spans the whole session.  On RLF every
  // client is told to settle; finished pages have no unsettled fetches, so
  // only the in-flight page reacts.
  std::optional<net::OutageInjector> outage;
  if (config.stack.outage.enabled()) {
    outage.emplace(sim, link, rrc, config.stack.outage, /*ue_id=*/0);
    rrc.set_on_rlf([&clients] {
      for (const auto& client : clients) client->on_radio_lost();
    });
  }

  obs::TraceRecorder* const trace = config.trace;
  if (trace != nullptr) {
    rrc.set_trace(trace);
    link.set_trace(trace);
    ril.set_trace(trace);
    if (faults) faults->set_trace(trace);
    if (outage) outage->set_trace(trace);
  }

  auto switch_to_idle = [&] {
    ril.request_idle([&result](bool switched) {
      if (switched) ++result.switches_to_idle;
    });
  };

  std::function<void(std::size_t)> visit_page = [&](std::size_t index) {
    if (index >= visits.size()) return;
    const PageVisit& visit = visits[index];
    const Seconds clicked_at = sim.now();

    clients.push_back(std::make_unique<net::HttpClient>(
        sim, server, link, rrc, config.stack.link,
        config.stack.max_parallel_connections));
    if (config.stack.use_browser_cache) clients.back()->set_cache(&cache);
    clients.back()->set_retry_policy(config.stack.retry);
    if (faults) clients.back()->set_fault_injector(&*faults);
    if (trace != nullptr) clients.back()->set_trace(trace);
    browser::PipelineConfig pipeline = config.stack.pipeline;
    pipeline.mode = uses_original_pipeline(config.policy)
                        ? browser::PipelineMode::kOriginal
                        : browser::PipelineMode::kEnergyAware;
    pipeline.mobile_page = visit.spec->mobile;
    loads.push_back(std::make_unique<browser::PageLoad>(
        sim, *clients.back(), cpu, pipeline, seed ^ (index * 0x9E3779B97F4AULL)));
    browser::PageLoad& load = *loads.back();
    if (trace != nullptr) load.set_trace(trace);

    load.start(visit.spec->main_url(), [&, index, clicked_at](
                                           const browser::LoadMetrics& m) {
      const PageVisit& current = visits[index];
      const Seconds load_time = m.final_display - clicked_at;
      result.page_load_times.push_back(load_time);
      result.total_load_delay += load_time;
      ++result.pages;

      switch (config.policy) {
        case SessionPolicy::kBaseline:
          break;
        case SessionPolicy::kOriginalAlwaysOff:
        case SessionPolicy::kEnergyAwareAlwaysOff:
          if (trace != nullptr) {
            trace->record(sim.now(), obs::TraceKind::kPolicyDecision, 1);
          }
          switch_to_idle();
          break;
        case SessionPolicy::kAccurate:
          // Oracle: the real reading time, still gated by the interest
          // threshold exactly as the deployed system would be.
          if (current.reading_time > config.alpha &&
              current.reading_time > config.threshold) {
            if (trace != nullptr) {
              trace->record(sim.now(), obs::TraceKind::kPolicyAlphaWait, 0, 0,
                            config.alpha);
            }
            sim.schedule_in(config.alpha, [&] {
              if (trace != nullptr) {
                trace->record(sim.now(), obs::TraceKind::kPolicyDecision, 1);
              }
              switch_to_idle();
            });
          }
          break;
        case SessionPolicy::kPredict:
          if (current.reading_time > config.alpha) {
            browser::PageLoad* opened = loads.back().get();
            if (trace != nullptr) {
              trace->record(sim.now(), obs::TraceKind::kPolicyAlphaWait, 0, 0,
                            config.alpha);
            }
            sim.schedule_in(config.alpha, [&, opened] {
              const Seconds predicted =
                  config.predictor.predict_seconds(opened->features());
              const bool switch_now = predicted > config.threshold;
              if (trace != nullptr) {
                trace->record(sim.now(), obs::TraceKind::kPolicyPrediction, 0,
                              0, predicted);
                trace->record(sim.now(), obs::TraceKind::kPolicyDecision,
                              switch_now ? 1 : 0, 0, predicted);
              }
              if (switch_now) switch_to_idle();
            });
          }
          break;
        case SessionPolicy::kAlgorithm2:
          // The paper's Algorithm 2 verbatim: wait alpha, predict Tr,
          // switch if Tr > Td, or Tr > Tp in power-driven mode.
          if (current.reading_time > config.controller.alpha) {
            browser::PageLoad* opened = loads.back().get();
            if (trace != nullptr) {
              trace->record(sim.now(), obs::TraceKind::kPolicyAlphaWait, 0, 0,
                            config.controller.alpha);
            }
            sim.schedule_in(config.controller.alpha, [&, opened] {
              const EnergyAwareController controller(config.controller);
              const Seconds predicted = controller.predict_reading_time(
                  config.predictor, opened->features());
              const bool switch_now = controller.should_switch(predicted);
              if (trace != nullptr) {
                trace->record(sim.now(), obs::TraceKind::kPolicyPrediction, 0,
                              0, predicted);
                trace->record(sim.now(), obs::TraceKind::kPolicyDecision,
                              switch_now ? 1 : 0, 0, predicted);
              }
              if (switch_now) switch_to_idle();
            });
          }
          break;
      }

      sim.schedule_in(current.reading_time,
                      [&visit_page, index] { visit_page(index + 1); });
    });
  };

  visit_page(0);
  sim.run();

  const Seconds duration = sim.now();
  result.energy = EnergyReport::measure(
      PowerTimeline::sum(rrc.power(), cpu.power()), rrc.power(), duration,
      duration);
  result.ril_socket_failures = ril.socket_failures();
  result.radio_idle_time = rrc.time_in(radio::RrcState::kIdle);
  result.radio_outages = outage ? outage->outages_started() : 0;
  result.rlf_count = rrc.rlf_count();
  result.reestablish_ok = rrc.reestablish_ok();
  result.reestablish_fail = rrc.reestablish_fail();
  result.out_of_service_time = rrc.time_in(radio::RrcState::kOutOfService);
  return result;
}

}  // namespace eab::core
