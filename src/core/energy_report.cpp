#include "core/energy_report.hpp"

#include <cstdio>
#include <stdexcept>

namespace eab::core {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string EnergyReport::to_json() const {
  std::string json = "{\"load_j\":" + format_double(load_j);
  json += ",\"with_reading_j\":" + format_double(with_reading_j);
  json += ",\"radio_j\":" + format_double(radio_j);
  json += ",\"window_s\":" + format_double(window_s);
  json += "}";
  return json;
}

EnergyReport EnergyReport::measure(const PowerTimeline& total,
                                   const PowerTimeline& radio,
                                   Seconds active_end, Seconds observed_end) {
  if (active_end > observed_end) {
    throw std::invalid_argument(
        "EnergyReport::measure: active window ends after observed window");
  }
  EnergyReport report;
  report.load_j = total.energy(0.0, active_end);
  report.with_reading_j = total.energy(0.0, observed_end);
  report.radio_j = radio.energy(0.0, observed_end);
  report.window_s = observed_end;
  return report;
}

}  // namespace eab::core
