// The energy-aware decision policy (paper Algorithm 2, Tables 2 and 6).
#pragma once

#include <cmath>

#include "browser/features.hpp"
#include "gbrt/model.hpp"
#include "util/units.hpp"

namespace eab::core {

/// A trained reading-time predictor.  The deployed model regresses
/// log-dwell-time (heavy-tailed targets; see trace::to_log_dataset), so the
/// wrapper converts back to seconds; set `log_domain = false` for a model
/// trained on raw seconds.
struct ReadingPredictor {
  const gbrt::GbrtModel* model = nullptr;
  bool log_domain = true;

  Seconds predict_seconds(const browser::PageFeatures& features) const {
    const double raw = model->predict(features.to_row());
    return log_domain ? std::exp(raw) : raw;
  }
};

/// Which objective Algorithm 2 optimises.
enum class DecisionMode {
  kDelayDriven,  ///< never switch unless no delay penalty is possible (Td)
  kPowerDriven,  ///< switch whenever power is saved, accepting delay (Tp)
};

/// Algorithm 2's parameters (paper Table 2).
struct ControllerParams {
  Seconds alpha = 2.0;  ///< interest threshold: wait before predicting
  Seconds td = 20.0;    ///< delay-driven threshold (T1 + T2)
  Seconds tp = 9.0;     ///< power-driven threshold (Fig 3 crossover)
  DecisionMode mode = DecisionMode::kPowerDriven;
};

/// The switch decision of Algorithm 2.
class EnergyAwareController {
 public:
  explicit EnergyAwareController(ControllerParams params) : params_(params) {}

  /// Predicts the reading time for an opened page.
  Seconds predict_reading_time(const ReadingPredictor& predictor,
                               const browser::PageFeatures& features) const {
    return predictor.predict_seconds(features);
  }

  /// Algorithm 2's condition: switch to IDLE for this predicted reading time?
  bool should_switch(Seconds predicted_reading_time) const {
    if (predicted_reading_time > params_.td) return true;
    return params_.mode == DecisionMode::kPowerDriven &&
           predicted_reading_time > params_.tp;
  }

  const ControllerParams& params() const { return params_; }

 private:
  ControllerParams params_;
};

}  // namespace eab::core
