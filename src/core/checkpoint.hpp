// Durable checkpoint journal: length+CRC-framed records, torn-tail
// tolerant.
//
// The supervisor streams one record per completed shard into this journal
// so a killed run — workers, or the orchestrator itself — resumes from
// exactly the set of shards whose records were durably committed.  The
// guarantees that make bit-identical recovery possible:
//
//   - every append is framed [magic u32][type u32][length u64][crc u32]
//     [payload], where the CRC covers type+length+payload, and is fsync'd
//     before append() returns — a record either survives whole or is
//     detectably torn;
//   - recovery scans from the front and stops at the first frame that is
//     short, mis-magicked or CRC-mismatched; everything after that point
//     (the torn tail a mid-write SIGKILL leaves) is dropped and the file is
//     truncated back to the last intact boundary before appending resumes,
//     so one crash can never corrupt the records a later crash would need;
//   - the journal file itself is created durably (directory fsync), so a
//     crash immediately after creation still finds a valid empty journal.
//
// The journal stores opaque payload bytes; record meaning (shard results,
// launch markers, config fingerprints) belongs to the supervisor layer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace eab::core {

/// What recovery found in an existing journal file.
struct CheckpointRecoverStats {
  std::size_t records = 0;       ///< intact records recovered
  std::size_t dropped_bytes = 0; ///< torn-tail bytes truncated away
  bool torn = false;             ///< true when a torn tail was dropped
};

/// Append-only journal of framed, checksummed records.
class CheckpointJournal {
 public:
  using RecordFn =
      std::function<void(std::uint32_t type, std::string_view payload)>;

  /// Opens `path` for appending, creating it (durably) if absent.  Every
  /// intact existing record is replayed through `on_record` in write order;
  /// a torn tail is truncated away.  Throws std::runtime_error on I/O
  /// failure.
  explicit CheckpointJournal(std::string path, const RecordFn& on_record = {});
  ~CheckpointJournal();

  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;

  /// Appends one record and fsyncs the file before returning: when this
  /// returns, the record survives any subsequent crash.  Throws
  /// std::runtime_error on I/O failure.
  void append(std::uint32_t type, std::string_view payload);

  const std::string& path() const { return path_; }
  const CheckpointRecoverStats& recovered() const { return recovered_; }

  /// Read-only scan of a journal file (no truncation, no side effects):
  /// replays intact records through `on_record` and reports what a recovery
  /// would find.  A missing file scans as empty.  Exposed for tests and
  /// inspection tools.
  static CheckpointRecoverStats scan(const std::string& path,
                                     const RecordFn& on_record);

  /// Serialized size of a record with an `n`-byte payload (frame included);
  /// the torn-tail tests truncate at every byte inside this span.
  static std::size_t framed_size(std::size_t payload_bytes);

 private:
  std::string path_;
  int fd_ = -1;
  CheckpointRecoverStats recovered_;
};

}  // namespace eab::core
