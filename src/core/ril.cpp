#include "core/ril.hpp"

namespace eab::core {

RilStateSwitcher::RilStateSwitcher(sim::Simulator& sim, radio::RrcMachine& rrc,
                                   RilLatencies latencies)
    : sim_(sim), rrc_(rrc), latencies_(latencies) {}

void RilStateSwitcher::request_idle(OnResult on_result) {
  ++requests_;
  if (trace_) trace_->record(sim_.now(), obs::TraceKind::kRilRequest);
  auto finish = [on_result = std::move(on_result)](bool switched) {
    if (on_result) on_result(switched);
  };
  // App -> framework.
  sim_.schedule_in(latencies_.app_to_framework, [this, finish]() mutable {
    // Framework -> rild over the Unix socket (failure-injection point).
    if (failures_to_inject_ > 0) {
      --failures_to_inject_;
      ++socket_failures_;
      if (trace_) trace_->record(sim_.now(), obs::TraceKind::kRilSocketFailure);
      finish(false);
      return;
    }
    sim_.schedule_in(latencies_.framework_to_rild, [this, finish]() mutable {
      // rild -> firmware, then the firmware starts the release.
      sim_.schedule_in(latencies_.rild_to_firmware, [this, finish]() mutable {
        if (trace_) trace_->record(sim_.now(), obs::TraceKind::kRilForwarded);
        const bool switched = rrc_.force_idle();
        if (switched) ++releases_;
        finish(switched);
      });
    });
  });
}

}  // namespace eab::core
