// Single-load experiment stack.
//
// Assembles the full system — simulator, web server with a generated page,
// RRC radio, shared downlink, HTTP client, CPU, one of the two pipelines —
// runs one page load plus a reading window, and returns every quantity the
// paper's figures report: timings, Table 1 features, energy integrals, the
// whole-phone power trace (Fig 1/9), the link-rate trace (Fig 4) and the DCH
// residency that feeds the capacity model (Fig 11).
#pragma once

#include <memory>
#include <string>

#include "browser/pipeline.hpp"
#include "core/energy_report.hpp"
#include "corpus/generator.hpp"
#include "net/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "radio/outage.hpp"
#include "radio/rrc_config.hpp"
#include "util/timeline.hpp"

namespace eab::core {

/// Runtime disturbances the chaos engine injects into one load — the fault
/// domains that cannot be expressed as plain config perturbations (timer
/// drift and CPU slowdown just rescale RrcConfig / ComputeCostModel fields).
/// All fields are plain data serialised into batch_memo_key; the zero value
/// schedules nothing, so a default ChaosDirectives leaves the event stream
/// byte-identical to a stack built before this struct existed.
struct ChaosDirectives {
  /// User abort: the load is gracefully abandoned at this simulated time
  /// (PageLoad::abort tears down fetches, link flows and transfer markers).
  /// 0 disables.  An abort scheduled after the load finishes is a no-op.
  Seconds abort_at = 0;
  /// RIL fast-dormancy failures: the next N switch-to-IDLE requests die at
  /// the framework->rild socket hop; the radio must fall back to T1/T2.
  int ril_socket_failures = 0;
  /// Cache eviction storm: `cache_storm_count` full evictions of the
  /// browser cache, the first at `cache_storm_start`, subsequent ones
  /// `cache_storm_period` apart.  Needs use_browser_cache to bite.
  int cache_storm_count = 0;
  Seconds cache_storm_start = 1.0;
  Seconds cache_storm_period = 1.0;

  bool enabled() const {
    return abort_at > 0 || ril_socket_failures > 0 || cache_storm_count > 0;
  }
};

/// Configuration of the whole measurement stack.
struct StackConfig {
  radio::RrcConfig rrc;
  radio::RadioPowerModel power;
  radio::LinkConfig link;
  browser::PipelineConfig pipeline;
  /// Energy-aware radio release at transmission-complete (Section 4.1);
  /// routed through the RIL chain.
  bool force_idle_at_tx = false;
  int max_parallel_connections = 3;
  /// Session-persistent browser cache (extension; the paper measures cold
  /// loads). When enabled, subresources persist across a session's pages.
  bool use_browser_cache = false;
  Bytes browser_cache_bytes = 4 * 1024 * 1024;
  /// Deterministic network fault injection (robustness extension).  The
  /// default plan is disabled and schedules nothing: a zero-fault stack is
  /// byte-identical to one built before the fault layer existed.
  net::FaultPlan fault_plan;
  /// Watchdog/retry policy for the HTTP client.  The default watchdog is
  /// off (no extra events); any plan with a stall rate requires a positive
  /// request_timeout or the load could hang forever.
  net::RetryPolicy retry;
  /// Deterministic radio coverage outages (robustness extension): seed-
  /// derived windows during which the link is down and the RRC machine runs
  /// its RLF / OUT_OF_SERVICE / re-establishment machinery.  The default
  /// plan is disabled and schedules nothing — byte-identical to a stack
  /// built before the radio failure model existed.
  radio::OutagePlan outage;
  /// Record a structured event trace of the run (obs::TraceRecorder attached
  /// to every layer).  Recording never schedules simulator events, so every
  /// simulation result — sim_events included — is identical either way; the
  /// returned SingleLoadResult carries the recording in `trace`.
  bool trace = false;
  /// Cross-layer runtime disturbances (user abort, RIL failures, cache
  /// eviction storms); composed by the chaos engine, defaults inert.
  ChaosDirectives chaos;
  /// Liveness guard: the load's simulator may fire at most this many events
  /// before run_single_load gives up with a sim::BudgetExhaustedError (whose
  /// message carries a pending-heap dump).  A healthy load fires a few
  /// thousand events; the default is generous enough that only a genuinely
  /// wedged simulation — an event loop feeding itself — ever trips it.
  std::uint64_t sim_event_budget = 10'000'000;

  /// Convenience: a stack for the given mode with everything else default.
  static StackConfig for_mode(browser::PipelineMode mode);
};

/// Everything measured from one load.
struct SingleLoadResult {
  browser::LoadMetrics metrics;
  browser::PageFeatures features;
  browser::PageGeometry geometry;
  /// Energy integrals: load_j covers start..final display, with_reading_j
  /// and radio_j cover start..final display + reading window (= window_s).
  EnergyReport energy;
  Seconds reading_window = 0;
  Seconds dch_time = 0;            ///< capacity-model service time
  Seconds fach_time = 0;
  int idle_promotions = 0;
  int forced_releases = 0;
  Bytes bytes_fetched = 0;
  // Degradation accounting (all zero on a fault-free load).
  int fetch_retries = 0;       ///< extra network attempts behind the load
  int fetch_timeouts = 0;      ///< watchdog expiries
  int failed_resources = 0;    ///< fetches settled without a body
  int truncated_resources = 0; ///< partial bodies delivered and parsed
  int link_fades = 0;          ///< fade windows that began during the run
  int radio_outages = 0;       ///< coverage windows that began during the run
  int rlf_count = 0;           ///< radio-link failures declared
  int reestablish_ok = 0;      ///< re-establishment attempts that succeeded
  int reestablish_fail = 0;    ///< re-establishment attempts that failed
  Seconds out_of_service_time = 0;  ///< residency camped without coverage
  std::uint64_t sim_events = 0;    ///< discrete events the load's simulator fired
  std::string dom_signature;       ///< structural DOM fingerprint
  PowerTimeline total_power;       ///< radio + CPU (Figs 1 and 9)
  PowerTimeline link_rate;         ///< delivered bytes/s (Fig 4)
  /// Per-job observability snapshot (always filled: counters for the
  /// simulator core, HTTP client, radio and load, plus duration/energy
  /// histograms).  BatchRunner merges these in submission order.
  obs::MetricsRegistry job_metrics;
  /// The structured event recording; non-null iff StackConfig::trace.
  std::shared_ptr<obs::TraceRecorder> trace;
};

/// Rejects fault/retry combinations that could hang a simulation (a stall
/// rate with no watchdog).  Called by every stack assembler; exposed so
/// other harnesses wiring their own stacks can share the check.
void validate_fault_wiring(const StackConfig& config);

/// Generates `spec`, loads it under `config`, lets `reading_window` seconds
/// of reading elapse, and reports the measurements.  Thin wrapper: routes
/// through ScenarioBuilder (scenario.hpp), which is the canonical assembly
/// path and applies its build()-time validation.
SingleLoadResult run_single_load(const corpus::PageSpec& spec,
                                 const StackConfig& config,
                                 Seconds reading_window = 20.0,
                                 std::uint64_t seed = 1);

/// The Fig 4 comparator: pull `bytes` through a raw socket, no browser.
struct BulkDownloadResult {
  Seconds started = 0;
  Seconds finished = 0;
  Joules energy = 0;
  PowerTimeline link_rate;
  Seconds duration() const { return finished - started; }
};
BulkDownloadResult run_bulk_download(Bytes bytes, const StackConfig& config);

/// Proxy-assisted browsing comparator (the paper's Section 6: Opera
/// Mini-style systems render on a server and ship a compact bundle).
struct ProxyConfig {
  double compression_ratio = 0.40;  ///< bundle bytes / original page bytes
  Seconds proxy_render_latency = 1.3;  ///< server-side fetch+render time
  /// Client-side work per KB of bundle (decode the pre-laid-out page).
  Seconds client_unpack_per_kb = 0.004;
};

/// Everything measured from one proxy-assisted load.
struct ProxyLoadResult {
  Seconds transmission_time = 0;  ///< request to last bundle byte
  Seconds total_time = 0;         ///< to the (only) display
  /// load_j covers start..display; with_reading_j/radio_j cover the full
  /// observed window (display + reading), whose end is window_s.
  EnergyReport energy;
  Bytes bundle_bytes = 0;
};

/// Loads `spec` through a rendering proxy: one request, one compressed
/// bundle, one client-side unpack+display, radio released right after the
/// bundle (the proxy knows the page is complete).
ProxyLoadResult run_proxy_load(const corpus::PageSpec& spec,
                               const StackConfig& config,
                               const ProxyConfig& proxy = {},
                               Seconds reading_window = 20.0,
                               std::uint64_t seed = 1);

namespace detail {
// The actual stack assemblers, shared by Scenario's run methods and the
// legacy wrappers above.  Call sites should go through ScenarioBuilder.
SingleLoadResult run_single_load_impl(const corpus::PageSpec& spec,
                                      const StackConfig& config,
                                      Seconds reading_window,
                                      std::uint64_t seed);
BulkDownloadResult run_bulk_download_impl(Bytes bytes,
                                          const StackConfig& config);
ProxyLoadResult run_proxy_load_impl(const corpus::PageSpec& spec,
                                    const StackConfig& config,
                                    const ProxyConfig& proxy,
                                    Seconds reading_window, std::uint64_t seed);
}  // namespace detail

}  // namespace eab::core
