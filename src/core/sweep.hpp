// One sweep driver for every execution tier.
//
// The repo grew three parallel entry points per sweepable result type —
// a serial loop, a BatchRunner-sharded variant and a Supervisor-backed
// process-level variant — each re-implementing the same contract: shard i
// computes a pure function of i, results are consumed in ascending index
// order (merge-on-arrival: shard k is handed over as soon as it and every
// shard below it finished, then released, so aggregation is streaming and
// constant-memory), and the consumed sequence is bit-identical across all
// tiers.  SweepDriver<Result> is that contract, written once:
//
//   core::SweepDriver<CellResult> driver;
//   driver.shard([&](std::size_t i) { return run_cell(config_for(i)); })
//         .consume([&](std::size_t i, CellResult&& r) { fold(i, r); });
//   driver.run(n, core::SweepExecution::serial());
//   driver.run(n, core::SweepExecution::pooled(runner));      // threads
//   driver.run(n, core::SweepExecution::supervised(sup));     // processes
//
// The supervised tier crosses process boundaries, so it additionally needs
// a codec (driver.codec(serialize, deserialize)) — the same bit-exact
// binary round-trip the checkpoint journal stores.  Serial and pooled
// tiers never touch the codec.
//
// Execution-tier equivalence: the shard function must be a pure function
// of its index (no shared mutable state), exactly as BatchRunner and
// Supervisor already require.  Under that contract the consume sequence —
// indices, order and payload bits — is identical across the three tiers,
// which is what lets check.sh byte-compare serial, sharded and supervised
// bench artifacts.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "core/batch.hpp"
#include "core/supervisor.hpp"

namespace eab::core {

/// Which tier a sweep runs on.  Holds non-owning references to the engine
/// it selects; the engine must outlive the run() call.
class SweepExecution {
 public:
  enum class Tier { kSerial, kBatchPooled, kSupervised };

  /// Plain in-process loop (the reference ordering).
  static SweepExecution serial() { return SweepExecution(Tier::kSerial); }
  /// Thread-pooled via BatchRunner::run_indexed; consume still runs in
  /// ascending index order (completed shards buffer until the contiguous
  /// prefix reaches them).
  static SweepExecution pooled(BatchRunner& runner) {
    SweepExecution e(Tier::kBatchPooled);
    e.runner_ = &runner;
    return e;
  }
  /// Process-per-shard under a Supervisor (heartbeats, retries, durable
  /// checkpoints); requires a codec on the driver.
  static SweepExecution supervised(Supervisor& supervisor) {
    SweepExecution e(Tier::kSupervised);
    e.supervisor_ = &supervisor;
    return e;
  }

  Tier tier() const { return tier_; }
  BatchRunner& runner() const { return *runner_; }
  Supervisor& supervisor() const { return *supervisor_; }

 private:
  explicit SweepExecution(Tier tier) : tier_(tier) {}
  Tier tier_;
  BatchRunner* runner_ = nullptr;
  Supervisor* supervisor_ = nullptr;
};

/// The one sweep driver.  See file comment for the contract.
template <typename Result>
class SweepDriver {
 public:
  using ShardFn = std::function<Result(std::size_t index)>;
  using ConsumeFn = std::function<void(std::size_t index, Result&& result)>;
  using SerializeFn = std::function<std::string(const Result&)>;
  using DeserializeFn = std::function<Result(std::string_view)>;

  /// Computes shard `index`.  Must be a pure function of the index.
  SweepDriver& shard(ShardFn fn) {
    shard_ = std::move(fn);
    return *this;
  }

  /// Receives each result exactly once, in ascending index order; the
  /// result is released after the call returns (constant-memory folding).
  /// Optional: unset, results are computed and discarded.
  SweepDriver& consume(ConsumeFn fn) {
    consume_ = std::move(fn);
    return *this;
  }

  /// Bit-exact binary round-trip for the supervised tier (worker ->
  /// orchestrator pipes and checkpoint journal records).
  SweepDriver& codec(SerializeFn serialize, DeserializeFn deserialize) {
    serialize_ = std::move(serialize);
    deserialize_ = std::move(deserialize);
    return *this;
  }

  /// Runs shards [0, count) on the selected tier.  Serial and pooled tiers
  /// propagate the first (lowest-index) shard exception and return a
  /// fully-ok report otherwise; the supervised tier never throws for shard
  /// failures — they surface in the report and consume skips them.
  SupervisorReport run(std::size_t count, const SweepExecution& exec) {
    if (!shard_) {
      throw std::invalid_argument("SweepDriver::run: no shard function");
    }
    switch (exec.tier()) {
      case SweepExecution::Tier::kSerial: return run_serial(count);
      case SweepExecution::Tier::kBatchPooled:
        return run_pooled(count, exec.runner());
      case SweepExecution::Tier::kSupervised:
        return run_supervised(count, exec.supervisor());
    }
    throw std::logic_error("SweepDriver::run: unknown tier");
  }

 private:
  SupervisorReport in_process_report(std::size_t count) const {
    SupervisorReport report;
    report.shards = count;
    report.completed = count;
    return report;
  }

  SupervisorReport run_serial(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      Result result = shard_(i);
      if (consume_) consume_(i, std::move(result));
    }
    return in_process_report(count);
  }

  SupervisorReport run_pooled(std::size_t count, BatchRunner& runner) {
    // Workers complete in pool order; consume still runs strictly in index
    // order by buffering each completed result until the contiguous prefix
    // reaches it.  Memory is bounded by the reorder window (at most one
    // result per in-flight worker beyond the prefix), not the axis length.
    std::mutex mutex;
    std::map<std::size_t, Result> buffered;
    std::size_t next = 0;
    runner.run_indexed(count, [&](std::size_t i) {
      Result result = shard_(i);
      std::lock_guard<std::mutex> lock(mutex);
      buffered.emplace(i, std::move(result));
      while (!buffered.empty() && buffered.begin()->first == next) {
        auto node = buffered.extract(buffered.begin());
        if (consume_) consume_(next, std::move(node.mapped()));
        ++next;
      }
    });
    return in_process_report(count);
  }

  SupervisorReport run_supervised(std::size_t count, Supervisor& supervisor) {
    if (!serialize_ || !deserialize_) {
      throw std::invalid_argument(
          "SweepDriver::run: the supervised tier needs a codec "
          "(results cross process boundaries)");
    }
    return supervisor.run(
        count,
        [&](std::size_t i) {  // worker process
          return serialize_(shard_(i));
        },
        [&](std::size_t i, std::string_view payload) {  // orchestrator
          if (consume_) consume_(i, deserialize_(payload));
        });
  }

  ShardFn shard_;
  ConsumeFn consume_;
  SerializeFn serialize_;
  DeserializeFn deserialize_;
};

}  // namespace eab::core
