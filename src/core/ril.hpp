// Radio Interface Layer state-switch path (paper Section 4.4).
//
// Android gives applications no direct firmware access: the browser sends a
// message to the framework (RIL.java), which forwards it over a Unix socket
// to the RIL daemon, which finally drives the radio firmware.  Each hop adds
// latency; the firmware then executes the fast-dormancy release.  Failure
// injection at the socket hop models a crashed rild — the radio must then
// simply stay under timer control, never wedge.
#pragma once

#include <functional>

#include "obs/trace.hpp"
#include "radio/rrc.hpp"
#include "sim/simulator.hpp"

namespace eab::core {

/// Message-path latencies of the app -> framework -> rild -> firmware chain.
struct RilLatencies {
  Seconds app_to_framework = 0.002;   ///< binder message to RIL.java
  Seconds framework_to_rild = 0.004;  ///< Unix socket hop
  Seconds rild_to_firmware = 0.006;   ///< vendor RIL call
  Seconds total() const {
    return app_to_framework + framework_to_rild + rild_to_firmware;
  }
};

/// Application-level switch-to-IDLE requests routed through the RIL chain.
class RilStateSwitcher {
 public:
  using OnResult = std::function<void(bool switched)>;

  RilStateSwitcher(sim::Simulator& sim, radio::RrcMachine& rrc,
                   RilLatencies latencies = {});

  /// Requests fast dormancy. The request travels the message chain and then
  /// asks the radio to release; `on_result` (optional) reports whether the
  /// release actually started (false when the radio was busy/IDLE or the
  /// socket hop failed).
  void request_idle(OnResult on_result = nullptr);

  /// Failure injection: the next `count` socket hops fail (rild restart).
  void fail_next(int count) { failures_to_inject_ = count; }

  int requests_sent() const { return requests_; }
  int releases_started() const { return releases_; }
  int socket_failures() const { return socket_failures_; }

  /// Attaches a trace recorder (nullptr detaches).  Recording is synchronous
  /// and never schedules events, so behavior is identical either way.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

 private:
  sim::Simulator& sim_;
  radio::RrcMachine& rrc_;
  RilLatencies latencies_;
  obs::TraceRecorder* trace_ = nullptr;
  int requests_ = 0;
  int releases_ = 0;
  int socket_failures_ = 0;
  int failures_to_inject_ = 0;
};

}  // namespace eab::core
