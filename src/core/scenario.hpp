// Unified assembly path for every experiment in the repository.
//
// ScenarioBuilder is the single way one-UE and N-UE experiments are put
// together: fluent setters over StackConfig plus the run parameters
// (reading window, seed), with every contradictory-knob check applied once
// at build().  The legacy free functions (run_single_load and friends) are
// thin wrappers over a built Scenario, and the cell co-simulation consumes
// a Scenario as its per-UE template — so a config that passed build() is
// valid everywhere.
#pragma once

#include <cstdint>

#include "core/experiment.hpp"
#include "core/session.hpp"

namespace eab::core {

/// A validated, ready-to-run experiment: the stack plus run parameters.
/// Obtain one from ScenarioBuilder::build(); the struct itself is plain
/// data and cheap to copy (the cell layer stamps per-UE seeds onto copies).
struct Scenario {
  StackConfig stack;
  Seconds reading_window = 20.0;
  std::uint64_t seed = 1;

  /// The run_* entry points, identical in behavior to the legacy free
  /// functions of experiment.hpp (which now delegate here).
  SingleLoadResult run_single(const corpus::PageSpec& spec) const;
  BulkDownloadResult run_bulk(Bytes bytes) const;
  ProxyLoadResult run_proxy(const corpus::PageSpec& spec,
                            const ProxyConfig& proxy = {}) const;
};

/// Fluent construction with validation at build().  Default-constructed it
/// reproduces StackConfig{} exactly; ScenarioBuilder(mode) reproduces
/// StackConfig::for_mode(mode) (pipeline mode + fast dormancy for the
/// energy-aware pipeline) — a regression test pins both equivalences.
class ScenarioBuilder {
 public:
  ScenarioBuilder() = default;
  explicit ScenarioBuilder(browser::PipelineMode mode) { this->mode(mode); }

  /// Sets the pipeline mode and couples fast dormancy to it the way
  /// StackConfig::for_mode always has: energy-aware releases the radio at
  /// transmission-complete, Original does not.  Call force_idle_at_tx()
  /// afterwards to decouple them.
  ScenarioBuilder& mode(browser::PipelineMode mode) {
    scenario_.stack.pipeline.mode = mode;
    scenario_.stack.force_idle_at_tx =
        mode == browser::PipelineMode::kEnergyAware;
    return *this;
  }
  ScenarioBuilder& rrc(const radio::RrcConfig& rrc) {
    scenario_.stack.rrc = rrc;
    return *this;
  }
  ScenarioBuilder& power(const radio::RadioPowerModel& power) {
    scenario_.stack.power = power;
    return *this;
  }
  ScenarioBuilder& link(const radio::LinkConfig& link) {
    scenario_.stack.link = link;
    return *this;
  }
  ScenarioBuilder& pipeline(const browser::PipelineConfig& pipeline) {
    scenario_.stack.pipeline = pipeline;
    return *this;
  }
  ScenarioBuilder& force_idle_at_tx(bool on) {
    scenario_.stack.force_idle_at_tx = on;
    return *this;
  }
  ScenarioBuilder& max_parallel_connections(int n) {
    scenario_.stack.max_parallel_connections = n;
    return *this;
  }
  ScenarioBuilder& browser_cache(Bytes bytes) {
    scenario_.stack.use_browser_cache = true;
    scenario_.stack.browser_cache_bytes = bytes;
    return *this;
  }
  ScenarioBuilder& no_browser_cache() {
    scenario_.stack.use_browser_cache = false;
    return *this;
  }
  ScenarioBuilder& fault_plan(const net::FaultPlan& plan) {
    scenario_.stack.fault_plan = plan;
    return *this;
  }
  ScenarioBuilder& retry(const net::RetryPolicy& retry) {
    scenario_.stack.retry = retry;
    return *this;
  }
  ScenarioBuilder& outage(const radio::OutagePlan& plan) {
    scenario_.stack.outage = plan;
    return *this;
  }
  ScenarioBuilder& trace(bool on = true) {
    scenario_.stack.trace = on;
    return *this;
  }
  ScenarioBuilder& chaos(const ChaosDirectives& chaos) {
    scenario_.stack.chaos = chaos;
    return *this;
  }
  ScenarioBuilder& sim_event_budget(std::uint64_t budget) {
    scenario_.stack.sim_event_budget = budget;
    return *this;
  }
  ScenarioBuilder& reading_window(Seconds window) {
    scenario_.reading_window = window;
    return *this;
  }
  ScenarioBuilder& seed(std::uint64_t seed) {
    scenario_.seed = seed;
    return *this;
  }
  /// Wholesale replacement of the stack — the escape hatch the legacy
  /// wrappers use, so pre-built StackConfigs still flow through build()'s
  /// validation.
  ScenarioBuilder& stack(const StackConfig& stack) {
    scenario_.stack = stack;
    return *this;
  }

  /// Validates the assembled knobs and returns the runnable Scenario.
  /// Throws std::invalid_argument naming the offending knob on:
  ///   - sim_event_budget == 0 (the liveness guard would fire immediately)
  ///   - a stall rate with no watchdog (the load could hang forever)
  ///   - any negative fault rate, or rates summing above 1
  ///   - a cache eviction storm with no browser cache to evict
  ///   - max_parallel_connections < 1, negative reading window, negative
  ///     chaos timings, negative retry counts/backoffs
  Scenario build() const;

  /// Same validation, then wraps the stack in a SessionConfig for the given
  /// policy.  This is the one place single-load and session defaults are
  /// unified: the session inherits the builder's retry policy and cache
  /// knobs verbatim instead of diverging silently (run_session derives the
  /// pipeline mode from the policy, so mode() is ignored here).
  SessionConfig build_session(SessionPolicy policy) const;

 private:
  Scenario scenario_;
};

}  // namespace eab::core
