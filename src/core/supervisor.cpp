#include "core/supervisor.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "core/checkpoint.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace eab::core {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start, Clock::time_point now) {
  return std::chrono::duration<double>(now - start).count();
}

// Worker -> orchestrator pipe frames: [u8 kind][u64 length][payload].  A
// frame cut short by worker death shows up as EOF mid-frame and is simply
// discarded — the shard retries; nothing partial is ever journaled.
constexpr std::uint8_t kFrameHeartbeat = 1;
constexpr std::uint8_t kFrameResult = 2;
constexpr std::uint8_t kFrameError = 3;
constexpr std::size_t kPipeHeaderBytes = 1 + 8;

void pipe_full_write(int fd, std::string_view bytes) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      _exit(3);  // orchestrator gone (EPIPE): nothing useful left to do
    }
    written += static_cast<std::size_t>(n);
  }
}

std::string make_frame(std::uint8_t kind, std::string_view payload) {
  std::string frame;
  frame.reserve(kPipeHeaderBytes + payload.size());
  BinaryWriter w(frame);
  w.u8(kind);
  w.u64(payload.size());
  frame.append(payload);
  return frame;
}

/// Worker body after fork: heartbeat thread + shard fn + one result frame.
/// Exits via _exit so inherited stdio buffers are never double-flushed into
/// the orchestrator's output.
[[noreturn]] void run_worker(int write_fd, std::size_t shard,
                             const Supervisor::ShardFn& work,
                             Seconds heartbeat_interval) {
  // Die with the orchestrator: an orphaned worker must not keep computing
  // (or keep a soak's relaunch loop waiting) after a SIGKILLed parent.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
  ::signal(SIGPIPE, SIG_IGN);

  std::mutex pipe_mutex;  // heartbeat thread vs result write
  std::atomic<bool> stop{false};
  std::thread heartbeat([&] {
    const auto interval = std::chrono::duration<double>(
        std::max(0.001, static_cast<double>(heartbeat_interval)));
    const std::string frame = make_frame(kFrameHeartbeat, {});
    while (!stop.load(std::memory_order_relaxed)) {
      {
        std::lock_guard<std::mutex> lock(pipe_mutex);
        pipe_full_write(write_fd, frame);
      }
      std::this_thread::sleep_for(interval);
    }
  });

  std::uint8_t kind = kFrameResult;
  std::string payload;
  try {
    payload = work(shard);
  } catch (const std::exception& e) {
    kind = kFrameError;
    payload = e.what();
  } catch (...) {
    kind = kFrameError;
    payload = "unknown exception";
  }

  stop.store(true, std::memory_order_relaxed);
  heartbeat.join();
  {
    std::lock_guard<std::mutex> lock(pipe_mutex);
    pipe_full_write(write_fd, make_frame(kind, payload));
  }
  ::close(write_fd);
  _exit(0);
}

enum class ShardState : std::uint8_t { kPending, kRunning, kDone, kFailed };

struct ShardBook {
  ShardState state = ShardState::kPending;
  int attempts = 0;                   ///< attempts started this launch
  Clock::time_point next_eligible{};  ///< backoff gate for the next attempt
};

struct LiveWorker {
  pid_t pid = -1;
  int fd = -1;
  std::size_t shard = 0;
  Clock::time_point started{};
  Clock::time_point last_io{};
  std::string buffer;     ///< unparsed pipe bytes
  bool settled = false;   ///< result/error frame fully received
  bool killed = false;    ///< we already SIGKILLed it (awaiting EOF)
};

}  // namespace

std::string SupervisorReport::summary() const {
  char line[256];
  std::snprintf(line, sizeof line,
                "supervisor: launch=%zu shards=%zu completed=%zu recovered=%zu "
                "spawned=%zu retries=%zu kills=%zu chaos_kills=%zu errors=%zu",
                launch, shards, completed, recovered, spawned, retries, kills,
                chaos_kills, errors.size());
  return line;
}

Supervisor::Supervisor(SupervisorConfig config) : config_(std::move(config)) {
  if (!(config_.heartbeat_interval > 0) || !(config_.heartbeat_timeout > 0)) {
    throw std::invalid_argument("Supervisor: heartbeat knobs must be > 0");
  }
  if (config_.heartbeat_timeout <= config_.heartbeat_interval) {
    throw std::invalid_argument(
        "Supervisor: heartbeat_timeout must exceed heartbeat_interval");
  }
  if (!(config_.shard_deadline > 0)) {
    throw std::invalid_argument("Supervisor: shard_deadline must be > 0");
  }
  if (config_.max_attempts < 1) {
    throw std::invalid_argument("Supervisor: max_attempts must be >= 1");
  }
  if (!(config_.backoff_initial >= 0) || !(config_.backoff_max >= 0)) {
    throw std::invalid_argument("Supervisor: backoff must be >= 0");
  }
  if (config_.self_chaos_worker_kills < 0) {
    throw std::invalid_argument(
        "Supervisor: self_chaos_worker_kills must be >= 0");
  }
}

int Supervisor::resolve_workers(int requested) {
  if (requested > 0) return std::min(requested, 1024);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::string Supervisor::encode_shard_payload(std::size_t shard,
                                             std::string_view bytes) {
  std::string payload;
  payload.reserve(16 + bytes.size());
  BinaryWriter w(payload);
  w.u64(shard);
  w.str(bytes);
  return payload;
}

void Supervisor::decode_shard_payload(std::string_view payload,
                                      std::size_t& shard, std::string& bytes) {
  BinaryReader r(payload);
  shard = static_cast<std::size_t>(r.u64());
  bytes = r.str();
  r.expect_done();
}

SupervisorReport Supervisor::run(std::size_t shard_count, const ShardFn& work,
                                 const MergeFn& merge) {
  if (!work) throw std::invalid_argument("Supervisor::run: empty shard fn");
  SupervisorReport report;
  report.shards = shard_count;
  if (shard_count == 0) return report;

  // --- journal recovery -----------------------------------------------------
  std::map<std::size_t, std::string> ready;  ///< completed, not yet merged
  std::vector<ShardBook> book(shard_count);
  std::unique_ptr<CheckpointJournal> journal;
  bool fingerprint_seen = false;
  if (!config_.checkpoint_path.empty()) {
    journal = std::make_unique<CheckpointJournal>(
        config_.checkpoint_path,
        [&](std::uint32_t type, std::string_view payload) {
          switch (type) {
            case kRecordFingerprint:
              fingerprint_seen = true;
              if (!config_.fingerprint.empty() &&
                  payload != config_.fingerprint) {
                throw std::runtime_error(
                    "Supervisor: checkpoint journal " +
                    config_.checkpoint_path +
                    " was written by a different run (fingerprint mismatch); "
                    "refusing to merge foreign results");
              }
              break;
            case kRecordLaunch:
              ++report.launch;
              break;
            case kRecordShardResult: {
              std::size_t shard = 0;
              std::string bytes;
              decode_shard_payload(payload, shard, bytes);
              if (shard < shard_count &&
                  book[shard].state == ShardState::kPending) {
                book[shard].state = ShardState::kDone;
                ready.emplace(shard, std::move(bytes));
                ++report.recovered;
              }
              break;
            }
            case kRecordShardError: {
              std::size_t shard = 0;
              std::string what;
              decode_shard_payload(payload, shard, what);
              if (shard < shard_count &&
                  book[shard].state == ShardState::kPending) {
                book[shard].state = ShardState::kFailed;
                report.errors.push_back(ShardError{shard, std::move(what), true});
              }
              break;
            }
            default:
              break;  // unknown record types are skippable by design
          }
        });
    if (!fingerprint_seen && !config_.fingerprint.empty()) {
      journal->append(kRecordFingerprint, config_.fingerprint);
    }
    std::string launch_payload;
    BinaryWriter w(launch_payload);
    w.u64(report.launch);
    journal->append(kRecordLaunch, launch_payload);
  }

  // --- streaming merge in shard order ---------------------------------------
  std::size_t next_merge = 0;
  std::size_t merged = 0;
  auto advance_merge = [&] {
    while (next_merge < shard_count) {
      if (book[next_merge].state == ShardState::kFailed) {
        ++next_merge;  // failed shards are holes the merge skips
        continue;
      }
      const auto it = ready.find(next_merge);
      if (it == ready.end()) break;
      if (merge) merge(next_merge, it->second);
      ready.erase(it);  // payload released as soon as it is consumed
      ++merged;
      ++next_merge;
    }
  };
  advance_merge();

  // --- self-chaos schedule --------------------------------------------------
  // Kill points are commit counts within this launch, derived from
  // (seed, launch, k): deterministic for a given relaunch history, different
  // across launches so a resumed run does not re-block on the same shards.
  std::vector<std::uint64_t> chaos_kill_points;
  for (int k = 0; k < config_.self_chaos_worker_kills; ++k) {
    if (config_.self_chaos_seed == 0) break;
    chaos_kill_points.push_back(
        1 + derive_seed(config_.self_chaos_seed, report.launch * 256 + k) %
                std::max<std::uint64_t>(1, shard_count));
  }
  std::sort(chaos_kill_points.begin(), chaos_kill_points.end());
  // The orchestrator suicides once, on the first launch, right after a
  // durable commit — pointless (and unrecoverable) without a journal.
  const bool orc_suicide_armed = config_.self_chaos_seed != 0 &&
                                 config_.self_chaos_kill_orchestrator &&
                                 journal != nullptr && report.launch == 0;
  const std::uint64_t orc_suicide_commit =
      1 + derive_seed(config_.self_chaos_seed, 0xFEEDULL) %
              std::max<std::uint64_t>(1, shard_count);
  std::uint64_t commits_this_launch = 0;

  // --- orchestrator loop ----------------------------------------------------
  std::vector<LiveWorker> live;
  const int max_workers = std::min<std::size_t>(
      static_cast<std::size_t>(resolve_workers(config_.workers)), shard_count);

  auto cleanup_worker = [&](LiveWorker& w) {
    if (w.fd >= 0) ::close(w.fd);
    if (w.pid > 0) {
      int status = 0;
      while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
    w.fd = -1;
    w.pid = -1;
  };
  struct KillAllGuard {
    std::vector<LiveWorker>* live;
    ~KillAllGuard() {
      for (auto& w : *live) {
        if (w.pid > 0) {
          ::kill(w.pid, SIGKILL);
          int status = 0;
          while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
          }
        }
        if (w.fd >= 0) ::close(w.fd);
      }
      live->clear();
    }
  } kill_all_guard{&live};

  auto record_failure = [&](std::size_t shard, std::string what,
                            bool deterministic) {
    book[shard].state = ShardState::kFailed;
    report.errors.push_back(ShardError{shard, what, deterministic});
    if (deterministic && journal) {
      journal->append(kRecordShardError, encode_shard_payload(shard, what));
      ++commits_this_launch;
    }
    advance_merge();
  };

  /// A worker died without settling: retry with backoff or give up.
  auto attempt_failed = [&](std::size_t shard, const char* why) {
    ShardBook& b = book[shard];
    b.state = ShardState::kPending;
    if (b.attempts >= config_.max_attempts) {
      record_failure(shard,
                     std::string("worker died on every attempt (last: ") +
                         why + ", attempts=" +
                         std::to_string(b.attempts) + ")",
                     false);
      return;
    }
    ++report.retries;
    const double backoff = std::min(
        static_cast<double>(config_.backoff_max),
        static_cast<double>(config_.backoff_initial) *
            static_cast<double>(1u << std::min(20, b.attempts - 1)));
    b.next_eligible =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(backoff));
  };

  auto spawn = [&](std::size_t shard) {
    int fds[2];
    if (::pipe(fds) != 0) {
      throw std::runtime_error(std::string("Supervisor: pipe failed: ") +
                               std::strerror(errno));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      throw std::runtime_error(std::string("Supervisor: fork failed: ") +
                               std::strerror(errno));
    }
    if (pid == 0) {
      ::close(fds[0]);
      run_worker(fds[1], shard, work, config_.heartbeat_interval);
    }
    ::close(fds[1]);
    LiveWorker w;
    w.pid = pid;
    w.fd = fds[0];
    w.shard = shard;
    w.started = w.last_io = Clock::now();
    live.push_back(std::move(w));
    ++book[shard].attempts;
    book[shard].state = ShardState::kRunning;
    ++report.spawned;
  };

  /// Parses complete frames out of a worker's buffer; commits results and
  /// deterministic errors as they become whole.
  auto consume_frames = [&](LiveWorker& w) {
    for (;;) {
      if (w.buffer.size() < kPipeHeaderBytes) return;
      BinaryReader header(
          std::string_view(w.buffer).substr(0, kPipeHeaderBytes));
      const std::uint8_t kind = header.u8();
      const std::uint64_t length = header.u64();
      if (w.buffer.size() - kPipeHeaderBytes < length) return;
      const std::string payload =
          w.buffer.substr(kPipeHeaderBytes, static_cast<std::size_t>(length));
      w.buffer.erase(0, kPipeHeaderBytes + static_cast<std::size_t>(length));
      switch (kind) {
        case kFrameHeartbeat:
          break;  // liveness already noted via last_io
        case kFrameResult: {
          if (w.settled) break;
          w.settled = true;
          if (journal) {
            journal->append(kRecordShardResult,
                            encode_shard_payload(w.shard, payload));
          }
          ++commits_this_launch;
          book[w.shard].state = ShardState::kDone;
          ready.emplace(w.shard, payload);
          advance_merge();
          break;
        }
        case kFrameError: {
          if (w.settled) break;
          w.settled = true;
          record_failure(w.shard, payload, true);
          break;
        }
        default:
          // A corrupted stream means the worker is unreliable: kill it and
          // let the attempt fail on the EOF path.
          ::kill(w.pid, SIGKILL);
          w.killed = true;
          ++report.kills;
          return;
      }
    }
  };

  auto inject_chaos = [&] {
    // Worker kills: one per scheduled commit point that has been reached.
    while (!chaos_kill_points.empty() &&
           commits_this_launch >= chaos_kill_points.front()) {
      chaos_kill_points.erase(chaos_kill_points.begin());
      // Kill the live, unsettled worker with the lowest shard index.
      LiveWorker* victim = nullptr;
      for (auto& w : live) {
        if (w.pid > 0 && !w.settled && !w.killed &&
            (victim == nullptr || w.shard < victim->shard)) {
          victim = &w;
        }
      }
      if (victim == nullptr) continue;  // nothing to kill at this instant
      std::fprintf(stderr, "supervisor: chaos SIGKILL worker shard=%zu\n",
                   victim->shard);
      ::kill(victim->pid, SIGKILL);
      victim->killed = true;
      ++report.kills;
      ++report.chaos_kills;
      // Teardown happens on the normal EOF path below.
    }
    if (orc_suicide_armed && commits_this_launch >= orc_suicide_commit) {
      // The last append was fsync'd; a relaunch resumes from it.
      std::fprintf(stderr, "supervisor: chaos SIGKILL orchestrator\n");
      ::raise(SIGKILL);
    }
  };

  auto all_settled = [&] {
    for (std::size_t i = 0; i < shard_count; ++i) {
      if (book[i].state != ShardState::kDone &&
          book[i].state != ShardState::kFailed) {
        return false;
      }
    }
    return live.empty();
  };

  // --- live progress (stderr; wall-clock, never part of any snapshot) -------
  const Clock::time_point progress_start = Clock::now();
  Clock::time_point progress_last = progress_start;
  std::size_t progress_initial_done = 0;
  for (std::size_t i = 0; config_.progress && i < shard_count; ++i) {
    if (book[i].state == ShardState::kDone ||
        book[i].state == ShardState::kFailed) {
      ++progress_initial_done;
    }
  }
  auto report_progress = [&](Clock::time_point now, bool final_line) {
    if (!config_.progress) return;
    if (!final_line && seconds_since(progress_last, now) < 1.0) return;
    progress_last = now;
    std::size_t pending = 0, running = 0, done = 0, failed = 0;
    for (std::size_t i = 0; i < shard_count; ++i) {
      switch (book[i].state) {
        case ShardState::kPending: ++pending; break;
        case ShardState::kRunning: ++running; break;
        case ShardState::kDone: ++done; break;
        case ShardState::kFailed: ++failed; break;
      }
    }
    double stalest_hb = 0;
    for (const auto& w : live) {
      if (!w.settled) stalest_hb = std::max(stalest_hb, seconds_since(w.last_io, now));
    }
    const double elapsed = seconds_since(progress_start, now);
    const std::size_t settled = done + failed;
    const double rate =
        elapsed > 0
            ? static_cast<double>(settled - progress_initial_done) / elapsed
            : 0.0;
    char eta[32];
    if (rate > 0 && settled < shard_count) {
      std::snprintf(eta, sizeof eta, "%.1fs",
                    static_cast<double>(shard_count - settled) / rate);
    } else {
      std::snprintf(eta, sizeof eta, "n/a");
    }
    std::fprintf(stderr,
                 "supervisor: progress %zu/%zu done (%zu failed) running=%zu "
                 "pending=%zu hb_age=%.1fs rate=%.2f/s eta=%s\n",
                 settled, shard_count, failed, running, pending, stalest_hb,
                 rate, eta);
  };

  while (!all_settled()) {
    const Clock::time_point now = Clock::now();
    report_progress(now, false);

    // Spawn workers into free slots, lowest dispatchable shard first.
    while (static_cast<int>(live.size()) < max_workers) {
      std::size_t next = shard_count;
      for (std::size_t i = 0; i < shard_count; ++i) {
        if (book[i].state == ShardState::kPending && now >= book[i].next_eligible) {
          next = i;
          break;
        }
      }
      if (next == shard_count) break;
      spawn(next);
    }

    if (live.empty()) {
      // Everything pending is backing off: sleep to the earliest gate.
      Clock::time_point wake = now + std::chrono::seconds(1);
      for (std::size_t i = 0; i < shard_count; ++i) {
        if (book[i].state == ShardState::kPending) {
          wake = std::min(wake, book[i].next_eligible);
        }
      }
      const double sleep_s = std::max(0.001, seconds_since(now, wake));
      std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
      continue;
    }

    std::vector<pollfd> fds;
    fds.reserve(live.size());
    for (const auto& w : live) {
      fds.push_back(pollfd{w.fd, POLLIN, 0});
    }
    const int timeout_ms = 50;  // deadline/backoff granularity
    const int ready_fds = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready_fds < 0 && errno != EINTR) {
      throw std::runtime_error(std::string("Supervisor: poll failed: ") +
                               std::strerror(errno));
    }

    const Clock::time_point after = Clock::now();
    // Drain readable pipes, then sweep for EOFs, hangs and deadlines.
    for (std::size_t i = 0; i < live.size();) {
      LiveWorker& w = live[i];
      bool eof = false;
      if (ready_fds > 0 && (fds[i].revents & (POLLIN | POLLHUP)) != 0) {
        char chunk[65536];
        for (;;) {
          const ssize_t n = ::read(w.fd, chunk, sizeof chunk);
          if (n > 0) {
            w.last_io = after;
            w.buffer.append(chunk, static_cast<std::size_t>(n));
            if (static_cast<std::size_t>(n) < sizeof chunk) break;
            continue;
          }
          if (n == 0) {
            eof = true;
            break;
          }
          if (errno == EINTR) continue;
          eof = true;  // read error: treat as worker loss
          break;
        }
        consume_frames(w);
      }

      if (eof) {
        const std::size_t shard = w.shard;
        const bool settled = w.settled;
        cleanup_worker(w);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        if (!settled) attempt_failed(shard, "exited without a result");
        inject_chaos();
        continue;  // do not ++i: erase shifted the vector
      }

      if (!w.settled &&
          seconds_since(w.last_io, after) >
              static_cast<double>(config_.heartbeat_timeout)) {
        std::fprintf(stderr,
                     "supervisor: heartbeat timeout, SIGKILL worker shard=%zu\n",
                     w.shard);
        ::kill(w.pid, SIGKILL);
        ++report.kills;
        const std::size_t shard = w.shard;
        cleanup_worker(w);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        attempt_failed(shard, "heartbeat timeout");
        continue;
      }
      if (!w.settled &&
          seconds_since(w.started, after) >
              static_cast<double>(config_.shard_deadline)) {
        std::fprintf(stderr,
                     "supervisor: deadline exceeded, SIGKILL worker shard=%zu\n",
                     w.shard);
        ::kill(w.pid, SIGKILL);
        ++report.kills;
        const std::size_t shard = w.shard;
        cleanup_worker(w);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        attempt_failed(shard, "shard deadline exceeded");
        continue;
      }
      ++i;
    }
    inject_chaos();
  }

  report_progress(Clock::now(), true);
  advance_merge();
  report.completed = merged;
  std::sort(report.errors.begin(), report.errors.end(),
            [](const ShardError& a, const ShardError& b) {
              return a.shard < b.shard;
            });

  // Uniform failure accounting: same counter name the in-process engine
  // uses for quarantined jobs, plus the supervisor's own process counters.
  report.metrics.count("batch.quarantined",
                       static_cast<double>(report.errors.size()));
  report.metrics.count("supervisor.shards", static_cast<double>(report.shards));
  report.metrics.count("supervisor.recovered",
                       static_cast<double>(report.recovered));
  report.metrics.count("supervisor.spawned",
                       static_cast<double>(report.spawned));
  report.metrics.count("supervisor.shard_retries",
                       static_cast<double>(report.retries));
  report.metrics.count("supervisor.kills", static_cast<double>(report.kills));
  report.metrics.count("supervisor.chaos_kills",
                       static_cast<double>(report.chaos_kills));
  report.metrics.set_max("supervisor.launch", static_cast<double>(report.launch));
  return report;
}

}  // namespace eab::core
