#include "core/experiment.hpp"

#include <optional>
#include <stdexcept>

#include "core/ril.hpp"
#include "core/scenario.hpp"
#include "net/cache.hpp"
#include "net/outage.hpp"
#include "net/socket_downloader.hpp"
#include "sim/simulator.hpp"

namespace eab::core {

void validate_fault_wiring(const StackConfig& config) {
  // A blackholed response produces no event at all; without a watchdog the
  // fetch would never settle and the load would hang. Reject the
  // configuration up front instead of diagnosing a stuck simulation.
  if (config.fault_plan.stall_rate > 0 && config.retry.request_timeout <= 0) {
    throw std::invalid_argument(
        "StackConfig: fault_plan.stall_rate needs retry.request_timeout > 0");
  }
}

StackConfig StackConfig::for_mode(browser::PipelineMode mode) {
  // Delegates to the builder so there is exactly one place the mode/fast-
  // dormancy coupling (and any future mode-dependent default) is defined.
  return ScenarioBuilder(mode).build().stack;
}

SingleLoadResult detail::run_single_load_impl(const corpus::PageSpec& spec,
                                              const StackConfig& config,
                                              Seconds reading_window,
                                              std::uint64_t seed) {
  sim::Simulator sim;
  sim.set_event_budget(config.sim_event_budget);
  net::WebServer server;
  corpus::PageGenerator generator(seed);
  const std::string url = generator.host_page(spec, server);

  radio::RrcMachine rrc(sim, config.rrc, config.power);
  net::SharedLink link(sim, config.link.dch_bandwidth);
  net::HttpClient client(sim, server, link, rrc, config.link,
                         config.max_parallel_connections);
  browser::CpuScheduler cpu(sim, config.power.cpu_busy_extra);
  RilStateSwitcher ril(sim, rrc);

  validate_fault_wiring(config);
  client.set_retry_policy(config.retry);
  // Only an enabled plan instantiates the injector: a disabled one must
  // leave the event stream (and thus sim_events) untouched.
  std::optional<net::FaultInjector> faults;
  if (config.fault_plan.enabled()) {
    faults.emplace(sim, link, config.fault_plan);
    client.set_fault_injector(&*faults);
  }
  // Same null-path discipline for the coverage process: only an enabled
  // outage plan instantiates the injector or touches the RRC hooks.
  std::optional<net::OutageInjector> outage;
  if (config.outage.enabled()) {
    outage.emplace(sim, link, rrc, config.outage, /*ue_id=*/0);
    rrc.set_on_rlf([&client] { client.on_radio_lost(); });
  }
  // Per-load browser cache.  A single cold load never revisits a URL (the
  // pipeline dedupes requests), so attaching one is behavior-neutral unless
  // a chaos cache storm is also flushing it mid-load.
  std::optional<net::ResourceCache> cache;
  if (config.use_browser_cache) {
    cache.emplace(config.browser_cache_bytes);
    client.set_cache(&*cache);
  }

  // Chaos directives (all inert at their zero values).
  const ChaosDirectives& chaos = config.chaos;
  if (chaos.ril_socket_failures > 0) {
    ril.fail_next(chaos.ril_socket_failures);
  }
  if (cache && chaos.cache_storm_count > 0) {
    for (int i = 0; i < chaos.cache_storm_count; ++i) {
      sim.schedule_at(chaos.cache_storm_start + i * chaos.cache_storm_period,
                      [&cache] { cache->clear(); });
    }
  }

  browser::PipelineConfig pipeline_config = config.pipeline;
  pipeline_config.mobile_page = spec.mobile;
  browser::PageLoad load(sim, client, cpu, pipeline_config, seed ^ 0x9E3779B9);
  if (config.force_idle_at_tx) {
    load.set_on_transmission_complete([&ril] { ril.request_idle(); });
  }

  std::shared_ptr<obs::TraceRecorder> recorder;
  if (config.trace) {
    recorder = std::make_shared<obs::TraceRecorder>();
    rrc.set_trace(recorder.get());
    link.set_trace(recorder.get());
    client.set_trace(recorder.get());
    if (faults) faults->set_trace(recorder.get());
    if (outage) outage->set_trace(recorder.get());
    load.set_trace(recorder.get());
    ril.set_trace(recorder.get());
  }

  bool done = false;
  browser::LoadMetrics metrics;
  load.start(url, [&done, &metrics](const browser::LoadMetrics& m) {
    done = true;
    metrics = m;
  });
  // User abort: scheduled after start() so a load that finishes first makes
  // abort() a no-op.  The teardown settles every unsettled fetch, so `done`
  // flips through the same on_loaded path with metrics.aborted set.
  if (chaos.abort_at > 0) {
    sim.schedule_at(chaos.abort_at, [&load] { load.abort(); });
  }
  while (!done && sim.step()) {
  }
  if (!done) {
    throw std::logic_error("run_single_load: load did not complete");
  }
  // Let the reading window elapse so timer-driven demotions play out.
  sim.run_until(metrics.final_display + reading_window);

  SingleLoadResult result;
  result.metrics = metrics;
  result.features = load.features();
  result.geometry = load.geometry();
  result.reading_window = reading_window;
  result.total_power = PowerTimeline::sum(rrc.power(), cpu.power());
  result.link_rate = link.rate_history();
  result.energy =
      EnergyReport::measure(result.total_power, rrc.power(),
                            metrics.final_display,
                            metrics.final_display + reading_window);
  result.dch_time = rrc.time_in(radio::RrcState::kDch);
  result.fach_time = rrc.time_in(radio::RrcState::kFach);
  result.idle_promotions = rrc.idle_promotions();
  result.forced_releases = rrc.forced_releases();
  result.bytes_fetched = metrics.bytes_fetched;
  result.fetch_retries = static_cast<int>(client.stats().retries);
  result.fetch_timeouts = static_cast<int>(client.stats().timeouts);
  result.failed_resources = metrics.failed_resources;
  result.truncated_resources = metrics.truncated_resources;
  result.link_fades = faults ? faults->fades_started() : 0;
  result.radio_outages = outage ? outage->outages_started() : 0;
  result.rlf_count = rrc.rlf_count();
  result.reestablish_ok = rrc.reestablish_ok();
  result.reestablish_fail = rrc.reestablish_fail();
  result.out_of_service_time = rrc.time_in(radio::RrcState::kOutOfService);
  result.sim_events = sim.fired_count();
  result.dom_signature = load.dom().signature();
  result.trace = std::move(recorder);

  obs::MetricsRegistry& m = result.job_metrics;
  m.count("sim.events_fired", static_cast<double>(sim.fired_count()));
  m.count("sim.events_cancelled", static_cast<double>(sim.cancelled_count()));
  m.count("sim.tombstones_popped",
          static_cast<double>(sim.tombstones_popped()));
  m.set_max("sim.peak_heap", static_cast<double>(sim.peak_heap_size()));
  const net::HttpClientStats& http = client.stats();
  m.count("http.fetches", static_cast<double>(http.fetches));
  m.count("http.cache_hits", static_cast<double>(http.cache_hits));
  m.count("http.retries", static_cast<double>(http.retries));
  m.count("http.timeouts", static_cast<double>(http.timeouts));
  m.count("http.truncated", static_cast<double>(http.truncated));
  m.count("http.connection_losses",
          static_cast<double>(http.connection_losses));
  m.count("http.failed", static_cast<double>(http.failed));
  m.count("http.not_found", static_cast<double>(http.not_found));
  m.count("http.bytes_fetched", static_cast<double>(http.bytes_fetched));
  m.count("rrc.idle_promotions", rrc.idle_promotions());
  m.count("rrc.fach_promotions", rrc.fach_promotions());
  m.count("rrc.forced_releases", rrc.forced_releases());
  m.count("rrc.small_transfers", rrc.small_transfers());
  m.count("rrc.dwell_idle_s", rrc.time_in(radio::RrcState::kIdle));
  m.count("rrc.dwell_fach_s", rrc.time_in(radio::RrcState::kFach));
  m.count("rrc.dwell_dch_s", rrc.time_in(radio::RrcState::kDch));
  m.count("load.objects", result.metrics.objects_fetched);
  m.count("load.failed_resources", result.metrics.failed_resources);
  m.count("load.truncated_resources", result.metrics.truncated_resources);
  m.count("load.intermediate_displays",
          result.metrics.intermediate_displays);
  m.count("load.bytes", static_cast<double>(result.metrics.bytes_fetched));
  m.count("load.aborted", result.metrics.aborted ? 1.0 : 0.0);
  m.count("fault.fades", result.link_fades);
  // Radio failure accounting appears only when the subsystem is enabled, so
  // default-path metrics snapshots stay byte-identical to pre-outage builds.
  if (config.outage.enabled()) {
    m.count("radio.outages", result.radio_outages);
    m.count("radio.rlf", result.rlf_count);
    m.count("radio.reestablish_ok", result.reestablish_ok);
    m.count("radio.reestablish_fail", result.reestablish_fail);
    m.count("rrc.dwell_oos_s", result.out_of_service_time);
  }
  if (result.trace) {
    m.count("trace.events", static_cast<double>(result.trace->size()));
  }
  m.observe("load.total_s", result.metrics.total_time());
  m.observe("load.transmission_s", result.metrics.transmission_time());
  m.observe("energy.load_j", result.energy.load_j);
  m.observe("energy.with_reading_j", result.energy.with_reading_j);
  return result;
}

ProxyLoadResult detail::run_proxy_load_impl(const corpus::PageSpec& spec,
                                            const StackConfig& config,
                                            const ProxyConfig& proxy,
                                            Seconds reading_window,
                                            std::uint64_t seed) {
  // The proxy fetches and renders the page server-side; the phone sees one
  // bundle whose size is the page's total bytes scaled by the compression
  // ratio. We reuse the generated page only for its true byte total.
  net::WebServer staging;
  corpus::PageGenerator generator(seed);
  generator.host_page(spec, staging);
  const auto bundle_bytes =
      static_cast<Bytes>(proxy.compression_ratio *
                         static_cast<double>(staging.total_bytes()));

  sim::Simulator sim;
  radio::RrcMachine rrc(sim, config.rrc, config.power);
  net::SharedLink link(sim, config.link.dch_bandwidth);
  net::SocketDownloader downloader(sim, link, rrc, config.link);
  browser::CpuScheduler cpu(sim, config.power.cpu_busy_extra);
  RilStateSwitcher ril(sim, rrc);

  ProxyLoadResult result;
  result.bundle_bytes = bundle_bytes;
  bool displayed = false;
  // Server think time covers the proxy-side fetch+render.
  sim.schedule_in(proxy.proxy_render_latency, [&] {
    downloader.download(bundle_bytes, [&](Seconds, Seconds finished) {
      result.transmission_time = finished;
      ril.request_idle();  // the bundle is self-contained: release now
      cpu.submit(proxy.client_unpack_per_kb * to_kilobytes(bundle_bytes),
                 [&] {
                   result.total_time = sim.now();
                   displayed = true;
                 });
    });
  });
  while (!displayed && sim.step()) {
  }
  if (!displayed) {
    throw std::logic_error("run_proxy_load: load did not complete");
  }
  sim.run_until(result.total_time + reading_window);
  const auto total = PowerTimeline::sum(rrc.power(), cpu.power());
  result.energy = EnergyReport::measure(total, rrc.power(), result.total_time,
                                        result.total_time + reading_window);
  return result;
}

BulkDownloadResult detail::run_bulk_download_impl(Bytes bytes,
                                                  const StackConfig& config) {
  sim::Simulator sim;
  radio::RrcMachine rrc(sim, config.rrc, config.power);
  net::SharedLink link(sim, config.link.dch_bandwidth);
  net::SocketDownloader downloader(sim, link, rrc, config.link);

  BulkDownloadResult result;
  bool done = false;
  downloader.download(bytes, [&](Seconds started, Seconds finished) {
    result.started = started;
    result.finished = finished;
    done = true;
  });
  while (!done && sim.step()) {
  }
  if (!done) {
    throw std::logic_error("run_bulk_download: transfer did not complete");
  }
  result.energy = rrc.power().energy(0.0, result.finished);
  result.link_rate = link.rate_history();
  return result;
}

// Legacy entry points: thin wrappers over the unified builder path, so every
// caller — old or new — passes the same build()-time validation.
SingleLoadResult run_single_load(const corpus::PageSpec& spec,
                                 const StackConfig& config,
                                 Seconds reading_window, std::uint64_t seed) {
  return ScenarioBuilder()
      .stack(config)
      .reading_window(reading_window)
      .seed(seed)
      .build()
      .run_single(spec);
}

ProxyLoadResult run_proxy_load(const corpus::PageSpec& spec,
                               const StackConfig& config,
                               const ProxyConfig& proxy, Seconds reading_window,
                               std::uint64_t seed) {
  return ScenarioBuilder()
      .stack(config)
      .reading_window(reading_window)
      .seed(seed)
      .build()
      .run_proxy(spec, proxy);
}

BulkDownloadResult run_bulk_download(Bytes bytes, const StackConfig& config) {
  return ScenarioBuilder().stack(config).build().run_bulk(bytes);
}

}  // namespace eab::core
