#include "core/scenario.hpp"

#include <stdexcept>

namespace eab::core {

SingleLoadResult Scenario::run_single(const corpus::PageSpec& spec) const {
  return detail::run_single_load_impl(spec, stack, reading_window, seed);
}

BulkDownloadResult Scenario::run_bulk(Bytes bytes) const {
  return detail::run_bulk_download_impl(bytes, stack);
}

ProxyLoadResult Scenario::run_proxy(const corpus::PageSpec& spec,
                                    const ProxyConfig& proxy) const {
  return detail::run_proxy_load_impl(spec, stack, proxy, reading_window, seed);
}

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

}  // namespace

Scenario ScenarioBuilder::build() const {
  const StackConfig& stack = scenario_.stack;
  require(stack.sim_event_budget > 0,
          "ScenarioBuilder: sim_event_budget must be positive (0 would trip "
          "the liveness guard before the first event)");
  // Fine-grained FaultPlan geometry (rates in [0,1], fade windows) is
  // validated by the injector itself with stable messages the chaos
  // quarantine machinery keys on; build() only rejects the cross-knob
  // contradictions the injector cannot see.
  validate_fault_wiring(stack);
  radio::validate_outage_plan(stack.outage);
  require(stack.max_parallel_connections >= 1,
          "ScenarioBuilder: max_parallel_connections must be >= 1");
  require(scenario_.reading_window >= 0,
          "ScenarioBuilder: reading_window must be non-negative");

  const ChaosDirectives& chaos = stack.chaos;
  require(chaos.abort_at >= 0, "ScenarioBuilder: abort_at must be >= 0");
  require(chaos.ril_socket_failures >= 0,
          "ScenarioBuilder: ril_socket_failures must be >= 0");
  require(chaos.cache_storm_count >= 0,
          "ScenarioBuilder: cache_storm_count must be >= 0");
  require(chaos.cache_storm_start >= 0 && chaos.cache_storm_period >= 0,
          "ScenarioBuilder: cache storm timings must be non-negative");
  require(chaos.cache_storm_count == 0 || stack.use_browser_cache,
          "ScenarioBuilder: a cache eviction storm needs use_browser_cache "
          "(there is nothing to evict otherwise)");

  const net::RetryPolicy& retry = stack.retry;
  require(retry.max_retries >= 0,
          "ScenarioBuilder: retry.max_retries must be >= 0");
  require(retry.request_timeout >= 0,
          "ScenarioBuilder: retry.request_timeout must be >= 0");
  require(retry.backoff_initial >= 0 && retry.backoff_factor >= 0,
          "ScenarioBuilder: retry backoff parameters must be non-negative");
  return scenario_;
}

SessionConfig ScenarioBuilder::build_session(SessionPolicy policy) const {
  const Scenario checked = build();
  SessionConfig config;
  config.stack = checked.stack;
  config.policy = policy;
  // Unified defaults: the session consumes the same chaos directive for RIL
  // socket failures instead of a silently separate knob.
  config.ril_socket_failures = checked.stack.chaos.ril_socket_failures;
  return config;
}

}  // namespace eab::core
