// Whole browsing sessions under the six policies of the paper's Table 6.
//
// One session = one user on one phone: pages load back to back with reading
// gaps in between, on a single radio whose timers and promotions carry over
// from page to page.  The promotion delay a policy incurs by having switched
// to IDLE too eagerly therefore shows up *by construction* in the next
// page's load time, and every joule is integrated over the whole session —
// exactly the accounting behind Fig 16.
#pragma once

#include <vector>

#include "core/controller.hpp"
#include "core/experiment.hpp"
#include "gbrt/model.hpp"

namespace eab::core {

/// The six cases of Table 6 (baseline = stock browser, never switches).
enum class SessionPolicy {
  kBaseline,             ///< original browser, timers only
  kOriginalAlwaysOff,    ///< original browser, IDLE as soon as a page opens
  kEnergyAwareAlwaysOff, ///< reorganized browser, IDLE as soon as a page opens
  kAccurate,             ///< reorganized browser, oracle reading times
  kPredict,              ///< reorganized browser, GBRT-predicted reading times
  kAlgorithm2,           ///< the paper's full Algorithm 2 (dual thresholds)
};

const char* to_string(SessionPolicy policy);

/// One page visit of a session: the page and how long the user reads it.
struct PageVisit {
  const corpus::PageSpec* spec = nullptr;
  Seconds reading_time = 0;
};

/// Session-level configuration.
struct SessionConfig {
  StackConfig stack;            ///< pipeline mode is set from the policy
  SessionPolicy policy = SessionPolicy::kBaseline;
  Seconds threshold = 9.0;      ///< Tp or Td for kAccurate / kPredict
  Seconds alpha = 2.0;          ///< interest threshold before deciding
  ReadingPredictor predictor;   ///< required for kPredict / kAlgorithm2
  /// Algorithm 2's parameters (kAlgorithm2 only): Td, Tp and the
  /// power-driven / delay-driven mode switch.
  ControllerParams controller;
  /// Failure injection: the first `ril_socket_failures` switch-to-IDLE
  /// requests die at the framework->rild socket hop (a crashed/restarting
  /// rild).  The radio must then demote via its T1/T2 timers alone.
  int ril_socket_failures = 0;
  /// Optional structured tracing: when set (caller-owned, must outlive the
  /// run), every layer of the session stack — radio, link, every per-page
  /// client and pipeline, the RIL chain and the policy itself — records into
  /// it.  Recording never schedules events; results are identical either way.
  obs::TraceRecorder* trace = nullptr;
};

/// Aggregates of one session run.
struct SessionResult {
  /// A session has no separate reading window: the active and observed
  /// windows coincide, so load_j == with_reading_j (radio + CPU over the
  /// whole session) and window_s is the session wall-clock.
  EnergyReport energy;
  Seconds total_load_delay = 0; ///< sum over pages of click -> final display
  int pages = 0;
  int switches_to_idle = 0;     ///< policy-initiated releases
  int ril_socket_failures = 0;  ///< injected socket-hop failures consumed
  Seconds radio_idle_time = 0;  ///< total IDLE residency over the session
  // Radio-failure accounting (all zero unless the stack's outage plan is
  // enabled — the coverage process spans the whole session, like faults).
  int radio_outages = 0;        ///< coverage windows begun during the session
  int rlf_count = 0;            ///< radio-link failures declared
  int reestablish_ok = 0;       ///< re-establishment attempts that succeeded
  int reestablish_fail = 0;     ///< re-establishment attempts that failed
  Seconds out_of_service_time = 0;  ///< residency camped without coverage
  std::vector<Seconds> page_load_times;
};

/// Runs the visits as one continuous session.
SessionResult run_session(const std::vector<PageVisit>& visits,
                          const SessionConfig& config, std::uint64_t seed = 1);

}  // namespace eab::core
