#include "core/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "util/bytes.hpp"
#include "util/hash.hpp"

namespace eab::core {
namespace {

constexpr std::uint32_t kFrameMagic = 0xEAB0C4E1u;
// magic u32 + type u32 + length u64 + crc u32
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 4;
// A frame claiming a payload larger than this is treated as torn, not
// honored: a corrupted length field must never make recovery try to skip
// gigabytes of nonexistent file.
constexpr std::uint64_t kMaxPayload = 1ull << 32;

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("CheckpointJournal: " + what + " (" + path +
                           "): " + std::strerror(errno));
}

void full_write(int fd, std::string_view bytes, const std::string& path) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write failed", path);
    }
    written += static_cast<std::size_t>(n);
  }
}

bool read_whole(const std::string& path, std::string& out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  std::string data;
  std::vector<char> buffer(64 * 1024);
  for (;;) {
    const ssize_t n = ::read(fd, buffer.data(), buffer.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    data.append(buffer.data(), static_cast<std::size_t>(n));
  }
  ::close(fd);
  out = std::move(data);
  return true;
}

/// CRC over type + length + payload, the frame fields a torn write could
/// damage independently of each other.
std::uint32_t frame_crc(std::uint32_t type, std::string_view payload) {
  std::string prefix;
  BinaryWriter w(prefix);
  w.u32(type);
  w.u64(payload.size());
  return crc32(payload, crc32(prefix));
}

/// Walks intact frames in `data`; returns the byte offset of the first
/// torn/invalid frame (== data.size() when the whole file is intact).
std::size_t scan_frames(std::string_view data,
                        const CheckpointJournal::RecordFn& on_record,
                        std::size_t* records_out) {
  std::size_t offset = 0;
  std::size_t records = 0;
  while (data.size() - offset >= kHeaderBytes) {
    BinaryReader header(data.substr(offset, kHeaderBytes));
    const std::uint32_t magic = header.u32();
    const std::uint32_t type = header.u32();
    const std::uint64_t length = header.u64();
    const std::uint32_t crc = header.u32();
    if (magic != kFrameMagic || length > kMaxPayload) break;
    if (data.size() - offset - kHeaderBytes < length) break;  // torn payload
    const std::string_view payload =
        data.substr(offset + kHeaderBytes, static_cast<std::size_t>(length));
    if (frame_crc(type, payload) != crc) break;
    if (on_record) on_record(type, payload);
    offset += kHeaderBytes + static_cast<std::size_t>(length);
    ++records;
  }
  if (records_out != nullptr) *records_out = records;
  return offset;
}

void fsync_directory_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? "."
                              : (slash == 0 ? "/" : path.substr(0, slash));
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

CheckpointJournal::CheckpointJournal(std::string path, const RecordFn& on_record)
    : path_(std::move(path)) {
  std::string existing;
  const bool had_file = read_whole(path_, existing);

  std::size_t records = 0;
  const std::size_t good = scan_frames(existing, on_record, &records);
  recovered_.records = records;
  recovered_.dropped_bytes = existing.size() - good;
  recovered_.torn = recovered_.dropped_bytes > 0;

  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd_ < 0) fail("open failed", path_);
  if (recovered_.torn) {
    // Drop the torn tail so the next append starts at an intact frame
    // boundary; the truncation itself is made durable before any append.
    if (::ftruncate(fd_, static_cast<off_t>(good)) != 0) {
      fail("truncate failed", path_);
    }
    if (::fsync(fd_) != 0) fail("fsync failed", path_);
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) fail("seek failed", path_);
  if (!had_file) fsync_directory_of(path_);  // creation must survive a crash
}

CheckpointJournal::~CheckpointJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void CheckpointJournal::append(std::uint32_t type, std::string_view payload) {
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  BinaryWriter w(frame);
  w.u32(kFrameMagic);
  w.u32(type);
  w.u64(payload.size());
  w.u32(frame_crc(type, payload));
  frame.append(payload);
  full_write(fd_, frame, path_);
  if (::fsync(fd_) != 0) fail("fsync failed", path_);
}

CheckpointRecoverStats CheckpointJournal::scan(const std::string& path,
                                               const RecordFn& on_record) {
  CheckpointRecoverStats stats;
  std::string data;
  if (!read_whole(path, data)) return stats;  // absent file: empty journal
  std::size_t records = 0;
  const std::size_t good = scan_frames(data, on_record, &records);
  stats.records = records;
  stats.dropped_bytes = data.size() - good;
  stats.torn = stats.dropped_bytes > 0;
  return stats;
}

std::size_t CheckpointJournal::framed_size(std::size_t payload_bytes) {
  return kHeaderBytes + payload_bytes;
}

}  // namespace eab::core
