#include "trace/reading_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace eab::trace {

std::array<double, corpus::kTopicCount> population_interest() {
  // Indexed by corpus::Topic order: news, sports, games, finance, shopping,
  // social, video, travel.
  return {0.45, 0.80, 0.92, 0.22, 0.38, 0.72, 0.58, 0.45};
}

TraceGenerator::TraceGenerator(std::vector<PageRecord> records,
                               TraceConfig config, std::uint64_t seed)
    : records_(std::move(records)), config_(config), rng_(seed) {
  if (records_.empty()) {
    throw std::invalid_argument("TraceGenerator: no page records");
  }
  if (config_.users < 1) {
    throw std::invalid_argument("TraceGenerator: users must be >= 1");
  }

  // Calibrate the bell-curve normalisers to the library's own feature
  // distribution, separately per page class, so the non-monotone effects sit
  // mid-distribution within each class no matter how the corpus is scaled.
  for (int cls = 0; cls < 2; ++cls) {
    std::vector<double> heights;
    std::vector<double> figures;
    std::vector<double> tx_times;
    for (const PageRecord& record : records_) {
      if (record.spec.mobile != (cls == 1)) continue;
      heights.push_back(record.features.page_height);
      figures.push_back(record.features.figure_count);
      tx_times.push_back(record.features.transmission_time);
    }
    if (heights.empty()) continue;
    height_center_[cls] = median(heights);
    height_scale_[cls] = std::max(1.0, stddev(heights));
    figures_center_[cls] = median(figures);
    figures_scale_[cls] = std::max(1.0, stddev(figures));
    tx_center_[cls] = median(tx_times);
    tx_scale_[cls] = std::max(0.5, stddev(tx_times));
  }

  // Build the user population.
  const auto base = population_interest();
  users_.resize(static_cast<std::size_t>(config_.users));
  for (UserProfile& user : users_) {
    for (std::size_t t = 0; t < base.size(); ++t) {
      user.interest[t] = std::clamp(
          base[t] + rng_.normal(0.0, config_.user_interest_jitter), 0.05, 0.95);
    }
  }
}

double TraceGenerator::interest_of(const UserProfile& user,
                                   corpus::Topic topic) const {
  return user.interest[static_cast<std::size_t>(topic)];
}

Seconds TraceGenerator::sample_reading_time(const UserProfile& user,
                                            const PageRecord& page,
                                            Rng& rng) const {
  const double interest = interest_of(user, page.spec.topic);

  // Bounce: low interest makes "glance and leave" likely; bounces do not
  // depend on the page's features at all.
  const int cls = page.spec.mobile ? 1 : 0;
  const double slowness = std::clamp(
      (page.features.transmission_time - tx_center_[cls]) /
          (2.0 * tx_scale_[cls]),
      -1.0, 1.0);
  const double bounce_probability = std::clamp(
      config_.bounce_base - config_.bounce_slope * interest +
          config_.slow_bounce_weight * slowness,
      config_.bounce_floor, config_.bounce_ceiling);
  if (rng.chance(bounce_probability)) {
    return rng.uniform(config_.bounce_low, config_.bounce_high);
  }

  // Engaged read: log-normal around interest + non-monotone feature effects.
  auto bell = [](double z) { return std::exp(-0.5 * z * z); };
  const double height_z =
      (page.features.page_height - height_center_[cls]) / height_scale_[cls];
  const double figure_z =
      (page.features.figure_count - figures_center_[cls]) / figures_scale_[cls];
  // Center the bells (E[bell(z)] ~ 0.7 over the library) so they do not
  // shift the global mean, only bend the response.
  const double mu = config_.engaged_mu0 +
                    config_.interest_gain * (interest - 0.5) * 2.0 +
                    config_.height_bell_weight * (bell(height_z) - 0.7) +
                    config_.figure_bell_weight * (bell(figure_z) - 0.7) +
                    config_.slow_engaged_weight * std::max(0.0, slowness);

  // Truncated log-noise: resample until inside the clip band and the
  // 10-minute cutoff (the paper discards longer views, so the model never
  // emits them).
  for (int attempt = 0; attempt < 64; ++attempt) {
    double z = rng.normal();
    if (z < -config_.noise_clip_low_sigmas || z > config_.noise_clip_high_sigmas) {
      continue;
    }
    const double reading = std::exp(mu + config_.noise_sigma * z);
    if (reading <= config_.max_reading) {
      return std::max(config_.engaged_min, reading);
    }
  }
  return config_.max_reading;
}

std::vector<PageView> TraceGenerator::generate() {
  std::vector<PageView> views;

  // Group the library by topic for interest-weighted page selection.
  std::vector<std::vector<std::size_t>> by_topic(corpus::kTopicCount);
  for (std::size_t i = 0; i < records_.size(); ++i) {
    by_topic[static_cast<std::size_t>(records_[i].spec.topic)].push_back(i);
  }

  for (int user_index = 0; user_index < config_.users; ++user_index) {
    const UserProfile& user = users_[static_cast<std::size_t>(user_index)];
    Rng rng = rng_.fork();

    // Users pick topics they care about more often (selection bias is real
    // and the paper's trace has it too).
    std::vector<double> topic_weights(corpus::kTopicCount, 0.0);
    for (std::size_t t = 0; t < topic_weights.size(); ++t) {
      if (!by_topic[t].empty()) topic_weights[t] = 0.3 + user.interest[t];
    }

    Seconds browsed = 0;
    while (browsed < config_.browsing_per_user) {
      const std::size_t topic = rng.weighted_index(topic_weights);
      const auto& bucket = by_topic[topic];
      const std::size_t page_index = bucket[rng.uniform_index(bucket.size())];
      const PageRecord& record = records_[page_index];

      PageView view;
      view.user = user_index;
      view.page_index = page_index;
      view.reading_time = sample_reading_time(user, record, rng);
      views.push_back(view);

      // Browsing time: the load (approximated from the measured transmission
      // time plus a layout allowance) plus the reading time.
      browsed += record.features.transmission_time + 6.0 + view.reading_time;
    }
  }
  return views;
}

gbrt::Dataset to_dataset(const std::vector<PageView>& views,
                         const std::vector<PageRecord>& records,
                         double exclude_below) {
  gbrt::Dataset data(browser::PageFeatures::kCount);
  data.set_feature_names(browser::PageFeatures::names());
  for (const PageView& view : views) {
    if (view.reading_time < exclude_below) continue;
    data.add(records[view.page_index].features.to_row(), view.reading_time);
  }
  return data;
}

gbrt::Dataset to_log_dataset(const std::vector<PageView>& views,
                             const std::vector<PageRecord>& records,
                             double exclude_below) {
  gbrt::Dataset data(browser::PageFeatures::kCount);
  data.set_feature_names(browser::PageFeatures::names());
  for (const PageView& view : views) {
    if (view.reading_time < exclude_below) continue;
    data.add(records[view.page_index].features.to_row(),
             std::log(std::max(1e-3, view.reading_time)));
  }
  return data;
}

WeibullFit fit_weibull(const std::vector<double>& samples) {
  std::vector<double> logs;
  logs.reserve(samples.size());
  for (double x : samples) {
    if (x > 0) logs.push_back(std::log(x));
  }
  if (logs.size() < 2) {
    throw std::invalid_argument("fit_weibull: need >= 2 positive samples");
  }
  const auto n = static_cast<double>(logs.size());

  // MLE: solve 1/k = sum(x^k ln x)/sum(x^k) - mean(ln x) by Newton steps on
  // g(k); start from the method-of-moments-ish 1.0.
  double mean_log = 0;
  for (double lx : logs) mean_log += lx;
  mean_log /= n;

  double k = 1.0;
  for (int iteration = 0; iteration < 100; ++iteration) {
    double sum_pow = 0;
    double sum_pow_log = 0;
    double sum_pow_log2 = 0;
    for (double lx : logs) {
      const double p = std::exp(k * lx);
      sum_pow += p;
      sum_pow_log += p * lx;
      sum_pow_log2 += p * lx * lx;
    }
    const double g = sum_pow_log / sum_pow - mean_log - 1.0 / k;
    const double dg = (sum_pow_log2 * sum_pow - sum_pow_log * sum_pow_log) /
                          (sum_pow * sum_pow) +
                      1.0 / (k * k);
    const double step = g / dg;
    k -= step;
    if (k <= 1e-3) k = 1e-3;
    if (std::abs(step) < 1e-10) break;
  }

  double sum_pow = 0;
  for (double lx : logs) sum_pow += std::exp(k * lx);
  const double lambda = std::pow(sum_pow / n, 1.0 / k);

  WeibullFit fit;
  fit.shape = k;
  fit.scale = lambda;
  for (double lx : logs) {
    const double z = std::exp(lx) / lambda;
    fit.log_likelihood += std::log(k / lambda) + (k - 1) * std::log(z) -
                          std::pow(z, k);
  }
  return fit;
}

}  // namespace eab::trace
