// Synthetic reading-time traces (the paper's Section 5.1.3 data collection).
//
// The paper hands smartphones to 40 students and logs, per page view, the 10
// features of Table 1 plus the reading time.  We cannot collect that data,
// so this module substitutes a generative model with three *verified*
// construction targets (tests pin all three):
//
//  1. Fig 7's marginal distribution: ~30 % of reading times under 2 s,
//     ~53 % under 9 s, ~68 % under 20 s, none above 10 minutes.
//  2. Table 4's non-correlation: |Pearson| of reading time against every
//     feature stays below ~0.08, because engagement depends on the features
//     non-monotonically (a bell over page height / figure count) and on a
//     hidden interest variable.
//  3. Learnable non-linear structure: the hidden topic interest is
//     recoverable from feature combinations (each topic has a distinctive
//     feature distribution), so a tree ensemble — but not a linear model —
//     can predict reading-time classes well above chance.
//
// Quick bounces ("not interested, click away") form the sub-2 s mass and are
// feature-independent — precisely the noise the paper's interest threshold
// removes (Section 4.3.4).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "browser/features.hpp"
#include "corpus/page_spec.hpp"
#include "gbrt/dataset.hpp"
#include "util/rng.hpp"

namespace eab::trace {

/// One distinct page the population browses: its spec plus the Table 1
/// features our browser measured for it.
struct PageRecord {
  corpus::PageSpec spec;
  browser::PageFeatures features;
};

/// A user's hidden interest per topic, in [0, 1].
struct UserProfile {
  std::array<double, corpus::kTopicCount> interest{};
};

/// Generation parameters. Defaults are calibrated against Fig 7's anchors.
struct TraceConfig {
  int users = 40;
  Seconds browsing_per_user = 2.0 * 3600.0;  ///< >= 2 h each (paper 5.1.3)
  Seconds max_reading = 600.0;               ///< 10 min cutoff (paper 5.1.3)

  // Bounce component (sub-2 s mass). Bounces are accidents — mis-taps,
  // wrong links, interruptions — so their rate is essentially independent of
  // the page and the user's interest; that independence is exactly why they
  // poison a regression trained without the interest threshold.
  double bounce_floor = 0.05;
  double bounce_ceiling = 0.68;
  double bounce_base = 0.30;
  double bounce_slope = 0.0;    ///< p = clamp(base - slope * interest + ...)
  double bounce_low = 0.3;      ///< uniform bounce duration range
  double bounce_high = 2.0;

  // Engaged component: log-normal around a feature/interest-driven mean.
  double engaged_mu0 = 2.48;
  double interest_gain = 2.00;       ///< per unit of (interest - 0.5) * 2
  double height_bell_weight = 0.65;  ///< non-monotone height effect
  double figure_bell_weight = 0.45;  ///< non-monotone figure-count effect
  double noise_sigma = 0.85;         ///< irreducible log-noise
  /// Asymmetric noise truncation (in sigmas).  Dwell times skew right: the
  /// short side is bounded (a page takes a minimum time to skim) while the
  /// long side stretches (deep reads), but not to infinity — sessions end.
  /// The clip also keeps the conditional mean finite enough for a
  /// least-squares learner to be meaningful.
  double noise_clip_low_sigmas = 1.5;
  double noise_clip_high_sigmas = 2.7;
  double engaged_min = 2.05;         ///< engaged reads clear the 2 s line

  // Slow-page bimodality: pages with long transmission times are abandoned
  // more often (impatience bounces) but hold more content, so the users who
  // do stay read longer.  The two effects cancel in the *linear* correlation
  // between transmission time and reading time (Table 4) while bending the
  // conditional mean — structure only a non-linear learner picks up.
  double slow_bounce_weight = 0.0;
  double slow_engaged_weight = 0.0;

  // Per-user deviation around the population's topic interest.
  double user_interest_jitter = 0.07;
};

/// One generated page view.
struct PageView {
  int user = 0;
  std::size_t page_index = 0;  ///< into the record list
  Seconds reading_time = 0;
};

/// Population-mean interest per topic (games most engaging, finance least —
/// the paper's own example in Section 4.3.4).
std::array<double, corpus::kTopicCount> population_interest();

/// Deterministic trace generator over a fixed page library.
class TraceGenerator {
 public:
  TraceGenerator(std::vector<PageRecord> records, TraceConfig config,
                 std::uint64_t seed);

  /// Generates all users' page views.
  std::vector<PageView> generate();

  const std::vector<PageRecord>& records() const { return records_; }
  const std::vector<UserProfile>& users() const { return users_; }

  /// The reading-time model for one (user, page) pair — exposed so tests can
  /// probe the distribution directly.
  Seconds sample_reading_time(const UserProfile& user, const PageRecord& page,
                              Rng& rng) const;

 private:
  double interest_of(const UserProfile& user, corpus::Topic topic) const;

  std::vector<PageRecord> records_;
  TraceConfig config_;
  Rng rng_;
  std::vector<UserProfile> users_;
  // Feature normalisers calibrated from the record library, per page class
  // (mobile vs full): heights/figure counts are bimodal across the classes,
  // and a bell over the raw value would act as a class detector instead of a
  // within-class sweet-spot.  Index 0 = full, 1 = mobile.
  double height_center_[2] = {0, 0};
  double height_scale_[2] = {1, 1};
  double figures_center_[2] = {0, 0};
  double figures_scale_[2] = {1, 1};
  double tx_center_[2] = {0, 0};
  double tx_scale_[2] = {1, 1};
};

/// Converts views into a GBRT dataset (x = Table 1 features, y = reading
/// seconds). Views with reading time below `exclude_below` are dropped —
/// pass the interest threshold alpha to build the paper's filtered variant,
/// or a negative value to keep everything.
gbrt::Dataset to_dataset(const std::vector<PageView>& views,
                         const std::vector<PageRecord>& records,
                         double exclude_below = -1.0);

/// Same, with log-transformed targets (y = log reading seconds).  Reading
/// times are heavy-tailed; least-squares boosting on raw seconds chases the
/// tail and systematically over-predicts, so the deployed predictor fits
/// log-dwell-time and thresholds are compared in the log domain (standard
/// dwell-time practice; see Liu et al., the paper's ref [12]).
gbrt::Dataset to_log_dataset(const std::vector<PageView>& views,
                             const std::vector<PageRecord>& records,
                             double exclude_below = -1.0);

/// Weibull fit of dwell times (the methodology of the paper's ref [12],
/// Liu/White/Dumais SIGIR'10).  A shape parameter k < 1 is the literature's
/// "negative aging" signature: the longer a user has stayed, the less likely
/// they are to leave in the next instant — which the trace model should
/// reproduce and tests pin.
struct WeibullFit {
  double shape = 0;   ///< k
  double scale = 0;   ///< lambda
  double log_likelihood = 0;
};

/// Maximum-likelihood Weibull fit (Newton iteration on the shape parameter).
/// Requires at least two strictly positive samples.
WeibullFit fit_weibull(const std::vector<double>& samples);

}  // namespace eab::trace
