#include "obs/timeseries.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/bytes.hpp"
#include "util/hash.hpp"

namespace eab::obs {
namespace {

/// %.17g for reals, %lld for integral values — same deterministic scheme as
/// MetricsRegistry, at full round-trip fidelity.
void append_number(std::string& out, double v) {
  char buffer[40];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buffer, sizeof buffer, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buffer, sizeof buffer, "%.17g", v);
  }
  out += buffer;
}

/// Snaps a sample onto the 2^-20 sum grid (round-half-away, saturating at
/// the quantizer range) — the single lossy step that buys exact integer
/// window sums.
std::int64_t quantize(double value) {
  const double scaled = value * (1.0 / kSumQuantum);
  // 2^62 quanta ≈ ±4.4e12 in value: far past any gauge, far short of the
  // range where llround would overflow.
  constexpr double kLimit = 4611686018427387904.0;  // 2^62
  if (scaled >= kLimit) return std::int64_t{1} << 62;
  if (scaled <= -kLimit) return -(std::int64_t{1} << 62);
  return std::llround(scaled);
}

/// Two's-complement add: wraps mod 2^64 instead of UB on the (pathological)
/// overflow, so even that stays deterministic and associative.
std::int64_t wrapping_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}

/// Exact index-wise combine; `b`'s last wins when its newest sample is at
/// least as recent (merge_from documents the tiebreak).
SeriesPoint merge_points(const SeriesPoint& a, const SeriesPoint& b) {
  SeriesPoint out = a;
  out.min = std::min(a.min, b.min);
  out.max = std::max(a.max, b.max);
  out.sum_q = wrapping_add(a.sum_q, b.sum_q);
  out.count = a.count + b.count;
  if (b.last_t >= a.last_t) {
    out.last = b.last;
    out.last_t = b.last_t;
  }
  return out;
}

}  // namespace

TimeSeries::TimeSeries(Seconds base_width, std::size_t point_budget)
    : base_width_(base_width), budget_(point_budget) {
  if (!(base_width > 0) || !std::isfinite(base_width)) {
    throw std::invalid_argument("TimeSeries: base_width must be positive");
  }
  if (point_budget < 2) {
    throw std::invalid_argument("TimeSeries: point_budget must be >= 2");
  }
}

void TimeSeries::record(Seconds t, double value) {
  if (!(t >= 0) || !std::isfinite(t)) {
    throw std::invalid_argument("TimeSeries::record: time must be >= 0");
  }
  if (!std::isfinite(value)) {
    throw std::invalid_argument("TimeSeries::record: value must be finite");
  }
  // The one and only float->bucket conversion: everything downstream works
  // on integer indices so coarsening and merging stay exact.
  const auto base_bucket = static_cast<std::uint64_t>(t / base_width_);
  SeriesPoint p;
  p.bucket = base_bucket >> level_;
  p.min = p.max = p.last = value;
  p.sum_q = quantize(value);
  p.last_t = t;
  p.count = 1;
  ++samples_;
  fold(p);
  while (points_.size() > budget_ && level_ < 63) coarsen();
}

void TimeSeries::fold(const SeriesPoint& p) {
  // Fast path: samples arrive in simulated-time order, so the target window
  // is almost always the newest one (or a brand-new one past it).
  if (points_.empty() || p.bucket > points_.back().bucket) {
    points_.push_back(p);
    return;
  }
  // Binary search for out-of-order folds (derived series, merges).
  std::size_t lo = 0, hi = points_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (points_[mid].bucket < p.bucket) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < points_.size() && points_[lo].bucket == p.bucket) {
    points_[lo] = merge_points(points_[lo], p);
  } else {
    points_.insert(points_.begin() + static_cast<std::ptrdiff_t>(lo), p);
  }
}

void TimeSeries::coarsen() {
  ++level_;
  std::size_t out = 0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    SeriesPoint p = points_[i];
    p.bucket >>= 1;
    if (out > 0 && points_[out - 1].bucket == p.bucket) {
      points_[out - 1] = merge_points(points_[out - 1], p);
    } else {
      points_[out++] = p;
    }
  }
  points_.resize(out);
}

void TimeSeries::merge_from(const TimeSeries& other) {
  if (base_width_ != other.base_width_ || budget_ != other.budget_) {
    throw std::invalid_argument(
        "TimeSeries::merge_from: base_width/point_budget mismatch");
  }
  while (level_ < other.level_) coarsen();
  const unsigned shift = level_ - other.level_;
  for (const SeriesPoint& raw : other.points_) {
    SeriesPoint p = raw;
    p.bucket >>= shift;
    fold(p);
  }
  samples_ += other.samples_;
  while (points_.size() > budget_ && level_ < 63) coarsen();
}

bool TimeSeries::same_as(const TimeSeries& other) const {
  return base_width_ == other.base_width_ && budget_ == other.budget_ &&
         level_ == other.level_ && samples_ == other.samples_ &&
         points_ == other.points_;
}

std::string TimeSeries::to_bytes() const {
  std::string payload;
  BinaryWriter w(payload);
  w.f64(base_width_);
  w.u64(budget_);
  w.u32(level_);
  w.u64(samples_);
  w.u64(points_.size());
  for (const SeriesPoint& p : points_) {
    w.u64(p.bucket);
    w.f64(p.min);
    w.f64(p.max);
    w.u64(static_cast<std::uint64_t>(p.sum_q));
    w.f64(p.last);
    w.f64(p.last_t);
    w.u64(p.count);
  }
  std::string out = payload;
  BinaryWriter tail(out);
  tail.u32(crc32(payload));
  return out;
}

TimeSeries TimeSeries::from_bytes(std::string_view bytes) {
  if (bytes.size() < 4) {
    throw std::runtime_error("truncated binary record");
  }
  const std::string_view payload = bytes.substr(0, bytes.size() - 4);
  BinaryReader crc_reader(bytes.substr(bytes.size() - 4));
  if (crc_reader.u32() != crc32(payload)) {
    throw std::runtime_error("TimeSeries::from_bytes: checksum mismatch");
  }
  BinaryReader r(payload);
  const double base_width = r.f64();
  const std::uint64_t budget = r.u64();
  const std::uint32_t level = r.u32();
  const std::uint64_t samples = r.u64();
  const std::uint64_t n = r.u64();
  if (!(base_width > 0) || !std::isfinite(base_width) || budget < 2 ||
      level >= 64 || n > budget) {
    throw std::runtime_error("TimeSeries::from_bytes: malformed header");
  }
  TimeSeries series(base_width, budget);
  series.level_ = level;
  series.samples_ = samples;
  series.points_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    SeriesPoint p;
    p.bucket = r.u64();
    p.min = r.f64();
    p.max = r.f64();
    p.sum_q = static_cast<std::int64_t>(r.u64());
    p.last = r.f64();
    p.last_t = r.f64();
    p.count = r.u64();
    if (!series.points_.empty() && p.bucket <= series.points_.back().bucket) {
      throw std::runtime_error("TimeSeries::from_bytes: unsorted points");
    }
    series.points_.push_back(p);
  }
  r.expect_done();
  return series;
}

void TimeSeries::append_json(std::string& out) const {
  out += "{\"width\": ";
  append_number(out, width());
  out += ", \"samples\": ";
  append_number(out, static_cast<double>(samples_));
  out += ", \"points\": [";
  bool first = true;
  for (const SeriesPoint& p : points_) {
    if (!first) out += ", ";
    first = false;
    out += "{\"t\": ";
    append_number(out, static_cast<double>(p.bucket) * width());
    out += ", \"min\": ";
    append_number(out, p.min);
    out += ", \"max\": ";
    append_number(out, p.max);
    out += ", \"mean\": ";
    append_number(out, p.mean());
    out += ", \"last\": ";
    append_number(out, p.last);
    out += ", \"count\": ";
    append_number(out, static_cast<double>(p.count));
    out += "}";
  }
  out += "]}";
}

std::string TimeSeries::to_json() const {
  std::string out;
  append_json(out);
  return out;
}

}  // namespace eab::obs
