#include "obs/chrome_trace.hpp"

#include <cstdio>
#include <deque>
#include <unordered_map>

#include "util/fileio.hpp"

namespace eab::obs {
namespace {

// Track layout (tid) inside the single simulated process (pid 1).
constexpr int kRadioTrack = 1;
constexpr int kCpuTrack = 2;
constexpr int kNetTrack = 3;
constexpr int kEventTrack = 4;

const char* rrc_state_name(std::int64_t s) {
  switch (s) {
    case 0: return "IDLE";
    case 1: return "FACH";
    case 2: return "DCH";
    case 3: return "OUT_OF_SERVICE";
  }
  return "?";
}

const char* fetch_status_name(std::int64_t s) {
  switch (s) {
    case 0: return "ok";
    case 1: return "not-found";
    case 2: return "truncated";
    case 3: return "timed-out";
    case 4: return "aborted";
    case 5: return "radio-lost";
  }
  return "?";
}

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

class Writer {
 public:
  explicit Writer(std::string& out) : out_(out) {}

  void slice(const char* name, Seconds begin, Seconds duration, int tid,
             const std::string& args_json = "{}") {
    emit("X", name, begin, duration, tid, args_json);
  }

  void instant(const char* name, Seconds at, int tid,
               const std::string& args_json = "{}") {
    emit("i", name, at, 0, tid, args_json);
  }

  /// Perfetto counter sample ("C" phase): one point on the named counter
  /// track.  Counters are keyed by (pid, name), so no tid is needed.
  void counter(const char* name, Seconds at, double value) {
    char buf[160];
    out_ += first_ ? "    {" : ",\n    {";
    first_ = false;
    out_ += "\"name\": \"";
    append_escaped(out_, name);
    out_ += "\", ";
    std::snprintf(buf, sizeof buf,
                  "\"ph\": \"C\", \"ts\": %.3f, \"pid\": 1, "
                  "\"args\": {\"value\": %.9g}}",
                  at * 1e6, value);
    out_ += buf;
  }

  void thread_name(int tid, const char* name) {
    char buf[256];
    out_ += first_ ? "    {" : ",\n    {";
    first_ = false;
    std::snprintf(buf, sizeof buf,
                  "\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
                  "\"tid\": %d, \"args\": {\"name\": \"%s\"}}",
                  tid, name);
    out_ += buf;
  }

 private:
  void emit(const char* ph, const char* name, Seconds at, Seconds duration,
            int tid, const std::string& args_json) {
    char buf[160];
    out_ += first_ ? "    {" : ",\n    {";
    first_ = false;
    out_ += "\"name\": \"";
    append_escaped(out_, name);
    out_ += "\", ";
    std::snprintf(buf, sizeof buf, "\"ph\": \"%s\", \"ts\": %.3f, ", ph,
                  at * 1e6);
    out_ += buf;
    if (ph[0] == 'X') {
      std::snprintf(buf, sizeof buf, "\"dur\": %.3f, ", duration * 1e6);
      out_ += buf;
    }
    if (ph[0] == 'i') out_ += "\"s\": \"t\", ";
    std::snprintf(buf, sizeof buf, "\"pid\": 1, \"tid\": %d, \"args\": ", tid);
    out_ += buf;
    out_ += args_json;
    out_ += "}";
  }

  std::string& out_;
  bool first_ = true;
};

std::string number_args(const char* key, double value) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "{\"%s\": %.9g}", key, value);
  return buf;
}

std::string url_args(const TraceRecorder& trace, const TraceEvent& e) {
  std::string out = "{";
  if (e.name != 0) {
    out += "\"url\": \"";
    append_escaped(out, trace.name(e.name));
    out += "\", ";
  }
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "\"a\": %lld, \"b\": %lld, \"x\": %.9g}",
                static_cast<long long>(e.a), static_cast<long long>(e.b), e.x);
  out += buf;
  return out;
}

}  // namespace

std::string chrome_trace_json(const TraceRecorder& trace, Seconds t_end,
                              const Telemetry* telemetry) {
  if (t_end <= 0 && !trace.empty()) t_end = trace.events().back().t;

  std::string out;
  out.reserve(256 + trace.size() * 160);
  out += "{\"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  Writer w(out);

  // Track names (metadata must precede use for chrome://tracing).
  const struct {
    int tid;
    const char* name;
  } tracks[] = {{kRadioTrack, "radio (RRC)"},
                {kCpuTrack, "browser CPU stages"},
                {kNetTrack, "network fetches"},
                {kEventTrack, "events"}};
  for (const auto& track : tracks) {
    w.thread_name(track.tid, track.name);
  }

  // RRC residency as slices on the radio track.
  for (const TraceSpan& span : trace.rrc_state_spans(t_end)) {
    w.slice(rrc_state_name(span.tag), span.begin, span.duration(), kRadioTrack);
  }

  // Per-fetch lifetime slices: queued -> settled, FIFO per url.
  std::unordered_map<std::uint32_t, std::deque<Seconds>> open_fetches;
  for (const TraceEvent& e : trace.events()) {
    if (e.kind == TraceKind::kHttpFetchQueued) {
      open_fetches[e.name].push_back(e.t);
    } else if (e.kind == TraceKind::kHttpFetchSettled) {
      auto& queue = open_fetches[e.name];
      if (queue.empty()) continue;  // unbalanced; the auditor reports it
      const Seconds begin = queue.front();
      queue.pop_front();
      char args[192];
      std::snprintf(args, sizeof args,
                    "{\"attempts\": %lld, \"status\": \"%s\", \"bytes\": %.0f}",
                    static_cast<long long>(e.a), fetch_status_name(e.b), e.x);
      w.slice(trace.name(e.name).c_str(), begin, e.t - begin, kNetTrack, args);
    }
  }

  // Everything else: stage slices on the CPU track, instants elsewhere.
  for (const TraceEvent& e : trace.events()) {
    switch (e.kind) {
      case TraceKind::kRrcStateEnter:
      case TraceKind::kHttpFetchQueued:
      case TraceKind::kHttpFetchSettled:
        break;  // already rendered as slices
      case TraceKind::kStageRun:
        w.slice(to_string(static_cast<Stage>(e.a)), e.t - e.x, e.x, kCpuTrack);
        break;
      case TraceKind::kHttpAttemptStart:
      case TraceKind::kHttpFirstByte:
      case TraceKind::kHttpWatchdogFire:
      case TraceKind::kHttpRetryScheduled:
      case TraceKind::kHttpCacheHit:
      case TraceKind::kFaultDecision:
        w.instant(to_string(e.kind), e.t, kNetTrack, url_args(trace, e));
        break;
      case TraceKind::kRrcTimerSet:
      case TraceKind::kRrcTimerCancel:
      case TraceKind::kRrcTimerFire:
      case TraceKind::kRrcPromotionStart:
      case TraceKind::kRrcPromotionDone:
      case TraceKind::kRrcReleaseStart:
      case TraceKind::kRrcReleaseDone:
      case TraceKind::kRrcTransferBegin:
      case TraceKind::kRrcTransferEnd:
      case TraceKind::kRrcSmallTxStart:
      case TraceKind::kRrcSmallTxEnd:
      case TraceKind::kRadioCoverageLost:
      case TraceKind::kRadioCoverageBack:
      case TraceKind::kRrcRlf:
      case TraceKind::kRrcReestablishStart:
      case TraceKind::kRrcReestablishOk:
      case TraceKind::kRrcReestablishFail:
        w.instant(to_string(e.kind), e.t, kRadioTrack,
                  number_args("a", static_cast<double>(e.a)));
        break;
      case TraceKind::kPolicyPrediction:
      case TraceKind::kPolicyDecision:
      case TraceKind::kPolicyAlphaWait:
      case TraceKind::kLoadDone:
        w.instant(to_string(e.kind), e.t, kEventTrack,
                  number_args("x", e.x));
        break;
      default:
        w.instant(to_string(e.kind), e.t, kEventTrack, url_args(trace, e));
        break;
    }
  }

  // Counter tracks: running censuses the slice views cannot show at a
  // glance.  Transfers carry their census in the event payload (b = count
  // after the transition); flows and fetches are reconstructed by pairing.
  std::int64_t flows = 0;
  std::int64_t fetches = 0;
  for (const TraceEvent& e : trace.events()) {
    switch (e.kind) {
      case TraceKind::kLinkFlowStart:
        w.counter("link flows", e.t, static_cast<double>(++flows));
        break;
      case TraceKind::kLinkFlowComplete:
      case TraceKind::kLinkFlowCancel:
        w.counter("link flows", e.t, static_cast<double>(--flows));
        break;
      case TraceKind::kRrcTransferBegin:
      case TraceKind::kRrcTransferEnd:
        w.counter("active transfers", e.t, static_cast<double>(e.b));
        break;
      case TraceKind::kHttpFetchQueued:
        w.counter("fetches outstanding", e.t, static_cast<double>(++fetches));
        break;
      case TraceKind::kHttpFetchSettled:
        w.counter("fetches outstanding", e.t, static_cast<double>(--fetches));
        break;
      case TraceKind::kRadioCoverageLost:
        w.counter("radio coverage", e.t, 0.0);
        break;
      case TraceKind::kRadioCoverageBack:
        w.counter("radio coverage", e.t, 1.0);
        break;
      default:
        break;
    }
  }

  // Telemetry series as counter tracks: one point per retained window at
  // the window's start time, valued at the window mean.
  if (telemetry != nullptr) {
    for (const auto& [name, series] : telemetry->all()) {
      const std::string track = "ts:" + name;
      const Seconds width = series.width();
      for (const SeriesPoint& p : series.points()) {
        w.counter(track.c_str(), static_cast<Seconds>(p.bucket) * width,
                  p.mean());
      }
    }
  }

  out += "\n  ]\n}\n";
  return out;
}

bool write_chrome_trace(const std::string& path, const TraceRecorder& trace,
                        Seconds t_end, const Telemetry* telemetry) {
  return write_file_atomic(path, chrome_trace_json(trace, t_end, telemetry));
}

}  // namespace eab::obs
