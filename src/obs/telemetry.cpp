#include "obs/telemetry.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/bytes.hpp"
#include "util/hash.hpp"

namespace eab::obs {

Telemetry::Telemetry(TelemetryConfig config) : config_(config) {
  if (!(config.tick > 0) || !std::isfinite(config.tick)) {
    throw std::invalid_argument("Telemetry: tick must be positive");
  }
  if (config.point_budget < 2) {
    throw std::invalid_argument("Telemetry: point_budget must be >= 2");
  }
}

void Telemetry::sample(std::string_view name, Seconds t, double value) {
  series(name).record(t, value);
}

TimeSeries& Telemetry::series(std::string_view name) {
  const auto it = series_.find(name);
  if (it != series_.end()) return it->second;
  return series_
      .emplace(std::string(name),
               TimeSeries(config_.tick, config_.point_budget))
      .first->second;
}

const TimeSeries* Telemetry::find(std::string_view name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

void Telemetry::merge_from(const Telemetry& other) {
  if (!(config_ == other.config_)) {
    throw std::invalid_argument("Telemetry::merge_from: config mismatch");
  }
  for (const auto& [name, s] : other.series_) {
    const auto it = series_.find(name);
    if (it == series_.end()) {
      series_.emplace(name, s);
    } else {
      it->second.merge_from(s);
    }
  }
}

bool Telemetry::same_as(const Telemetry& other) const {
  if (!(config_ == other.config_)) return false;
  if (series_.size() != other.series_.size()) return false;
  auto it = series_.begin();
  auto jt = other.series_.begin();
  for (; it != series_.end(); ++it, ++jt) {
    if (it->first != jt->first || !it->second.same_as(jt->second)) {
      return false;
    }
  }
  return true;
}

std::string Telemetry::to_bytes() const {
  std::string payload;
  BinaryWriter w(payload);
  w.f64(config_.tick);
  w.u64(config_.point_budget);
  w.u8(config_.per_ue ? 1 : 0);
  w.u64(series_.size());
  for (const auto& [name, s] : series_) {
    w.str(name);
    w.str(s.to_bytes());
  }
  std::string out = payload;
  BinaryWriter tail(out);
  tail.u32(crc32(payload));
  return out;
}

Telemetry Telemetry::from_bytes(std::string_view bytes) {
  if (bytes.size() < 4) {
    throw std::runtime_error("truncated binary record");
  }
  const std::string_view payload = bytes.substr(0, bytes.size() - 4);
  BinaryReader crc_reader(bytes.substr(bytes.size() - 4));
  if (crc_reader.u32() != crc32(payload)) {
    throw std::runtime_error("Telemetry::from_bytes: checksum mismatch");
  }
  BinaryReader r(payload);
  TelemetryConfig config;
  config.tick = r.f64();
  config.point_budget = r.u64();
  config.per_ue = r.u8() != 0;
  Telemetry telemetry(config);
  const std::uint64_t n = r.u64();
  std::string previous;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name = r.str();
    if (i > 0 && name <= previous) {
      throw std::runtime_error("Telemetry::from_bytes: unsorted series");
    }
    previous = name;
    telemetry.series_.emplace(std::move(name),
                              TimeSeries::from_bytes(r.str()));
  }
  r.expect_done();
  return telemetry;
}

void Telemetry::append_json(std::string& out) const {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", config_.tick);
  out += "{\"tick\": ";
  out += buffer;
  std::snprintf(buffer, sizeof buffer, "%zu", config_.point_budget);
  out += ", \"point_budget\": ";
  out += buffer;
  out += ", \"series\": {";
  bool first = true;
  for (const auto& [name, s] : series_) {
    if (!first) out += ", ";
    first = false;
    out += "\"";
    out += name;  // series names are code-side identifiers, no escaping needed
    out += "\": ";
    s.append_json(out);
  }
  out += "}}";
}

std::string Telemetry::to_json() const {
  std::string out;
  append_json(out);
  return out;
}

}  // namespace eab::obs
