// Simulated-time telemetry: a registry of named fixed-budget TimeSeries
// (DESIGN.md §11).
//
// Telemetry follows the null-sink idiom of TraceRecorder: layers hold a raw
// `Telemetry*` (null = disabled) and guard every sample with
// `if (telemetry_)`, so disabled runs execute zero extra instructions and
// stay bit-identical to a build without telemetry.  Unlike tracing, the
// sampling tick DOES schedule simulator events — owners (cell::CellSim)
// schedule it only when telemetry is enabled, and the tick callback never
// mutates simulation state, so the workload trajectory is unchanged and the
// only observable delta of an enabled run is the tick events themselves.
//
// Series are keyed by name in a sorted map: iteration order, the JSON dump
// and the binary codec are all deterministic, and the codec round-trips
// bit-exactly across process boundaries for supervised sweeps.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "obs/timeseries.hpp"
#include "util/units.hpp"

namespace eab::obs {

struct TelemetryConfig {
  /// Sampling period in simulated seconds; also the base bucket width of
  /// every series.  Must be positive.
  Seconds tick = 5.0;
  /// Per-series point budget (power-of-two merge downsampling beyond it).
  std::size_t point_budget = 256;
  /// Record per-UE series too (cell runs); per-cell series only otherwise.
  bool per_ue = false;

  bool operator==(const TelemetryConfig&) const = default;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config = {});

  const TelemetryConfig& config() const { return config_; }

  /// Folds one sample into the named series (created on first use with the
  /// configured tick width and budget).
  void sample(std::string_view name, Seconds t, double value);

  TimeSeries& series(std::string_view name);
  const TimeSeries* find(std::string_view name) const;
  const std::map<std::string, TimeSeries, std::less<>>& all() const {
    return series_;
  }
  std::size_t series_count() const { return series_.size(); }

  /// Index-exact union: series present in both are merge_from()'d, series
  /// only in `other` are copied.  Configs must match.
  void merge_from(const Telemetry& other);

  bool same_as(const Telemetry& other) const;

  /// crc32-tailed binary codec; from_bytes throws std::runtime_error on
  /// truncation, trailing bytes or checksum mismatch.
  std::string to_bytes() const;
  static Telemetry from_bytes(std::string_view bytes);

  /// Deterministic JSON object {"tick": ..., "series": {name: series...}}.
  void append_json(std::string& out) const;
  std::string to_json() const;

 private:
  TelemetryConfig config_;
  std::map<std::string, TimeSeries, std::less<>> series_;
};

}  // namespace eab::obs
