// Cross-layer trace auditor.
//
// Replays a TraceRecorder recording and checks invariants that span layers,
// turning determinism from a test-time property into a checked runtime one:
//
//  * RRC legality — only transitions the UMTS machine can make (IDLE->DCH
//    and FACH->DCH via promotion, DCH->FACH via T1, FACH->IDLE via T2 or
//    release, DCH->IDLE via release), promotions/releases only from a stable
//    phase, transfers only begun on a stable DCH.
//  * Timer discipline — T1/T2 fire only while armed, exactly at their
//    recorded deadline, and are never re-armed without an intervening
//    cancel or fire.
//  * Transfer markers — begin/end counts balance, the active count never
//    goes negative and ends at zero (the PR-2 leak class, now audited on
//    every traced run instead of asserted in one regression test).
//  * Retry budget — every settled fetch consumed at most 1 + max_retries
//    attempts; scheduled retries never exceed max_retries; every queued
//    fetch settles exactly once.
//  * Energy reconciliation — the radio power level implied by the event
//    stream (state dwell times x Table-5 powers, plus promotion/release
//    signalling powers and the FACH shared-channel transmit level),
//    integrated over the run, must match the PowerTimeline energy integral
//    to within epsilon.  A drift means an instrumentation gap or a power
//    accounting bug.
//
// The auditor only reads the recording plus plain configuration structs, so
// it can run anywhere a trace exists: unit tests, the bench harnesses under
// EAB_TRACE=1 (scripts/check.sh fails the build on any violation), or the
// trace_inspect CLI.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "radio/rrc_config.hpp"
#include "util/units.hpp"

namespace eab::obs {

/// Everything the replay needs besides the recording itself.
struct AuditInputs {
  radio::RrcConfig rrc;          ///< signalling powers and timer values
  radio::RadioPowerModel power;  ///< Table-5 state power levels
  int max_retries = 2;           ///< RetryPolicy budget per fetch
  Joules radio_energy = 0;       ///< PowerTimeline integral over [0, t_end]
  Seconds t_end = 0;             ///< end of the audited window
  double energy_rel_eps = 1e-6;  ///< relative reconciliation tolerance
};

/// Outcome of one audit.
struct AuditReport {
  std::vector<std::string> violations;  ///< empty = every invariant held
  Joules trace_energy = 0;      ///< energy integral reconstructed from events
  Joules reference_energy = 0;  ///< the PowerTimeline integral audited against
  int transitions_checked = 0;
  int fetches_checked = 0;

  bool ok() const { return violations.empty(); }
  /// Violations joined one per line (empty string when ok).
  std::string summary() const;
};

/// Replays recordings against the invariants above.
class TraceAuditor {
 public:
  /// At most this many violations are itemized; further ones are elided
  /// behind a final "... and N more" entry.
  static constexpr std::size_t kMaxReported = 32;

  AuditReport audit(const TraceRecorder& trace, const AuditInputs& inputs) const;
};

}  // namespace eab::obs
