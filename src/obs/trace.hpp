// Structured simulation tracing.
//
// Every layer of the stack — the RRC state machine, the HTTP client, the
// shared downlink, the fault injector, the browser pipelines and the policy
// controller — can record typed events stamped with simulated time into one
// per-run TraceRecorder.  The paper argues from exactly these timelines
// (Fig 1/9 power-state traces, Fig 4 per-transfer traffic shapes); the
// recorder makes the same reasoning available for every run, and the
// TraceAuditor (obs/audit.hpp) replays a recording to check cross-layer
// invariants that aggregate numbers cannot express.
//
// Cost contract: components hold a raw `TraceRecorder*` that defaults to
// nullptr.  Every instrumentation site is `if (trace_) trace_->record(...)`,
// so a disabled recorder costs one predicted-not-taken branch and changes no
// behavior — recording never schedules simulator events, so `sim_events` and
// every simulation result are bit-identical with tracing on or off.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace eab::obs {

/// Every event type the instrumented layers emit.  Payload fields `a`, `b`
/// and `x` are typed per kind (documented inline); `name` is an interned
/// string id (URLs), 0 when unused.
enum class TraceKind : std::uint8_t {
  // --- radio/rrc -----------------------------------------------------------
  kRrcStateEnter,      ///< a = from RrcState, b = to RrcState
  kRrcTimerSet,        ///< a = timer (1=T1, 2=T2), x = absolute deadline
  kRrcTimerCancel,     ///< a = timer (1=T1, 2=T2)
  kRrcTimerFire,       ///< a = timer (1=T1, 2=T2)
  kRrcPromotionStart,  ///< a = from RrcState
  kRrcPromotionDone,   ///< a = from RrcState
  kRrcReleaseStart,    ///< a = from RrcState
  kRrcReleaseDone,
  kRrcTransferBegin,   ///< b = active transfers after the begin
  kRrcTransferEnd,     ///< b = active transfers after the end
  kRrcSmallTxStart,    ///< x = payload bytes
  kRrcSmallTxEnd,
  // --- net/http ------------------------------------------------------------
  kHttpFetchQueued,    ///< name = url
  kHttpCacheHit,       ///< name = url
  kHttpAttemptStart,   ///< name = url, a = attempt (1-based)
  kHttpFirstByte,      ///< name = url, a = attempt, x = wire bytes
  kHttpWatchdogFire,   ///< name = url, a = attempt
  kHttpRetryScheduled, ///< name = url, a = retry number, x = backoff seconds
  kHttpFetchSettled,   ///< name = url, a = attempts, b = FetchStatus, x = bytes
  // --- net/fault -----------------------------------------------------------
  kFaultDecision,      ///< name = url, a = attempt, b = FaultKind (non-kNone)
  kLinkFadeStart,      ///< a = fade index (0-based)
  kLinkFadeEnd,        ///< a = fade index (0-based)
  // --- net/shared_link -----------------------------------------------------
  kLinkFlowStart,      ///< a = flow id, x = bytes
  kLinkFlowComplete,   ///< a = flow id
  kLinkFlowCancel,     ///< a = flow id
  kLinkPause,
  kLinkResume,
  // --- browser/pipeline ----------------------------------------------------
  kLoadStart,          ///< name = main url
  kStageRun,           ///< a = Stage, x = CPU seconds; span is [t - x, t]
  kIntermediateDisplay,
  kTransmissionComplete,
  kLoadDone,           ///< x = final_display
  kLoadAborted,        ///< user abandoned the load; x = abort time
  // --- core controller / policy / ril -------------------------------------
  kPolicyAlphaWait,    ///< x = alpha seconds before the decision runs
  kPolicyPrediction,   ///< x = predicted reading time (s)
  kPolicyDecision,     ///< a = 1 switch-to-IDLE / 0 stay, x = predicted (s)
  kRilRequest,
  kRilSocketFailure,
  kRilForwarded,       ///< request survived the socket hop, reached firmware
  // --- radio failure model (append-only: values are stable across PRs) -----
  kRadioCoverageLost,  ///< an outage window began (coverage process)
  kRadioCoverageBack,  ///< the outage window ended
  kRrcRlf,             ///< radio-link failure declared; a = failing RrcState
  kRrcReestablishStart,  ///< a = attempt (1-based within one recovery)
  kRrcReestablishOk,     ///< a = attempt that succeeded
  kRrcReestablishFail,   ///< a = attempt that failed
  // --- metro layer (append-only: values are stable across PRs) -------------
  kRrcHandoverStart,   ///< hard handover commanded; a = active transfers
  kRrcHandoverDone,    ///< handover exchange completed on the target cell
  kMetroReselect,      ///< idle/FACH cell reselection; a = from, b = to cell
  kMetroHandover,      ///< hard handover admitted; a = from, b = to cell
  kMetroHandoverDrop,  ///< target had no grant; a = from, b = to cell
};

/// Short stable label for a kind ("rrc.state_enter", "http.settled", ...).
const char* to_string(TraceKind kind);

/// Browser pipeline stages (payload `a` of kStageRun spans).
enum class Stage : std::uint8_t {
  kHtmlParse,
  kCssScan,
  kCssParse,
  kJsRun,
  kImageDecode,
  kReflow,
  kTextDisplay,
  kFinalDisplay,
};

const char* to_string(Stage stage);

/// One recorded event.  Plain data; equality is field-wise, which is what
/// the determinism tests compare (serial and parallel runs of the same job
/// must record identical streams).
struct TraceEvent {
  Seconds t = 0;
  TraceKind kind{};
  std::uint32_t name = 0;  ///< interned string id; 0 = none
  std::int64_t a = 0;
  std::int64_t b = 0;
  double x = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// A contiguous interval derived from the event stream (RRC state residency,
/// pipeline stage execution, link-busy windows).
struct TraceSpan {
  Seconds begin = 0;
  Seconds end = 0;
  std::int64_t tag = 0;  ///< RrcState / Stage value, depending on the query
  Seconds duration() const { return end - begin; }
};

/// Append-only recorder of typed, time-stamped events with string interning.
class TraceRecorder {
 public:
  void record(Seconds t, TraceKind kind, std::int64_t a = 0, std::int64_t b = 0,
              double x = 0, std::uint32_t name = 0) {
    events_.push_back(TraceEvent{t, kind, name, a, b, x});
  }

  /// Returns a stable id for `s`, creating one on first sight.  Ids are
  /// assigned in first-seen order, which is deterministic because the
  /// simulation itself is.
  std::uint32_t intern(std::string_view s);

  /// The string behind an interned id (id must come from intern()).
  const std::string& name(std::uint32_t id) const;

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<std::string>& strings() const { return strings_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Number of recorded events of one kind.
  std::size_t count(TraceKind kind) const;

  /// Whole-recording equality: same events and same intern table.  Two runs
  /// of the same job must satisfy this regardless of worker count.
  bool same_as(const TraceRecorder& other) const {
    return events_ == other.events_ && strings_ == other.strings_;
  }

  /// RRC state residency intervals reconstructed from kRrcStateEnter events
  /// (tag = RrcState; the machine starts in IDLE at t = 0).  The final open
  /// interval is closed at `t_end`.
  std::vector<TraceSpan> rrc_state_spans(Seconds t_end) const;

  /// Pipeline stage execution spans from kStageRun events (tag = Stage).
  std::vector<TraceSpan> stage_spans() const;

 private:
  std::vector<TraceEvent> events_;
  std::vector<std::string> strings_;  ///< index = id - 1
  std::unordered_map<std::string, std::uint32_t> ids_;
};

}  // namespace eab::obs
