// Metrics registry: named counters, gauges and histograms with a
// deterministic merge.
//
// Each batch job (one run_single_load) snapshots its own registry from the
// component statistics it already tracks; core::BatchRunner merges the
// per-job registries in submission order, so the engine-wide snapshot is
// bit-identical whether the batch ran on one worker or sixteen.  Entries are
// keyed by name in a sorted map, which makes iteration — and therefore the
// JSON export written next to each BENCH_*.json — deterministic too.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace eab::obs {

/// Fixed-bucket histogram.  Bucket i counts observations <= kEdges[i]; the
/// final bucket is the overflow.  The 1-2-5 sub-decade edges span everything
/// the simulation observes (seconds, joules, counts) without per-metric
/// tuning, at ~3x the resolution of plain decades — page loads clustering
/// between 5 s and 50 s land in four buckets instead of one.
struct Histogram {
  static constexpr std::array<double, 28> kEdges = {
      0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
      1.0,   2.0,   5.0,   10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
      1e3,   2e3,   5e3,   1e4,  2e4,  5e4,  1e5,   2e5,   5e5,  1e6};
  static constexpr std::size_t kBuckets = kEdges.size() + 1;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;

  void observe(double value);
  void merge(const Histogram& other);
  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

  friend bool operator==(const Histogram&, const Histogram&) = default;
};

/// Counters sum on merge, gauges take the max (peak watermarks), histograms
/// merge bucket-wise.
class MetricsRegistry {
 public:
  /// Adds `delta` to a summed counter (created at 0).
  void count(std::string_view name, double delta = 1.0);

  /// Raises a max-merged gauge to at least `value` (peak heap size etc.).
  void set_max(std::string_view name, double value);

  /// Records one observation into a histogram.
  void observe(std::string_view name, double value);

  /// Value of a counter or gauge; 0 when absent.
  double value(std::string_view name) const;

  /// Histogram by name; nullptr when absent (or the name is not a histogram).
  const Histogram* histogram(std::string_view name) const;

  /// Folds `other` into this registry entry-by-entry.  Merging two entries
  /// of different kinds under one name is a wiring bug and throws.
  void merge(const MetricsRegistry& other);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Deterministic JSON object, entries sorted by name.  Counters/gauges
  /// render as numbers; histograms as {count, sum, min, max, mean, buckets}.
  std::string to_json() const;

  /// Bit-exact binary round trip for cross-process merges: the supervisor's
  /// workers snapshot their registries into checkpoint records and the
  /// orchestrator merges the deserialized copies — from_bytes(to_bytes(r))
  /// satisfies same_as(r) exactly (doubles travel as bit patterns).
  /// from_bytes throws std::runtime_error on truncated or malformed input.
  std::string to_bytes() const;
  static MetricsRegistry from_bytes(std::string_view bytes);

  bool same_as(const MetricsRegistry& other) const {
    return entries_ == other.entries_;
  }

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind = Kind::kCounter;
    double value = 0;
    Histogram hist;

    friend bool operator==(const Entry&, const Entry&) = default;
  };

  Entry& entry(std::string_view name, Kind kind);

  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace eab::obs
