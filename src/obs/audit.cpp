#include "obs/audit.hpp"

#include <cmath>
#include <cstdio>
#include <unordered_map>

namespace eab::obs {
namespace {

// Kept local to avoid linking the radio library (which itself links obs).
const char* state_name(std::int64_t s) {
  switch (s) {
    case 0: return "IDLE";
    case 1: return "FACH";
    case 2: return "DCH";
    case 3: return "OUT_OF_SERVICE";
  }
  return "?";
}

constexpr std::int64_t kIdle = 0;
constexpr std::int64_t kFach = 1;
constexpr std::int64_t kDch = 2;
constexpr std::int64_t kOos = 3;

enum class Phase { kStable, kPromoting, kReleasing, kReestablishing, kHandover };

/// Mutable replay state plus violation collection.
struct Replay {
  const AuditInputs& in;
  const TraceRecorder& trace;
  AuditReport report;
  std::size_t suppressed = 0;

  // Radio replica (mirrors RrcMachine exactly).
  std::int64_t state = kIdle;
  Phase phase = Phase::kStable;
  std::int64_t transfers = 0;
  bool fach_tx = false;
  /// T313 (the RLF detection timer) fired; the machine must enter
  /// OUT_OF_SERVICE next — and may only enter it after such a fire.
  bool oos_pending = false;
  /// A re-establishment succeeded; the machine must come back on DCH — and
  /// may only leave OUT_OF_SERVICE toward DCH after such a success.
  bool reestablished = false;
  // Timer id -> armed deadline (absent = not armed).
  std::unordered_map<std::int64_t, Seconds> timers;

  // Energy integration.
  Seconds cursor = 0;
  Joules energy = 0;

  // HTTP bookkeeping per interned url.
  struct FetchCounts {
    std::int64_t queued = 0;
    std::int64_t settled = 0;
  };
  std::unordered_map<std::uint32_t, FetchCounts> fetches;

  explicit Replay(const TraceRecorder& t, const AuditInputs& i)
      : in(i), trace(t) {}

  template <typename... Args>
  void violate(Seconds t, const char* fmt, Args... args) {
    if (report.violations.size() >= TraceAuditor::kMaxReported) {
      ++suppressed;
      return;
    }
    char buf[256];
    std::snprintf(buf, sizeof buf, fmt, args...);
    char line[320];
    std::snprintf(line, sizeof line, "t=%.6f: %s", t, buf);
    report.violations.emplace_back(line);
  }

  /// The radio power level implied by the replica — the exact mirror of
  /// RrcMachine::update_power plus the small-transfer special case.
  Watts level() const {
    switch (phase) {
      case Phase::kPromoting:
        return state == kIdle ? in.rrc.idle_to_dch_power
                              : in.rrc.fach_to_dch_power;
      case Phase::kReleasing:
        return in.rrc.release_power;
      case Phase::kReestablishing:
        return in.rrc.reestablish_power;
      case Phase::kHandover:
        return in.rrc.handover_power;
      case Phase::kStable:
        switch (state) {
          case kIdle: return in.power.idle;
          case kFach:
            return fach_tx ? in.power.fach_transfer : in.power.fach;
          case kDch:
            return transfers > 0 ? in.power.dch_transfer
                                 : in.power.dch_no_transfer;
          case kOos: return in.power.out_of_service;
        }
    }
    return in.power.idle;
  }

  void advance_to(Seconds t) {
    if (t < cursor - 1e-12) {
      violate(t, "event time moved backwards (cursor %.6f)", cursor);
      return;
    }
    if (t > cursor) {
      energy += level() * (t - cursor);
      cursor = t;
    }
  }

  bool legal_transition(std::int64_t from, std::int64_t to) const {
    return (from == kIdle && to == kDch) || (from == kFach && to == kDch) ||
           (from == kDch && to == kFach) || (from == kFach && to == kIdle) ||
           (from == kDch && to == kIdle) ||
           // Radio failure model: any camped state can lose coverage; a UE
           // comes back via re-establishment (-> DCH) or from scratch
           // (-> IDLE after a context-less recovery or a context release).
           (from == kIdle && to == kOos) || (from == kFach && to == kOos) ||
           (from == kDch && to == kOos) || (from == kOos && to == kDch) ||
           (from == kOos && to == kIdle);
  }

  void on_event(const TraceEvent& e) {
    advance_to(e.t);
    switch (e.kind) {
      case TraceKind::kRrcStateEnter: {
        ++report.transitions_checked;
        if (e.a != state) {
          violate(e.t, "state enter claims from=%s but replica is in %s",
                  state_name(e.a), state_name(state));
        }
        if (!legal_transition(e.a, e.b)) {
          violate(e.t, "illegal RRC transition %s -> %s", state_name(e.a),
                  state_name(e.b));
        }
        if (e.b == kOos) {
          if (!oos_pending) {
            violate(e.t,
                    "entered OUT_OF_SERVICE without a T313 detection fire");
          }
          oos_pending = false;
          if (transfers != 0) {
            violate(e.t,
                    "entered OUT_OF_SERVICE with %lld transfer markers held",
                    static_cast<long long>(transfers));
          }
          // Both RLF and the context-less IDLE path settle the machine into
          // a stable camp before the state switch.
          phase = Phase::kStable;
        }
        if (e.a == kOos && e.b == kDch) {
          if (!reestablished) {
            violate(e.t, "left OUT_OF_SERVICE for DCH without a successful "
                         "re-establishment");
          }
          reestablished = false;
        }
        state = e.b;
        break;
      }
      case TraceKind::kRrcTimerSet: {
        if (timers.count(e.a) != 0) {
          violate(e.t, "T%lld re-armed without cancel or fire",
                  static_cast<long long>(e.a));
        }
        timers[e.a] = e.x;
        break;
      }
      case TraceKind::kRrcTimerCancel: {
        if (timers.erase(e.a) == 0) {
          violate(e.t, "T%lld cancelled while not armed",
                  static_cast<long long>(e.a));
        }
        break;
      }
      case TraceKind::kRrcTimerFire: {
        const auto it = timers.find(e.a);
        if (it == timers.end()) {
          violate(e.t, "T%lld fired while not armed",
                  static_cast<long long>(e.a));
        } else {
          if (std::abs(it->second - e.t) > 1e-9) {
            violate(e.t, "T%lld fired at %.6f but was armed for %.6f",
                    static_cast<long long>(e.a), e.t, it->second);
          }
          timers.erase(it);
        }
        // Timer 3 is the RLF detection window: its expiry is the only way
        // into OUT_OF_SERVICE.
        if (e.a == 3) oos_pending = true;
        break;
      }
      case TraceKind::kRrcPromotionStart: {
        if (phase != Phase::kStable) {
          violate(e.t, "promotion started while signalling already in flight");
        }
        if (e.a != state) {
          violate(e.t, "promotion claims from=%s but replica is in %s",
                  state_name(e.a), state_name(state));
        }
        if (state == kDch) violate(e.t, "promotion started from DCH");
        phase = Phase::kPromoting;
        break;
      }
      case TraceKind::kRrcPromotionDone: {
        if (phase != Phase::kPromoting) {
          violate(e.t, "promotion completed without a matching start");
        }
        phase = Phase::kStable;
        break;
      }
      case TraceKind::kRrcReleaseStart: {
        if (phase != Phase::kStable) {
          violate(e.t, "release started while signalling in flight");
        }
        if (state == kIdle) violate(e.t, "release started from IDLE");
        if (transfers != 0) {
          violate(e.t, "release started with %lld active transfers",
                  static_cast<long long>(transfers));
        }
        phase = Phase::kReleasing;
        break;
      }
      case TraceKind::kRrcReleaseDone: {
        if (phase != Phase::kReleasing) {
          violate(e.t, "release completed without a matching start");
        }
        phase = Phase::kStable;
        break;
      }
      case TraceKind::kRrcTransferBegin: {
        if (phase != Phase::kStable || state != kDch) {
          violate(e.t, "transfer begun off a stable DCH (state=%s)",
                  state_name(state));
        }
        ++transfers;
        if (e.b != transfers) {
          violate(e.t, "transfer count drifted: event says %lld, replay %lld",
                  static_cast<long long>(e.b),
                  static_cast<long long>(transfers));
        }
        break;
      }
      case TraceKind::kRrcTransferEnd: {
        if (transfers <= 0) {
          violate(e.t, "transfer ended with no transfer active");
        } else {
          --transfers;
        }
        if (e.b != transfers) {
          violate(e.t, "transfer count drifted: event says %lld, replay %lld",
                  static_cast<long long>(e.b),
                  static_cast<long long>(transfers));
        }
        break;
      }
      case TraceKind::kRrcSmallTxStart: {
        if (phase != Phase::kStable || state != kFach || fach_tx) {
          violate(e.t, "small transfer started off an idle stable FACH");
        }
        fach_tx = true;
        break;
      }
      case TraceKind::kRrcSmallTxEnd: {
        if (!fach_tx) violate(e.t, "small transfer ended without a start");
        fach_tx = false;
        break;
      }
      case TraceKind::kRrcRlf: {
        if (!oos_pending) {
          violate(e.t, "RLF declared without a T313 detection fire");
        }
        if (e.a != state) {
          violate(e.t, "RLF claims failing state %s but replica is in %s",
                  state_name(e.a), state_name(state));
        }
        if (e.a == kIdle) violate(e.t, "RLF declared from IDLE");
        // The failure aborts any signalling in flight; transfer teardown
        // happens while the replica is still in the failing state.
        phase = Phase::kStable;
        break;
      }
      case TraceKind::kRrcReestablishStart: {
        if (state != kOos || phase != Phase::kStable) {
          violate(e.t, "re-establishment started outside a stable "
                       "OUT_OF_SERVICE camp (state=%s)",
                  state_name(state));
        }
        phase = Phase::kReestablishing;
        break;
      }
      case TraceKind::kRrcReestablishOk: {
        if (phase != Phase::kReestablishing) {
          violate(e.t, "re-establishment succeeded without a matching start");
        }
        phase = Phase::kStable;
        reestablished = true;
        break;
      }
      case TraceKind::kRrcReestablishFail: {
        if (phase != Phase::kReestablishing) {
          violate(e.t, "re-establishment failed without a matching start");
        }
        phase = Phase::kStable;
        break;
      }
      case TraceKind::kRrcHandoverStart: {
        // A hard handover is commanded only from a stable DCH — never from
        // FACH/IDLE (that is a reselection, which has no radio exchange)
        // and never while other signalling is in flight.
        if (phase != Phase::kStable || state != kDch) {
          violate(e.t, "handover started off a stable DCH (state=%s)",
                  state_name(state));
        }
        if (e.a != transfers) {
          violate(e.t,
                  "handover claims %lld active transfers but replay has %lld",
                  static_cast<long long>(e.a),
                  static_cast<long long>(transfers));
        }
        phase = Phase::kHandover;
        break;
      }
      case TraceKind::kRrcHandoverDone: {
        if (phase != Phase::kHandover) {
          violate(e.t, "handover completed without a matching start");
        }
        phase = Phase::kStable;
        break;
      }
      case TraceKind::kRadioCoverageLost: {
        // Coverage vanishing mid-re-establishment aborts the exchange: the
        // machine cancels the signalling and reverts to a stable camp (the
        // next attempt starts from scratch when coverage returns).
        if (phase == Phase::kReestablishing) phase = Phase::kStable;
        break;
      }
      case TraceKind::kHttpFetchQueued:
        ++fetches[e.name].queued;
        break;
      case TraceKind::kHttpRetryScheduled: {
        if (e.a > in.max_retries) {
          violate(e.t, "retry %lld of '%s' exceeds max_retries=%d",
                  static_cast<long long>(e.a), trace.name(e.name).c_str(),
                  in.max_retries);
        }
        break;
      }
      case TraceKind::kHttpFetchSettled: {
        ++report.fetches_checked;
        ++fetches[e.name].settled;
        if (e.a > in.max_retries + 1) {
          violate(e.t, "fetch of '%s' consumed %lld attempts (budget %d)",
                  trace.name(e.name).c_str(), static_cast<long long>(e.a),
                  in.max_retries + 1);
        }
        break;
      }
      default:
        break;  // informational kinds carry no audited invariant
    }
  }

  void finish() {
    advance_to(in.t_end);
    if (transfers != 0) {
      violate(in.t_end, "trace ends with %lld transfer markers still held",
              static_cast<long long>(transfers));
    }
    if (fach_tx) {
      violate(in.t_end, "trace ends with a FACH small transfer still active");
    }
    for (const auto& [name, counts] : fetches) {
      if (counts.queued != counts.settled) {
        violate(in.t_end, "fetch of '%s' queued %lld times, settled %lld",
                trace.name(name).c_str(),
                static_cast<long long>(counts.queued),
                static_cast<long long>(counts.settled));
      }
    }

    report.trace_energy = energy;
    report.reference_energy = in.radio_energy;
    const double diff = std::abs(energy - in.radio_energy);
    const double rel = diff / std::max(std::abs(in.radio_energy), 1e-12);
    if (diff > 1e-9 && rel > in.energy_rel_eps) {
      violate(in.t_end,
              "trace energy %.9f J diverges from PowerTimeline %.9f J "
              "(rel %.3g > eps %.3g)",
              energy, in.radio_energy, rel, in.energy_rel_eps);
    }

    if (suppressed > 0) {
      char line[64];
      std::snprintf(line, sizeof line, "... and %zu more violations",
                    suppressed);
      report.violations.emplace_back(line);
    }
  }
};

}  // namespace

std::string AuditReport::summary() const {
  std::string out;
  for (const std::string& v : violations) {
    out += v;
    out += '\n';
  }
  return out;
}

AuditReport TraceAuditor::audit(const TraceRecorder& trace,
                                const AuditInputs& inputs) const {
  Replay replay(trace, inputs);
  for (const TraceEvent& e : trace.events()) replay.on_event(e);
  replay.finish();
  return std::move(replay.report);
}

}  // namespace eab::obs
