// Chrome-trace-event export of a TraceRecorder recording.
//
// Produces the JSON object format consumed by Perfetto / chrome://tracing:
// RRC state residency, pipeline stage execution and per-fetch lifetimes
// render as duration ("X") slices on separate tracks, everything else as
// instant events with their payloads in args.  Running censuses (link
// flows, active transfers, outstanding fetches) additionally render as
// Perfetto counter ("C") tracks, as do the series of an optional Telemetry
// registry.  Timestamps are simulated microseconds.
#pragma once

#include <string>

#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace eab::obs {

/// Serializes the recording; `t_end` closes the final open RRC interval
/// (pass the end of the simulated window; <= 0 falls back to the last
/// event's timestamp).  A non-null `telemetry` adds one counter track per
/// series ("ts:<name>", one point per retained window at its mean).
std::string chrome_trace_json(const TraceRecorder& trace, Seconds t_end = 0,
                              const Telemetry* telemetry = nullptr);

/// Writes chrome_trace_json to `path`; returns false on I/O failure.
bool write_chrome_trace(const std::string& path, const TraceRecorder& trace,
                        Seconds t_end = 0, const Telemetry* telemetry = nullptr);

}  // namespace eab::obs
