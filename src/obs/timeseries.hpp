// Fixed-budget simulated-time series with deterministic power-of-two merge
// downsampling (DESIGN.md §11).
//
// A TimeSeries buckets samples into windows of `base_width * 2^k` simulated
// seconds and keeps at most `point_budget` windows: when a new window would
// exceed the budget, the bucket width doubles and adjacent windows merge
// pairwise (min/max/sum+count/last all preserved exactly), so memory stays
// constant on arbitrarily long runs while resolution degrades gracefully.
//
// Determinism contract: bucket indices are computed ONCE per sample at the
// base width and coarsened by integer shifts only — never re-derived through
// floating-point division — and window sums accumulate as two's-complement
// integer QUANTA (each sample is snapped to the 2^-20 grid exactly once, at
// record time) rather than floating-point doubles, because integer addition
// is associative and float addition is not.  The final state is therefore a
// pure function of the sample multiset: feeding two halves into separate
// series and merge_from()-ing them yields the same bytes as feeding the
// whole stream into one series, for ANY split and any merge order, which is
// what lets supervised sweeps ship series across process boundaries
// bit-identically.  min/max/last keep the exact double values (no
// arithmetic ever combines them); only sum/mean carry the ~1e-6 absolute
// quantization, invisible at gauge scale.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace eab::obs {

/// The sum grid: samples are snapped to multiples of 2^-20 (~9.5e-7) so
/// window sums are exact integers — associative under any merge order.
/// Samples beyond ±2^42 saturate the quantizer (values that large are not
/// gauges this layer is built for); the accumulator itself wraps mod 2^64,
/// which keeps even a pathological overflow deterministic and associative.
inline constexpr double kSumQuantum = 9.5367431640625e-07;  // 2^-20

/// One aggregated window [bucket*width, (bucket+1)*width).
struct SeriesPoint {
  std::uint64_t bucket = 0;  ///< window index at the series' current width
  double min = 0;
  double max = 0;
  std::int64_t sum_q = 0;    ///< window sum in kSumQuantum units (exact)
  double last = 0;           ///< newest sample's value in this window
  Seconds last_t = 0;        ///< newest sample's time (merge tiebreak)
  std::uint64_t count = 0;

  double sum() const { return static_cast<double>(sum_q) * kSumQuantum; }
  double mean() const { return count == 0 ? 0.0 : sum() / static_cast<double>(count); }
  bool operator==(const SeriesPoint&) const = default;
};

class TimeSeries {
 public:
  /// `base_width` is the finest bucket width in simulated seconds (> 0);
  /// `point_budget` caps the stored windows (>= 2).
  explicit TimeSeries(Seconds base_width = 1.0, std::size_t point_budget = 256);

  /// Folds one sample at simulated time `t` (>= 0, non-decreasing within a
  /// series) into its window, coarsening first if a new window would blow
  /// the budget.
  void record(Seconds t, double value);

  /// Exact pairwise merge: aligns both series to the coarser width, combines
  /// windows index-wise, then re-applies the budget.  Requires identical
  /// base_width and point_budget.  On equal last_t the other series' `last`
  /// wins.  Bit-exact, associative and commutative (up to that tiebreak)
  /// for any split of the stream — the sums are integers.
  void merge_from(const TimeSeries& other);

  Seconds base_width() const { return base_width_; }
  /// Current window width: base_width * 2^level.
  Seconds width() const { return base_width_ * static_cast<double>(std::uint64_t{1} << level_); }
  unsigned level() const { return level_; }
  std::size_t point_budget() const { return budget_; }
  std::uint64_t samples() const { return samples_; }
  bool empty() const { return points_.empty(); }
  const std::vector<SeriesPoint>& points() const { return points_; }

  bool same_as(const TimeSeries& other) const;

  /// crc32-tailed binary codec (util/bytes.hpp layout).  from_bytes throws
  /// std::runtime_error on truncation, trailing bytes or checksum mismatch.
  std::string to_bytes() const;
  static TimeSeries from_bytes(std::string_view bytes);

  /// Deterministic JSON object: {"width": w, "samples": n, "points": [...]}
  /// with every double at full %.17g fidelity so a byte-compare of the JSON
  /// is as strong as a byte-compare of the codec.
  void append_json(std::string& out) const;
  std::string to_json() const;

 private:
  void coarsen();          // level_+1, merge adjacent windows in place
  void fold(const SeriesPoint& p);  // merge one point at current width

  Seconds base_width_;
  std::size_t budget_;
  unsigned level_ = 0;     ///< width multiplier exponent
  std::uint64_t samples_ = 0;
  std::vector<SeriesPoint> points_;  ///< sorted by bucket, unique
};

}  // namespace eab::obs
