#include "obs/trace.hpp"

#include <stdexcept>

namespace eab::obs {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kRrcStateEnter: return "rrc.state_enter";
    case TraceKind::kRrcTimerSet: return "rrc.timer_set";
    case TraceKind::kRrcTimerCancel: return "rrc.timer_cancel";
    case TraceKind::kRrcTimerFire: return "rrc.timer_fire";
    case TraceKind::kRrcPromotionStart: return "rrc.promotion_start";
    case TraceKind::kRrcPromotionDone: return "rrc.promotion_done";
    case TraceKind::kRrcReleaseStart: return "rrc.release_start";
    case TraceKind::kRrcReleaseDone: return "rrc.release_done";
    case TraceKind::kRrcTransferBegin: return "rrc.transfer_begin";
    case TraceKind::kRrcTransferEnd: return "rrc.transfer_end";
    case TraceKind::kRrcSmallTxStart: return "rrc.small_tx_start";
    case TraceKind::kRrcSmallTxEnd: return "rrc.small_tx_end";
    case TraceKind::kHttpFetchQueued: return "http.queued";
    case TraceKind::kHttpCacheHit: return "http.cache_hit";
    case TraceKind::kHttpAttemptStart: return "http.attempt_start";
    case TraceKind::kHttpFirstByte: return "http.first_byte";
    case TraceKind::kHttpWatchdogFire: return "http.watchdog_fire";
    case TraceKind::kHttpRetryScheduled: return "http.retry_scheduled";
    case TraceKind::kHttpFetchSettled: return "http.settled";
    case TraceKind::kFaultDecision: return "fault.decision";
    case TraceKind::kLinkFadeStart: return "fault.fade_start";
    case TraceKind::kLinkFadeEnd: return "fault.fade_end";
    case TraceKind::kLinkFlowStart: return "link.flow_start";
    case TraceKind::kLinkFlowComplete: return "link.flow_complete";
    case TraceKind::kLinkFlowCancel: return "link.flow_cancel";
    case TraceKind::kLinkPause: return "link.pause";
    case TraceKind::kLinkResume: return "link.resume";
    case TraceKind::kLoadStart: return "load.start";
    case TraceKind::kStageRun: return "load.stage";
    case TraceKind::kIntermediateDisplay: return "load.intermediate_display";
    case TraceKind::kTransmissionComplete: return "load.transmission_complete";
    case TraceKind::kLoadDone: return "load.done";
    case TraceKind::kLoadAborted: return "load.aborted";
    case TraceKind::kPolicyAlphaWait: return "policy.alpha_wait";
    case TraceKind::kPolicyPrediction: return "policy.prediction";
    case TraceKind::kPolicyDecision: return "policy.decision";
    case TraceKind::kRilRequest: return "ril.request";
    case TraceKind::kRilSocketFailure: return "ril.socket_failure";
    case TraceKind::kRilForwarded: return "ril.forwarded";
    case TraceKind::kRadioCoverageLost: return "radio.coverage_lost";
    case TraceKind::kRadioCoverageBack: return "radio.coverage_back";
    case TraceKind::kRrcRlf: return "rrc.rlf";
    case TraceKind::kRrcReestablishStart: return "rrc.reestablish_start";
    case TraceKind::kRrcReestablishOk: return "rrc.reestablish_ok";
    case TraceKind::kRrcReestablishFail: return "rrc.reestablish_fail";
    case TraceKind::kRrcHandoverStart: return "rrc.handover_start";
    case TraceKind::kRrcHandoverDone: return "rrc.handover_done";
    case TraceKind::kMetroReselect: return "metro.reselect";
    case TraceKind::kMetroHandover: return "metro.handover";
    case TraceKind::kMetroHandoverDrop: return "metro.handover_drop";
  }
  return "?";
}

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kHtmlParse: return "html-parse";
    case Stage::kCssScan: return "css-scan";
    case Stage::kCssParse: return "css-parse";
    case Stage::kJsRun: return "js-run";
    case Stage::kImageDecode: return "image-decode";
    case Stage::kReflow: return "reflow";
    case Stage::kTextDisplay: return "text-display";
    case Stage::kFinalDisplay: return "final-display";
  }
  return "?";
}

std::uint32_t TraceRecorder::intern(std::string_view s) {
  if (const auto it = ids_.find(std::string(s)); it != ids_.end()) {
    return it->second;
  }
  strings_.emplace_back(s);
  const auto id = static_cast<std::uint32_t>(strings_.size());
  ids_.emplace(strings_.back(), id);
  return id;
}

const std::string& TraceRecorder::name(std::uint32_t id) const {
  if (id == 0 || id > strings_.size()) {
    throw std::out_of_range("TraceRecorder::name: unknown intern id");
  }
  return strings_[id - 1];
}

std::size_t TraceRecorder::count(TraceKind kind) const {
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::vector<TraceSpan> TraceRecorder::rrc_state_spans(Seconds t_end) const {
  std::vector<TraceSpan> spans;
  Seconds mark = 0;
  std::int64_t state = 0;  // RrcState::kIdle
  for (const TraceEvent& e : events_) {
    if (e.kind != TraceKind::kRrcStateEnter) continue;
    if (e.t > mark) spans.push_back(TraceSpan{mark, e.t, state});
    mark = e.t;
    state = e.b;
  }
  if (t_end > mark) spans.push_back(TraceSpan{mark, t_end, state});
  return spans;
}

std::vector<TraceSpan> TraceRecorder::stage_spans() const {
  std::vector<TraceSpan> spans;
  for (const TraceEvent& e : events_) {
    if (e.kind != TraceKind::kStageRun) continue;
    spans.push_back(TraceSpan{e.t - e.x, e.t, e.a});
  }
  return spans;
}

}  // namespace eab::obs
