#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/bytes.hpp"

namespace eab::obs {

void Histogram::observe(double value) {
  std::size_t bucket = kEdges.size();  // overflow
  for (std::size_t i = 0; i < kEdges.size(); ++i) {
    if (value <= kEdges[i]) {
      bucket = i;
      break;
    }
  }
  ++buckets[bucket];
  if (count == 0) {
    min = max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
}

void Histogram::merge(const Histogram& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                               Kind kind) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry& fresh = entries_[std::string(name)];
    fresh.kind = kind;
    return fresh;
  }
  if (it->second.kind != kind) {
    throw std::logic_error("MetricsRegistry: kind mismatch for metric '" +
                           std::string(name) + "'");
  }
  return it->second;
}

void MetricsRegistry::count(std::string_view name, double delta) {
  entry(name, Kind::kCounter).value += delta;
}

void MetricsRegistry::set_max(std::string_view name, double value) {
  Entry& e = entry(name, Kind::kGauge);
  e.value = std::max(e.value, value);
}

void MetricsRegistry::observe(std::string_view name, double value) {
  entry(name, Kind::kHistogram).hist.observe(value);
}

double MetricsRegistry::value(std::string_view name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? 0.0 : it->second.value;
}

const Histogram* MetricsRegistry::histogram(std::string_view name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != Kind::kHistogram) {
    return nullptr;
  }
  return &it->second.hist;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, theirs] : other.entries_) {
    Entry& mine = entry(name, theirs.kind);
    switch (theirs.kind) {
      case Kind::kCounter: mine.value += theirs.value; break;
      case Kind::kGauge: mine.value = std::max(mine.value, theirs.value); break;
      case Kind::kHistogram: mine.hist.merge(theirs.hist); break;
    }
  }
}

namespace {

/// Renders a double compactly and deterministically: integral values (the
/// overwhelmingly common case for counters) print without a fraction.
void append_number(std::string& out, double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.0e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.9g", v);
  }
  out += buf;
}

}  // namespace

std::string MetricsRegistry::to_bytes() const {
  std::string out;
  BinaryWriter w(out);
  w.u64(entries_.size());
  for (const auto& [name, e] : entries_) {
    w.str(name);
    w.u8(static_cast<std::uint8_t>(e.kind));
    // Serialize the whole Entry regardless of kind: equality (same_as) is
    // field-wise, so a round trip must restore value AND histogram exactly.
    w.f64(e.value);
    w.u64(e.hist.count);
    w.f64(e.hist.sum);
    w.f64(e.hist.min);
    w.f64(e.hist.max);
    for (const std::uint64_t bucket : e.hist.buckets) w.u64(bucket);
  }
  return out;
}

MetricsRegistry MetricsRegistry::from_bytes(std::string_view bytes) {
  MetricsRegistry registry;
  BinaryReader r(bytes);
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name = r.str();
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(Kind::kHistogram)) {
      throw std::runtime_error("MetricsRegistry::from_bytes: bad entry kind");
    }
    Entry e;
    e.kind = static_cast<Kind>(kind);
    e.value = r.f64();
    e.hist.count = r.u64();
    e.hist.sum = r.f64();
    e.hist.min = r.f64();
    e.hist.max = r.f64();
    for (std::uint64_t& bucket : e.hist.buckets) bucket = r.u64();
    registry.entries_.emplace(std::move(name), e);
  }
  r.expect_done();
  return registry;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\n";
  bool first = true;
  for (const auto& [name, e] : entries_) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"";
    out += name;
    out += "\": ";
    switch (e.kind) {
      case Kind::kCounter:
      case Kind::kGauge:
        append_number(out, e.value);
        break;
      case Kind::kHistogram: {
        out += "{\"count\": ";
        append_number(out, static_cast<double>(e.hist.count));
        out += ", \"sum\": ";
        append_number(out, e.hist.sum);
        out += ", \"min\": ";
        append_number(out, e.hist.min);
        out += ", \"max\": ";
        append_number(out, e.hist.max);
        out += ", \"mean\": ";
        append_number(out, e.hist.mean());
        out += ", \"buckets\": [";
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
          if (i) out += ", ";
          append_number(out, static_cast<double>(e.hist.buckets[i]));
        }
        out += "]}";
        break;
      }
    }
  }
  out += "\n}\n";
  return out;
}

}  // namespace eab::obs
