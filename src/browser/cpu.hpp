// Single-core CPU task queue.
//
// Browser computations execute serially on the phone's CPU.  Tasks are
// submitted with a cost in CPU-seconds and run FIFO; while any task runs the
// busy timeline carries the extra CPU power draw, which the energy
// accounting sums with the radio timeline.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/simulator.hpp"
#include "util/timeline.hpp"

namespace eab::browser {

/// Identifies a submitted task (for cancellation of queued work).
class TaskId {
 public:
  TaskId() = default;

 private:
  friend class CpuScheduler;
  explicit TaskId(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

/// FIFO CPU with an energy-accountable busy timeline.
class CpuScheduler {
 public:
  using OnDone = std::function<void()>;

  /// `busy_power` is the extra draw while a task runs (Table 5: 0.45 W).
  CpuScheduler(sim::Simulator& sim, Watts busy_power);

  /// Enqueues a task costing `cost` CPU-seconds; `done` fires at completion.
  /// Zero-cost tasks still round through the queue (keeps ordering honest).
  TaskId submit(Seconds cost, OnDone done);

  /// Removes a task that has not started yet (display coalescing: a pending
  /// intermediate redraw is obsolete once the final display is queued).
  /// Returns false if the task already started, finished or never existed.
  bool cancel(TaskId id);

  /// Drops every task that has not started yet (an aborted page load stops
  /// rendering immediately; queued work must not keep burning CPU energy).
  /// The currently-running task, if any, still completes.  Returns the
  /// number of tasks dropped.
  std::size_t drop_queued();

  bool busy() const { return running_; }
  std::size_t queue_depth() const { return queue_.size(); }

  /// Total CPU-seconds executed so far.
  Seconds busy_time() const { return busy_time_; }

  /// Extra-power timeline (0 when idle, busy_power when executing).
  const PowerTimeline& power() const { return power_; }

 private:
  struct Task {
    std::uint64_t id;
    Seconds cost;
    OnDone done;
  };

  void start_next();

  sim::Simulator& sim_;
  Watts busy_power_;
  std::uint64_t next_id_ = 1;
  bool running_ = false;
  std::deque<Task> queue_;
  Seconds busy_time_ = 0;
  PowerTimeline power_;
};

}  // namespace eab::browser
