#include "browser/cpu.hpp"

#include <stdexcept>

namespace eab::browser {

CpuScheduler::CpuScheduler(sim::Simulator& sim, Watts busy_power)
    : sim_(sim), busy_power_(busy_power), power_(0.0) {}

TaskId CpuScheduler::submit(Seconds cost, OnDone done) {
  if (cost < 0) throw std::invalid_argument("CpuScheduler::submit: negative cost");
  if (!done) throw std::invalid_argument("CpuScheduler::submit: empty callback");
  const std::uint64_t id = next_id_++;
  queue_.push_back(Task{id, cost, std::move(done)});
  if (!running_) start_next();
  return TaskId(id);
}

bool CpuScheduler::cancel(TaskId id) {
  if (id.id_ == 0) return false;
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id == id.id_) {
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t CpuScheduler::drop_queued() {
  const std::size_t dropped = queue_.size();
  queue_.clear();
  return dropped;
}

void CpuScheduler::start_next() {
  if (queue_.empty()) {
    if (running_) {
      running_ = false;
      power_.set_power(sim_.now(), 0.0);
    }
    return;
  }
  if (!running_) {
    running_ = true;
    power_.set_power(sim_.now(), busy_power_);
  }
  Task task = std::move(queue_.front());
  queue_.pop_front();
  busy_time_ += task.cost;
  sim_.schedule_in(task.cost, [this, done = std::move(task.done)]() mutable {
    done();
    start_next();
  });
}

}  // namespace eab::browser
