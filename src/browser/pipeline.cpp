#include "browser/pipeline.hpp"

#include <stdexcept>

namespace eab::browser {

PageLoad::PageLoad(sim::Simulator& sim, net::HttpClient& client,
                   CpuScheduler& cpu, PipelineConfig config, std::uint64_t seed)
    : sim_(sim),
      client_(client),
      cpu_(cpu),
      config_(config),
      rng_(seed),
      interpreter_(std::make_unique<web::js::Interpreter>(*this)) {
  // Mobile pages: stock browsers redraw these short loads sparingly, with
  // the intermediate display landing close to the end (Section 5.2).
  if (config_.mobile_page) {
    config_.redraw_min_interval = std::max(config_.redraw_min_interval, 3.0);
  }
}

PageLoad::~PageLoad() = default;

void PageLoad::start(const std::string& url, OnLoaded done) {
  if (phase_ != Phase::kIdle) {
    throw std::logic_error("PageLoad::start: already started");
  }
  if (!done) throw std::invalid_argument("PageLoad::start: empty callback");
  phase_ = Phase::kTransmission;
  main_url_ = url;
  on_loaded_ = std::move(done);
  metrics_.started = sim_.now();
  if (trace_) {
    trace_->record(sim_.now(), obs::TraceKind::kLoadStart, 0, 0, 0,
                   trace_->intern(url));
  }
  issue_fetch(url, net::ResourceKind::kHtml);
}

bool PageLoad::abort() {
  if (phase_ == Phase::kIdle || phase_ == Phase::kDone) return false;
  const bool in_transmission = phase_ == Phase::kTransmission;
  // Flip the phase first: every teardown below re-enters this object
  // (abort_all settles fetches synchronously), and those callbacks must see
  // the load as dead.
  phase_ = Phase::kDone;
  metrics_.aborted = true;
  metrics_.aborted_at = sim_.now();
  if (in_transmission) {
    // Partial transmission window: to the last byte actually received.
    metrics_.transmission_done = last_byte_at_ > 0 ? last_byte_at_ : sim_.now();
  }
  metrics_.final_display = sim_.now();
  if (metrics_.first_display == 0) metrics_.first_display = sim_.now();

  // Tear down in dependency order: queued CPU work (nothing new may run),
  // the pending intermediate reflow, then every unsettled fetch — which
  // cancels link flows and releases RRC transfer markers, leaving the radio
  // to its inactivity timers.
  cpu_.cancel(pending_reflow_);
  pending_reflow_ = {};
  redraw_queued_ = false;
  cpu_.drop_queued();
  // Fetches torn down here settle as kAborted; the dead() guard keeps their
  // settle callbacks from mutating frozen metrics, so account them as failed
  // resources in one place.
  metrics_.failed_resources += static_cast<int>(client_.abort_all());

  if (trace_) {
    trace_->record(sim_.now(), obs::TraceKind::kLoadAborted, 0, 0, sim_.now());
  }
  compute_outputs();
  on_loaded_(metrics_);
  return true;
}

void PageLoad::trace_stage(obs::Stage stage, Seconds cost) {
  if (trace_) {
    trace_->record(sim_.now(), obs::TraceKind::kStageRun,
                   static_cast<std::int64_t>(stage), 0, cost);
  }
}

// --- JsHost ------------------------------------------------------------------

void PageLoad::document_write(const std::string& html) {
  pending_document_writes_.push_back(html);
}

void PageLoad::request_resource(const std::string& url, net::ResourceKind kind) {
  // Requests surface when the script's CPU task completes; buffered until
  // then (run_script drains this).
  pending_requests_.emplace_back(url, kind);
}

double PageLoad::random() { return rng_.uniform(); }

// --- fetch plumbing -----------------------------------------------------------

void PageLoad::issue_fetch(const std::string& url, net::ResourceKind kind) {
  if (url.empty()) return;
  if (!requested_urls_.insert(url).second) return;  // already requested
  work_started();
  // The reorganized pipeline pulls discovery-bearing resources first so the
  // reference chain unrolls while leaf images stream in the background.
  if (kind == net::ResourceKind::kCss) ++css_requested_;
  if (kind == net::ResourceKind::kJs) script_order_.push_back(url);
  const bool priority =
      config_.mode == PipelineMode::kEnergyAware && config_.priority_fetch &&
      (kind == net::ResourceKind::kHtml || kind == net::ResourceKind::kCss ||
       kind == net::ResourceKind::kJs);
  client_.fetch(
      url,
      [this, kind](const net::FetchResult& result) { on_resource(result, kind); },
      priority);
}

void PageLoad::on_resource(const net::FetchResult& result,
                           net::ResourceKind declared_kind) {
  // A fetch settled by abort_all (or a cache hit surfacing after abort)
  // lands on a finalized load: the metrics are frozen, nothing may spawn.
  if (dead()) return;
  if (result.attempts > 1) metrics_.fetch_retries += result.attempts - 1;
  if (result.resource == nullptr) {
    // Nothing usable arrived: a 404, or a network failure that exhausted
    // its retries. Either way the load degrades instead of hanging — a
    // missing stylesheet must not block the first paint forever, a missing
    // script is skipped when its document-order turn comes, and a missing
    // image keeps its DOM node, which the layout estimator sizes as a
    // default placeholder box.
    ++metrics_.failed_resources;
    if (declared_kind == net::ResourceKind::kImage ||
        declared_kind == net::ResourceKind::kFlash) {
      ++metrics_.placeholder_images;
    }
    if (declared_kind == net::ResourceKind::kCss) ++css_settled_;
    if (declared_kind == net::ResourceKind::kJs) {
      settle_script(result.url, nullptr);
      return;  // settle_script owns the outstanding-work unit
    }
    work_finished();
    return;
  }
  if (result.status == net::FetchStatus::kTruncated) {
    ++metrics_.truncated_resources;
  }
  if (result.owned != nullptr) {
    // Partial bodies are owned by the fetch result, not the server; keep
    // them alive for the deferred parse/decode passes.
    retained_resources_.push_back(result.owned);
  }
  const net::Resource& resource = *result.resource;
  ++metrics_.objects_fetched;
  metrics_.bytes_fetched += resource.size;
  last_byte_at_ = sim_.now();

  // The server's own kind wins over what the referencing markup implied.
  const net::ResourceKind kind = resource.kind != net::ResourceKind::kOther
                                     ? resource.kind
                                     : declared_kind;
  const bool is_figure =
      kind == net::ResourceKind::kImage || kind == net::ResourceKind::kFlash;
  if (is_figure) {
    ++figure_count_;
    figure_bytes_ += resource.size;
  } else {
    page_bytes_without_figures_ += resource.size;
  }

  switch (kind) {
    case net::ResourceKind::kHtml:
      handle_html(resource, resource.url == main_url_);
      break;
    case net::ResourceKind::kCss:
      handle_css(resource);
      break;
    case net::ResourceKind::kJs:
      ++js_file_count_;
      settle_script(resource.url, &resource);
      break;
    case net::ResourceKind::kImage:
    case net::ResourceKind::kFlash:
    case net::ResourceKind::kOther:
      handle_binary(resource);
      break;
  }
}

// --- per-kind processing --------------------------------------------------------

void PageLoad::handle_html(const net::Resource& resource, bool is_main) {
  const Seconds parse_cost = config_.costs.html_parse(resource.size);
  cpu_.submit(parse_cost, [this, &resource, is_main, parse_cost] {
    if (dead()) return;
    trace_stage(obs::Stage::kHtmlParse, parse_cost);
    web::ParsedHtml harvest;
    web::parse_html_fragment(resource.body, doc_.dom.root(), harvest);
    after_discovery(harvest);

    if (config_.mode == PipelineMode::kOriginal) {
      ++processed_since_redraw_;
      maybe_intermediate_display();
    } else if (is_main && !config_.mobile_page && !intermediate_drawn_ &&
               config_.intermediate_text_display) {
      // Section 4.2: one simplified text display after ~1/3 of the document
      // has been parsed; no CSS rules, no images, never updated again.
      intermediate_drawn_ = true;
      const Seconds cost =
          config_.costs.display_overhead +
          config_.costs.text_display_discount *
              (config_.costs.layout_per_node + config_.costs.render_per_node) *
              static_cast<double>(doc_.dom.node_count());
      cpu_.submit(cost, [this, cost] {
        if (dead()) return;
        trace_stage(obs::Stage::kTextDisplay, cost);
        if (trace_) {
          trace_->record(sim_.now(), obs::TraceKind::kIntermediateDisplay);
        }
        if (metrics_.first_display == 0) metrics_.first_display = sim_.now();
        ++metrics_.intermediate_displays;
      });
    }
    work_finished();
  });
}

void PageLoad::handle_css(const net::Resource& resource) {
  if (config_.mode == PipelineMode::kOriginal || !config_.defer_css_parse) {
    // Stock browser: full rule extraction as soon as the sheet arrives.
    const Seconds parse_cost = config_.costs.css_parse(resource.size);
    cpu_.submit(parse_cost, [this, &resource, parse_cost] {
      if (dead()) return;
      trace_stage(obs::Stage::kCssParse, parse_cost);
      web::StyleSheet sheet = web::parse_css(resource.body);
      for (const auto& url : sheet.url_refs) {
        issue_fetch(url, net::kind_from_url(url));
      }
      sheets_.push_back(std::move(sheet));
      ++css_settled_;
      if (config_.mode == PipelineMode::kOriginal) {
        ++processed_since_redraw_;
        maybe_intermediate_display();
      }
      work_finished();
    });
    return;
  }
  // Energy-aware: cheap reference scan now, full parse postponed to phase 2.
  const Seconds scan_cost = config_.costs.css_scan(resource.size);
  cpu_.submit(scan_cost, [this, &resource, scan_cost] {
    if (dead()) return;
    trace_stage(obs::Stage::kCssScan, scan_cost);
    for (const auto& url : web::scan_css_urls(resource.body)) {
      issue_fetch(url, net::kind_from_url(url));
    }
    deferred_css_.push_back(&resource);
    work_finished();
  });
}

void PageLoad::settle_script(const std::string& url,
                             const net::Resource* resource) {
  arrived_scripts_[url] = resource;  // nullptr = failed, skip when its turn comes
  pump_scripts();
}

void PageLoad::pump_scripts() {
  // Execute arrived scripts strictly in document order; a missing earlier
  // script holds later ones back exactly as a blocking <script> tag would.
  while (next_script_ < script_order_.size()) {
    auto it = arrived_scripts_.find(script_order_[next_script_]);
    if (it == arrived_scripts_.end()) return;  // still in flight
    const net::Resource* script = it->second;
    ++next_script_;
    if (script == nullptr) {
      work_finished();  // 404: nothing to run
      continue;
    }
    run_script(script->body);
  }
}

void PageLoad::handle_binary(const net::Resource& resource) {
  if (config_.mode == PipelineMode::kOriginal) {
    const Seconds decode_cost = config_.costs.image_decode(resource.size);
    cpu_.submit(decode_cost, [this, &resource, decode_cost] {
      if (dead()) return;
      trace_stage(obs::Stage::kImageDecode, decode_cost);
      decoded_image_bytes_ += resource.size;
      ++processed_since_redraw_;
      maybe_intermediate_display();
      work_finished();
    });
    return;
  }
  // Energy-aware: keep the bytes in memory, decode in the layout phase.
  deferred_images_.push_back(&resource);
  work_finished();
}

void PageLoad::run_script(const std::string& source) {
  // Execute now to learn the script's cost and effects; the effects become
  // visible when the CPU task finishes, so simulated time still pays for the
  // execution before any discovered fetch goes out.
  pending_document_writes_.clear();
  pending_requests_.clear();
  const web::js::RunResult run = interpreter_->run(source);
  // Failed scripts charge for the ops they managed to execute, then the page
  // load carries on — a broken ad script must not wedge the browser.
  auto writes = std::move(pending_document_writes_);
  auto requests = std::move(pending_requests_);
  pending_document_writes_.clear();
  pending_requests_.clear();

  Seconds cost = config_.costs.js_run(run.ops);
  Bytes written_bytes = 0;
  for (const auto& fragment : writes) written_bytes += fragment.size();
  cost += config_.costs.html_parse(written_bytes);
  metrics_.js_time += cost;

  cpu_.submit(cost, [this, cost, writes = std::move(writes),
                     requests = std::move(requests)] {
    if (dead()) return;
    trace_stage(obs::Stage::kJsRun, cost);
    for (const auto& [url, kind] : requests) issue_fetch(url, kind);
    for (const auto& fragment : writes) {
      web::ParsedHtml harvest;
      web::parse_html_fragment(fragment, doc_.dom.root(), harvest);
      after_discovery(harvest);
    }
    if (config_.mode == PipelineMode::kOriginal) {
      ++processed_since_redraw_;
      maybe_intermediate_display();
    }
    work_finished();
  });
}

void PageLoad::after_discovery(const web::ParsedHtml& harvest) {
  for (const auto& ref : harvest.references) {
    issue_fetch(ref.url, ref.kind);
  }
  for (const auto& script : harvest.inline_scripts) {
    work_started();  // each inline script is one more discovery task
    run_script(script);
  }
  for (const auto& url : harvest.secondary_urls) {
    doc_.secondary_urls.push_back(url);
  }
  doc_.text_bytes += harvest.text_bytes;
}

// --- intermediate display (original pipeline) ---------------------------------

void PageLoad::maybe_intermediate_display() {
  if (phase_ != Phase::kTransmission) return;
  if (redraw_queued_) return;
  if (processed_since_redraw_ < 1) return;
  // Stylesheets are render-blocking in stock engines: no paint before every
  // requested sheet has been parsed (or definitively failed).
  if (css_settled_ < css_requested_) return;
  if (sim_.now() < last_redraw_at_ + config_.redraw_min_interval) return;
  submit_reflow();
}

void PageLoad::submit_reflow() {
  redraw_queued_ = true;
  processed_since_redraw_ = 0;
  last_redraw_at_ = sim_.now();
  // A reflow recalculates layout for the whole tree and redraws everything
  // (Section 4.2), plus re-matching style when any sheet is parsed.
  const auto nodes = static_cast<double>(doc_.dom.node_count());
  const Seconds per_node =
      config_.costs.layout_per_node + config_.costs.render_per_node +
      (sheets_.empty() ? 0.0 : config_.costs.style_format_per_node);
  const Seconds cost = config_.costs.display_overhead +
                       config_.costs.reflow_factor * per_node * nodes;
  pending_reflow_ = cpu_.submit(cost, [this, cost] {
    if (dead()) return;
    trace_stage(obs::Stage::kReflow, cost);
    if (trace_) trace_->record(sim_.now(), obs::TraceKind::kIntermediateDisplay);
    redraw_queued_ = false;
    pending_reflow_ = {};
    if (metrics_.first_display == 0) metrics_.first_display = sim_.now();
    ++metrics_.intermediate_displays;
  });
}

// --- phase machinery -----------------------------------------------------------

void PageLoad::work_started() { ++outstanding_; }

void PageLoad::work_finished() {
  if (outstanding_ <= 0) {
    throw std::logic_error("PageLoad: work_finished without work_started");
  }
  --outstanding_;
  if (outstanding_ == 0 && phase_ == Phase::kTransmission) {
    transmission_complete();
  }
}

void PageLoad::transmission_complete() {
  phase_ = Phase::kLayout;
  // The paper's "data transmission time" runs to the last received byte;
  // any processing still draining after it is computation, not transmission.
  metrics_.transmission_done = last_byte_at_ > 0 ? last_byte_at_ : sim_.now();
  if (trace_) {
    trace_->record(sim_.now(), obs::TraceKind::kTransmissionComplete, 0, 0,
                   metrics_.transmission_done);
  }
  if (on_tx_complete_) on_tx_complete_();
  begin_layout_phase();
}

void PageLoad::begin_layout_phase() {
  // Display coalescing: an intermediate redraw that has not started by the
  // time the final display is queued will never be seen — drop it.
  if (cpu_.cancel(pending_reflow_)) {
    redraw_queued_ = false;
    pending_reflow_ = {};
  }
  if (config_.mode == PipelineMode::kEnergyAware) {
    // Postponed layout computation: full CSS parse, then image decodes.
    for (const net::Resource* css : deferred_css_) {
      const Seconds parse_cost = config_.costs.css_parse(css->size);
      cpu_.submit(parse_cost, [this, css, parse_cost] {
        if (dead()) return;
        trace_stage(obs::Stage::kCssParse, parse_cost);
        sheets_.push_back(web::parse_css(css->body));
      });
    }
    for (const net::Resource* image : deferred_images_) {
      const Seconds decode_cost = config_.costs.image_decode(image->size);
      cpu_.submit(decode_cost, [this, image, decode_cost] {
        if (dead()) return;
        trace_stage(obs::Stage::kImageDecode, decode_cost);
        decoded_image_bytes_ += image->size;
      });
    }
  }
  // Final display. The energy-aware pipeline pays the full postponed
  // style+layout+render here; the stock pipeline has been laying out
  // incrementally all along, so its final draw is a render-only pass over
  // the already-computed layout.
  const Seconds final_cost =
      config_.mode == PipelineMode::kEnergyAware
          ? style_layout_render_cost()
          : config_.costs.render_per_node *
                static_cast<double>(doc_.dom.node_count());
  const Seconds display_cost = final_cost + config_.costs.display_overhead;
  cpu_.submit(display_cost, [this, display_cost] {
    if (dead()) return;
    trace_stage(obs::Stage::kFinalDisplay, display_cost);
    finish_load();
  });
}

Seconds PageLoad::style_layout_render_cost() const {
  const auto nodes = static_cast<double>(doc_.dom.node_count());
  return (config_.costs.style_format_per_node + config_.costs.layout_per_node +
          config_.costs.render_per_node) *
         nodes;
}

void PageLoad::finish_load() {
  phase_ = Phase::kDone;
  metrics_.final_display = sim_.now();
  if (trace_) {
    trace_->record(sim_.now(), obs::TraceKind::kLoadDone, 0, 0,
                   metrics_.final_display);
  }
  if (metrics_.first_display == 0) metrics_.first_display = metrics_.final_display;

  compute_outputs();
  on_loaded_(metrics_);
}

void PageLoad::compute_outputs() {
  geometry_ = estimate_geometry(doc_.dom.root(), config_.viewport);
  features_.transmission_time = metrics_.transmission_time();
  features_.page_size_kb = to_kilobytes(page_bytes_without_figures_);
  features_.object_count = metrics_.objects_fetched;
  features_.js_file_count = js_file_count_;
  features_.figure_count = figure_count_;
  features_.figure_size_kb = to_kilobytes(figure_bytes_);
  features_.js_running_time = metrics_.js_time;
  features_.secondary_url_count = static_cast<double>(doc_.secondary_urls.size());
  features_.page_height = geometry_.height_px;
  features_.page_width = geometry_.width_px;
}

}  // namespace eab::browser
