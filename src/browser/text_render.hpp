// Text-mode page rendering.
//
// The paper's Figs 12/13 are screenshots; this renderer is their text-mode
// substitute: it walks the laid-out DOM and produces the page as a column of
// wrapped text lines with [image WxH] placeholders, so display output can be
// inspected, diffed and asserted on in tests.
#pragma once

#include <string>

#include "browser/layout.hpp"
#include "web/dom.hpp"

namespace eab::browser {

/// Rendering flavours.
enum class RenderStyle {
  kSimplifiedText,  ///< the energy-aware intermediate display: text only
  kFull,            ///< final display: text, image boxes, structure markers
};

/// Renders the document subtree to text, wrapping at the viewport width.
/// `max_lines` truncates the output (0 = unlimited).
std::string render_text(const web::DomNode& root, const Viewport& viewport,
                        RenderStyle style, std::size_t max_lines = 0);

}  // namespace eab::browser
