#include "browser/text_render.hpp"

#include <sstream>

namespace eab::browser {
namespace {

struct Renderer {
  const Viewport& viewport;
  RenderStyle style;
  std::size_t max_lines;
  std::string out;
  std::string line;
  std::size_t lines = 0;
  int chars_per_line;

  bool full() const { return lines > 0 && max_lines != 0 && lines >= max_lines; }

  void flush_line() {
    if (line.empty()) return;
    out += line;
    out += '\n';
    line.clear();
    ++lines;
  }

  void add_word(const std::string& word) {
    if (full()) return;
    const std::size_t needed = line.empty() ? word.size() : line.size() + 1 + word.size();
    if (needed > static_cast<std::size_t>(chars_per_line)) flush_line();
    if (full()) return;
    if (!line.empty()) line += ' ';
    line += word;
  }

  void walk(const web::DomNode& node) {
    if (full()) return;
    if (node.is_text()) {
      std::istringstream words(node.content());
      std::string word;
      while (words >> word) add_word(word);
      return;
    }
    const std::string& tag = node.tag();
    if (tag == "script" || tag == "style" || tag == "head" || tag == "meta" ||
        tag == "link" || tag == "title") {
      return;  // non-rendered subtrees
    }
    if (tag == "img" || tag == "embed" || tag == "object") {
      if (style == RenderStyle::kFull) {
        const std::string width = node.attr("width");
        const std::string height = node.attr("height");
        add_word("[image " + (width.empty() ? "?" : width) + "x" +
                 (height.empty() ? "?" : height) + "]");
      }
      // The simplified text display shows nothing for undecoded images.
      return;
    }
    const bool block = tag == "div" || tag == "p" || tag == "ul" ||
                       tag == "li" || tag == "h1" || tag == "h2" ||
                       tag == "h3" || tag == "table" || tag == "section" ||
                       tag == "body";
    for (const auto& child : node.children()) walk(*child);
    if (block) flush_line();
  }
};

}  // namespace

std::string render_text(const web::DomNode& root, const Viewport& viewport,
                        RenderStyle style, std::size_t max_lines) {
  Renderer renderer{viewport, style, max_lines, {}, {}, 0,
                    std::max(1, viewport.width_px / viewport.avg_char_width_px)};
  renderer.walk(root);
  renderer.flush_line();
  return renderer.out;
}

}  // namespace eab::browser
