// CPU cost model of browser computations on a ~2009 smartphone.
//
// The paper's technique rests on the relative cost of the two computation
// classes (Section 2.2): data-transmission computation (HTML parse, CSS
// reference scan, JavaScript execution) versus layout computation (full CSS
// rule extraction, image decoding, style formatting, layout, render).  These
// per-unit costs are calibrated against the paper's measurements: full-page
// layout work is 40-70 % of total processing time (their ref [7]) and the
// espn.go.com/sports benchmark needs tens of seconds end to end on the
// Android Dev Phone 2.
#pragma once

#include "util/units.hpp"

namespace eab::browser {

/// Per-unit CPU costs (seconds). All are whole-phone CPU-seconds; the power
/// model charges cpu_busy_extra watts while any task runs.
struct ComputeCostModel {
  // -- data transmission computation ---------------------------------------
  Seconds html_parse_per_kb = 0.018;  ///< tokenize + tree build + harvest
  Seconds css_scan_per_kb = 0.004;    ///< url()/@import reference scan only
  Seconds js_per_kilo_op = 0.0045;    ///< interpreter cost per 1000 ops

  // -- layout computation ---------------------------------------------------
  Seconds css_parse_per_kb = 0.030;       ///< full rule extraction
  Seconds image_decode_per_kb = 0.005;    ///< JPEG/PNG decode
  Seconds style_format_per_node = 0.0007; ///< match rules against one node
  Seconds layout_per_node = 0.0009;       ///< box placement per DOM node
  Seconds render_per_node = 0.0006;       ///< rasterise one laid-out node
  Seconds display_overhead = 0.12;        ///< fixed per screen draw

  /// Reflow touches the whole tree (paper Section 4.2: a reflow recalculates
  /// the layout of parents and children and then everything is redrawn) —
  /// modelled as layout+render over every current node, times this factor.
  double reflow_factor = 2.4;

  /// Simplified text-only intermediate display (energy-aware pipeline):
  /// fraction of the full per-node render cost it pays.
  double text_display_discount = 0.25;

  // -- derived helpers -------------------------------------------------------
  Seconds html_parse(Bytes size) const {
    return html_parse_per_kb * to_kilobytes(size);
  }
  Seconds css_scan(Bytes size) const {
    return css_scan_per_kb * to_kilobytes(size);
  }
  Seconds css_parse(Bytes size) const {
    return css_parse_per_kb * to_kilobytes(size);
  }
  Seconds js_run(std::uint64_t ops) const {
    return js_per_kilo_op * static_cast<double>(ops) / 1000.0;
  }
  Seconds image_decode(Bytes size) const {
    return image_decode_per_kb * to_kilobytes(size);
  }
};

}  // namespace eab::browser
