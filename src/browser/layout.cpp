#include "browser/layout.hpp"

#include <algorithm>
#include <cstdlib>

namespace eab::browser {
namespace {

int parse_px(const std::string& value, int fallback) {
  if (value.empty()) return fallback;
  const int parsed = std::atoi(value.c_str());
  return parsed > 0 ? parsed : fallback;
}

struct LayoutWalker {
  const Viewport& viewport;
  PageGeometry geometry;

  void walk(const web::DomNode& node) {
    if (node.is_text()) {
      ++geometry.text_nodes;
      // Text flows at the viewport width.
      const auto chars = static_cast<int>(node.content().size());
      const int chars_per_line =
          std::max(1, viewport.width_px / viewport.avg_char_width_px);
      const int lines = (chars + chars_per_line - 1) / chars_per_line;
      geometry.height_px += lines * viewport.line_height_px;
      geometry.width_px = std::max(
          geometry.width_px,
          std::min(chars, chars_per_line) * viewport.avg_char_width_px);
      return;
    }
    ++geometry.element_nodes;
    const std::string& tag = node.tag();
    if (tag == "img" || tag == "embed" || tag == "object") {
      ++geometry.image_nodes;
      const int width = parse_px(node.attr("width"), viewport.default_image_width_px);
      const int height =
          parse_px(node.attr("height"), viewport.default_image_height_px);
      geometry.height_px += height;
      geometry.width_px = std::max(geometry.width_px,
                                   std::min(width, viewport.width_px * 4));
      return;
    }
    if (tag == "script" || tag == "style" || tag == "head" || tag == "meta" ||
        tag == "link" || tag == "title") {
      // Non-rendered subtrees contribute structure but no geometry; scripts'
      // text children must not be measured as page text.
      node.visit([this](const web::DomNode& hidden) {
        if (hidden.is_element()) ++geometry.element_nodes;
      });
      --geometry.element_nodes;  // the visit recounted `node` itself
      return;
    }
    for (const auto& child : node.children()) walk(*child);
    // Block-level spacing.
    if (tag == "div" || tag == "p" || tag == "h1" || tag == "h2" ||
        tag == "h3" || tag == "table" || tag == "ul" || tag == "section") {
      geometry.height_px += viewport.line_height_px / 2;
    }
  }
};

}  // namespace

PageGeometry estimate_geometry(const web::DomNode& root,
                               const Viewport& viewport) {
  LayoutWalker walker{viewport, {}};
  for (const auto& child : root.children()) walker.walk(*child);
  walker.geometry.width_px = std::max(walker.geometry.width_px, viewport.width_px);
  return walker.geometry;
}

}  // namespace eab::browser
