// The 10 webpage features of the paper's Table 1.
//
// Collected by the browser while a page opens; they are the GBRT input
// vector x = {x1..x10} for reading-time prediction (the 11th quantity,
// reading time itself, is the label and lives in the trace records).
#pragma once

#include <string>
#include <vector>

#include "util/units.hpp"

namespace eab::browser {

/// Feature vector of one page view (Table 1, in the paper's order).
struct PageFeatures {
  Seconds transmission_time = 0;   ///< data transmission time
  double page_size_kb = 0;         ///< page size without figures (KB)
  double object_count = 0;         ///< total downloaded objects
  double js_file_count = 0;        ///< downloaded JavaScript files
  double figure_count = 0;         ///< downloaded figures
  double figure_size_kb = 0;       ///< total size of downloaded figures (KB)
  Seconds js_running_time = 0;     ///< time processing all JavaScript
  double secondary_url_count = 0;  ///< number of secondary URLs
  double page_height = 0;          ///< laid-out page height (px)
  double page_width = 0;           ///< laid-out page width (px)

  /// Feature vector in Table 1 order.
  std::vector<double> to_row() const {
    return {transmission_time, page_size_kb,   object_count,
            js_file_count,     figure_count,   figure_size_kb,
            js_running_time,   secondary_url_count, page_height,
            page_width};
  }

  /// Column names matching to_row().
  static std::vector<std::string> names() {
    return {"TransmissionTime", "PageSizeKB",   "Objects",   "JsFiles",
            "Figures",          "FigureSizeKB", "JsTime",    "SecondURLs",
            "PageHeight",       "PageWidth"};
  }

  static constexpr std::size_t kCount = 10;
};

}  // namespace eab::browser
