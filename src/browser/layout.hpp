// Page geometry estimation.
//
// A compact flow-layout calculator: block elements stack vertically, text
// wraps at the viewport width, images occupy their declared (or default)
// sizes.  It provides the "Page Height"/"Page Width" features of Table 1 and
// the node counts that drive style/layout/render costs.
#pragma once

#include <cstddef>

#include "util/units.hpp"
#include "web/dom.hpp"

namespace eab::browser {

/// Viewport of the simulated handset browser.
struct Viewport {
  int width_px = 320;   ///< Android Dev Phone 2 portrait CSS pixels
  int avg_char_width_px = 7;
  int line_height_px = 16;
  int default_image_height_px = 120;
  int default_image_width_px = 160;
};

/// Computed page geometry.
struct PageGeometry {
  int width_px = 0;    ///< widest laid-out element
  int height_px = 0;   ///< total scroll height
  std::size_t element_nodes = 0;
  std::size_t text_nodes = 0;
  std::size_t image_nodes = 0;
};

/// Lays the DOM out against the viewport and measures it.
PageGeometry estimate_geometry(const web::DomNode& root, const Viewport& viewport);

}  // namespace eab::browser
