// The two page-load pipelines (the paper's primary contribution).
//
// kOriginal reproduces the stock browser of Fig 2: every arriving object is
// fully processed in place — CSS is parsed into rules, images are decoded,
// and the page is repeatedly reflowed/redrawn for intermediate display.
// Discovery of further resources therefore sits behind layout work in the
// CPU queue, spreading transmissions across the whole load (Fig 4's shape).
//
// kEnergyAware reproduces Section 4.1/4.2: phase one runs only computations
// that can generate transmissions (HTML grammar parse, CSS url() scan,
// JavaScript execution), fetching aggressively; one cheap text-only
// intermediate display is drawn after a third of the main document; when the
// last byte arrives the on_transmission_complete hook fires (the controller
// releases the radio there) and phase two performs all postponed layout
// computation — full CSS parse, image decode, style, layout, one final
// render.
//
// Both pipelines build their DOM through the same parsers, so tests can
// assert the paper's invariant: identical final DOM, identical bytes.
#pragma once

#include <functional>
#include <memory>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "browser/cost_model.hpp"
#include "browser/cpu.hpp"
#include "browser/features.hpp"
#include "browser/layout.hpp"
#include "net/http_client.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "web/css.hpp"
#include "web/html_parser.hpp"
#include "web/js.hpp"

namespace eab::browser {

/// Which computation ordering the load uses.
enum class PipelineMode { kOriginal, kEnergyAware };

/// Load-time policy knobs.
struct PipelineConfig {
  PipelineMode mode = PipelineMode::kOriginal;
  ComputeCostModel costs;
  Viewport viewport;
  /// Original pipeline: minimum spacing between intermediate reflow+redraw
  /// passes (Section 4.2: browsers update the display frequently; the update
  /// cadence is time-driven, throttled like real engines).
  Seconds redraw_min_interval = 2.0;
  /// Pages flagged mobile skip the energy-aware intermediate display
  /// (Section 4.2: mobile pages load in 1-2 s, an extra draw buys nothing).
  bool mobile_page = false;

  // --- ablation switches (energy-aware pipeline only) ----------------------
  /// Fetch discovery-bearing resources (HTML/CSS/JS) ahead of leaf images.
  bool priority_fetch = true;
  /// Scan CSS for url() references in phase 1 and defer the full parse to
  /// the layout phase; disabling parses stylesheets on arrival like the
  /// stock browser (only images/flash stay deferred).
  bool defer_css_parse = true;
  /// Draw the cheap text-only intermediate display on full-version pages.
  bool intermediate_text_display = true;
};

/// Timing and accounting results of one page load.
struct LoadMetrics {
  Seconds started = 0;
  Seconds transmission_done = 0;   ///< last byte of the last object
  Seconds first_display = 0;       ///< first (intermediate) screen draw
  Seconds final_display = 0;       ///< final complete draw = load finished
  Bytes bytes_fetched = 0;
  int objects_fetched = 0;
  int intermediate_displays = 0;   ///< draws before the final one
  Seconds js_time = 0;             ///< CPU seconds executing scripts

  // Degradation accounting (all zero on a healthy network).  A load that
  // loses resources still finishes: failed scripts are skipped in document
  // order, truncated markup flows through the fuzz-hardened parsers, and
  // missing images keep their DOM nodes — the layout estimator gives those
  // nodes default-sized placeholder boxes, exactly as a real engine draws a
  // broken-image frame.
  int failed_resources = 0;        ///< fetches settled with no body (404/timeout/abort)
  int truncated_resources = 0;     ///< partial bodies parsed
  int placeholder_images = 0;      ///< figure fetches that failed -> placeholder box
  int fetch_retries = 0;           ///< extra network attempts behind the objects

  // User abort (PageLoad::abort): the load finalized early.  final_display
  // is pinned to the abort instant, so total_time() and the energy window
  // cover exactly the partial load the user actually experienced.
  bool aborted = false;
  Seconds aborted_at = 0;          ///< when the user abandoned the load

  Seconds transmission_time() const { return transmission_done - started; }
  Seconds total_time() const { return final_display - started; }
  Seconds layout_tail_time() const { return final_display - transmission_done; }
  /// Fraction of settled fetches that ended degraded (failed or truncated).
  double degraded_fraction() const {
    const int settled = objects_fetched + failed_resources;
    return settled == 0
               ? 0.0
               : static_cast<double>(failed_resources + truncated_resources) /
                     static_cast<double>(settled);
  }
};

/// One page load in flight; create via start(), then run the simulator.
class PageLoad : public web::js::JsHost {
 public:
  using OnLoaded = std::function<void(const LoadMetrics&)>;
  using OnEvent = std::function<void()>;

  PageLoad(sim::Simulator& sim, net::HttpClient& client, CpuScheduler& cpu,
           PipelineConfig config, std::uint64_t seed);
  ~PageLoad() override;

  PageLoad(const PageLoad&) = delete;
  PageLoad& operator=(const PageLoad&) = delete;

  /// Begins loading `url`; `done` fires after the final display.
  void start(const std::string& url, OnLoaded done);

  /// User abort: gracefully cancels an in-flight load.  Every unsettled
  /// fetch is torn down through the HTTP client (which cancels link flows
  /// and releases RRC transfer markers), queued CPU work is dropped, and
  /// the load finalizes immediately with metrics().aborted set — the `done`
  /// callback passed to start() fires with the partial metrics.  Returns
  /// false (and does nothing) if the load never started or already
  /// finished.  The radio is left to its T1/T2 timers, exactly as when a
  /// real user navigates away.
  bool abort();

  /// True once abort() has finalized this load.
  bool aborted() const { return metrics_.aborted; }

  /// Fires the instant the last data transmission finishes (before the
  /// layout phase) — the energy-aware controller releases the radio here.
  void set_on_transmission_complete(OnEvent hook) { on_tx_complete_ = std::move(hook); }

  /// Attaches a trace recorder (nullptr detaches).  Recording is synchronous
  /// and never schedules events, so behavior is identical either way.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

  /// The (final) document; valid after the load completes.
  const web::DomTree& dom() const { return doc_.dom; }

  /// Table 1 features; valid after the load completes.
  const PageFeatures& features() const { return features_; }
  const LoadMetrics& metrics() const { return metrics_; }
  const PageGeometry& geometry() const { return geometry_; }

  // --- JsHost --------------------------------------------------------------
  void document_write(const std::string& html) override;
  void request_resource(const std::string& url, net::ResourceKind kind) override;
  double random() override;

 private:
  enum class Phase { kIdle, kTransmission, kLayout, kDone };

  void issue_fetch(const std::string& url, net::ResourceKind kind);
  void on_resource(const net::FetchResult& result, net::ResourceKind kind);
  void handle_html(const net::Resource& resource, bool is_main);
  void handle_css(const net::Resource& resource);
  void handle_binary(const net::Resource& resource);
  /// Stashes an arrived (or failed: nullptr) external script and executes
  /// every script whose turn has come. Scripts share the page's global
  /// context and MUST run in document order (Section 4.1), even though the
  /// two pipelines fetch them on different schedules.
  void settle_script(const std::string& url, const net::Resource* resource);
  void pump_scripts();
  void run_script(const std::string& source);
  void after_discovery(const web::ParsedHtml& harvest);
  void maybe_intermediate_display();
  void submit_reflow();
  void work_started();
  void work_finished();
  void transmission_complete();
  void begin_layout_phase();
  void finish_load();
  /// Fills features_/geometry_ from the (possibly partial) document.
  void compute_outputs();
  Seconds style_layout_render_cost() const;

  /// True once the load has finalized (completed or aborted).  Callbacks
  /// still in flight — a CPU task that was already running at abort time, a
  /// fetch settled by HttpClient::abort_all — check this and return without
  /// touching metrics or spawning work.
  bool dead() const { return phase_ == Phase::kDone; }

  /// Records one kStageRun span ending now (the CPU task that just ran).
  void trace_stage(obs::Stage stage, Seconds cost);

  sim::Simulator& sim_;
  net::HttpClient& client_;
  CpuScheduler& cpu_;
  PipelineConfig config_;
  obs::TraceRecorder* trace_ = nullptr;
  Rng rng_;

  Phase phase_ = Phase::kIdle;
  int outstanding_ = 0;  ///< fetches + discovery CPU tasks in flight
  std::string main_url_;
  OnLoaded on_loaded_;
  OnEvent on_tx_complete_;

  web::ParsedHtml doc_;  ///< the DOM plus harvest accumulators
  /// Backing storage for partial (truncated) bodies: the pipeline keeps
  /// `const Resource*` pointers in its deferred/script maps, so a resource
  /// synthesized by the HTTP client must live as long as the load does.
  std::vector<std::shared_ptr<const net::Resource>> retained_resources_;
  std::set<std::string> requested_urls_;
  std::vector<std::string> script_order_;  ///< external scripts, document order
  std::size_t next_script_ = 0;            ///< index into script_order_
  std::map<std::string, const net::Resource*> arrived_scripts_;
  std::unique_ptr<web::js::Interpreter> interpreter_;
  std::vector<std::string> pending_document_writes_;
  std::vector<std::pair<std::string, net::ResourceKind>> pending_requests_;

  // Layout-phase backlog (energy-aware mode defers these).
  std::vector<const net::Resource*> deferred_css_;
  std::vector<const net::Resource*> deferred_images_;
  std::vector<web::StyleSheet> sheets_;
  Bytes decoded_image_bytes_ = 0;
  int css_requested_ = 0;   ///< stylesheets fetched so far
  int css_settled_ = 0;     ///< stylesheets parsed (original mode) or 404ed

  Seconds last_byte_at_ = 0;
  Seconds last_redraw_at_ = 0;
  TaskId pending_reflow_;
  int processed_since_redraw_ = 0;
  bool redraw_queued_ = false;
  bool intermediate_drawn_ = false;

  LoadMetrics metrics_;
  PageFeatures features_;
  PageGeometry geometry_;

  // Table-1 accounting.
  Bytes page_bytes_without_figures_ = 0;
  Bytes figure_bytes_ = 0;
  int figure_count_ = 0;
  int js_file_count_ = 0;
};

}  // namespace eab::browser
