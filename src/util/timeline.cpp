#include "util/timeline.hpp"

#include <algorithm>
#include <stdexcept>

namespace eab {

PowerTimeline::PowerTimeline(Watts initial_power) {
  changes_.push_back({0.0, initial_power});
}

void PowerTimeline::set_power(Seconds at, Watts power) {
  if (at < changes_.back().at) {
    throw std::invalid_argument("PowerTimeline::set_power: time moved backwards");
  }
  if (at == changes_.back().at) {
    changes_.back().power = power;  // coalesce same-instant updates
    return;
  }
  if (power == changes_.back().power) return;  // no-op change
  changes_.push_back({at, power});
}

void PowerTimeline::add_power(Seconds at, Watts delta) {
  set_power(at, changes_.back().power + delta);
}

Watts PowerTimeline::current_power() const { return changes_.back().power; }

Seconds PowerTimeline::last_change() const { return changes_.back().at; }

Watts PowerTimeline::power_at(Seconds t) const {
  // Last change with at <= t. changes_ is sorted and starts at t=0.
  auto it = std::upper_bound(
      changes_.begin(), changes_.end(), t,
      [](Seconds value, const Change& c) { return value < c.at; });
  if (it == changes_.begin()) return changes_.front().power;
  return std::prev(it)->power;
}

Joules PowerTimeline::energy(Seconds from, Seconds to) const {
  if (from > to) throw std::invalid_argument("PowerTimeline::energy: from > to");
  Joules total = 0;
  Seconds cursor = from;
  // Walk the change points strictly inside (from, to).
  auto it = std::upper_bound(
      changes_.begin(), changes_.end(), from,
      [](Seconds value, const Change& c) { return value < c.at; });
  for (; it != changes_.end() && it->at < to; ++it) {
    total += power_at(cursor) * (it->at - cursor);
    cursor = it->at;
  }
  total += power_at(cursor) * (to - cursor);
  return total;
}

std::vector<PowerSample> PowerTimeline::sample(Seconds from, Seconds to,
                                               Seconds dt) const {
  if (dt <= 0) throw std::invalid_argument("PowerTimeline::sample: dt <= 0");
  std::vector<PowerSample> samples;
  for (Seconds t = from; t <= to + dt / 2; t += dt) {
    samples.push_back({t, power_at(t)});
  }
  return samples;
}

PowerTimeline PowerTimeline::sum(const PowerTimeline& a, const PowerTimeline& b) {
  PowerTimeline out(a.changes_.front().power + b.changes_.front().power);
  std::size_t ia = 1, ib = 1;
  while (ia < a.changes_.size() || ib < b.changes_.size()) {
    Seconds ta = ia < a.changes_.size() ? a.changes_[ia].at : 1e300;
    Seconds tb = ib < b.changes_.size() ? b.changes_[ib].at : 1e300;
    const Seconds t = std::min(ta, tb);
    if (ta <= t) ++ia;
    if (tb <= t) ++ib;
    out.set_power(t, a.power_at(t) + b.power_at(t));
  }
  return out;
}

}  // namespace eab
