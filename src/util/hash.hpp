// Stable byte hashing shared by the batch memo cache and the fault layer.
//
// FNV-1a is used everywhere a key must hash identically across runs,
// platforms and standard libraries: the batch engine's content-addressed
// memo cache and the fault injector's per-URL decision seeding both depend
// on the exact 64-bit value, so std::hash (unspecified) is not an option.
#pragma once

#include <cstdint>
#include <string_view>

namespace eab {

/// 64-bit FNV-1a over a byte string.
constexpr std::uint64_t fnv1a_64(std::string_view bytes) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over a byte string.  The
/// checkpoint journal frames every record with this so a torn or corrupted
/// tail is detected byte-for-byte on recovery; like fnv1a_64 the exact value
/// must be identical across runs and platforms.  Pass a previous return
/// value as `seed` to checksum a record in pieces.
constexpr std::uint32_t crc32(std::string_view bytes, std::uint32_t seed = 0) {
  std::uint32_t crc = ~seed;
  for (const char c : bytes) {
    crc ^= static_cast<unsigned char>(c);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return ~crc;
}

}  // namespace eab
