// Stable byte hashing shared by the batch memo cache and the fault layer.
//
// FNV-1a is used everywhere a key must hash identically across runs,
// platforms and standard libraries: the batch engine's content-addressed
// memo cache and the fault injector's per-URL decision seeding both depend
// on the exact 64-bit value, so std::hash (unspecified) is not an option.
#pragma once

#include <cstdint>
#include <string_view>

namespace eab {

/// 64-bit FNV-1a over a byte string.
constexpr std::uint64_t fnv1a_64(std::string_view bytes) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

}  // namespace eab
