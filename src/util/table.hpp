// Plain-text table rendering for the bench harnesses.
//
// Every bench binary prints the paper's reported values next to the values
// measured from our simulator; TextTable keeps those reports aligned and
// consistent without pulling in a formatting dependency.
#pragma once

#include <string>
#include <vector>

namespace eab {

/// A simple left-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with column padding, a header underline and trailing newline.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimals (locale-independent).
std::string format_fixed(double value, int decimals);

/// Formats a ratio as a signed percentage string, e.g. -0.27 -> "-27.0%".
std::string format_percent(double fraction, int decimals = 1);

}  // namespace eab
