// Portable binary packing for cross-process and on-disk byte streams.
//
// The checkpoint journal, the supervisor's worker pipe protocol and the
// cell-result serializer all move structured data between processes (or
// across a crash) and must reproduce it bit-exactly: doubles travel as
// their IEEE-754 bit patterns, integers in fixed little-endian byte order,
// strings length-prefixed.  BinaryReader throws on any underflow or
// malformed length instead of reading garbage, which is what makes a torn
// or corrupted record detectable instead of silently wrong.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace eab {

/// Appends fixed-layout fields to a byte string (little-endian, doubles as
/// bit patterns).  The layout matches BinaryReader exactly.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::string& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s) {
    u64(s.size());
    out_.append(s);
  }

 private:
  std::string& out_;
};

/// Consumes fields written by BinaryWriter.  Every accessor throws
/// std::runtime_error("truncated binary record") on underflow; str() also
/// rejects lengths that run past the end of the buffer.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(bytes_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool done() const { return pos_ == bytes_.size(); }

  /// Throws unless the whole buffer was consumed — a record with trailing
  /// bytes is as malformed as a short one.
  void expect_done() const {
    if (!done()) throw std::runtime_error("trailing bytes in binary record");
  }

 private:
  void need(std::uint64_t n) const {
    if (n > bytes_.size() - pos_) {
      throw std::runtime_error("truncated binary record");
    }
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace eab
