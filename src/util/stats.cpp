#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eab {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sum = 0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0 || p > 100) throw std::invalid_argument("percentile: p out of range");
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("pearson: size mismatch");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0 || syy <= 0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double empirical_cdf_at(const std::vector<double>& xs, double x) {
  if (xs.empty()) return 0.0;
  std::size_t n = 0;
  for (double v : xs) {
    if (v <= x) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(xs.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins == 0 || hi <= lo) throw std::invalid_argument("Histogram: bad range");
}

void Histogram::add(double value) {
  auto bin = static_cast<long>((value - lo_) / width_);
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_low(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::cumulative_fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  std::size_t cum = 0;
  for (std::size_t i = 0; i <= bin && i < counts_.size(); ++i) cum += counts_[i];
  return static_cast<double>(cum) / static_cast<double>(total_);
}

}  // namespace eab
