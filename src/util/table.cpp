#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace eab {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out;
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
    return out;
  };

  std::string out = render_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string format_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace eab
