#include "util/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace eab {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index) {
  // SplitMix64 output function evaluated at state base + (index+1)·gamma —
  // equivalent to seeding SplitMix64 with `base_seed` and taking draw
  // `index + 1`, but O(1) in the index.
  std::uint64_t z = base_seed + (index + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // xoshiro must not start from the all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_index: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::normal() {
  // Box-Muller; draw u1 away from zero to keep log() finite.
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument("Rng::exponential: mean must be > 0");
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -mean * std::log(u);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::chance(double p) { return uniform() < p; }

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0) return 0;
  if (mean > 64.0) {
    const double v = normal(mean, std::sqrt(mean));
    return v <= 0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }
  const double threshold = std::exp(-mean);
  std::uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > threshold);
  return k - 1;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("Rng::weighted_index: negative weight");
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("Rng::weighted_index: no positive weight");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace eab
