#include "util/fileio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <vector>

namespace eab {
namespace {

/// Directory part of `path` ("." when it has none), for the post-rename
/// directory fsync that makes the rename itself durable.
std::string directory_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

bool full_write(int fd, std::string_view contents) {
  std::size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool write_file_atomic(const std::string& path, std::string_view contents) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool wrote = full_write(fd, contents) && ::fsync(fd) == 0;
  ::close(fd);
  if (!wrote) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  // Make the rename durable: fsync the containing directory.  A failure
  // here (e.g. a filesystem that refuses O_RDONLY directory fds) leaves the
  // file correctly in place, just without the directory-entry guarantee.
  const int dir_fd = ::open(directory_of(path).c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return true;
}

bool read_file(const std::string& path, std::string& out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  std::string data;
  std::vector<char> buffer(64 * 1024);
  for (;;) {
    const ssize_t n = ::read(fd, buffer.data(), buffer.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    data.append(buffer.data(), static_cast<std::size_t>(n));
  }
  ::close(fd);
  out = std::move(data);
  return true;
}

}  // namespace eab
