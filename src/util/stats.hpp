// Small statistics toolkit: summary statistics, percentiles, empirical CDFs
// and Pearson correlation (used to reproduce the paper's Table 4).
#pragma once

#include <cstddef>
#include <vector>

namespace eab {

/// Arithmetic mean; 0 for an empty input.
double mean(const std::vector<double>& xs);

/// Unbiased sample variance (n-1 denominator); 0 for fewer than two samples.
double variance(const std::vector<double>& xs);

/// Sample standard deviation.
double stddev(const std::vector<double>& xs);

/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty input.
double percentile(std::vector<double> xs, double p);

/// Median (50th percentile). Requires non-empty input.
double median(std::vector<double> xs);

/// Pearson product-moment correlation of two equal-length series.
/// Returns 0 when either series is constant. Requires xs.size() == ys.size().
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Fraction of samples with value <= x (empirical CDF evaluated at x).
double empirical_cdf_at(const std::vector<double>& xs, double x);

/// A fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bin. Used by trace diagnostics and the bench reporters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  std::size_t total() const { return total_; }
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;
  /// Fraction of all samples falling at or below the upper edge of `bin`.
  double cumulative_fraction(std::size_t bin) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace eab
