// Deterministic random number generation.
//
// All stochastic models in the library draw from an eab::Rng seeded
// explicitly, so every experiment is reproducible bit-for-bit.  The core
// generator is xoshiro256**, seeded through SplitMix64 as its authors
// recommend; distribution sampling is implemented here directly (rather than
// via <random> distributions) because libstdc++'s distribution algorithms are
// not specified and would make traces non-portable across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace eab {

/// Derives the seed of job `index` in a sweep seeded with `base_seed`: the
/// SplitMix64 finaliser applied to `base_seed + (index + 1) * gamma`.  Pure
/// arithmetic on the inputs, so a parallel batch and a serial loop that both
/// use derive_seed(base, i) for the i-th job consume identical seed streams
/// regardless of execution order.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index);

/// xoshiro256** PRNG with explicit, stable seeding and portable sampling.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  /// Re-initialises the state from a single 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with the given mean (not rate). Requires mean > 0.
  double exponential(double mean);

  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  std::uint64_t poisson(double mean);

  /// Picks an index from a discrete distribution given non-negative weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derives an independent child generator; useful to give each simulated
  /// entity its own stream without coupling their consumption patterns.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace eab
