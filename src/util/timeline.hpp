// Piecewise-constant power timelines.
//
// Every energy result in the paper is an integral of instantaneous power over
// time (their Agilent rig samples the supply current at 0.25 s).  PowerTimeline
// records power level changes as they happen in the simulation and supports
// exact integration plus fixed-rate sampling for Fig 1 / Fig 9 style traces.
// Several timelines (radio power, CPU power) can be summed into a total.
#pragma once

#include <vector>

#include "util/units.hpp"

namespace eab {

/// One sample of a fixed-rate power trace.
struct PowerSample {
  Seconds time = 0;
  Watts power = 0;
};

/// Records a piecewise-constant power level over simulated time.
class PowerTimeline {
 public:
  /// Starts the timeline at t=0 with the given base power.
  explicit PowerTimeline(Watts initial_power = 0.0);

  /// Sets the power level from `at` onward. `at` must be non-decreasing
  /// across calls (simulation time only moves forward).
  void set_power(Seconds at, Watts power);

  /// Adds `delta` to the current level from `at` onward (e.g. CPU busy bursts
  /// layered on top of a baseline).
  void add_power(Seconds at, Watts delta);

  /// Current (latest) power level.
  Watts current_power() const;

  /// Time of the last recorded change.
  Seconds last_change() const;

  /// Exact integral of power over [from, to]; the final level is assumed to
  /// hold beyond the last change. Requires from <= to.
  Joules energy(Seconds from, Seconds to) const;

  /// Total energy from t=0 up to `until`.
  Joules total_energy(Seconds until) const { return energy(0.0, until); }

  /// Samples the timeline every `dt` over [from, to] (inclusive endpoints).
  std::vector<PowerSample> sample(Seconds from, Seconds to, Seconds dt) const;

  /// Returns a new timeline that is the pointwise sum of the two inputs.
  static PowerTimeline sum(const PowerTimeline& a, const PowerTimeline& b);

  /// Number of recorded change points (diagnostics / tests).
  std::size_t change_count() const { return changes_.size(); }

  struct Change {
    Seconds at;
    Watts power;  // level in effect from `at` onward
  };

  /// The exact recorded change points, in time order (each `power` holds
  /// from its `at` until the next change).  Debuggers and exporters walk
  /// these directly instead of re-sampling the step function.
  const std::vector<Change>& change_points() const { return changes_; }

 private:

  /// Power in effect at time t.
  Watts power_at(Seconds t) const;

  std::vector<Change> changes_;
};

}  // namespace eab
