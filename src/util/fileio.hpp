// Crash-safe whole-file writes.
//
// Every artifact this project emits — BENCH_*.json, metrics snapshots,
// chaos reproducers, Chrome traces — used to be written with a bare
// fopen/fwrite, so a crash (or an injected SIGKILL from the supervision
// soak) mid-write could leave a torn half-file that a later tool would
// happily parse.  write_file_atomic replaces those sites: the contents go
// to a same-directory temporary, are fsync'd, and only then renamed over
// the destination, so any observer ever sees either the old file or the
// complete new one, never a prefix.
#pragma once

#include <string>
#include <string_view>

namespace eab {

/// Atomically replaces `path` with `contents`: write <path>.tmp.<pid>,
/// fsync, rename over `path`, fsync the parent directory.  Returns false on
/// any syscall failure (the temporary is unlinked; the destination is left
/// either untouched or fully replaced).  Never throws.
bool write_file_atomic(const std::string& path, std::string_view contents);

/// Reads a whole file into `out`.  Returns false (out untouched) when the
/// file cannot be opened or read.
bool read_file(const std::string& path, std::string& out);

}  // namespace eab
