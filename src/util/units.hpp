// Units used throughout the library.
//
// Simulated time, energy and power are continuous quantities; we follow the
// paper's own units (seconds, joules, watts, kilobytes) and keep them as
// documented aliases rather than heavyweight wrapper types so that arithmetic
// in models stays readable.  Byte counts are exact and therefore integral.
#pragma once

#include <cstdint>

namespace eab {

/// Simulated wall-clock time in seconds.
using Seconds = double;
/// Energy in joules.
using Joules = double;
/// Power in watts (J/s).
using Watts = double;
/// Data rate in bytes per second.
using BytesPerSecond = double;
/// Exact byte counts (resource sizes, transfer amounts).
using Bytes = std::uint64_t;

/// Convenience conversion: kilobytes (as used by the paper, 1 KB = 1024 B).
constexpr Bytes kilobytes(double kb) { return static_cast<Bytes>(kb * 1024.0); }

/// Convenience conversion back to fractional kilobytes for reporting.
constexpr double to_kilobytes(Bytes b) { return static_cast<double>(b) / 1024.0; }

/// Milliseconds literal-style helper (cost models are naturally in ms).
constexpr Seconds milliseconds(double ms) { return ms / 1000.0; }

}  // namespace eab
