// CSS processing.
//
// Two deliberately distinct code paths, because the paper's technique depends
// on the difference between them (Section 4.1):
//   - scan_css_urls: a cheap linear scan that extracts only url(...) and
//     @import references — the phase-1 "data transmission computation".
//   - parse_css: a real tokenizer + rule parser producing selectors and
//     declarations — the expensive layout-phase work the energy-aware
//     pipeline postpones until after the radio is released.
// Selector matching is a simplified cascade (tag / .class / #id / descendant)
// used by the style-formatting cost model.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "web/dom.hpp"

namespace eab::web {

/// One "prop: value" declaration.
struct CssDeclaration {
  std::string property;
  std::string value;
};

/// One simple selector step (e.g. "div", ".hero", "#nav", "img.thumb").
struct CssSimpleSelector {
  std::string tag;    ///< empty = any
  std::string id;     ///< empty = none
  std::vector<std::string> classes;
};

/// A descendant-combinator selector: steps matched outermost-first.
struct CssSelector {
  std::vector<CssSimpleSelector> steps;
};

/// selector-list { declarations }
struct CssRule {
  std::vector<CssSelector> selectors;
  std::vector<CssDeclaration> declarations;
};

/// A parsed stylesheet.
struct StyleSheet {
  std::vector<CssRule> rules;
  std::vector<std::string> imports;     ///< @import targets
  std::vector<std::string> url_refs;    ///< url(...) references
  /// Total selector-step count across all rules (style-matching cost driver).
  std::size_t selector_steps() const;
  /// Total declaration count across all rules.
  std::size_t declaration_count() const;
};

/// Cheap reference scan: url(...) bodies and @import targets, in order.
/// Never throws; tolerates arbitrarily malformed input.
std::vector<std::string> scan_css_urls(std::string_view css);

/// Full parse. Never throws; skips malformed rules the way browsers do.
StyleSheet parse_css(std::string_view css);

/// True if `selector` matches `node` (walking ancestors for descendant
/// steps).
bool selector_matches(const CssSelector& selector, const DomNode& node);

/// Number of declarations that apply to `node` across the whole sheet.
/// This is the per-node style formatting workload.
std::size_t matching_declarations(const StyleSheet& sheet, const DomNode& node);

/// Parses a selector string and returns every matching element under `root`
/// in document order (querySelectorAll over the supported selector subset).
std::vector<const DomNode*> select_all(const DomNode& root,
                                       std::string_view selector);

/// First match of select_all, or nullptr.
const DomNode* select_first(const DomNode& root, std::string_view selector);

}  // namespace eab::web
