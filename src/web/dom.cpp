#include "web/dom.hpp"

#include <algorithm>

namespace eab::web {

std::unique_ptr<DomNode> DomNode::element(std::string tag) {
  std::transform(tag.begin(), tag.end(), tag.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  auto node = std::unique_ptr<DomNode>(new DomNode(Type::kElement));
  node->tag_ = std::move(tag);
  return node;
}

std::unique_ptr<DomNode> DomNode::text(std::string content) {
  auto node = std::unique_ptr<DomNode>(new DomNode(Type::kText));
  node->content_ = std::move(content);
  return node;
}

const std::string& DomNode::attr(const std::string& name) const {
  static const std::string kEmpty;
  for (const auto& [key, value] : attrs_) {
    if (key == name) return value;
  }
  return kEmpty;
}

bool DomNode::has_attr(const std::string& name) const {
  for (const auto& [key, value] : attrs_) {
    if (key == name) return true;
  }
  return false;
}

void DomNode::set_attr(std::string name, std::string value) {
  for (auto& [key, existing] : attrs_) {
    if (key == name) {
      existing = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(std::move(name), std::move(value));
}

DomNode& DomNode::append_child(std::unique_ptr<DomNode> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return *children_.back();
}

std::size_t DomNode::subtree_size() const {
  std::size_t n = 1;
  for (const auto& child : children_) n += child->subtree_size();
  return n;
}

std::size_t DomNode::subtree_depth() const {
  std::size_t deepest = 0;
  for (const auto& child : children_) {
    deepest = std::max(deepest, child->subtree_depth());
  }
  return deepest + 1;
}

void DomNode::visit(const std::function<void(const DomNode&)>& fn) const {
  fn(*this);
  for (const auto& child : children_) child->visit(fn);
}

std::string DomNode::text_content() const {
  std::string out;
  visit([&out](const DomNode& node) {
    if (node.is_text()) out += node.content();
  });
  return out;
}

DomTree::DomTree() : root_(DomNode::element("#document")) {}

std::vector<const DomNode*> DomTree::find_all(const std::string& tag) const {
  std::vector<const DomNode*> found;
  root_->visit([&](const DomNode& node) {
    if (node.is_element() && node.tag() == tag) found.push_back(&node);
  });
  return found;
}

const DomNode* DomTree::find_first(const std::string& tag) const {
  auto all = find_all(tag);
  return all.empty() ? nullptr : all.front();
}

std::string DomTree::signature() const {
  std::string sig;
  root_->visit([&sig](const DomNode& node) {
    if (node.is_element()) {
      sig += '<';
      sig += node.tag();
      // Attributes sorted so insertion order does not affect equality.
      auto attrs = node.attrs();
      std::sort(attrs.begin(), attrs.end());
      for (const auto& [key, value] : attrs) {
        sig += ' ';
        sig += key;
        sig += '=';
        sig += value;
      }
      sig += '>';
    } else {
      sig += "#t";
      sig += std::to_string(node.content().size());
    }
  });
  return sig;
}

}  // namespace eab::web
