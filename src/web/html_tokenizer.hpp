// HTML tokenizer.
//
// A pragmatic HTML5-flavoured tokenizer: tags with quoted/unquoted
// attributes, comments, doctype, and raw-text handling for <script> and
// <style> contents (their bodies are emitted as a single text token and are
// never tag-scanned, matching real tokenizer treatment of CDATA-ish
// elements).  Malformed input never throws — unclosed constructs are
// recovered the way browsers recover, because the corpus generator and the
// failure-injection tests both feed imperfect markup.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace eab::web {

/// One lexical token of an HTML document.
struct HtmlToken {
  enum class Type { kStartTag, kEndTag, kText, kComment, kDoctype };

  Type type = Type::kText;
  std::string name;  ///< tag name, lower-cased (start/end tags only)
  std::vector<std::pair<std::string, std::string>> attrs;
  std::string text;  ///< text/comment/doctype payload
  bool self_closing = false;
};

/// Tokenizes an entire document.
std::vector<HtmlToken> tokenize_html(std::string_view html);

}  // namespace eab::web
