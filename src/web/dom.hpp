// Document Object Model.
//
// The browser pipelines build a real DOM tree from parsed HTML (and insert
// document.write output from the script interpreter).  Layout cost models
// walk this tree, and the "both pipelines produce the same final DOM"
// invariant from the paper's Fig 5 is checked structurally in tests.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace eab::web {

/// One DOM node: an element with a tag and attributes, or a text node.
class DomNode {
 public:
  enum class Type { kElement, kText };

  /// Creates an element node.
  static std::unique_ptr<DomNode> element(std::string tag);
  /// Creates a text node.
  static std::unique_ptr<DomNode> text(std::string content);

  Type type() const { return type_; }
  bool is_element() const { return type_ == Type::kElement; }
  bool is_text() const { return type_ == Type::kText; }

  /// Element tag name (lower-cased); empty for text nodes.
  const std::string& tag() const { return tag_; }
  /// Text content; empty for element nodes.
  const std::string& content() const { return content_; }

  /// Attribute access. Returns empty string when absent.
  const std::string& attr(const std::string& name) const;
  bool has_attr(const std::string& name) const;
  void set_attr(std::string name, std::string value);
  const std::vector<std::pair<std::string, std::string>>& attrs() const {
    return attrs_;
  }

  /// Appends a child; returns a reference to the adopted node.
  DomNode& append_child(std::unique_ptr<DomNode> child);

  DomNode* parent() const { return parent_; }
  const std::vector<std::unique_ptr<DomNode>>& children() const {
    return children_;
  }

  /// Nodes in this subtree (including this one).
  std::size_t subtree_size() const;
  /// Depth of the deepest descendant, counting this node as 1.
  std::size_t subtree_depth() const;

  /// Pre-order traversal over the subtree.
  void visit(const std::function<void(const DomNode&)>& fn) const;

  /// Concatenated text of all descendant text nodes.
  std::string text_content() const;

 private:
  explicit DomNode(Type type) : type_(type) {}

  Type type_;
  std::string tag_;
  std::string content_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<std::unique_ptr<DomNode>> children_;
  DomNode* parent_ = nullptr;
};

/// A parsed document: a synthetic root element holding the top-level nodes.
class DomTree {
 public:
  DomTree();

  DomNode& root() { return *root_; }
  const DomNode& root() const { return *root_; }

  /// Total number of nodes including the root.
  std::size_t node_count() const { return root_->subtree_size(); }

  /// All elements with the given tag, in document order.
  std::vector<const DomNode*> find_all(const std::string& tag) const;

  /// First element with the given tag, or nullptr.
  const DomNode* find_first(const std::string& tag) const;

  /// A structural fingerprint (tags, attribute names/values, text lengths in
  /// pre-order); two trees with equal signatures are structurally identical.
  std::string signature() const;

 private:
  std::unique_ptr<DomNode> root_;
};

}  // namespace eab::web
