#include <array>
#include <cctype>
#include <cstdlib>

#include "web/js.hpp"

namespace eab::web::js {
namespace {

bool is_keyword(const std::string& word) {
  static constexpr std::array<std::string_view, 14> kKeywords = {
      "var",    "function", "if",    "else", "while",     "for",   "return",
      "true",   "false",    "null",  "undefined", "break", "continue",
      "typeof"};
  for (auto keyword : kKeywords) {
    if (word == keyword) return true;
  }
  return false;
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto error = [&](const std::string& what) {
    throw JsError(what + " at offset " + std::to_string(i));
  };

  while (i < n) {
    const char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) ++i;
      if (i + 1 >= n) error("unterminated block comment");
      i += 2;
      continue;
    }
    // Numbers (decimal, optional fraction).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      Token token;
      token.type = TokenType::kNumber;
      token.offset = i;
      std::size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
      if (i < n && source[i] == '.') {
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
      }
      token.text = std::string(source.substr(start, i - start));
      token.number = std::strtod(token.text.c_str(), nullptr);
      tokens.push_back(std::move(token));
      continue;
    }
    // Strings.
    if (c == '"' || c == '\'') {
      Token token;
      token.type = TokenType::kString;
      token.offset = i;
      const char quote = c;
      ++i;
      std::string value;
      while (i < n && source[i] != quote) {
        if (source[i] == '\\' && i + 1 < n) {
          ++i;
          switch (source[i]) {
            case 'n': value.push_back('\n'); break;
            case 't': value.push_back('\t'); break;
            case '\\': value.push_back('\\'); break;
            case '"': value.push_back('"'); break;
            case '\'': value.push_back('\''); break;
            default: value.push_back(source[i]); break;
          }
          ++i;
        } else {
          value.push_back(source[i++]);
        }
      }
      if (i >= n) error("unterminated string literal");
      ++i;  // closing quote
      token.text = std::move(value);
      tokens.push_back(std::move(token));
      continue;
    }
    // Identifiers and keywords.
    if (is_ident_start(c)) {
      Token token;
      token.offset = i;
      std::size_t start = i;
      while (i < n && is_ident_char(source[i])) ++i;
      token.text = std::string(source.substr(start, i - start));
      token.type = is_keyword(token.text) ? TokenType::kKeyword
                                          : TokenType::kIdentifier;
      tokens.push_back(std::move(token));
      continue;
    }
    // Punctuation / operators; longest match first.
    {
      static constexpr std::array<std::string_view, 12> kTwoChar = {
          "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "++", "--"};
      Token token;
      token.type = TokenType::kPunct;
      token.offset = i;
      bool matched = false;
      for (auto op : kTwoChar) {
        if (source.substr(i).starts_with(op)) {
          token.text = std::string(op);
          i += op.size();
          matched = true;
          break;
        }
      }
      if (!matched) {
        static constexpr std::string_view kSingle = "+-*/%=<>!(){}[],;.:";
        if (kSingle.find(c) == std::string_view::npos) {
          error(std::string("unexpected character '") + c + "'");
        }
        token.text = std::string(1, c);
        ++i;
      }
      tokens.push_back(std::move(token));
    }
  }

  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace eab::web::js
