#include "web/js.hpp"

namespace eab::web::js {
namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Program parse_program() {
    Program program;
    while (!at_end()) {
      program.statements.push_back(statement());
    }
    return program;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  const Token& advance() { return tokens_[pos_++]; }
  bool at_end() const { return peek().type == TokenType::kEnd; }

  [[noreturn]] void error(const std::string& what) const {
    throw JsError("parse error: " + what + " at offset " +
                  std::to_string(peek().offset));
  }

  bool check_punct(std::string_view text) const {
    return peek().type == TokenType::kPunct && peek().text == text;
  }
  bool check_keyword(std::string_view text) const {
    return peek().type == TokenType::kKeyword && peek().text == text;
  }
  bool match_punct(std::string_view text) {
    if (!check_punct(text)) return false;
    advance();
    return true;
  }
  bool match_keyword(std::string_view text) {
    if (!check_keyword(text)) return false;
    advance();
    return true;
  }
  void expect_punct(std::string_view text) {
    if (!match_punct(text)) error("expected '" + std::string(text) + "'");
  }
  std::string expect_identifier() {
    if (peek().type != TokenType::kIdentifier) error("expected identifier");
    return advance().text;
  }

  // --- statements ---

  StmtPtr statement() {
    if (check_keyword("var")) return var_decl(/*consume_semicolon=*/true);
    if (match_keyword("function")) return function_decl();
    if (match_keyword("if")) return if_stmt();
    if (match_keyword("while")) return while_stmt();
    if (match_keyword("for")) return for_stmt();
    if (match_keyword("return")) return return_stmt();
    if (match_keyword("break")) {
      expect_punct(";");
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = Stmt::Kind::kBreak;
      return stmt;
    }
    if (match_keyword("continue")) {
      expect_punct(";");
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = Stmt::Kind::kContinue;
      return stmt;
    }
    if (check_punct("{")) return block();
    return expr_stmt();
  }

  StmtPtr var_decl(bool consume_semicolon) {
    advance();  // 'var'
    // A declaration list becomes a block of single declarations.
    std::vector<StmtPtr> decls;
    do {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = Stmt::Kind::kVarDecl;
      stmt->text = expect_identifier();
      if (match_punct("=")) stmt->exprs.push_back(expression());
      decls.push_back(std::move(stmt));
    } while (match_punct(","));
    if (consume_semicolon) expect_punct(";");
    if (decls.size() == 1) return std::move(decls.front());
    auto blockStmt = std::make_unique<Stmt>();
    blockStmt->kind = Stmt::Kind::kBlock;
    blockStmt->stmts = std::move(decls);
    return blockStmt;
  }

  StmtPtr function_decl() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kFunction;
    stmt->text = expect_identifier();
    expect_punct("(");
    if (!check_punct(")")) {
      do {
        stmt->params.push_back(expect_identifier());
      } while (match_punct(","));
    }
    expect_punct(")");
    stmt->stmts.push_back(block());
    return stmt;
  }

  StmtPtr if_stmt() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kIf;
    expect_punct("(");
    stmt->exprs.push_back(expression());
    expect_punct(")");
    stmt->stmts.push_back(statement());
    if (match_keyword("else")) stmt->stmts.push_back(statement());
    return stmt;
  }

  StmtPtr while_stmt() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kWhile;
    expect_punct("(");
    stmt->exprs.push_back(expression());
    expect_punct(")");
    stmt->stmts.push_back(statement());
    return stmt;
  }

  StmtPtr for_stmt() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kFor;
    expect_punct("(");
    // init: var decl, expression, or empty — stmts[0]
    if (check_keyword("var")) {
      stmt->stmts.push_back(var_decl(/*consume_semicolon=*/true));
    } else if (match_punct(";")) {
      stmt->stmts.push_back(empty_block());
    } else {
      auto init = std::make_unique<Stmt>();
      init->kind = Stmt::Kind::kExpr;
      init->exprs.push_back(expression());
      expect_punct(";");
      stmt->stmts.push_back(std::move(init));
    }
    // condition — exprs[0] (defaults to true)
    if (check_punct(";")) {
      auto truth = std::make_unique<Expr>();
      truth->kind = Expr::Kind::kBool;
      truth->boolean = true;
      stmt->exprs.push_back(std::move(truth));
    } else {
      stmt->exprs.push_back(expression());
    }
    expect_punct(";");
    // step — exprs[1] (optional)
    if (!check_punct(")")) stmt->exprs.push_back(expression());
    expect_punct(")");
    // body — stmts[1]
    stmt->stmts.push_back(statement());
    return stmt;
  }

  StmtPtr return_stmt() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kReturn;
    if (!check_punct(";")) stmt->exprs.push_back(expression());
    expect_punct(";");
    return stmt;
  }

  StmtPtr block() {
    expect_punct("{");
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kBlock;
    while (!check_punct("}")) {
      if (at_end()) error("unterminated block");
      stmt->stmts.push_back(statement());
    }
    expect_punct("}");
    return stmt;
  }

  StmtPtr empty_block() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kBlock;
    return stmt;
  }

  StmtPtr expr_stmt() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kExpr;
    stmt->exprs.push_back(expression());
    expect_punct(";");
    return stmt;
  }

  // --- expressions (precedence climbing) ---

  ExprPtr expression() { return assignment(); }

  ExprPtr assignment() {
    ExprPtr lhs = logical_or();
    for (std::string_view op : {"=", "+=", "-=", "*=", "/="}) {
      if (check_punct(op)) {
        if (lhs->kind != Expr::Kind::kIdentifier &&
            lhs->kind != Expr::Kind::kIndex &&
            lhs->kind != Expr::Kind::kMember) {
          error("invalid assignment target");
        }
        advance();
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::kAssign;
        node->text = std::string(op);
        node->operands.push_back(std::move(lhs));
        node->operands.push_back(assignment());
        return node;
      }
    }
    return lhs;
  }

  ExprPtr binary_chain(ExprPtr (Parser::*next)(),
                       std::initializer_list<std::string_view> ops) {
    ExprPtr lhs = (this->*next)();
    for (;;) {
      bool matched = false;
      for (auto op : ops) {
        if (check_punct(op)) {
          advance();
          auto node = std::make_unique<Expr>();
          node->kind = Expr::Kind::kBinary;
          node->text = std::string(op);
          node->operands.push_back(std::move(lhs));
          node->operands.push_back((this->*next)());
          lhs = std::move(node);
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  ExprPtr logical_or() { return binary_chain(&Parser::logical_and, {"||"}); }
  ExprPtr logical_and() { return binary_chain(&Parser::equality, {"&&"}); }
  ExprPtr equality() { return binary_chain(&Parser::relational, {"==", "!="}); }
  ExprPtr relational() {
    return binary_chain(&Parser::additive, {"<=", ">=", "<", ">"});
  }
  ExprPtr additive() { return binary_chain(&Parser::multiplicative, {"+", "-"}); }
  ExprPtr multiplicative() {
    return binary_chain(&Parser::unary, {"*", "/", "%"});
  }

  ExprPtr unary() {
    if (match_keyword("typeof")) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kUnary;
      node->text = "typeof";
      node->operands.push_back(unary());
      return node;
    }
    for (std::string_view op : {"!", "-"}) {
      if (check_punct(op)) {
        advance();
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::kUnary;
        node->text = std::string(op);
        node->operands.push_back(unary());
        return node;
      }
    }
    // Prefix ++/-- desugar to (x = x + 1).
    for (std::string_view op : {"++", "--"}) {
      if (check_punct(op)) {
        advance();
        ExprPtr target = postfix();
        return make_increment(std::move(target), op == "++" ? "+=" : "-=");
      }
    }
    return postfix();
  }

  ExprPtr make_increment(ExprPtr target, std::string_view op) {
    auto one = std::make_unique<Expr>();
    one->kind = Expr::Kind::kNumber;
    one->number = 1;
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kAssign;
    node->text = std::string(op);
    node->operands.push_back(std::move(target));
    node->operands.push_back(std::move(one));
    return node;
  }

  ExprPtr postfix() {
    ExprPtr node = primary();
    for (;;) {
      if (match_punct(".")) {
        auto member = std::make_unique<Expr>();
        member->kind = Expr::Kind::kMember;
        member->text = expect_identifier();
        member->operands.push_back(std::move(node));
        node = std::move(member);
        continue;
      }
      if (check_punct("(")) {
        advance();
        auto call = std::make_unique<Expr>();
        call->kind = Expr::Kind::kCall;
        call->operands.push_back(std::move(node));
        if (!check_punct(")")) {
          do {
            call->operands.push_back(expression());
          } while (match_punct(","));
        }
        expect_punct(")");
        node = std::move(call);
        continue;
      }
      if (match_punct("[")) {
        auto index = std::make_unique<Expr>();
        index->kind = Expr::Kind::kIndex;
        index->operands.push_back(std::move(node));
        index->operands.push_back(expression());
        expect_punct("]");
        node = std::move(index);
        continue;
      }
      // Postfix ++/-- (statement use only; value semantics simplified).
      if (check_punct("++") || check_punct("--")) {
        const std::string op = advance().text;
        node = make_increment(std::move(node), op == "++" ? "+=" : "-=");
        continue;
      }
      return node;
    }
  }

  ExprPtr primary() {
    const Token& token = peek();
    switch (token.type) {
      case TokenType::kNumber: {
        advance();
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::kNumber;
        node->number = token.number;
        return node;
      }
      case TokenType::kString: {
        advance();
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::kString;
        node->text = token.text;
        return node;
      }
      case TokenType::kIdentifier: {
        advance();
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::kIdentifier;
        node->text = token.text;
        return node;
      }
      case TokenType::kKeyword: {
        if (token.text == "true" || token.text == "false") {
          advance();
          auto node = std::make_unique<Expr>();
          node->kind = Expr::Kind::kBool;
          node->boolean = token.text == "true";
          return node;
        }
        if (token.text == "null" || token.text == "undefined") {
          advance();
          auto node = std::make_unique<Expr>();
          node->kind = Expr::Kind::kNull;
          node->text = token.text;  // evaluator separates undefined from null
          return node;
        }
        error("unexpected keyword '" + token.text + "'");
      }
      case TokenType::kPunct: {
        if (match_punct("(")) {
          ExprPtr inner = expression();
          expect_punct(")");
          return inner;
        }
        if (match_punct("[")) {
          auto node = std::make_unique<Expr>();
          node->kind = Expr::Kind::kArray;
          if (!check_punct("]")) {
            do {
              node->operands.push_back(expression());
            } while (match_punct(","));
          }
          expect_punct("]");
          return node;
        }
        if (match_punct("{")) {
          // Object literal: keys are identifiers, strings or keywords-as-
          // names; keys travel newline-joined in `text`, values in order.
          auto node = std::make_unique<Expr>();
          node->kind = Expr::Kind::kObject;
          if (!check_punct("}")) {
            do {
              std::string key;
              if (peek().type == TokenType::kIdentifier ||
                  peek().type == TokenType::kKeyword ||
                  peek().type == TokenType::kString) {
                key = advance().text;
              } else {
                error("expected property name");
              }
              expect_punct(":");
              if (!node->text.empty()) node->text.push_back('\n');
              node->text += key;
              node->operands.push_back(expression());
            } while (match_punct(","));
          }
          expect_punct("}");
          return node;
        }
        error("unexpected token '" + token.text + "'");
      }
      case TokenType::kEnd:
        error("unexpected end of script");
    }
    error("unreachable");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse(std::string_view source) {
  Parser parser(tokenize(source));
  return parser.parse_program();
}

}  // namespace eab::web::js
