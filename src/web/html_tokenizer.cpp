#include "web/html_tokenizer.hpp"

#include <cctype>

namespace eab::web {
namespace {

char to_lower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' ||
         c == ':';
}

/// Cursor over the raw document with small parsing helpers.
class Cursor {
 public:
  explicit Cursor(std::string_view html) : html_(html) {}

  bool done() const { return pos_ >= html_.size(); }
  char peek() const { return html_[pos_]; }
  char take() { return html_[pos_++]; }
  std::size_t pos() const { return pos_; }

  bool starts_with(std::string_view prefix) const {
    if (pos_ + prefix.size() > html_.size()) return false;
    for (std::size_t i = 0; i < prefix.size(); ++i) {
      if (to_lower(html_[pos_ + i]) != to_lower(prefix[i])) return false;
    }
    return true;
  }

  void skip(std::size_t n) { pos_ = std::min(pos_ + n, html_.size()); }

  void skip_whitespace() {
    while (!done() && std::isspace(static_cast<unsigned char>(peek()))) take();
  }

  std::string take_name() {
    std::string name;
    while (!done() && is_name_char(peek())) name.push_back(to_lower(take()));
    return name;
  }

  /// Everything up to (not including) the first case-insensitive occurrence
  /// of `needle`; consumes the needle too. Consumes to end if absent.
  std::string take_until(std::string_view needle) {
    std::string out;
    while (!done()) {
      if (starts_with(needle)) {
        skip(needle.size());
        return out;
      }
      out.push_back(take());
    }
    return out;
  }

 private:
  std::string_view html_;
  std::size_t pos_ = 0;
};

/// Decodes the handful of character references that matter in practice
/// (named: amp/lt/gt/quot/apos/nbsp; numeric: &#NN; and &#xHH;). Unknown
/// references pass through literally, like browsers in quirks handling.
std::string decode_entities(std::string_view text) {
  if (text.find('&') == std::string_view::npos) return std::string(text);
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out.push_back(text[i++]);
      continue;
    }
    const std::size_t semi = text.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 10) {
      out.push_back(text[i++]);
      continue;
    }
    const std::string_view name = text.substr(i + 1, semi - i - 1);
    if (name == "amp") {
      out.push_back('&');
    } else if (name == "lt") {
      out.push_back('<');
    } else if (name == "gt") {
      out.push_back('>');
    } else if (name == "quot") {
      out.push_back('"');
    } else if (name == "apos") {
      out.push_back('\'');
    } else if (name == "nbsp") {
      out.push_back(' ');
    } else if (!name.empty() && name[0] == '#') {
      long code = 0;
      bool valid = name.size() > 1;
      if (name.size() > 2 && (name[1] == 'x' || name[1] == 'X')) {
        for (std::size_t k = 2; k < name.size(); ++k) {
          const char c = name[k];
          if (!std::isxdigit(static_cast<unsigned char>(c))) {
            valid = false;
            break;
          }
          code = code * 16 + (std::isdigit(static_cast<unsigned char>(c))
                                  ? c - '0'
                                  : std::tolower(c) - 'a' + 10);
        }
      } else {
        for (std::size_t k = 1; k < name.size(); ++k) {
          if (!std::isdigit(static_cast<unsigned char>(name[k]))) {
            valid = false;
            break;
          }
          code = code * 10 + (name[k] - '0');
        }
      }
      if (!valid || code <= 0 || code > 126) {
        out.push_back(text[i++]);  // outside ASCII: keep the raw reference
        continue;
      }
      out.push_back(static_cast<char>(code));
    } else {
      out.push_back(text[i++]);  // unknown entity: literal ampersand
      continue;
    }
    i = semi + 1;
  }
  return out;
}


/// Parses the attribute list of a start tag; leaves the cursor after '>'.
void parse_attributes(Cursor& cursor, HtmlToken& token) {
  while (!cursor.done()) {
    cursor.skip_whitespace();
    if (cursor.done()) return;
    if (cursor.peek() == '>') {
      cursor.take();
      return;
    }
    if (cursor.peek() == '/') {
      cursor.take();
      cursor.skip_whitespace();
      if (!cursor.done() && cursor.peek() == '>') {
        cursor.take();
        token.self_closing = true;
        return;
      }
      continue;  // stray slash: ignore, like browsers do
    }
    std::string name = cursor.take_name();
    if (name.empty()) {
      cursor.take();  // unparseable character inside a tag: drop it
      continue;
    }
    std::string value;
    cursor.skip_whitespace();
    if (!cursor.done() && cursor.peek() == '=') {
      cursor.take();
      cursor.skip_whitespace();
      if (!cursor.done() && (cursor.peek() == '"' || cursor.peek() == '\'')) {
        const char quote = cursor.take();
        while (!cursor.done() && cursor.peek() != quote) value.push_back(cursor.take());
        if (!cursor.done()) cursor.take();  // closing quote
      } else {
        while (!cursor.done() && !std::isspace(static_cast<unsigned char>(cursor.peek())) &&
               cursor.peek() != '>') {
          value.push_back(cursor.take());
        }
      }
    }
    token.attrs.emplace_back(std::move(name), decode_entities(value));
  }
}

}  // namespace

std::vector<HtmlToken> tokenize_html(std::string_view html) {
  std::vector<HtmlToken> tokens;
  Cursor cursor(html);
  std::string pending_text;

  auto flush_text = [&] {
    if (pending_text.empty()) return;
    HtmlToken token;
    token.type = HtmlToken::Type::kText;
    token.text = decode_entities(pending_text);
    pending_text.clear();
    tokens.push_back(std::move(token));
  };

  while (!cursor.done()) {
    if (cursor.peek() != '<') {
      pending_text.push_back(cursor.take());
      continue;
    }
    // '<' — decide what construct this opens.
    if (cursor.starts_with("<!--")) {
      flush_text();
      cursor.skip(4);
      HtmlToken token;
      token.type = HtmlToken::Type::kComment;
      token.text = cursor.take_until("-->");
      tokens.push_back(std::move(token));
      continue;
    }
    if (cursor.starts_with("<!doctype")) {
      flush_text();
      cursor.skip(2);  // "<!"
      HtmlToken token;
      token.type = HtmlToken::Type::kDoctype;
      token.text = cursor.take_until(">");
      tokens.push_back(std::move(token));
      continue;
    }
    if (cursor.starts_with("</")) {
      flush_text();
      cursor.skip(2);
      HtmlToken token;
      token.type = HtmlToken::Type::kEndTag;
      token.name = cursor.take_name();
      cursor.take_until(">");  // discard anything else inside the end tag
      tokens.push_back(std::move(token));
      continue;
    }
    // Possible start tag: '<' must be followed by a letter, otherwise it is
    // literal text (e.g. "a < b").
    if (cursor.pos() + 1 < html.size() &&
        std::isalpha(static_cast<unsigned char>(html[cursor.pos() + 1]))) {
      flush_text();
      cursor.take();  // '<'
      HtmlToken token;
      token.type = HtmlToken::Type::kStartTag;
      token.name = cursor.take_name();
      parse_attributes(cursor, token);
      const std::string name = token.name;
      const bool self_closing = token.self_closing;
      tokens.push_back(std::move(token));
      // script/style bodies are raw text up to the matching end tag.
      if (!self_closing && (name == "script" || name == "style")) {
        const std::string close = "</" + name + ">";
        std::string body = cursor.take_until(close);
        if (!body.empty()) {
          HtmlToken text_token;
          text_token.type = HtmlToken::Type::kText;
          text_token.text = std::move(body);
          tokens.push_back(std::move(text_token));
        }
        HtmlToken end_token;
        end_token.type = HtmlToken::Type::kEndTag;
        end_token.name = name;
        tokens.push_back(std::move(end_token));
      }
      continue;
    }
    pending_text.push_back(cursor.take());  // literal '<'
  }
  flush_text();
  return tokens;
}

}  // namespace eab::web
