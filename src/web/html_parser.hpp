// HTML tree construction and reference extraction.
//
// Builds a DOM tree from the token stream with browser-style error recovery
// (void elements, implied end tags, stray end tags ignored), then extracts
// exactly what the two pipelines need from it:
//   - subresource references (images, scripts, stylesheets, flash, iframes)
//     in document order — the "data transmission computation" discovers these;
//   - inline script bodies in document order — they must run sequentially in
//     the page's global context (paper Section 4.1);
//   - anchor hrefs ("secondary URLs", feature #9 of Table 1).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "net/resource.hpp"
#include "web/dom.hpp"

namespace eab::web {

/// A subresource reference discovered in markup.
struct ResourceRef {
  std::string url;
  net::ResourceKind kind = net::ResourceKind::kOther;
};

/// Everything extracted from one parsed HTML document.
struct ParsedHtml {
  DomTree dom;
  std::vector<ResourceRef> references;     ///< fetchable subresources
  std::vector<std::string> inline_scripts; ///< script bodies, document order
  std::vector<std::string> secondary_urls; ///< anchor hrefs
  std::size_t text_bytes = 0;              ///< visible text payload
};

/// Parses a full document.
ParsedHtml parse_html(std::string_view html);

/// Appends nodes parsed from an HTML fragment under `parent` and merges any
/// discovered references/scripts into `out` (document.write path).
void parse_html_fragment(std::string_view fragment, DomNode& parent,
                         ParsedHtml& out);

}  // namespace eab::web
