#include "web/html_parser.hpp"

#include <array>
#include <algorithm>

#include "web/html_tokenizer.hpp"

namespace eab::web {
namespace {

bool is_void_element(const std::string& tag) {
  static constexpr std::array<std::string_view, 14> kVoid = {
      "area", "base", "br",    "col",   "embed",  "hr",    "img",
      "input", "link", "meta", "param", "source", "track", "wbr"};
  return std::find(kVoid.begin(), kVoid.end(), tag) != kVoid.end();
}

bool is_whitespace_only(const std::string& text) {
  return std::all_of(text.begin(), text.end(), [](unsigned char c) {
    return std::isspace(c);
  });
}

/// Extracts references/scripts from one element as it is inserted.
/// References with empty URLs (src="" and friends) are dropped here — they
/// can never be fetched and would otherwise leak to every consumer.
void harvest(const DomNode& node, ParsedHtml& out) {
  auto add_ref = [&out](const std::string& url, net::ResourceKind kind) {
    if (!url.empty()) out.references.push_back({url, kind});
  };
  const std::string& tag = node.tag();
  if (tag == "img") {
    if (node.has_attr("src")) {
      add_ref(node.attr("src"), net::ResourceKind::kImage);
    }
  } else if (tag == "script") {
    if (node.has_attr("src")) {
      add_ref(node.attr("src"), net::ResourceKind::kJs);
    }
  } else if (tag == "link") {
    if (node.attr("rel") == "stylesheet" && node.has_attr("href")) {
      add_ref(node.attr("href"), net::ResourceKind::kCss);
    }
  } else if (tag == "embed") {
    if (node.has_attr("src")) {
      add_ref(node.attr("src"), net::ResourceKind::kFlash);
    }
  } else if (tag == "object") {
    if (node.has_attr("data")) {
      add_ref(node.attr("data"), net::ResourceKind::kFlash);
    }
  } else if (tag == "iframe") {
    if (node.has_attr("src")) {
      add_ref(node.attr("src"), net::ResourceKind::kHtml);
    }
  } else if (tag == "a") {
    if (!node.attr("href").empty()) {
      out.secondary_urls.push_back(node.attr("href"));
    }
  }
}

/// Shared tree-construction pass used for documents and fragments.
void build_tree(const std::vector<HtmlToken>& tokens, DomNode& root,
                ParsedHtml& out) {
  std::vector<DomNode*> stack{&root};

  for (const auto& token : tokens) {
    DomNode& parent = *stack.back();
    switch (token.type) {
      case HtmlToken::Type::kDoctype:
        break;  // no DOM node
      case HtmlToken::Type::kComment:
        break;  // comments carry no layout or fetch information here
      case HtmlToken::Type::kText: {
        // Inside <script>, the body is an inline script, not page text.
        if (parent.tag() == "script" && !parent.has_attr("src")) {
          out.inline_scripts.push_back(token.text);
          parent.append_child(DomNode::text(token.text));
          break;
        }
        if (is_whitespace_only(token.text)) break;
        out.text_bytes += token.text.size();
        parent.append_child(DomNode::text(token.text));
        break;
      }
      case HtmlToken::Type::kStartTag: {
        auto element = DomNode::element(token.name);
        for (const auto& [name, value] : token.attrs) {
          element->set_attr(name, value);
        }
        DomNode& inserted = parent.append_child(std::move(element));
        harvest(inserted, out);
        if (!token.self_closing && !is_void_element(inserted.tag())) {
          stack.push_back(&inserted);
        }
        break;
      }
      case HtmlToken::Type::kEndTag: {
        // Pop to the matching open element; ignore stray end tags.
        for (std::size_t i = stack.size(); i-- > 1;) {
          if (stack[i]->tag() == token.name) {
            stack.resize(i);
            break;
          }
        }
        break;
      }
    }
  }
}

}  // namespace

ParsedHtml parse_html(std::string_view html) {
  ParsedHtml out;
  build_tree(tokenize_html(html), out.dom.root(), out);
  return out;
}

void parse_html_fragment(std::string_view fragment, DomNode& parent,
                         ParsedHtml& out) {
  build_tree(tokenize_html(fragment), parent, out);
}

}  // namespace eab::web
