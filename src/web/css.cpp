#include "web/css.hpp"

#include <algorithm>
#include <cctype>

namespace eab::web {
namespace {

bool iequal_at(std::string_view text, std::size_t pos, std::string_view word) {
  if (pos + word.size() > text.size()) return false;
  for (std::size_t i = 0; i < word.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(text[pos + i])) !=
        std::tolower(static_cast<unsigned char>(word[i]))) {
      return false;
    }
  }
  return true;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

/// Reads a possibly-quoted URL token starting at `pos`; advances pos past it.
std::string read_url_token(std::string_view css, std::size_t& pos,
                           char terminator) {
  while (pos < css.size() && std::isspace(static_cast<unsigned char>(css[pos]))) {
    ++pos;
  }
  std::string url;
  if (pos < css.size() && (css[pos] == '"' || css[pos] == '\'')) {
    const char quote = css[pos++];
    while (pos < css.size() && css[pos] != quote) url.push_back(css[pos++]);
    if (pos < css.size()) ++pos;
  } else {
    while (pos < css.size() && css[pos] != terminator &&
           !std::isspace(static_cast<unsigned char>(css[pos]))) {
      url.push_back(css[pos++]);
    }
  }
  return url;
}

/// Strips /* ... */ comments.
std::string strip_comments(std::string_view css) {
  std::string out;
  out.reserve(css.size());
  std::size_t i = 0;
  while (i < css.size()) {
    if (i + 1 < css.size() && css[i] == '/' && css[i + 1] == '*') {
      i += 2;
      while (i + 1 < css.size() && !(css[i] == '*' && css[i + 1] == '/')) ++i;
      i = std::min(css.size(), i + 2);
      continue;
    }
    out.push_back(css[i++]);
  }
  return out;
}

CssSimpleSelector parse_simple_selector(std::string_view step) {
  CssSimpleSelector simple;
  std::size_t i = 0;
  auto read_name = [&] {
    std::string name;
    while (i < step.size() && (std::isalnum(static_cast<unsigned char>(step[i])) ||
                               step[i] == '-' || step[i] == '_')) {
      name.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(step[i]))));
      ++i;
    }
    return name;
  };
  if (i < step.size() && step[i] != '.' && step[i] != '#') {
    if (step[i] == '*') {
      ++i;  // universal selector: empty tag already means "any"
    } else {
      simple.tag = read_name();
    }
  }
  while (i < step.size()) {
    if (step[i] == '.') {
      ++i;
      simple.classes.push_back(read_name());
    } else if (step[i] == '#') {
      ++i;
      simple.id = read_name();
    } else if (step[i] == ':') {
      // Pseudo-classes don't affect our matching model; swallow the name.
      ++i;
      read_name();
    } else {
      ++i;  // unsupported syntax inside a step: skip defensively
    }
  }
  return simple;
}

CssSelector parse_selector(std::string_view text) {
  CssSelector selector;
  std::string step;
  auto flush = [&] {
    if (!step.empty()) {
      selector.steps.push_back(parse_simple_selector(step));
      step.clear();
    }
  };
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '>') {
      flush();  // combinators all treated as descendant
    } else {
      step.push_back(c);
    }
  }
  flush();
  return selector;
}

std::vector<CssDeclaration> parse_declarations(std::string_view block) {
  std::vector<CssDeclaration> decls;
  std::size_t start = 0;
  while (start <= block.size()) {
    const std::size_t semi = block.find(';', start);
    const std::string_view piece =
        block.substr(start, semi == std::string_view::npos ? std::string_view::npos
                                                           : semi - start);
    const std::size_t colon = piece.find(':');
    if (colon != std::string_view::npos) {
      CssDeclaration decl;
      decl.property = trim(piece.substr(0, colon));
      decl.value = trim(piece.substr(colon + 1));
      if (!decl.property.empty()) decls.push_back(std::move(decl));
    }
    if (semi == std::string_view::npos) break;
    start = semi + 1;
  }
  return decls;
}

}  // namespace

std::size_t StyleSheet::selector_steps() const {
  std::size_t n = 0;
  for (const auto& rule : rules) {
    for (const auto& selector : rule.selectors) n += selector.steps.size();
  }
  return n;
}

std::size_t StyleSheet::declaration_count() const {
  std::size_t n = 0;
  for (const auto& rule : rules) n += rule.declarations.size();
  return n;
}

std::vector<std::string> scan_css_urls(std::string_view css) {
  std::vector<std::string> urls;
  std::size_t i = 0;
  while (i < css.size()) {
    if (iequal_at(css, i, "url(")) {
      std::size_t pos = i + 4;
      std::string url = read_url_token(css, pos, ')');
      while (pos < css.size() && css[pos] != ')') ++pos;
      i = std::min(css.size(), pos + 1);
      if (!url.empty()) urls.push_back(std::move(url));
      continue;
    }
    if (iequal_at(css, i, "@import")) {
      std::size_t pos = i + 7;
      // Either @import url(...) or @import "file".
      while (pos < css.size() && std::isspace(static_cast<unsigned char>(css[pos]))) {
        ++pos;
      }
      std::string url;
      if (iequal_at(css, pos, "url(")) {
        pos += 4;
        url = read_url_token(css, pos, ')');
      } else {
        url = read_url_token(css, pos, ';');
      }
      while (pos < css.size() && css[pos] != ';') ++pos;
      i = std::min(css.size(), pos + 1);
      if (!url.empty()) urls.push_back(std::move(url));
      continue;
    }
    ++i;
  }
  return urls;
}

StyleSheet parse_css(std::string_view raw) {
  StyleSheet sheet;
  const std::string css = strip_comments(raw);
  std::size_t i = 0;
  while (i < css.size()) {
    if (std::isspace(static_cast<unsigned char>(css[i]))) {
      ++i;
      continue;
    }
    if (iequal_at(css, i, "@import")) {
      std::size_t pos = i + 7;
      while (pos < css.size() && std::isspace(static_cast<unsigned char>(css[pos]))) {
        ++pos;
      }
      std::string url;
      if (iequal_at(css, pos, "url(")) {
        pos += 4;
        url = read_url_token(css, pos, ')');
      } else {
        url = read_url_token(css, pos, ';');
      }
      while (pos < css.size() && css[pos] != ';') ++pos;
      i = std::min(css.size(), pos + 1);
      if (!url.empty()) {
        sheet.imports.push_back(url);
        sheet.url_refs.push_back(std::move(url));
      }
      continue;
    }
    if (css[i] == '@') {
      // Other at-rules (@media etc.): parse the inner block recursively by
      // locating the matching braces and splicing its rules in.
      const std::size_t open = css.find('{', i);
      if (open == std::string_view::npos) break;
      std::size_t depth = 1;
      std::size_t close = open + 1;
      while (close < css.size() && depth > 0) {
        if (css[close] == '{') ++depth;
        if (css[close] == '}') --depth;
        ++close;
      }
      StyleSheet inner =
          parse_css(std::string_view(css).substr(open + 1, close - open - 2));
      for (auto& rule : inner.rules) sheet.rules.push_back(std::move(rule));
      for (auto& import : inner.imports) sheet.imports.push_back(std::move(import));
      for (auto& url : inner.url_refs) sheet.url_refs.push_back(std::move(url));
      i = close;
      continue;
    }
    // selector-list { declarations }
    const std::size_t open = css.find('{', i);
    if (open == std::string_view::npos) break;
    std::size_t close = css.find('}', open);
    if (close == std::string_view::npos) close = css.size();

    CssRule rule;
    std::string_view selector_list = std::string_view(css).substr(i, open - i);
    std::size_t start = 0;
    while (start <= selector_list.size()) {
      const std::size_t comma = selector_list.find(',', start);
      const auto piece = selector_list.substr(
          start, comma == std::string_view::npos ? std::string_view::npos
                                                 : comma - start);
      CssSelector selector = parse_selector(piece);
      if (!selector.steps.empty()) rule.selectors.push_back(std::move(selector));
      if (comma == std::string_view::npos) break;
      start = comma + 1;
    }
    const std::string_view block =
        std::string_view(css).substr(open + 1, close - open - 1);
    rule.declarations = parse_declarations(block);
    for (const auto& decl : rule.declarations) {
      // Collect url() references from declaration values too.
      auto urls = scan_css_urls(decl.value);
      for (auto& url : urls) sheet.url_refs.push_back(std::move(url));
    }
    if (!rule.selectors.empty()) sheet.rules.push_back(std::move(rule));
    i = close == css.size() ? close : close + 1;
  }
  return sheet;
}

namespace {

bool simple_matches(const CssSimpleSelector& simple, const DomNode& node) {
  if (!node.is_element()) return false;
  if (!simple.tag.empty() && simple.tag != node.tag()) return false;
  if (!simple.id.empty() && simple.id != node.attr("id")) return false;
  if (!simple.classes.empty()) {
    const std::string& cls = node.attr("class");
    for (const auto& wanted : simple.classes) {
      // Whole-word containment in the space-separated class list.
      std::size_t pos = 0;
      bool found = false;
      while ((pos = cls.find(wanted, pos)) != std::string::npos) {
        const bool start_ok = pos == 0 || cls[pos - 1] == ' ';
        const std::size_t end = pos + wanted.size();
        const bool end_ok = end == cls.size() || cls[end] == ' ';
        if (start_ok && end_ok) {
          found = true;
          break;
        }
        ++pos;
      }
      if (!found) return false;
    }
  }
  return true;
}

}  // namespace

bool selector_matches(const CssSelector& selector, const DomNode& node) {
  if (selector.steps.empty()) return false;
  // The last step must match the node itself; earlier steps must match some
  // chain of ancestors, outermost-first.
  if (!simple_matches(selector.steps.back(), node)) return false;
  std::size_t step = selector.steps.size() - 1;
  const DomNode* ancestor = node.parent();
  while (step > 0) {
    if (ancestor == nullptr) return false;
    if (simple_matches(selector.steps[step - 1], *ancestor)) --step;
    ancestor = ancestor->parent();
  }
  return step == 0;
}

std::vector<const DomNode*> select_all(const DomNode& root,
                                       std::string_view selector_text) {
  // Reuse the stylesheet selector grammar (comma-separated descendant
  // selectors) — "div.x, #nav li" works exactly as in a rule head.
  std::vector<CssSelector> selectors;
  std::size_t start = 0;
  while (start <= selector_text.size()) {
    const std::size_t comma = selector_text.find(',', start);
    const auto piece = selector_text.substr(
        start,
        comma == std::string_view::npos ? std::string_view::npos : comma - start);
    CssSelector selector = parse_selector(piece);
    if (!selector.steps.empty()) selectors.push_back(std::move(selector));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }

  std::vector<const DomNode*> matches;
  root.visit([&](const DomNode& node) {
    if (!node.is_element()) return;
    for (const CssSelector& selector : selectors) {
      if (selector_matches(selector, node)) {
        matches.push_back(&node);
        return;
      }
    }
  });
  return matches;
}

const DomNode* select_first(const DomNode& root, std::string_view selector) {
  const auto matches = select_all(root, selector);
  return matches.empty() ? nullptr : matches.front();
}

std::size_t matching_declarations(const StyleSheet& sheet, const DomNode& node) {
  std::size_t n = 0;
  for (const auto& rule : sheet.rules) {
    for (const auto& selector : rule.selectors) {
      if (selector_matches(selector, node)) {
        n += rule.declarations.size();
        break;  // one match per rule is enough for the cascade
      }
    }
  }
  return n;
}

}  // namespace eab::web
