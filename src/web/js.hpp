// MiniScript — a small JavaScript-like engine.
//
// The paper's hardest separation problem (Section 4.1) is JavaScript: scripts
// run in the page's global context, must execute in document order, and there
// is no way to know whether one will trigger a fetch without running it.  To
// reproduce that, corpus pages embed real scripts in a JS subset and both
// pipelines *execute* them through this engine:
//   lexer -> recursive-descent parser -> AST -> tree-walking interpreter.
//
// Scripts reach the outside world through a JsHost: document.write() feeds
// markup back into the HTML parser (possibly discovering more resources) and
// the load*()/fetch() builtins request subresources.  The interpreter counts
// every evaluation step; the browser cost model converts that count into CPU
// time, which is also Table 1's "JavaScript Running Time" feature.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "net/resource.hpp"

namespace eab::web::js {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokenType {
  kNumber,
  kString,
  kIdentifier,
  kKeyword,
  kPunct,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  double number = 0;
  std::size_t offset = 0;  ///< source offset for diagnostics
};

/// Tokenizes a script. Throws JsError on malformed literals.
std::vector<Token> tokenize(std::string_view source);

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

struct Expr {
  enum class Kind {
    kNumber,
    kString,
    kBool,
    kNull,
    kIdentifier,
    kArray,     ///< [a, b, c]
    kObject,    ///< {k: v, ...}; operands are values, keys joined in text
    kUnary,     ///< op operand
    kBinary,    ///< lhs op rhs (also && and ||, short-circuiting)
    kAssign,    ///< target (identifier/index) = value, or +=
    kCall,      ///< callee(args); callee may be a member expression
    kMember,    ///< object.name
    kIndex,     ///< object[expr]
  };

  Kind kind;
  double number = 0;
  bool boolean = false;
  std::string text;  ///< identifier / string value / operator / member name
  std::vector<ExprPtr> operands;
};

struct Stmt {
  enum class Kind {
    kExpr,
    kVarDecl,   ///< text = name, operands[0] = initialiser (optional)
    kBlock,
    kIf,        ///< exprs[0] cond, stmts[0] then, stmts[1] else (optional)
    kWhile,
    kFor,       ///< init (stmt), cond (expr), step (expr), body
    kFunction,  ///< text = name, params, body
    kReturn,
    kBreak,
    kContinue,
  };

  Kind kind;
  std::string text;
  std::vector<std::string> params;
  std::vector<ExprPtr> exprs;
  std::vector<StmtPtr> stmts;
};

/// A parsed program.
struct Program {
  std::vector<StmtPtr> statements;
};

/// Parses a script. Throws JsError with a source offset on syntax errors.
Program parse(std::string_view source);

// ---------------------------------------------------------------------------
// Values and runtime
// ---------------------------------------------------------------------------

class JsError : public std::runtime_error {
 public:
  explicit JsError(const std::string& message) : std::runtime_error(message) {}
};

struct Value;
using Array = std::vector<Value>;
/// Script objects: ordered keys keep printing and iteration deterministic.
using Object = std::map<std::string, Value>;

/// Sentinels for host-provided namespace objects (document, Math, window).
enum class HostObject { kDocument, kMath, kWindow };

struct Value {
  using Storage = std::variant<std::monostate,           // undefined
                               std::nullptr_t,           // null
                               bool, double, std::string,
                               std::shared_ptr<Array>,   // array
                               std::shared_ptr<Object>,  // object literal
                               const Stmt*,              // script function
                               HostObject>;
  Storage storage;

  Value() = default;
  static Value undefined() { return Value(); }
  static Value null() { return make(nullptr); }
  static Value make(Storage s) {
    Value v;
    v.storage = std::move(s);
    return v;
  }

  bool is_undefined() const { return std::holds_alternative<std::monostate>(storage); }
  bool is_string() const { return std::holds_alternative<std::string>(storage); }
  bool is_number() const { return std::holds_alternative<double>(storage); }

  bool truthy() const;
  double to_number() const;
  std::string to_string() const;
};

/// The environment a script can observe and act on.
class JsHost {
 public:
  virtual ~JsHost() = default;
  /// document.write(html): markup appended to the document.
  virtual void document_write(const std::string& html) = 0;
  /// loadImage/loadScript/loadCss/fetch builtins: a subresource request.
  virtual void request_resource(const std::string& url,
                                net::ResourceKind kind) = 0;
  /// Math.random() — hosts supply deterministic randomness.
  virtual double random() = 0;
};

/// Outcome of running one script.
struct RunResult {
  std::uint64_t ops = 0;          ///< evaluation steps executed
  bool completed = false;         ///< false when aborted by error/budget
  std::string error;              ///< diagnostic when !completed
};

/// Tree-walking interpreter with a persistent global scope, so consecutive
/// scripts on one page share state exactly as the paper requires.
class Interpreter {
 public:
  explicit Interpreter(JsHost& host, std::uint64_t op_budget = 50'000'000);

  /// Parses and runs a script in the page's global context. Runtime errors
  /// and budget exhaustion are reported in the result, not thrown: a broken
  /// script must not take the whole page load down.
  RunResult run(std::string_view source);

  /// Total ops across all scripts run so far.
  std::uint64_t total_ops() const { return total_ops_; }

  /// Reads a global variable (tests / diagnostics).
  Value global(const std::string& name) const;

 private:
  JsHost& host_;
  std::uint64_t op_budget_;
  std::uint64_t total_ops_ = 0;
  std::unordered_map<std::string, Value> globals_;
  /// Function declarations stay alive across scripts.
  std::vector<std::shared_ptr<Program>> retained_programs_;
};

}  // namespace eab::web::js
