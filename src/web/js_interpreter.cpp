#include <cmath>

#include "web/js.hpp"

namespace eab::web::js {
namespace {

/// Thrown to unwind out of a function body on `return`.
struct ReturnSignal {
  Value value;
};
/// Thrown to unwind to the innermost loop on `break` / `continue`.
struct BreakSignal {};
struct ContinueSignal {};

std::string number_to_string(double d) {
  // Integral doubles print without a decimal point, like JS.
  if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
    return std::to_string(static_cast<long long>(d));
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", d);
  return buf;
}

}  // namespace

bool Value::truthy() const {
  if (std::holds_alternative<std::monostate>(storage)) return false;
  if (std::holds_alternative<std::nullptr_t>(storage)) return false;
  if (const bool* b = std::get_if<bool>(&storage)) return *b;
  if (const double* d = std::get_if<double>(&storage)) return *d != 0;
  if (const std::string* s = std::get_if<std::string>(&storage)) return !s->empty();
  return true;  // arrays, functions, host objects
}

double Value::to_number() const {
  if (const double* d = std::get_if<double>(&storage)) return *d;
  if (const bool* b = std::get_if<bool>(&storage)) return *b ? 1 : 0;
  if (const std::string* s = std::get_if<std::string>(&storage)) {
    char* end = nullptr;
    const double v = std::strtod(s->c_str(), &end);
    return end == s->c_str() ? 0 : v;
  }
  return 0;
}

std::string Value::to_string() const {
  if (std::holds_alternative<std::monostate>(storage)) return "undefined";
  if (std::holds_alternative<std::nullptr_t>(storage)) return "null";
  if (const bool* b = std::get_if<bool>(&storage)) return *b ? "true" : "false";
  if (const double* d = std::get_if<double>(&storage)) return number_to_string(*d);
  if (const std::string* s = std::get_if<std::string>(&storage)) return *s;
  if (const auto* arr = std::get_if<std::shared_ptr<Array>>(&storage)) {
    std::string out;
    for (std::size_t i = 0; i < (*arr)->size(); ++i) {
      if (i > 0) out += ",";
      out += (**arr)[i].to_string();
    }
    return out;
  }
  if (std::holds_alternative<const Stmt*>(storage)) return "[function]";
  if (std::holds_alternative<std::shared_ptr<Object>>(storage)) {
    return "[object Object]";
  }
  return "[object]";
}

namespace {

/// Executes a program against an Interpreter's global state.
class Evaluator {
 public:
  Evaluator(std::unordered_map<std::string, Value>& globals, JsHost& host,
            std::uint64_t budget)
      : globals_(globals), host_(host), budget_(budget) {}

  std::uint64_t ops() const { return ops_; }

  void run(const Program& program) {
    try {
      for (const auto& stmt : program.statements) {
        execute(*stmt);
      }
    } catch (ReturnSignal&) {
      fail("return outside function");
    } catch (BreakSignal&) {
      fail("break outside loop");
    } catch (ContinueSignal&) {
      fail("continue outside loop");
    }
  }

 private:
  [[noreturn]] void fail(const std::string& what) { throw JsError(what); }

  void tick() {
    if (++ops_ > budget_) fail("op budget exceeded");
  }

  // --- scope handling -----------------------------------------------------

  using Scope = std::unordered_map<std::string, Value>;

  Value* find_variable(const std::string& name) {
    for (auto it = locals_.rbegin(); it != locals_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    auto found = globals_.find(name);
    return found == globals_.end() ? nullptr : &found->second;
  }

  void declare(const std::string& name, Value value) {
    if (locals_.empty()) {
      globals_[name] = std::move(value);
    } else {
      locals_.back()[name] = std::move(value);
    }
  }

  void assign(const std::string& name, Value value) {
    if (Value* slot = find_variable(name)) {
      *slot = std::move(value);
    } else {
      globals_[name] = std::move(value);  // implicit global, like JS
    }
  }

  // --- statements ----------------------------------------------------------

  void execute(const Stmt& stmt) {
    tick();
    switch (stmt.kind) {
      case Stmt::Kind::kExpr:
        evaluate(*stmt.exprs[0]);
        return;
      case Stmt::Kind::kVarDecl:
        declare(stmt.text,
                stmt.exprs.empty() ? Value::undefined() : evaluate(*stmt.exprs[0]));
        return;
      case Stmt::Kind::kBlock:
        for (const auto& child : stmt.stmts) execute(*child);
        return;
      case Stmt::Kind::kIf:
        if (evaluate(*stmt.exprs[0]).truthy()) {
          execute(*stmt.stmts[0]);
        } else if (stmt.stmts.size() > 1) {
          execute(*stmt.stmts[1]);
        }
        return;
      case Stmt::Kind::kWhile:
        while (evaluate(*stmt.exprs[0]).truthy()) {
          try {
            execute(*stmt.stmts[0]);
          } catch (BreakSignal&) {
            break;
          } catch (ContinueSignal&) {
          }
        }
        return;
      case Stmt::Kind::kFor:
        execute(*stmt.stmts[0]);  // init
        while (evaluate(*stmt.exprs[0]).truthy()) {
          try {
            execute(*stmt.stmts[1]);  // body
          } catch (BreakSignal&) {
            break;
          } catch (ContinueSignal&) {
          }
          if (stmt.exprs.size() > 1) evaluate(*stmt.exprs[1]);  // step
        }
        return;
      case Stmt::Kind::kFunction:
        declare(stmt.text, Value::make(&stmt));
        return;
      case Stmt::Kind::kReturn:
        throw ReturnSignal{stmt.exprs.empty() ? Value::undefined()
                                              : evaluate(*stmt.exprs[0])};
      case Stmt::Kind::kBreak:
        throw BreakSignal{};
      case Stmt::Kind::kContinue:
        throw ContinueSignal{};
    }
  }

  // --- expressions ----------------------------------------------------------

  Value evaluate(const Expr& expr) {
    tick();
    switch (expr.kind) {
      case Expr::Kind::kNumber:
        return Value::make(expr.number);
      case Expr::Kind::kString:
        return Value::make(expr.text);
      case Expr::Kind::kBool:
        return Value::make(expr.boolean);
      case Expr::Kind::kNull:
        return expr.text == "undefined" ? Value::undefined() : Value::null();
      case Expr::Kind::kIdentifier:
        return identifier(expr.text);
      case Expr::Kind::kArray: {
        auto array = std::make_shared<Array>();
        for (const auto& element : expr.operands) {
          array->push_back(evaluate(*element));
        }
        return Value::make(array);
      }
      case Expr::Kind::kObject: {
        auto object = std::make_shared<Object>();
        std::size_t begin = 0;
        for (const auto& element : expr.operands) {
          const std::size_t end = expr.text.find('\n', begin);
          const std::string key = expr.text.substr(
              begin, end == std::string::npos ? std::string::npos : end - begin);
          begin = end == std::string::npos ? expr.text.size() : end + 1;
          (*object)[key] = evaluate(*element);
        }
        return Value::make(object);
      }
      case Expr::Kind::kUnary: {
        Value operand = evaluate(*expr.operands[0]);
        if (expr.text == "!") return Value::make(!operand.truthy());
        if (expr.text == "typeof") return Value::make(type_name(operand));
        return Value::make(-operand.to_number());
      }
      case Expr::Kind::kBinary:
        return binary(expr);
      case Expr::Kind::kAssign:
        return assignment(expr);
      case Expr::Kind::kCall:
        return call(expr);
      case Expr::Kind::kMember:
        return member(expr);
      case Expr::Kind::kIndex: {
        Value object = evaluate(*expr.operands[0]);
        if (const auto* obj =
                std::get_if<std::shared_ptr<Object>>(&object.storage)) {
          auto it = (*obj)->find(evaluate(*expr.operands[1]).to_string());
          return it == (*obj)->end() ? Value::undefined() : it->second;
        }
        const auto index = static_cast<std::size_t>(
            evaluate(*expr.operands[1]).to_number());
        if (const auto* arr = std::get_if<std::shared_ptr<Array>>(&object.storage)) {
          return index < (*arr)->size() ? (**arr)[index] : Value::undefined();
        }
        if (const auto* str = std::get_if<std::string>(&object.storage)) {
          return index < str->size() ? Value::make(std::string(1, (*str)[index]))
                                     : Value::undefined();
        }
        fail("cannot index non-array value");
      }
    }
    fail("unreachable expression kind");
  }

  static std::string type_name(const Value& value) {
    if (std::holds_alternative<std::monostate>(value.storage)) return "undefined";
    if (std::holds_alternative<std::nullptr_t>(value.storage)) return "object";
    if (std::holds_alternative<bool>(value.storage)) return "boolean";
    if (std::holds_alternative<double>(value.storage)) return "number";
    if (std::holds_alternative<std::string>(value.storage)) return "string";
    if (std::holds_alternative<const Stmt*>(value.storage)) return "function";
    return "object";
  }

  Value identifier(const std::string& name) {
    if (name == "document") return Value::make(HostObject::kDocument);
    if (name == "Math") return Value::make(HostObject::kMath);
    if (name == "window") return Value::make(HostObject::kWindow);
    if (Value* slot = find_variable(name)) return *slot;
    return Value::undefined();
  }

  Value binary(const Expr& expr) {
    const std::string& op = expr.text;
    if (op == "&&") {
      Value lhs = evaluate(*expr.operands[0]);
      return lhs.truthy() ? evaluate(*expr.operands[1]) : lhs;
    }
    if (op == "||") {
      Value lhs = evaluate(*expr.operands[0]);
      return lhs.truthy() ? lhs : evaluate(*expr.operands[1]);
    }
    Value lhs = evaluate(*expr.operands[0]);
    Value rhs = evaluate(*expr.operands[1]);
    if (op == "+") {
      if (lhs.is_string() || rhs.is_string()) {
        return Value::make(lhs.to_string() + rhs.to_string());
      }
      return Value::make(lhs.to_number() + rhs.to_number());
    }
    if (op == "-") return Value::make(lhs.to_number() - rhs.to_number());
    if (op == "*") return Value::make(lhs.to_number() * rhs.to_number());
    if (op == "/") return Value::make(lhs.to_number() / rhs.to_number());
    if (op == "%") {
      return Value::make(std::fmod(lhs.to_number(), rhs.to_number()));
    }
    if (op == "==" || op == "!=") {
      bool equal;
      if (lhs.is_number() && rhs.is_number()) {
        equal = lhs.to_number() == rhs.to_number();
      } else {
        equal = lhs.to_string() == rhs.to_string();
      }
      return Value::make(op == "==" ? equal : !equal);
    }
    const double a = lhs.to_number();
    const double b = rhs.to_number();
    if (op == "<") return Value::make(a < b);
    if (op == ">") return Value::make(a > b);
    if (op == "<=") return Value::make(a <= b);
    if (op == ">=") return Value::make(a >= b);
    fail("unknown operator '" + op + "'");
  }

  Value assignment(const Expr& expr) {
    const Expr& target = *expr.operands[0];
    Value value = evaluate(*expr.operands[1]);
    if (expr.text != "=") {
      // Compound assignment: compute current (op) value.
      Value current = evaluate(target);
      const char op = expr.text[0];
      if (op == '+') {
        if (current.is_string() || value.is_string()) {
          value = Value::make(current.to_string() + value.to_string());
        } else {
          value = Value::make(current.to_number() + value.to_number());
        }
      } else if (op == '-') {
        value = Value::make(current.to_number() - value.to_number());
      } else if (op == '*') {
        value = Value::make(current.to_number() * value.to_number());
      } else {
        value = Value::make(current.to_number() / value.to_number());
      }
    }
    if (target.kind == Expr::Kind::kIdentifier) {
      assign(target.text, value);
      return value;
    }
    if (target.kind == Expr::Kind::kMember) {
      // obj.key = v.
      Value object = evaluate(*target.operands[0]);
      if (auto* obj = std::get_if<std::shared_ptr<Object>>(&object.storage)) {
        (**obj)[target.text] = value;
        return value;
      }
      fail("cannot set property on non-object value");
    }
    // Index assignment: arr[i] = v or obj['key'] = v.
    Value object = evaluate(*target.operands[0]);
    if (auto* obj = std::get_if<std::shared_ptr<Object>>(&object.storage)) {
      (**obj)[evaluate(*target.operands[1]).to_string()] = value;
      return value;
    }
    const auto index = static_cast<std::size_t>(
        evaluate(*target.operands[1]).to_number());
    if (auto* arr = std::get_if<std::shared_ptr<Array>>(&object.storage)) {
      if (index >= (*arr)->size()) (*arr)->resize(index + 1);
      (**arr)[index] = value;
      return value;
    }
    fail("cannot index-assign non-array value");
  }

  Value member(const Expr& expr) {
    Value object = evaluate(*expr.operands[0]);
    if (const auto* obj = std::get_if<std::shared_ptr<Object>>(&object.storage)) {
      auto it = (*obj)->find(expr.text);
      return it == (*obj)->end() ? Value::undefined() : it->second;
    }
    if (expr.text == "length") {
      if (const auto* str = std::get_if<std::string>(&object.storage)) {
        return Value::make(static_cast<double>(str->size()));
      }
      if (const auto* arr = std::get_if<std::shared_ptr<Array>>(&object.storage)) {
        return Value::make(static_cast<double>((*arr)->size()));
      }
    }
    if (const auto* host = std::get_if<HostObject>(&object.storage)) {
      if (*host == HostObject::kMath) {
        if (expr.text == "PI") return Value::make(3.141592653589793);
      }
      // Other host members only make sense as call targets.
      return Value::undefined();
    }
    return Value::undefined();
  }

  Value call(const Expr& expr) {
    const Expr& callee = *expr.operands[0];
    std::vector<Value> args;
    args.reserve(expr.operands.size() - 1);
    for (std::size_t i = 1; i < expr.operands.size(); ++i) {
      args.push_back(evaluate(*expr.operands[i]));
    }

    // Host-object method calls: document.write, Math.floor, ...
    if (callee.kind == Expr::Kind::kMember) {
      Value object = evaluate(*callee.operands[0]);
      if (const auto* host = std::get_if<HostObject>(&object.storage)) {
        return host_call(*host, callee.text, args);
      }
    }
    // Global builtins and script functions.
    if (callee.kind == Expr::Kind::kIdentifier) {
      if (Value builtin_result; builtin(callee.text, args, builtin_result)) {
        return builtin_result;
      }
    }
    Value target = evaluate(callee);
    if (const auto* fn = std::get_if<const Stmt*>(&target.storage)) {
      return invoke(**fn, args);
    }
    fail("call of non-function value");
  }

  Value invoke(const Stmt& fn, const std::vector<Value>& args) {
    if (locals_.size() > 64) fail("call stack overflow");
    Scope scope;
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      scope[fn.params[i]] = i < args.size() ? args[i] : Value::undefined();
    }
    locals_.push_back(std::move(scope));
    Value result = Value::undefined();
    try {
      execute(*fn.stmts[0]);
    } catch (ReturnSignal& signal) {
      result = std::move(signal.value);
    } catch (BreakSignal&) {
      locals_.pop_back();
      fail("break outside loop");
    } catch (ContinueSignal&) {
      locals_.pop_back();
      fail("continue outside loop");
    }
    locals_.pop_back();
    return result;
  }

  Value host_call(HostObject host, const std::string& method,
                  const std::vector<Value>& args) {
    auto arg_number = [&](std::size_t i) {
      return i < args.size() ? args[i].to_number() : 0.0;
    };
    auto arg_string = [&](std::size_t i) {
      return i < args.size() ? args[i].to_string() : std::string();
    };
    switch (host) {
      case HostObject::kDocument:
        if (method == "write" || method == "writeln") {
          host_.document_write(arg_string(0));
          return Value::undefined();
        }
        break;
      case HostObject::kMath:
        if (method == "floor") return Value::make(std::floor(arg_number(0)));
        if (method == "ceil") return Value::make(std::ceil(arg_number(0)));
        if (method == "abs") return Value::make(std::abs(arg_number(0)));
        if (method == "sqrt") return Value::make(std::sqrt(arg_number(0)));
        if (method == "max") return Value::make(std::max(arg_number(0), arg_number(1)));
        if (method == "min") return Value::make(std::min(arg_number(0), arg_number(1)));
        if (method == "random") return Value::make(host_.random());
        break;
      case HostObject::kWindow:
        // window.loadImage(...) etc. route to the same global builtins.
        if (Value result; builtin(method, args, result)) return result;
        break;
    }
    fail("unknown host method '" + method + "'");
  }

  /// Global builtin dispatch; returns false when `name` is not a builtin.
  bool builtin(const std::string& name, const std::vector<Value>& args,
               Value& result) {
    auto arg_string = [&](std::size_t i) {
      return i < args.size() ? args[i].to_string() : std::string();
    };
    if (name == "loadImage") {
      host_.request_resource(arg_string(0), net::ResourceKind::kImage);
      result = Value::undefined();
      return true;
    }
    if (name == "loadScript") {
      host_.request_resource(arg_string(0), net::ResourceKind::kJs);
      result = Value::undefined();
      return true;
    }
    if (name == "loadCss") {
      host_.request_resource(arg_string(0), net::ResourceKind::kCss);
      result = Value::undefined();
      return true;
    }
    if (name == "fetchData") {
      host_.request_resource(arg_string(0), net::ResourceKind::kOther);
      result = Value::undefined();
      return true;
    }
    if (name == "indexOf") {
      const std::string haystack = arg_string(0);
      const std::string needle = arg_string(1);
      const auto pos = haystack.find(needle);
      result = Value::make(pos == std::string::npos ? -1.0
                                                    : static_cast<double>(pos));
      return true;
    }
    if (name == "substring") {
      const std::string text = arg_string(0);
      const auto from = static_cast<std::size_t>(std::max(
          0.0, args.size() > 1 ? args[1].to_number() : 0.0));
      const auto until = static_cast<std::size_t>(std::min(
          static_cast<double>(text.size()),
          args.size() > 2 ? args[2].to_number()
                          : static_cast<double>(text.size())));
      result = Value::make(from >= until ? std::string()
                                         : text.substr(from, until - from));
      return true;
    }
    if (name == "charAt") {
      const std::string text = arg_string(0);
      const auto index = static_cast<std::size_t>(
          args.size() > 1 ? args[1].to_number() : 0.0);
      result = Value::make(index < text.size() ? std::string(1, text[index])
                                               : std::string());
      return true;
    }
    if (name == "split") {
      const std::string text = arg_string(0);
      const std::string separator = arg_string(1);
      auto array = std::make_shared<Array>();
      if (separator.empty()) {
        for (char c : text) array->push_back(Value::make(std::string(1, c)));
      } else {
        std::size_t start = 0;
        for (;;) {
          const std::size_t pos = text.find(separator, start);
          array->push_back(Value::make(
              text.substr(start, pos == std::string::npos ? std::string::npos
                                                          : pos - start)));
          if (pos == std::string::npos) break;
          start = pos + separator.size();
        }
      }
      result = Value::make(array);
      return true;
    }
    if (name == "str") {
      result = Value::make(arg_string(0));
      return true;
    }
    if (name == "len") {
      if (!args.empty()) {
        if (const auto* arr =
                std::get_if<std::shared_ptr<Array>>(&args[0].storage)) {
          result = Value::make(static_cast<double>((*arr)->size()));
          return true;
        }
      }
      result = Value::make(static_cast<double>(arg_string(0).size()));
      return true;
    }
    if (name == "push") {
      if (args.size() >= 2) {
        if (const auto* arr =
                std::get_if<std::shared_ptr<Array>>(&args[0].storage)) {
          (*arr)->push_back(args[1]);
          result = Value::make(static_cast<double>((*arr)->size()));
          return true;
        }
      }
      fail("push() expects (array, value)");
    }
    return false;
  }

  std::unordered_map<std::string, Value>& globals_;
  JsHost& host_;
  std::uint64_t budget_;
  std::uint64_t ops_ = 0;
  std::vector<Scope> locals_;
};

}  // namespace

Interpreter::Interpreter(JsHost& host, std::uint64_t op_budget)
    : host_(host), op_budget_(op_budget) {}

RunResult Interpreter::run(std::string_view source) {
  RunResult result;
  Evaluator evaluator(globals_, host_, op_budget_);
  try {
    auto program = std::make_shared<Program>(parse(source));
    retained_programs_.push_back(program);  // keep function ASTs alive
    evaluator.run(*program);
    result.completed = true;
  } catch (const JsError& error) {
    result.error = error.what();
  } catch (const std::exception& error) {
    result.error = error.what();
  }
  result.ops = evaluator.ops();
  total_ops_ += result.ops;
  return result;
}

Value Interpreter::global(const std::string& name) const {
  auto it = globals_.find(name);
  return it == globals_.end() ? Value::undefined() : it->second;
}

}  // namespace eab::web::js
