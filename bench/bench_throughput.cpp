// Measures the batch experiment engine itself: wall-clock loads/sec and
// simulator events/sec for a 64-load sweep, run serially (the old per-spec
// loop) and through BatchRunner's thread pool, plus the memo-cache replay
// rate.  Asserts the engine's core promise — parallel results bit-identical
// to serial — and emits machine-readable BENCH_throughput.json.
#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "util/rng.hpp"

namespace {

using namespace eab;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// 64 distinct jobs: both benchmarks, both pipeline modes, per-job derived
/// seeds — every memo key unique, so the pool (not the cache) does the work.
std::vector<core::BatchJob> make_sweep() {
  std::vector<corpus::PageSpec> pool = corpus::mobile_benchmark();
  const auto full = corpus::full_benchmark();
  pool.insert(pool.end(), full.begin(), full.end());

  std::vector<core::BatchJob> jobs;
  for (std::size_t i = 0; i < 64; ++i) {
    core::BatchJob job;
    job.spec = pool[i % pool.size()];
    job.config = core::StackConfig::for_mode(
        (i / pool.size()) % 2 == 0 ? browser::PipelineMode::kOriginal
                                   : browser::PipelineMode::kEnergyAware);
    job.reading_window = 20.0;
    job.seed = derive_seed(1, i);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

bool identical(const core::SingleLoadResult& a, const core::SingleLoadResult& b) {
  return a.energy.load_j == b.energy.load_j &&
         a.energy.with_reading_j == b.energy.with_reading_j &&
         a.metrics.total_time() == b.metrics.total_time() &&
         a.metrics.transmission_time() == b.metrics.transmission_time() &&
         a.dch_time == b.dch_time && a.bytes_fetched == b.bytes_fetched &&
         a.sim_events == b.sim_events && a.dom_signature == b.dom_signature;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_throughput",
          "batch engine: serial vs parallel vs memo-cache replay", {"EAB_JOBS"})) {
    return 0;
  }
  bench::print_header("Throughput",
                      "batch engine: serial vs parallel vs memo-cache replay");

  const auto jobs = make_sweep();

  // Serial baseline: the loop every harness used to run.
  const auto serial_start = Clock::now();
  std::vector<core::SingleLoadResult> serial;
  serial.reserve(jobs.size());
  for (const auto& job : jobs) {
    serial.push_back(
        core::run_single_load(job.spec, job.config, job.reading_window, job.seed));
  }
  const double serial_s = seconds_since(serial_start);

  // Parallel: cold runner, every key a miss.
  core::BatchRunner runner;
  const auto parallel_start = Clock::now();
  const auto parallel = runner.run(jobs);
  const double parallel_s = seconds_since(parallel_start);

  // Simulator internals come from the runner's merged registry (each job
  // snapshots its own simulator; the merge is submission-ordered), not from
  // re-summing result fields by hand.  Captured before the replay run so the
  // totals cover exactly the 64 cold loads.
  const obs::MetricsRegistry& metrics = runner.metrics();
  const double events = metrics.value("sim.events_fired");
  const double cancelled = metrics.value("sim.events_cancelled");
  const double tombstones = metrics.value("sim.tombstones_popped");
  const double peak_heap = metrics.value("sim.peak_heap");

  // Memo replay: same sweep again, every key a hit.
  const auto replay_start = Clock::now();
  const auto replay = runner.run(jobs);
  const double replay_s = seconds_since(replay_start);

  bool all_identical = serial.size() == parallel.size();
  for (std::size_t i = 0; all_identical && i < serial.size(); ++i) {
    all_identical = identical(serial[i], parallel[i]) &&
                    identical(serial[i], replay[i]);
  }

  const auto n = static_cast<double>(jobs.size());
  const double speedup = parallel_s > 0 ? serial_s / parallel_s : 0;

  TextTable table({"path", "wall (s)", "loads/s", "sim events/s"});
  table.add_row({"serial loop", format_fixed(serial_s, 3),
                 format_fixed(n / serial_s, 1),
                 format_fixed(events / serial_s, 0)});
  table.add_row({"BatchRunner x" + std::to_string(runner.threads()),
                 format_fixed(parallel_s, 3), format_fixed(n / parallel_s, 1),
                 format_fixed(events / parallel_s, 0)});
  table.add_row({"memo replay", format_fixed(replay_s, 3),
                 format_fixed(n / std::max(replay_s, 1e-9), 1), "-"});
  std::printf("%s", table.render().c_str());
  std::printf("loads: %zu  threads: %d  speedup: %.2fx  "
              "cache hits/misses: %zu/%zu  bit-identical: %s\n",
              jobs.size(), runner.threads(), speedup, runner.cache_hits(),
              runner.cache_misses(), all_identical ? "yes" : "NO");
  std::printf("simulator: %.0f events fired, %.0f cancelled, "
              "%.0f tombstones popped, peak heap %.0f\n",
              events, cancelled, tombstones, peak_heap);

  std::string json;
  {
    bench::appendf(
        json,
        "{\n"
        "  \"loads\": %zu,\n"
        "  \"threads\": %d,\n"
        "  \"serial_seconds\": %.6f,\n"
        "  \"parallel_seconds\": %.6f,\n"
        "  \"replay_seconds\": %.6f,\n"
        "  \"serial_loads_per_sec\": %.3f,\n"
        "  \"parallel_loads_per_sec\": %.3f,\n"
        "  \"serial_events_per_sec\": %.1f,\n"
        "  \"parallel_events_per_sec\": %.1f,\n"
        "  \"speedup\": %.3f,\n"
        "  \"cache_hits\": %zu,\n"
        "  \"cache_misses\": %zu,\n"
        "  \"events_fired\": %.0f,\n"
        "  \"events_cancelled\": %.0f,\n"
        "  \"tombstones_popped\": %.0f,\n"
        "  \"peak_heap_size\": %.0f,\n"
        "  \"bit_identical\": %s\n"
        "}\n",
        jobs.size(), runner.threads(), serial_s, parallel_s, replay_s,
        n / serial_s, n / parallel_s, events / serial_s, events / parallel_s,
        speedup, runner.cache_hits(), runner.cache_misses(), events, cancelled,
        tombstones, peak_heap, all_identical ? "true" : "false");
  }
  bench::write_artifact("BENCH_throughput.json", json);
  bench::write_metrics_snapshot("throughput", runner.metrics());
  return all_identical ? 0 : 1;
}
