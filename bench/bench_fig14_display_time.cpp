// Regenerates Fig 14: average first-display and final-display times on both
// benchmarks.
//
// Paper (full benchmark): the energy-aware intermediate display appears
// 45.5 % earlier and the final display 16.8 % earlier.  On the mobile
// benchmark the energy-aware pipeline draws no intermediate display; its
// final display lands close to where the original draws its intermediate.
#include "bench_common.hpp"

namespace {

using namespace eab;

void report(const std::string& label, const std::vector<corpus::PageSpec>& specs,
            double paper_first, double paper_final) {
  const auto orig = bench::run_benchmark(
      specs, core::StackConfig::for_mode(browser::PipelineMode::kOriginal));
  const auto ea = bench::run_benchmark(
      specs, core::StackConfig::for_mode(browser::PipelineMode::kEnergyAware));
  TextTable table({label, "Original", "Energy-Aware", "saving", "paper"});
  table.add_row({"first display (s)", format_fixed(orig.first_display, 1),
                 format_fixed(ea.first_display, 1),
                 format_percent(bench::saving(orig.first_display, ea.first_display)),
                 paper_first >= 0 ? format_percent(paper_first) : "-"});
  table.add_row({"final display (s)", format_fixed(orig.final_display, 1),
                 format_fixed(ea.final_display, 1),
                 format_percent(bench::saving(orig.final_display, ea.final_display)),
                 format_percent(paper_final)});
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_fig14_display_time",
          "average screen display times", {"EAB_JOBS"})) {
    return 0;
  }
  bench::print_header("Fig 14", "average screen display times");
  report("full benchmark", corpus::full_benchmark(), 0.455, 0.168);
  // Mobile: no paper number for first display (EA draws none) — the final
  // display saving reported was ~0 (2.5 % via Fig 8).
  report("mobile benchmark", corpus::mobile_benchmark(), -1, 0.025);
  return 0;
}
