// Extension: page loads on a faulty 3G link.
//
// The paper measures loads on a healthy network.  Real 3G links drop
// connections, blackhole responses, cut transfers short and fade entirely
// when the user moves; the energy-aware reorganization compresses the
// transmission window, so the open question is whether its savings survive
// — or even grow — once every failed attempt costs retry energy and the
// radio stays up longer waiting for recoveries.
//
// This bench sweeps a composite fault rate (a mix of connection losses,
// stalls, truncations and slow first bytes in fixed proportion) over both
// pipelines on the full-version benchmark, plus one link-fade scenario, all
// through the shared batch engine.  Emits BENCH_faults.json.  The fault
// seed honors EAB_FAULT_SEED (the sweep is deterministic for any fixed
// value).
#include "bench_common.hpp"

namespace {

using namespace eab;

/// Composite plan at total fault rate `rate`: the mix keeps each kind in
/// fixed proportion (40% connection losses, 20% stalls, 20% truncations,
/// 20% slow first bytes), so one knob sweeps overall link quality.
net::FaultPlan plan_at(double rate, std::uint64_t seed) {
  net::FaultPlan plan;
  plan.seed = seed;
  plan.connection_loss_rate = 0.40 * rate;
  plan.stall_rate = 0.20 * rate;
  plan.truncate_rate = 0.20 * rate;
  plan.slow_first_byte_rate = 0.20 * rate;
  return plan;
}

core::StackConfig config_at(browser::PipelineMode mode, double rate,
                            std::uint64_t seed) {
  auto config = core::StackConfig::for_mode(mode);
  config.fault_plan = plan_at(rate, seed);
  // Watchdog generous against the 3.25 s promotion + slow-start setup;
  // bounded retries so every load settles.
  config.retry.request_timeout = 8.0;
  config.retry.max_retries = 2;
  config.retry.backoff_initial = 0.5;
  config.retry.backoff_factor = 2.0;
  config.trace = bench::trace_enabled();
  return config;
}

int g_audit_failures = 0;

struct SweepPoint {
  double rate = 0;
  double energy = 0;          ///< mean load energy (J)
  double total_time = 0;      ///< mean load time (s)
  double retries = 0;         ///< mean extra attempts per load
  double timeouts = 0;        ///< mean watchdog expiries per load
  double degraded = 0;        ///< mean degraded fraction of settled fetches
};

SweepPoint measure(browser::PipelineMode mode, double rate,
                   std::uint64_t seed) {
  const auto specs = corpus::full_benchmark();
  const auto config = config_at(mode, rate, seed);
  const auto results = bench::run_loads(specs, config, 20.0, 1);
  g_audit_failures += bench::audit_results(
      results, config,
      std::string(mode == browser::PipelineMode::kOriginal ? "orig" : "ea") +
          "-rate" + std::to_string(static_cast<int>(rate * 100)));
  SweepPoint point;
  point.rate = rate;
  for (const auto& r : results) {
    point.energy += r.energy.load_j;
    point.total_time += r.metrics.total_time();
    point.retries += r.fetch_retries;
    point.timeouts += r.fetch_timeouts;
    point.degraded += r.metrics.degraded_fraction();
  }
  const auto n = static_cast<double>(results.size());
  point.energy /= n;
  point.total_time /= n;
  point.retries /= n;
  point.timeouts /= n;
  point.degraded /= n;
  return point;
}

/// One row of the coverage-outage sweep (EAB_OUTAGE_*): both pipelines under
/// the env-provided windows at re-establishment fail rate `fail_rate`.
struct OutageRow {
  double fail_rate = 0;
  SweepPoint orig;
  SweepPoint ea;
  double rlf_orig = 0;          ///< mean radio-link failures per load
  double rlf_ea = 0;
  double reest_ok_orig = 0;     ///< mean successful re-establishments per load
  double reest_ok_ea = 0;
  double reest_fail_orig = 0;   ///< mean failed attempts per load
  double reest_fail_ea = 0;
};

OutageRow measure_outage(const radio::OutagePlan& base, double fail_rate,
                         std::uint64_t seed) {
  OutageRow row;
  row.fail_rate = fail_rate;
  const auto specs = corpus::full_benchmark();
  for (const bool energy_aware : {false, true}) {
    const auto mode = energy_aware ? browser::PipelineMode::kEnergyAware
                                   : browser::PipelineMode::kOriginal;
    // No per-request faults: the sweep isolates what coverage loss alone
    // costs each pipeline.
    auto config = config_at(mode, 0.0, seed);
    config.outage = base;
    config.outage.reestablish_fail_rate = fail_rate;
    const auto results = bench::run_loads(specs, config, 20.0, 1);
    g_audit_failures += bench::audit_results(
        results, config,
        std::string(energy_aware ? "ea" : "orig") + "-outage" +
            std::to_string(static_cast<int>(fail_rate * 100)));
    SweepPoint& point = energy_aware ? row.ea : row.orig;
    double rlf = 0, ok = 0, fail = 0;
    for (const auto& r : results) {
      point.energy += r.energy.load_j;
      point.total_time += r.metrics.total_time();
      point.retries += r.fetch_retries;
      point.degraded += r.metrics.degraded_fraction();
      rlf += r.rlf_count;
      ok += r.reestablish_ok;
      fail += r.reestablish_fail;
    }
    const auto n = static_cast<double>(results.size());
    point.energy /= n;
    point.total_time /= n;
    point.retries /= n;
    point.degraded /= n;
    (energy_aware ? row.rlf_ea : row.rlf_orig) = rlf / n;
    (energy_aware ? row.reest_ok_ea : row.reest_ok_orig) = ok / n;
    (energy_aware ? row.reest_fail_ea : row.reest_fail_orig) = fail / n;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_ext_faults",
          "page loads on a faulty 3G link", {"EAB_FAULT_SEED",
          "EAB_TRACE",
          "EAB_TRACE_OUT",
          "EAB_OUTAGE_COUNT",
          "EAB_OUTAGE_START",
          "EAB_OUTAGE_PERIOD",
          "EAB_OUTAGE_DURATION",
          "EAB_OUTAGE_FAIL_RATE",
          "EAB_OUTAGE_SEED",
          "EAB_JOBS"})) {
    return 0;
  }
  const std::uint64_t seed = bench::fault_seed_from_env(20130707);
  bench::print_header("Extension", "page loads on a faulty 3G link");
  std::printf("fault seed %llu (override with EAB_FAULT_SEED)\n\n",
              static_cast<unsigned long long>(seed));

  const double kRates[] = {0.0, 0.05, 0.10, 0.20};

  TextTable table({"fault rate", "orig energy", "EA energy", "saving",
                   "orig load", "EA load", "retries o/EA", "degraded o/EA"});
  std::vector<SweepPoint> original, energy_aware;
  for (const double rate : kRates) {
    const SweepPoint o = measure(browser::PipelineMode::kOriginal, rate, seed);
    const SweepPoint e =
        measure(browser::PipelineMode::kEnergyAware, rate, seed);
    original.push_back(o);
    energy_aware.push_back(e);
    table.add_row({format_percent(rate), format_fixed(o.energy, 1) + " J",
                   format_fixed(e.energy, 1) + " J",
                   format_percent(bench::saving(o.energy, e.energy)),
                   format_fixed(o.total_time, 1) + " s",
                   format_fixed(e.total_time, 1) + " s",
                   format_fixed(o.retries, 1) + "/" +
                       format_fixed(e.retries, 1),
                   format_percent(o.degraded) + "/" +
                       format_percent(e.degraded)});
  }
  std::printf("%s", table.render().c_str());

  // One deep-fade scenario: the link dies twice for 3 s mid-load (walking
  // into an elevator), no per-request faults at all.
  core::StackConfig fade_orig =
      core::StackConfig::for_mode(browser::PipelineMode::kOriginal);
  fade_orig.fault_plan.seed = seed;
  fade_orig.fault_plan.fade_count = 2;
  fade_orig.fault_plan.fade_start = 2.0;
  fade_orig.fault_plan.fade_period = 8.0;
  fade_orig.fault_plan.fade_duration = 3.0;
  fade_orig.retry.request_timeout = 20.0;  // fades stall, they don't kill
  fade_orig.trace = bench::trace_enabled();
  auto fade_ea = fade_orig;
  fade_ea.pipeline.mode = browser::PipelineMode::kEnergyAware;

  const auto specs = corpus::full_benchmark();
  const auto fo = bench::run_loads(specs, fade_orig, 20.0, 1);
  const auto fe = bench::run_loads(specs, fade_ea, 20.0, 1);
  g_audit_failures += bench::audit_results(fo, fade_orig, "fade-orig");
  g_audit_failures += bench::audit_results(fe, fade_ea, "fade-ea");
  double fade_o_energy = 0, fade_e_energy = 0, fade_o_time = 0, fade_e_time = 0;
  for (const auto& r : fo) {
    fade_o_energy += r.energy.load_j;
    fade_o_time += r.metrics.total_time();
  }
  for (const auto& r : fe) {
    fade_e_energy += r.energy.load_j;
    fade_e_time += r.metrics.total_time();
  }
  const auto n = static_cast<double>(specs.size());
  fade_o_energy /= n;
  fade_e_energy /= n;
  fade_o_time /= n;
  fade_e_time /= n;
  std::printf("\nlink fades (2 x 3 s mid-load): original %.1f J / %.1f s, "
              "energy-aware %.1f J / %.1f s (saving %s)\n",
              fade_o_energy, fade_o_time, fade_e_energy, fade_e_time,
              format_percent(bench::saving(fade_o_energy, fade_e_energy)).c_str());

  // Coverage-outage sweep, only when EAB_OUTAGE_COUNT enables the radio
  // failure subsystem (the default run stays byte-identical without it):
  // the env-provided windows hit both pipelines at increasing
  // re-establishment failure rates, so the column shows how each one pays
  // for RLF detection, out-of-service camping and the retry energy of
  // re-established fetches.
  const radio::OutagePlan outage_plan = bench::outage_plan_from_env();
  std::vector<OutageRow> outage_rows;
  if (outage_plan.enabled()) {
    std::printf("\ncoverage outages (x%d, %.1f s every %.1f s, seed %llu):\n",
                outage_plan.count, outage_plan.duration, outage_plan.period,
                static_cast<unsigned long long>(outage_plan.seed));
    TextTable ot({"reest fail", "orig energy", "EA energy", "saving",
                  "orig load", "EA load", "rlf o/EA", "reest ok o/EA"});
    for (const double fail_rate : {0.0, 0.25, 0.50}) {
      const OutageRow row = measure_outage(outage_plan, fail_rate, seed);
      ot.add_row({format_percent(row.fail_rate),
                  format_fixed(row.orig.energy, 1) + " J",
                  format_fixed(row.ea.energy, 1) + " J",
                  format_percent(bench::saving(row.orig.energy, row.ea.energy)),
                  format_fixed(row.orig.total_time, 1) + " s",
                  format_fixed(row.ea.total_time, 1) + " s",
                  format_fixed(row.rlf_orig, 1) + "/" +
                      format_fixed(row.rlf_ea, 1),
                  format_fixed(row.reest_ok_orig, 1) + "/" +
                      format_fixed(row.reest_ok_ea, 1)});
      outage_rows.push_back(row);
    }
    std::printf("%s", ot.render().c_str());
  }

  std::string json;
  {
    bench::appendf(json, "{\n  \"fault_seed\": %llu,\n  \"sweep\": [\n",
                   static_cast<unsigned long long>(seed));
    for (std::size_t i = 0; i < original.size(); ++i) {
      const SweepPoint& o = original[i];
      const SweepPoint& e = energy_aware[i];
      bench::appendf(
          json,
          "    {\"fault_rate\": %.2f,\n"
          "     \"original\": {\"energy_j\": %.3f, \"load_s\": %.3f, "
          "\"retries\": %.2f, \"timeouts\": %.2f, \"degraded\": %.4f},\n"
          "     \"energy_aware\": {\"energy_j\": %.3f, \"load_s\": %.3f, "
          "\"retries\": %.2f, \"timeouts\": %.2f, \"degraded\": %.4f},\n"
          "     \"energy_saving\": %.4f}%s\n",
          o.rate, o.energy, o.total_time, o.retries, o.timeouts, o.degraded,
          e.energy, e.total_time, e.retries, e.timeouts, e.degraded,
          bench::saving(o.energy, e.energy),
          i + 1 < original.size() ? "," : "");
    }
    bench::appendf(json,
                   "  ],\n"
                   "  \"fades\": {\"original_energy_j\": %.3f, "
                   "\"original_load_s\": %.3f, \"energy_aware_energy_j\": %.3f, "
                   "\"energy_aware_load_s\": %.3f}%s\n",
                   fade_o_energy, fade_o_time, fade_e_energy, fade_e_time,
                   outage_rows.empty() ? "" : ",");
    if (!outage_rows.empty()) {
      // Present only when the EAB_OUTAGE_* sweep ran, so the default
      // artifact stays byte-identical.
      bench::appendf(
          json,
          "  \"outage\": {\"count\": %d, \"start_s\": %.3f, "
          "\"period_s\": %.3f, \"duration_s\": %.3f, \"seed\": %llu, "
          "\"sweep\": [\n",
          outage_plan.count, outage_plan.start, outage_plan.period,
          outage_plan.duration,
          static_cast<unsigned long long>(outage_plan.seed));
      for (std::size_t i = 0; i < outage_rows.size(); ++i) {
        const OutageRow& row = outage_rows[i];
        bench::appendf(
            json,
            "    {\"reestablish_fail_rate\": %.2f,\n"
            "     \"original\": {\"energy_j\": %.3f, \"load_s\": %.3f, "
            "\"rlf\": %.2f, \"reestablish_ok\": %.2f, "
            "\"reestablish_fail\": %.2f, \"degraded\": %.4f},\n"
            "     \"energy_aware\": {\"energy_j\": %.3f, \"load_s\": %.3f, "
            "\"rlf\": %.2f, \"reestablish_ok\": %.2f, "
            "\"reestablish_fail\": %.2f, \"degraded\": %.4f},\n"
            "     \"energy_saving\": %.4f}%s\n",
            row.fail_rate, row.orig.energy, row.orig.total_time, row.rlf_orig,
            row.reest_ok_orig, row.reest_fail_orig, row.orig.degraded,
            row.ea.energy, row.ea.total_time, row.rlf_ea, row.reest_ok_ea,
            row.reest_fail_ea, row.ea.degraded,
            bench::saving(row.orig.energy, row.ea.energy),
            i + 1 < outage_rows.size() ? "," : "");
      }
      bench::appendf(json, "  ]}\n");
    }
    bench::appendf(json, "}\n");
  }
  bench::write_artifact("BENCH_faults.json", json);
  bench::write_metrics_snapshot("faults");
  if (g_audit_failures > 0) {
    std::printf("FAIL: %d loads violated trace invariants\n", g_audit_failures);
    return 1;
  }
  return 0;
}
