// Regenerates Fig 9: the whole-phone power trace while loading
// espn.go.com/sports with the original vs the energy-aware approach.
//
// The paper's trace shows the original finishing its data at sample 130
// (32.5 s) and paying FACH power for ~20 s afterwards, while the
// energy-aware approach finishes at sample 100 (25 s) and drops to IDLE at
// sample 110.  Our absolute times are shorter (simulated link), but the
// same three phases — high-power load, released radio, idle reading —
// appear in the same order with the same level relationships.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_fig09_power_trace",
          "power trace loading espn.go.com/sports", {"EAB_JOBS"})) {
    return 0;
  }
  bench::print_header("Fig 9", "power trace loading espn.go.com/sports");

  const corpus::PageSpec page = corpus::espn_sports_spec();
  const auto orig = core::ScenarioBuilder(browser::PipelineMode::kOriginal)
                        .build()
                        .run_single(page);
  const auto ea = core::ScenarioBuilder(browser::PipelineMode::kEnergyAware)
                      .build()
                      .run_single(page);

  const Seconds horizon =
      std::max(orig.metrics.final_display, ea.metrics.final_display) + 20.0;

  std::printf("power every 0.25 s (W); columns: t, original, energy-aware\n");
  const auto orig_samples = orig.total_power.sample(0, horizon, 0.25);
  const auto ea_samples = ea.total_power.sample(0, horizon, 0.25);
  for (std::size_t i = 0; i < orig_samples.size(); i += 4) {  // print 1 s grid
    std::printf("  %5.1f  %5.2f  %5.2f\n", orig_samples[i].time,
                orig_samples[i].power,
                i < ea_samples.size() ? ea_samples[i].power : 0.0);
  }

  std::printf("\nmilestones (s):                original  energy-aware  paper(orig/ea)\n");
  std::printf("  data transmission complete   %7.1f  %12.1f  32.5 / 25.0\n",
              orig.metrics.transmission_done, ea.metrics.transmission_done);
  std::printf("  page fully displayed         %7.1f  %12.1f  ~37.5 / 28.6\n",
              orig.metrics.final_display, ea.metrics.final_display);
  std::printf("  forced releases to IDLE      %7d  %12d   0 / 1\n",
              orig.forced_releases, ea.forced_releases);
  std::printf("  energy incl. 20 s reading    %6.1fJ  %11.1fJ  (paper saving 43.6%%)\n",
              orig.energy.with_reading_j, ea.energy.with_reading_j);
  std::printf("  measured saving              %.1f%%\n",
              100.0 * bench::saving(orig.energy.with_reading_j,
                                    ea.energy.with_reading_j));
  return 0;
}
