// Regenerates Fig 1: the power level of the 3G radio interface across its
// RRC states.  A scripted sequence — idle, one small transfer (IDLE -> DCH
// promotion), inactivity (T1 -> FACH, T2 -> IDLE) — sampled at 0.25 s like
// the paper's Agilent/LabVIEW rig.
//
// Paper-reported levels (Table 5): IDLE 0.15 W, FACH 0.63 W,
// DCH 1.15 W (no transfer) / 1.25 W (transferring).
#include "bench_common.hpp"

#include "net/shared_link.hpp"
#include "net/socket_downloader.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_fig01_power_states",
          "3G radio power across IDLE/DCH/FACH states", {})) {
    return 0;
  }
  bench::print_header("Fig 1", "3G radio power across IDLE/DCH/FACH states");

  core::StackConfig config;
  sim::Simulator sim;
  radio::RrcMachine rrc(sim, config.rrc, config.power);
  net::SharedLink link(sim, config.link.dch_bandwidth);
  net::SocketDownloader socket(sim, link, rrc, config.link);

  // 5 s idle, then a 40 KB transfer, then hands-off: T1 demotes to FACH,
  // T2 releases to IDLE.
  Seconds transfer_end = 0;
  sim.schedule_at(5.0, [&] {
    socket.download(kilobytes(40), [&](Seconds, Seconds finished) {
      transfer_end = finished;
    });
  });
  sim.run();
  const Seconds horizon = transfer_end + config.rrc.t1 + config.rrc.t2 + 5.0;
  sim.run_until(horizon);

  std::printf("state residency: IDLE %.1f s, FACH %.1f s, DCH %.1f s\n\n",
              rrc.time_in(radio::RrcState::kIdle),
              rrc.time_in(radio::RrcState::kFach),
              rrc.time_in(radio::RrcState::kDch));

  std::printf("power trace (0.25 s samples, as in the paper's Fig 1):\n");
  std::printf("  t(s)   P(W)\n");
  Watts previous = -1;
  for (const auto& sample : rrc.power().sample(0, horizon, 0.25)) {
    // Print only level changes plus a sparse heartbeat to keep it readable.
    const bool changed = sample.power != previous;
    const bool heartbeat =
        static_cast<long>(sample.time * 4) % 16 == 0;  // every 4 s
    if (changed || heartbeat) {
      std::printf("  %5.2f  %.2f %s\n", sample.time, sample.power,
                  changed ? "<- level change" : "");
    }
    previous = sample.power;
  }

  std::printf("\npaper Table 5 levels: IDLE 0.15 W | FACH 0.63 W | "
              "DCH 1.15/1.25 W\n");
  return 0;
}
