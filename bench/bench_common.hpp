// Shared helpers for the bench harnesses.
//
// Every bench binary prints the paper's reported numbers next to the values
// measured from this reproduction, so the "same shape" claim is checkable at
// a glance.  Keep these binaries self-contained: each one regenerates its
// table/figure from scratch when run.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "corpus/page_spec.hpp"
#include "util/table.hpp"

namespace eab::bench {

/// Prints a bench header naming the paper artifact being regenerated.
inline void print_header(const std::string& figure, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), what.c_str());
  std::printf("==============================================================\n");
}

/// Average single-load results over a list of specs.
struct BenchmarkAverages {
  double tx_time = 0;        ///< mean data transmission time (s)
  double total_time = 0;     ///< mean load time (s)
  double first_display = 0;  ///< mean first-display time (s)
  double final_display = 0;  ///< mean final-display time (s)
  double load_energy = 0;    ///< mean load energy (J)
  double energy_20s = 0;     ///< mean energy incl. 20 s reading (J)
  double dch_time = 0;       ///< mean DCH residency (s)
};

/// Runs every spec under `config` and averages the measurements.
inline BenchmarkAverages run_benchmark(const std::vector<corpus::PageSpec>& specs,
                                       const core::StackConfig& config,
                                       std::uint64_t seed = 1) {
  BenchmarkAverages avg;
  for (const auto& spec : specs) {
    const auto r = core::run_single_load(spec, config, 20.0, seed);
    avg.tx_time += r.metrics.transmission_time();
    avg.total_time += r.metrics.total_time();
    avg.first_display += r.metrics.first_display - r.metrics.started;
    avg.final_display += r.metrics.total_time();
    avg.load_energy += r.load_energy;
    avg.energy_20s += r.energy_with_reading;
    avg.dch_time += r.dch_time;
  }
  const auto n = static_cast<double>(specs.size());
  avg.tx_time /= n;
  avg.total_time /= n;
  avg.first_display /= n;
  avg.final_display /= n;
  avg.load_energy /= n;
  avg.energy_20s /= n;
  avg.dch_time /= n;
  return avg;
}

/// Percentage saving helper: (base - ours) / base.
inline double saving(double base, double ours) {
  return base <= 0 ? 0 : (base - ours) / base;
}

}  // namespace eab::bench

#include "gbrt/model.hpp"
#include "trace/reading_model.hpp"

namespace eab::bench {

/// Builds the page library the trace generator browses: every benchmark page
/// plus size-jittered sub-page variants, each loaded once through the
/// energy-aware pipeline to measure its Table 1 features (the paper collects
/// features with its modified browser the same way).
inline std::vector<trace::PageRecord> build_page_library(
    int variants_per_site = 4, std::uint64_t seed = 7) {
  std::vector<trace::PageRecord> records;
  const auto ea_cfg =
      core::StackConfig::for_mode(browser::PipelineMode::kEnergyAware);
  auto add_benchmark = [&](const std::vector<corpus::PageSpec>& specs) {
    for (const auto& base : specs) {
      for (const auto& spec :
           corpus::spec_variants(base, variants_per_site, seed ^ records.size())) {
        trace::PageRecord record;
        record.spec = spec;
        record.features =
            core::run_single_load(spec, ea_cfg, 0.0, seed).features;
        records.push_back(std::move(record));
      }
    }
  };
  add_benchmark(corpus::mobile_benchmark());
  add_benchmark(corpus::full_benchmark());
  return records;
}

}  // namespace eab::bench
