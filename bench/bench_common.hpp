// Shared helpers for the bench harnesses.
//
// Every bench binary prints the paper's reported numbers next to the values
// measured from this reproduction, so the "same shape" claim is checkable at
// a glance.  Keep these binaries self-contained: each one regenerates its
// table/figure from scratch when run.
//
// All page loads issued from here go through one process-wide BatchRunner:
// independent loads fan out over a thread pool (EAB_JOBS workers) and repeat
// loads — e.g. a figure re-measuring pages an earlier table already loaded —
// come back from the memo cache.  Results are in submission order, so every
// number printed is bit-identical to the old serial loops.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "core/experiment.hpp"
#include "corpus/page_spec.hpp"
#include "util/table.hpp"

namespace eab::bench {

/// Prints a bench header naming the paper artifact being regenerated.
inline void print_header(const std::string& figure, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), what.c_str());
  std::printf("==============================================================\n");
}

/// The process-wide batch engine every harness shares: one thread pool plus
/// one memo cache, so paired Original/Energy-Aware sweeps reuse loads.
inline core::BatchRunner& shared_runner() {
  static core::BatchRunner runner;
  return runner;
}

/// Runs every spec under `config` in one batch and returns the results in
/// spec order (each equal to run_single_load(spec, config, 20.0, seed)).
inline std::vector<core::SingleLoadResult> run_loads(
    const std::vector<corpus::PageSpec>& specs, const core::StackConfig& config,
    Seconds reading_window = 20.0, std::uint64_t seed = 1) {
  std::vector<core::BatchJob> jobs;
  jobs.reserve(specs.size());
  for (const auto& spec : specs) {
    jobs.push_back(core::BatchJob{spec, config, reading_window, seed});
  }
  return shared_runner().run(jobs);
}

/// Average single-load results over a list of specs.
struct BenchmarkAverages {
  double tx_time = 0;        ///< mean data transmission time (s)
  double total_time = 0;     ///< mean load time (s)
  double first_display = 0;  ///< mean first-display time (s)
  double final_display = 0;  ///< mean final-display time (s)
  double load_energy = 0;    ///< mean load energy (J)
  double energy_20s = 0;     ///< mean energy incl. 20 s reading (J)
  double dch_time = 0;       ///< mean DCH residency (s)
};

/// Runs every spec under `config` and averages the measurements.  An empty
/// spec list yields zeroed averages (not NaNs).
inline BenchmarkAverages run_benchmark(const std::vector<corpus::PageSpec>& specs,
                                       const core::StackConfig& config,
                                       std::uint64_t seed = 1) {
  BenchmarkAverages avg;
  if (specs.empty()) return avg;
  for (const auto& r : run_loads(specs, config, 20.0, seed)) {
    avg.tx_time += r.metrics.transmission_time();
    avg.total_time += r.metrics.total_time();
    avg.first_display += r.metrics.first_display - r.metrics.started;
    avg.final_display += r.metrics.total_time();
    avg.load_energy += r.load_energy;
    avg.energy_20s += r.energy_with_reading;
    avg.dch_time += r.dch_time;
  }
  const auto n = static_cast<double>(specs.size());
  avg.tx_time /= n;
  avg.total_time /= n;
  avg.first_display /= n;
  avg.final_display /= n;
  avg.load_energy /= n;
  avg.energy_20s /= n;
  avg.dch_time /= n;
  return avg;
}

/// Percentage saving helper: (base - ours) / base.
inline double saving(double base, double ours) {
  return base <= 0 ? 0 : (base - ours) / base;
}

/// Fault-plan seed for the fault benches: EAB_FAULT_SEED overrides the
/// built-in default so a sweep can be re-rolled without recompiling (the
/// whole stack stays deterministic for any fixed value).  Unset, empty or
/// unparsable values fall back to `fallback`.
inline std::uint64_t fault_seed_from_env(std::uint64_t fallback) {
  const char* raw = std::getenv("EAB_FAULT_SEED");
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<std::uint64_t>(value);
}

}  // namespace eab::bench

#include "gbrt/model.hpp"
#include "trace/reading_model.hpp"

namespace eab::bench {

/// Builds the page library the trace generator browses: every benchmark page
/// plus size-jittered sub-page variants, each loaded once through the
/// energy-aware pipeline to measure its Table 1 features (the paper collects
/// features with its modified browser the same way).  The variant specs are
/// derived serially — variant seeding depends on the record count — and the
/// feature loads then run as one batch.
inline std::vector<trace::PageRecord> build_page_library(
    int variants_per_site = 4, std::uint64_t seed = 7) {
  std::vector<trace::PageRecord> records;
  auto add_benchmark = [&](const std::vector<corpus::PageSpec>& specs) {
    for (const auto& base : specs) {
      for (const auto& spec :
           corpus::spec_variants(base, variants_per_site, seed ^ records.size())) {
        trace::PageRecord record;
        record.spec = spec;
        records.push_back(std::move(record));
      }
    }
  };
  add_benchmark(corpus::mobile_benchmark());
  add_benchmark(corpus::full_benchmark());

  const auto ea_cfg =
      core::StackConfig::for_mode(browser::PipelineMode::kEnergyAware);
  std::vector<core::BatchJob> jobs;
  jobs.reserve(records.size());
  for (const auto& record : records) {
    jobs.push_back(core::BatchJob{record.spec, ea_cfg, 0.0, seed});
  }
  const auto results = shared_runner().run(jobs);
  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i].features = results[i].features;
  }
  return records;
}

}  // namespace eab::bench
