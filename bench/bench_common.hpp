// Shared helpers for the bench harnesses.
//
// Every bench binary prints the paper's reported numbers next to the values
// measured from this reproduction, so the "same shape" claim is checkable at
// a glance.  Keep these binaries self-contained: each one regenerates its
// table/figure from scratch when run.
//
// All page loads issued from here go through one process-wide BatchRunner:
// independent loads fan out over a thread pool (EAB_JOBS workers) and repeat
// loads — e.g. a figure re-measuring pages an earlier table already loaded —
// come back from the memo cache.  Results are in submission order, so every
// number printed is bit-identical to the old serial loops.
#pragma once

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "core/scenario.hpp"
#include "core/supervisor.hpp"
#include "corpus/page_spec.hpp"
#include "knobs.hpp"
#include "obs/audit.hpp"
#include "obs/chrome_trace.hpp"
#include "radio/outage.hpp"
#include "util/fileio.hpp"
#include "util/table.hpp"

namespace eab::bench {

/// Prints a bench header naming the paper artifact being regenerated.
inline void print_header(const std::string& figure, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), what.c_str());
  std::printf("==============================================================\n");
}

/// The process-wide batch engine every harness shares: one thread pool plus
/// one memo cache, so paired Original/Energy-Aware sweeps reuse loads.
inline core::BatchRunner& shared_runner() {
  static core::BatchRunner runner;
  return runner;
}

/// Runs every spec under `config` in one batch and returns the results in
/// spec order (each equal to run_single_load(spec, config, 20.0, seed)).
inline std::vector<core::SingleLoadResult> run_loads(
    const std::vector<corpus::PageSpec>& specs, const core::StackConfig& config,
    Seconds reading_window = 20.0, std::uint64_t seed = 1) {
  std::vector<core::BatchJob> jobs;
  jobs.reserve(specs.size());
  for (const auto& spec : specs) {
    jobs.push_back(core::BatchJob{spec, config, reading_window, seed});
  }
  return shared_runner().run(jobs);
}

/// Average single-load results over a list of specs.
struct BenchmarkAverages {
  double tx_time = 0;        ///< mean data transmission time (s)
  double total_time = 0;     ///< mean load time (s)
  double first_display = 0;  ///< mean first-display time (s)
  double final_display = 0;  ///< mean final-display time (s)
  double load_energy = 0;    ///< mean load energy (J)
  double energy_20s = 0;     ///< mean energy incl. 20 s reading (J)
  double dch_time = 0;       ///< mean DCH residency (s)
};

/// Averages a batch of already-run loads.  An empty result list yields
/// zeroed averages (not NaNs).
inline BenchmarkAverages averages_of(
    const std::vector<core::SingleLoadResult>& results) {
  BenchmarkAverages avg;
  if (results.empty()) return avg;
  for (const auto& r : results) {
    avg.tx_time += r.metrics.transmission_time();
    avg.total_time += r.metrics.total_time();
    avg.first_display += r.metrics.first_display - r.metrics.started;
    avg.final_display += r.metrics.total_time();
    avg.load_energy += r.energy.load_j;
    avg.energy_20s += r.energy.with_reading_j;
    avg.dch_time += r.dch_time;
  }
  const auto n = static_cast<double>(results.size());
  avg.tx_time /= n;
  avg.total_time /= n;
  avg.first_display /= n;
  avg.final_display /= n;
  avg.load_energy /= n;
  avg.energy_20s /= n;
  avg.dch_time /= n;
  return avg;
}

/// Runs every spec under `config` and averages the measurements.
inline BenchmarkAverages run_benchmark(const std::vector<corpus::PageSpec>& specs,
                                       const core::StackConfig& config,
                                       std::uint64_t seed = 1) {
  return averages_of(run_loads(specs, config, 20.0, seed));
}

/// Percentage saving helper: (base - ours) / base.
inline double saving(double base, double ours) {
  return base <= 0 ? 0 : (base - ours) / base;
}

/// One strictly-parsed floating point knob from the registry: unset or
/// empty falls back, malformed (or out of the registered bounds) exits 2.
/// `positive` and `expected` must match the registered spec — kept in the
/// signature so legacy call sites stay source-compatible.
inline double env_f64_or(const char* name, double fallback,
                         bool /*positive*/ = false,
                         const char* /*expected*/ = nullptr) {
  return knobs().f64_or(name, fallback);
}

/// EAB_OUTAGE_COUNT / _START / _PERIOD / _DURATION / _FAIL_RATE / _SEED:
/// per-UE coverage-outage knobs for the harnesses that honor them
/// (bench_ext_faults, bench_fig11_capacity --cell).  EAB_OUTAGE_COUNT unset,
/// empty or 0 disables the radio-failure subsystem entirely — stdout and
/// every artifact stay byte-identical to a build without it.  Every value is
/// strictly parsed against the registry (exit 2 on anything malformed), and
/// an enabled plan whose period does not exceed its duration exits 2 too:
/// overlapping coverage windows are a typo, not a scenario.
inline radio::OutagePlan outage_plan_from_env() {
  radio::OutagePlan plan;
  plan.count = static_cast<int>(knobs().u64_or(
      "EAB_OUTAGE_COUNT", static_cast<std::uint64_t>(plan.count)));
  plan.start = knobs().f64_or("EAB_OUTAGE_START", plan.start);
  plan.period = knobs().f64_or("EAB_OUTAGE_PERIOD", plan.period);
  plan.duration = knobs().f64_or("EAB_OUTAGE_DURATION", plan.duration);
  plan.reestablish_fail_rate =
      knobs().f64_or("EAB_OUTAGE_FAIL_RATE", plan.reestablish_fail_rate);
  plan.seed = knobs().u64_or("EAB_OUTAGE_SEED", plan.seed);
  if (plan.count > 0 && plan.period <= plan.duration) {
    const char* raw = std::getenv("EAB_OUTAGE_PERIOD");
    die_invalid_env("EAB_OUTAGE_PERIOD", raw == nullptr ? "" : raw,
                    "a period exceeding EAB_OUTAGE_DURATION (windows must "
                    "not overlap)");
  }
  return plan;
}

/// Fault-plan seed for the fault benches: EAB_FAULT_SEED overrides the
/// built-in default so a sweep can be re-rolled without recompiling (the
/// whole stack stays deterministic for any fixed value).  Unset or empty
/// falls back to `fallback`; a malformed value is an error (exit 2), never
/// a silent default.
inline std::uint64_t fault_seed_from_env(std::uint64_t fallback) {
  return knobs().u64_or("EAB_FAULT_SEED", fallback);
}

/// EAB_TRACE=1 turns structured tracing on in the harnesses that honor it:
/// loads record full traces, every trace is audited, and the process exits
/// non-zero on any violation.  Off by default (unset, empty or "0"):
/// tracing never changes results, but the recordings cost memory.  Any
/// other value is an error (exit 2): "EAB_TRACE=yes" must not silently run
/// untraced.
inline bool trace_enabled() { return knobs().flag("EAB_TRACE"); }

/// Chaos sweep width: EAB_CHAOS_SEEDS overrides the default scenario count
/// (the checked contract runs 256).  Strictly parsed; 0 is rejected — an
/// empty sweep proves nothing.
inline int chaos_seed_count_from_env(int fallback) {
  return static_cast<int>(
      knobs().u64_or("EAB_CHAOS_SEEDS", static_cast<std::uint64_t>(fallback)));
}

/// Optional directory for chaos artifacts (EAB_CHAOS_OUT): every shrunk
/// reproducer found by a sweep is written there as replayable JSON.  Empty
/// = no dumps.
inline std::string chaos_out_dir() {
  return knobs().path_or_empty("EAB_CHAOS_OUT");
}

/// Optional directory for Chrome-trace dumps (EAB_TRACE_OUT).  When set and
/// tracing is on, audited recordings are also serialized to
/// `<dir>/<label>.trace.json` for Perfetto / chrome://tracing.  Empty = no
/// dumps.
inline std::string trace_out_dir() {
  return knobs().path_or_empty("EAB_TRACE_OUT");
}

/// printf-append into a string: the building block the benches use to
/// assemble whole JSON artifacts in memory before one crash-safe write.
inline void appendf(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list measure;
  va_copy(measure, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, measure);
  va_end(measure);
  if (needed > 0) {
    const std::size_t old = out.size();
    out.resize(old + static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data() + old, static_cast<std::size_t>(needed) + 1, fmt,
                   args);
    out.resize(old + static_cast<std::size_t>(needed));
  }
  va_end(args);
}

/// Crash-safe artifact write (temp + fsync + rename via write_file_atomic)
/// with the benches' standard "wrote <path>" confirmation line.  Returns
/// false — and prints nothing — when the write failed; a torn BENCH_*.json
/// can never be observed, even under the supervision soak's SIGKILLs.
inline bool write_artifact(const std::string& path, std::string_view contents) {
  if (!write_file_atomic(path, contents)) return false;
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// EAB_SUPERVISE=1 moves the sweeps that support it (bench_fig11_capacity
/// --cell) onto the process-level supervision layer: forked workers,
/// heartbeats, crash restarts, and — with EAB_CHECKPOINT_DIR — durable
/// resume.  Results are bit-identical either way; "0"/unset/empty keeps the
/// in-process BatchRunner path.  Anything else exits 2.
inline bool supervise_enabled() { return knobs().flag("EAB_SUPERVISE"); }

/// EAB_WORKERS: concurrent worker processes for supervised sweeps.  Unset
/// or empty resolves to hardware_concurrency; malformed or out of [1, 1024]
/// exits 2.
inline int workers_from_env() {
  // 0 = resolve_workers default (hardware concurrency).
  return static_cast<int>(knobs().u64_or("EAB_WORKERS", 0));
}

/// EAB_CHECKPOINT_DIR: directory for supervised sweeps' durable checkpoint
/// journals.  Empty = supervise without durability (no resume).
inline std::string checkpoint_dir() {
  return knobs().path_or_empty("EAB_CHECKPOINT_DIR");
}

/// EAB_SELF_CHAOS: seed for the supervisor's self-chaos kill schedule
/// (0/unset = off); the crash-recovery soak sets this and byte-compares the
/// recovered outputs against an uninterrupted run.  Malformed exits 2.
inline std::uint64_t self_chaos_seed_from_env() {
  return knobs().u64_or("EAB_SELF_CHAOS", 0);
}

/// EAB_SELF_CHAOS_KILLS: worker SIGKILLs injected per launch (needs
/// EAB_SELF_CHAOS).  Capped at 64 — a kill schedule longer than any sweep
/// is a typo, not a soak.  Malformed exits 2.
inline int self_chaos_kills_from_env() {
  return static_cast<int>(knobs().u64_or("EAB_SELF_CHAOS_KILLS", 0));
}

/// EAB_SELF_CHAOS_ORC=1: additionally SIGKILL the orchestrator itself once,
/// right after a durable checkpoint commit, on the first launch (needs
/// EAB_SELF_CHAOS and EAB_CHECKPOINT_DIR).  "0"/unset = off; else exit 2.
inline bool self_chaos_orchestrator_enabled() {
  return knobs().flag("EAB_SELF_CHAOS_ORC");
}

/// EAB_TELEMETRY=1 turns simulated-time telemetry on in the harnesses that
/// honor it (bench_fig11_capacity --cell): cell runs sample cross-layer
/// gauges into fixed-budget time series and the bench writes a
/// BENCH_*.timeseries.json artifact.  Off by default (unset, empty or "0"):
/// disabled runs are bit-identical — sim_events and every artifact included
/// — to a build without the telemetry layer.  Anything else exits 2.
inline bool telemetry_enabled() { return knobs().flag("EAB_TELEMETRY"); }

/// EAB_TELEMETRY_TICK: sampling period in whole simulated seconds (needs
/// EAB_TELEMETRY=1).  Default 5; malformed or out of [1, 86400] exits 2.
inline Seconds telemetry_tick_from_env() {
  return static_cast<Seconds>(knobs().u64_or("EAB_TELEMETRY_TICK", 5));
}

/// EAB_TELEMETRY_BUDGET: per-series point budget before power-of-two merge
/// downsampling kicks in.  Default 256; malformed or out of [2, 1048576]
/// exits 2.
inline std::size_t telemetry_budget_from_env() {
  return static_cast<std::size_t>(knobs().u64_or("EAB_TELEMETRY_BUDGET", 256));
}

/// EAB_PROGRESS=1 turns on the supervisor's live wall-clock progress lines
/// (stderr, throttled to ~1 Hz).  Off by default; purely observational —
/// results are bit-identical either way.  Anything else exits 2.
inline bool progress_enabled() { return knobs().flag("EAB_PROGRESS"); }

/// Assembles the supervised-sweep config from the environment knobs above.
/// `journal_name` is the per-sweep journal file under EAB_CHECKPOINT_DIR;
/// `fingerprint` guards the journal against resumption by a different sweep.
inline core::SupervisorConfig supervisor_config_from_env(
    const std::string& journal_name, const std::string& fingerprint) {
  core::SupervisorConfig config;
  config.workers = workers_from_env();
  const std::string dir = checkpoint_dir();
  if (!dir.empty()) config.checkpoint_path = dir + "/" + journal_name;
  config.fingerprint = fingerprint;
  config.self_chaos_seed = self_chaos_seed_from_env();
  config.self_chaos_worker_kills = self_chaos_kills_from_env();
  config.self_chaos_kill_orchestrator = self_chaos_orchestrator_enabled();
  config.progress = progress_enabled();
  return config;
}

/// The auditor inputs for one batched load: the run's own radio config,
/// retry budget and PowerTimeline integral over the observed window.
inline obs::AuditInputs make_audit_inputs(const core::StackConfig& config,
                                          const core::SingleLoadResult& r) {
  obs::AuditInputs inputs;
  inputs.rrc = config.rrc;
  inputs.power = config.power;
  inputs.max_retries = config.retry.max_retries;
  inputs.radio_energy = r.energy.radio_j;
  inputs.t_end = r.energy.window_s;
  return inputs;
}

/// Audits every traced result in `results` against `config`, printing each
/// violation.  Dumps Chrome traces under EAB_TRACE_OUT when set.  Returns
/// the number of loads whose audit failed (0 = all invariants held).
inline int audit_results(const std::vector<core::SingleLoadResult>& results,
                         const core::StackConfig& config,
                         const std::string& label) {
  const obs::TraceAuditor auditor;
  const std::string out_dir = trace_out_dir();
  std::string file_label = label;  // labels may hold spaces or URL slashes
  for (char& c : file_label) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-') c = '_';
  }
  int failed = 0;
  int audited = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const core::SingleLoadResult& r = results[i];
    if (!r.trace) continue;
    ++audited;
    const auto report = auditor.audit(*r.trace, make_audit_inputs(config, r));
    if (!report.ok()) {
      ++failed;
      std::printf("AUDIT FAIL [%s #%zu]:\n%s\n", label.c_str(), i,
                  report.summary().c_str());
    }
    if (!out_dir.empty()) {
      obs::write_chrome_trace(out_dir + "/" + file_label + "_" +
                                  std::to_string(i) + ".trace.json",
                              *r.trace, r.energy.window_s);
    }
  }
  if (audited > 0) {
    std::printf("audit [%s]: %d/%d traced loads passed\n", label.c_str(),
                audited - failed, audited);
  }
  return failed;
}

/// Writes a metrics registry snapshot beside the bench's JSON output
/// (crash-safe: temp + fsync + rename).
inline void write_metrics_snapshot(const std::string& bench_name,
                                   const obs::MetricsRegistry& metrics) {
  write_artifact("BENCH_" + bench_name + ".metrics.json",
                 metrics.to_json() + "\n");
}

/// Snapshot of the shared runner — every load this process batched, merged
/// in submission order.
inline void write_metrics_snapshot(const std::string& bench_name) {
  write_metrics_snapshot(bench_name, shared_runner().metrics());
}

}  // namespace eab::bench

#include "gbrt/model.hpp"
#include "trace/reading_model.hpp"

namespace eab::bench {

/// Builds the page library the trace generator browses: every benchmark page
/// plus size-jittered sub-page variants, each loaded once through the
/// energy-aware pipeline to measure its Table 1 features (the paper collects
/// features with its modified browser the same way).  The variant specs are
/// derived serially — variant seeding depends on the record count — and the
/// feature loads then run as one batch.
inline std::vector<trace::PageRecord> build_page_library(
    int variants_per_site = 4, std::uint64_t seed = 7) {
  std::vector<trace::PageRecord> records;
  auto add_benchmark = [&](const std::vector<corpus::PageSpec>& specs) {
    for (const auto& base : specs) {
      for (const auto& spec :
           corpus::spec_variants(base, variants_per_site, seed ^ records.size())) {
        trace::PageRecord record;
        record.spec = spec;
        records.push_back(std::move(record));
      }
    }
  };
  add_benchmark(corpus::mobile_benchmark());
  add_benchmark(corpus::full_benchmark());

  const auto ea_cfg =
      core::StackConfig::for_mode(browser::PipelineMode::kEnergyAware);
  std::vector<core::BatchJob> jobs;
  jobs.reserve(records.size());
  for (const auto& record : records) {
    jobs.push_back(core::BatchJob{record.spec, ea_cfg, 0.0, seed});
  }
  const auto results = shared_runner().run(jobs);
  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i].features = results[i].features;
  }
  return records;
}

}  // namespace eab::bench
