// Regenerates Table 5: whole-phone power in each radio/CPU state, measured
// from the simulator's power timelines (not just echoed from the config) by
// driving the radio through each state and sampling.
#include "bench_common.hpp"

#include "browser/cpu.hpp"
#include "net/shared_link.hpp"
#include "net/socket_downloader.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_table5_state_power",
          "whole-phone power per state", {})) {
    return 0;
  }
  bench::print_header("Table 5", "whole-phone power per state");

  core::StackConfig config;
  sim::Simulator sim;
  radio::RrcMachine rrc(sim, config.rrc, config.power);
  net::SharedLink link(sim, config.link.dch_bandwidth);
  net::SocketDownloader socket(sim, link, rrc, config.link);
  browser::CpuScheduler cpu(sim, config.power.cpu_busy_extra);

  // Drive: idle 0-5 s; large transfer (DCH w/ transmission); wait out T1
  // (DCH no transmission happens between transfer end and demotion); FACH;
  // IDLE again; then a CPU burst at IDLE.
  Seconds transfer_start = 0;
  Seconds transfer_end = 0;
  sim.schedule_at(5.0, [&] {
    socket.download(kilobytes(600), [&](Seconds started, Seconds finished) {
      transfer_start = started;
      transfer_end = finished;
    });
  });
  sim.run();
  const Seconds fach_at = transfer_end + config.rrc.t1 + 1.0;
  const Seconds idle_again = transfer_end + config.rrc.t1 + config.rrc.t2 + 2.0;
  sim.run_until(idle_again + 1.0);
  cpu.submit(5.0, [] {});
  sim.run();
  const auto total = PowerTimeline::sum(rrc.power(), cpu.power());

  auto level = [&](Seconds at) { return total.energy(at, at + 0.25) / 0.25; };

  TextTable table({"state", "measured (W)", "paper (W)"});
  table.add_row({"IDLE", format_fixed(level(2.0), 2), "0.15"});
  table.add_row({"FACH", format_fixed(level(fach_at), 2), "0.63"});
  table.add_row({"DCH without transmission",
                 format_fixed(level(transfer_end + 1.0), 2), "1.15"});
  table.add_row({"DCH with transmission",
                 format_fixed(level((transfer_start + transfer_end) / 2), 2),
                 "1.25"});
  table.add_row({"fully running CPU (IDLE)",
                 format_fixed(level(idle_again + 2.0), 2), "0.60"});
  std::printf("%s", table.render().c_str());
  return 0;
}
