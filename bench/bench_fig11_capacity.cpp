// Regenerates Fig 11: session dropping probability vs number of users, for
// the original and energy-aware browsers, on both benchmarks.
//
// Default mode — M/G/200 loss system, per-user Poisson think time (mean
// 25 s), 4-hour horizon; the service time of a session is the measured
// data-transmission time of opening a page (cell::measure_service_times,
// sampling controlled by capacity::CapacityConfig).  Paper result: at equal
// dropping probability the energy-aware browser supports 14.3 % more users
// on the mobile benchmark and 19.6 % more on the full benchmark.
//
// --cell mode — the same claim from first principles: N full UE stacks
// (RRC + link + browser pipeline each) contend for a bounded DCH grant
// pool inside one simulator (src/cell/), with the abstract M/G/N curve
// printed next to the co-simulated one.  Emits BENCH_cell.json.  Knobs:
// EAB_CELL_USERS (top of the users axis), EAB_CELL_SEED (cell seed).
#include "bench_common.hpp"

#include <cstring>

#include "capacity/mgn.hpp"
#include "cell/cell.hpp"
#include "cell/service_times.hpp"

namespace {

using namespace eab;

std::vector<Seconds> service_times(const std::vector<corpus::PageSpec>& specs,
                                   browser::PipelineMode mode,
                                   const capacity::CapacityConfig& config) {
  // One batched sweep per mode; the shared memo cache also means the Fig 10
  // harness (same specs, same configs) would reuse these loads in-process.
  return cell::measure_service_times(specs, mode, config,
                                     bench::shared_runner());
}

/// Users supported at the target drop probability (linear scan + interpolate).
double capacity_at(const capacity::ServiceTimeDistribution& service, int lo,
                   int hi, int step, double target) {
  capacity::CapacityConfig config;
  double previous_users = lo;
  double previous_drop = 0;
  for (int users = lo; users <= hi; users += step) {
    config.users = users;
    const auto result = capacity::simulate_capacity(config, service, 42);
    if (result.drop_probability >= target && users > lo) {
      const double slope = (result.drop_probability - previous_drop) /
                           (users - previous_users);
      return previous_users + (target - previous_drop) / std::max(1e-9, slope);
    }
    previous_users = users;
    previous_drop = result.drop_probability;
  }
  return hi;
}

void report(const std::string& label, const std::vector<corpus::PageSpec>& specs,
            int lo, int hi, int step, double paper_gain) {
  const capacity::CapacityConfig sampling;
  const capacity::ServiceTimeDistribution orig(
      service_times(specs, browser::PipelineMode::kOriginal, sampling));
  const capacity::ServiceTimeDistribution ea(
      service_times(specs, browser::PipelineMode::kEnergyAware, sampling));

  std::printf("%s (mean service: original %.1f s, energy-aware %.1f s)\n",
              label.c_str(), orig.mean(), ea.mean());
  TextTable table({"users", "drop% original (95% CI)", "drop% energy-aware (95% CI)"});
  capacity::CapacityConfig config;
  for (int users = lo; users <= hi; users += step) {
    config.users = users;
    const auto drop_orig = capacity::estimate_capacity(config, orig, 42, 6);
    const auto drop_ea = capacity::estimate_capacity(config, ea, 42, 6);
    table.add_row(
        {std::to_string(users),
         format_fixed(100 * drop_orig.mean_drop, 2) + " +-" +
             format_fixed(100 * drop_orig.ci_halfwidth, 2),
         format_fixed(100 * drop_ea.mean_drop, 2) + " +-" +
             format_fixed(100 * drop_ea.ci_halfwidth, 2)});
  }
  std::printf("%s", table.render().c_str());

  const double target = 0.02;  // 2 % dropping probability service level
  const double cap_orig = capacity_at(orig, lo, hi, step, target);
  const double cap_ea = capacity_at(ea, lo, hi, step, target);
  std::printf("capacity at %.0f%% dropping: original %.0f users, "
              "energy-aware %.0f users -> +%.1f%% (paper: +%.1f%%)\n\n",
              target * 100, cap_orig, cap_ea,
              100.0 * (cap_ea - cap_orig) / cap_orig, paper_gain * 100);
}

// --- --cell mode -----------------------------------------------------------

/// Cell-mode parameters: a small cell (few grants, short horizon) so the
/// co-simulation finishes in bench time; the qualitative Fig 11 shape —
/// monotone drop curve, energy-aware above Original in admitted users —
/// does not depend on the pool being 200 channels wide.
int g_cell_shards = 1;  // EAB_CELL_SHARDS; any value is bit-identical to 1
Seconds g_telemetry_tick = 0;         // EAB_TELEMETRY / EAB_TELEMETRY_TICK
std::size_t g_telemetry_budget = 256; // EAB_TELEMETRY_BUDGET

struct CellBenchParams {
  int channels = 6;
  Seconds horizon = 600.0;
  int max_users = 32;
  int step = 4;
  std::uint64_t seed = 1;
  double target = 0.05;  // 5 % dropping service level
  // Radio-failure knobs, both disabled by default (EAB_OUTAGE_* for the
  // per-UE coverage process, EAB_CELL_OUTAGE_* for whole-cell blackouts).
  radio::OutagePlan ue_outage;
  int cell_outage_count = 0;
  Seconds cell_outage_start = 60.0;
  Seconds cell_outage_period = 120.0;
  Seconds cell_outage_duration = 5.0;
};

cell::CellConfig cell_config(browser::PipelineMode mode,
                             const CellBenchParams& params) {
  cell::CellConfig config;
  config.per_ue = core::ScenarioBuilder(mode).outage(params.ue_outage).build();
  config.specs = corpus::mobile_benchmark();
  config.channels = params.channels;
  config.horizon = params.horizon;
  config.cell_seed = params.seed;
  config.sim_shards = g_cell_shards;
  config.telemetry_tick = g_telemetry_tick;
  config.telemetry_budget = g_telemetry_budget;
  config.cell_outage_count = params.cell_outage_count;
  config.cell_outage_start = params.cell_outage_start;
  config.cell_outage_period = params.cell_outage_period;
  config.cell_outage_duration = params.cell_outage_duration;
  return config;
}

double mean_ue_energy(const cell::CellResult& result) {
  if (result.per_ue.empty()) return 0;
  double total = 0;
  for (const auto& ue : result.per_ue) total += ue.energy.with_reading_j;
  return total / static_cast<double>(result.per_ue.size());
}

int run_cell_mode() {
  bench::print_header(
      "Fig 11 (--cell)",
      "first-principles shared-cell co-simulation vs the M/G/N model");

  CellBenchParams params;
  params.seed = bench::knobs().u64_or("EAB_CELL_SEED", params.seed);
  params.max_users = static_cast<int>(bench::knobs().u64_or(
      "EAB_CELL_USERS", static_cast<std::uint64_t>(params.max_users)));
  // Event-queue shards per cell simulator (perf-only: the sharded merge is
  // bit-identical to the single-queue engine for every value).
  g_cell_shards = static_cast<int>(bench::knobs().u64_or("EAB_CELL_SHARDS", 1));
  // Telemetry knobs are parsed strictly even when sampling stays off, so a
  // typo'd EAB_TELEMETRY_TICK dies loudly instead of silently idling.
  g_telemetry_budget = bench::telemetry_budget_from_env();
  const Seconds telemetry_tick = bench::telemetry_tick_from_env();
  if (bench::telemetry_enabled()) g_telemetry_tick = telemetry_tick;
  // Radio-failure knobs: EAB_OUTAGE_* drives each UE's own coverage process,
  // EAB_CELL_OUTAGE_* schedules whole-cell blackouts.  Both default off; any
  // default combination keeps stdout and every artifact byte-identical.
  params.ue_outage = bench::outage_plan_from_env();
  params.cell_outage_count =
      static_cast<int>(bench::knobs().u64_or("EAB_CELL_OUTAGE_COUNT", 0));
  params.cell_outage_start =
      bench::knobs().f64_or("EAB_CELL_OUTAGE_START", params.cell_outage_start);
  params.cell_outage_period = bench::knobs().f64_or("EAB_CELL_OUTAGE_PERIOD",
                                                    params.cell_outage_period);
  params.cell_outage_duration = bench::knobs().f64_or(
      "EAB_CELL_OUTAGE_DURATION", params.cell_outage_duration);
  if (params.cell_outage_count > 0 &&
      params.cell_outage_period <= params.cell_outage_duration) {
    const char* raw = std::getenv("EAB_CELL_OUTAGE_PERIOD");
    bench::die_invalid_env("EAB_CELL_OUTAGE_PERIOD", raw == nullptr ? "" : raw,
                           "a period exceeding EAB_CELL_OUTAGE_DURATION "
                           "(blackouts must not overlap)");
  }
  const bool outages_on =
      params.ue_outage.enabled() || params.cell_outage_count > 0;

  std::vector<int> users_axis;
  for (int users = std::min(params.step, params.max_users);
       users <= params.max_users; users += params.step) {
    users_axis.push_back(users);
  }
  if (users_axis.back() != params.max_users) {
    users_axis.push_back(params.max_users);
  }

  std::printf("cell: %d channel pairs, %.0f s horizon, mean think 25 s, "
              "mobile benchmark, seed %llu\n",
              params.channels, params.horizon,
              static_cast<unsigned long long>(params.seed));
  if (g_cell_shards != 1) {  // default output stays byte-identical
    std::printf("cell: %d event-queue shards\n", g_cell_shards);
  }
  if (g_telemetry_tick > 0) {  // likewise: silent unless sampling is on
    std::printf("cell: telemetry tick %.0f s, budget %zu points\n",
                g_telemetry_tick, g_telemetry_budget);
  }
  if (params.ue_outage.enabled()) {  // silent when the radio stays healthy
    std::printf("cell: per-UE outages x%d, start %.2f s, period %.2f s, "
                "duration %.2f s, reestablish fail rate %.2f, seed %llu\n",
                params.ue_outage.count, params.ue_outage.start,
                params.ue_outage.period, params.ue_outage.duration,
                params.ue_outage.reestablish_fail_rate,
                static_cast<unsigned long long>(params.ue_outage.seed));
  }
  if (params.cell_outage_count > 0) {
    std::printf("cell: whole-cell blackouts x%d, start %.2f s, period %.2f s, "
                "duration %.2f s\n",
                params.cell_outage_count, params.cell_outage_start,
                params.cell_outage_period, params.cell_outage_duration);
  }

  // The co-simulated curves.  Default: the users-axis sweep shards across
  // the shared BatchRunner's threads (bit-identical to a serial loop for
  // any EAB_JOBS).  EAB_SUPERVISE=1: the same sweep fans out over forked,
  // heartbeat-supervised worker processes — one shard per (mode, point),
  // Original first — with durable checkpoint resume under
  // EAB_CHECKPOINT_DIR; stdout, BENCH_cell.json and the metrics snapshot
  // are byte-identical to the in-process path (the supervision report goes
  // to stderr, outside the deterministic output).
  std::vector<cell::CellResult> orig_results;
  std::vector<cell::CellResult> ea_results;
  if (bench::supervise_enabled()) {
    std::string fingerprint = "fig11-cell v1";
    bench::appendf(fingerprint,
                   " seed=%llu channels=%d horizon=%.17g shards=%d target=%.17g",
                   static_cast<unsigned long long>(params.seed),
                   params.channels, params.horizon, g_cell_shards,
                   params.target);
    if (g_telemetry_tick > 0) {
      // Only when sampling is on: a telemetry-off supervised run keeps the
      // exact pre-telemetry fingerprint, so its journals stay resumable.
      bench::appendf(fingerprint, " telemetry_tick=%.17g telemetry_budget=%zu",
                     g_telemetry_tick, g_telemetry_budget);
    }
    if (params.ue_outage.enabled()) {
      // Same convention as telemetry: an outage-off run keeps the exact
      // pre-outage fingerprint, so existing journals stay resumable.
      bench::appendf(fingerprint,
                     " ue_outage=%d:%.17g:%.17g:%.17g:%.17g:%llu",
                     params.ue_outage.count, params.ue_outage.start,
                     params.ue_outage.period, params.ue_outage.duration,
                     params.ue_outage.reestablish_fail_rate,
                     static_cast<unsigned long long>(params.ue_outage.seed));
    }
    if (params.cell_outage_count > 0) {
      bench::appendf(fingerprint, " cell_outage=%d:%.17g:%.17g:%.17g",
                     params.cell_outage_count, params.cell_outage_start,
                     params.cell_outage_period, params.cell_outage_duration);
    }
    for (const int users : users_axis) {
      bench::appendf(fingerprint, " u%d", users);
    }
    core::Supervisor supervisor(
        bench::supervisor_config_from_env("fig11_cell.journal", fingerprint));
    // One supervised run covers both modes: shard i < n is the Original
    // curve's i-th point, shard n + i the energy-aware one's.
    const std::size_t n = users_axis.size();
    std::vector<int> both_axis(users_axis);
    both_axis.insert(both_axis.end(), users_axis.begin(), users_axis.end());
    orig_results.resize(n);
    ea_results.resize(n);
    cell::CellConfig base =
        cell_config(browser::PipelineMode::kOriginal, params);
    const cell::CellConfig ea_base =
        cell_config(browser::PipelineMode::kEnergyAware, params);
    const auto report = supervisor.run(
        2 * n,
        [&](std::size_t shard) {
          cell::CellConfig config = shard < n ? base : ea_base;
          config.users = both_axis[shard];
          return cell::serialize_cell_result(cell::run_cell(config));
        },
        [&](std::size_t shard, std::string_view payload) {
          cell::CellResult result = cell::deserialize_cell_result(payload);
          if (shard < n) {
            orig_results[shard] = std::move(result);
          } else {
            ea_results[shard - n] = std::move(result);
          }
        });
    std::fprintf(stderr, "%s\n", report.summary().c_str());
    if (!report.ok()) {
      for (const core::ShardError& e : report.errors) {
        std::fprintf(stderr, "supervisor: shard %zu failed: %s\n", e.shard,
                     e.what.c_str());
      }
      return 1;
    }
  } else {
    orig_results = cell::run_cell_sweep(
        cell_config(browser::PipelineMode::kOriginal, params), users_axis,
        bench::shared_runner());
    ea_results = cell::run_cell_sweep(
        cell_config(browser::PipelineMode::kEnergyAware, params), users_axis,
        bench::shared_runner());
  }

  // The abstract model, scaled to the same small cell, for the side-by-side
  // column: measured service times, same channels/horizon.
  capacity::CapacityConfig sampling;
  const capacity::ServiceTimeDistribution orig_service(service_times(
      corpus::mobile_benchmark(), browser::PipelineMode::kOriginal, sampling));
  const capacity::ServiceTimeDistribution ea_service(service_times(
      corpus::mobile_benchmark(), browser::PipelineMode::kEnergyAware,
      sampling));
  capacity::CapacityConfig mgn;
  mgn.channels = params.channels;
  mgn.horizon = params.horizon;

  TextTable table({"users", "drop% orig (cell)", "drop% ea (cell)",
                   "drop% orig (M/G/N)", "drop% ea (M/G/N)", "busy orig",
                   "busy ea"});
  for (std::size_t i = 0; i < users_axis.size(); ++i) {
    mgn.users = users_axis[i];
    const auto mgn_orig = capacity::simulate_capacity(mgn, orig_service, 42);
    const auto mgn_ea = capacity::simulate_capacity(mgn, ea_service, 42);
    table.add_row(
        {std::to_string(users_axis[i]),
         format_fixed(100 * orig_results[i].drop_probability(), 2),
         format_fixed(100 * ea_results[i].drop_probability(), 2),
         format_fixed(100 * mgn_orig.drop_probability, 2),
         format_fixed(100 * mgn_ea.drop_probability, 2),
         format_fixed(orig_results[i].mean_busy_grants, 2),
         format_fixed(ea_results[i].mean_busy_grants, 2)});
  }
  std::printf("%s", table.render().c_str());

  const double cap_orig =
      cell::users_at_drop_target(users_axis, orig_results, params.target);
  const double cap_ea =
      cell::users_at_drop_target(users_axis, ea_results, params.target);
  std::printf("cell capacity at %.0f%% dropping: original %.1f users, "
              "energy-aware %.1f users -> +%.1f%%\n",
              params.target * 100, cap_orig, cap_ea,
              cap_orig > 0 ? 100.0 * (cap_ea - cap_orig) / cap_orig : 0.0);
  if (outages_on) {  // silent when the radio stays healthy
    std::uint64_t rlf_o = 0, rlf_e = 0, ok_o = 0, ok_e = 0, fail_o = 0,
                  fail_e = 0;
    for (std::size_t i = 0; i < users_axis.size(); ++i) {
      rlf_o += orig_results[i].rlf;
      rlf_e += ea_results[i].rlf;
      ok_o += orig_results[i].reestablish_ok;
      ok_e += ea_results[i].reestablish_ok;
      fail_o += orig_results[i].reestablish_fail;
      fail_e += ea_results[i].reestablish_fail;
    }
    std::printf("cell radio failures: original rlf %llu reestablish %llu/%llu"
                " ok/fail, energy-aware rlf %llu reestablish %llu/%llu"
                " ok/fail\n",
                static_cast<unsigned long long>(rlf_o),
                static_cast<unsigned long long>(ok_o),
                static_cast<unsigned long long>(fail_o),
                static_cast<unsigned long long>(rlf_e),
                static_cast<unsigned long long>(ok_e),
                static_cast<unsigned long long>(fail_e));
  }

  std::string json;
  bench::appendf(json,
                 "{\n"
                 "  \"channels\": %d,\n"
                 "  \"horizon_s\": %.17g,\n"
                 "  \"cell_seed\": %llu,\n"
                 "  \"drop_target\": %.17g,\n"
                 "  \"capacity_original\": %.17g,\n"
                 "  \"capacity_energy_aware\": %.17g,\n"
                 "  \"points\": [\n",
                 params.channels, params.horizon,
                 static_cast<unsigned long long>(params.seed), params.target,
                 cap_orig, cap_ea);
  for (std::size_t i = 0; i < users_axis.size(); ++i) {
    bench::appendf(
        json,
        "    {\"users\": %d,"
        " \"drop_original\": %.17g, \"drop_energy_aware\": %.17g,"
        " \"offered_original\": %llu, \"offered_energy_aware\": %llu,"
        " \"mean_busy_original\": %.17g, \"mean_busy_energy_aware\": %.17g,"
        " \"mean_ue_energy_original_j\": %.17g,"
        " \"mean_ue_energy_energy_aware_j\": %.17g",
        users_axis[i], orig_results[i].drop_probability(),
        ea_results[i].drop_probability(),
        static_cast<unsigned long long>(orig_results[i].offered),
        static_cast<unsigned long long>(ea_results[i].offered),
        orig_results[i].mean_busy_grants, ea_results[i].mean_busy_grants,
        mean_ue_energy(orig_results[i]), mean_ue_energy(ea_results[i]));
    if (outages_on) {
      // Radio-failure accounting rides along only when an outage knob is
      // set, so the default artifact stays byte-identical.
      bench::appendf(
          json,
          ", \"rlf_original\": %llu, \"rlf_energy_aware\": %llu,"
          " \"reestablish_ok_original\": %llu,"
          " \"reestablish_ok_energy_aware\": %llu,"
          " \"reestablish_fail_original\": %llu,"
          " \"reestablish_fail_energy_aware\": %llu,"
          " \"cell_outages\": %llu",
          static_cast<unsigned long long>(orig_results[i].rlf),
          static_cast<unsigned long long>(ea_results[i].rlf),
          static_cast<unsigned long long>(orig_results[i].reestablish_ok),
          static_cast<unsigned long long>(ea_results[i].reestablish_ok),
          static_cast<unsigned long long>(orig_results[i].reestablish_fail),
          static_cast<unsigned long long>(ea_results[i].reestablish_fail),
          static_cast<unsigned long long>(orig_results[i].cell_outages));
    }
    bench::appendf(json, "}%s\n", i + 1 < users_axis.size() ? "," : "");
  }
  bench::appendf(json, "  ]\n}\n");
  bench::write_artifact("BENCH_cell.json", json);
  bench::write_metrics_snapshot("cell", bench::shared_runner().metrics());

  // Cross-layer time series per (mode, users point) — only when sampling is
  // on, so the telemetry-off artifact set is byte-identical to a build
  // without the telemetry layer.  The series came through the same path the
  // sweep results did (in-process, sharded or supervised deserialization),
  // so this JSON is byte-identical across all three execution modes.
  if (g_telemetry_tick > 0) {
    std::string ts;
    bench::appendf(ts, "{\n  \"tick_s\": %.17g,\n  \"point_budget\": %zu,\n",
                   g_telemetry_tick, g_telemetry_budget);
    const auto append_mode = [&](const char* label,
                                 const std::vector<cell::CellResult>& results,
                                 const char* trailer) {
      bench::appendf(ts, "  \"%s\": {\n", label);
      for (std::size_t i = 0; i < users_axis.size(); ++i) {
        bench::appendf(ts, "    \"u%d\": ", users_axis[i]);
        if (results[i].telemetry) {
          ts += results[i].telemetry->to_json();
        } else {
          ts += "null";
        }
        ts += i + 1 < users_axis.size() ? ",\n" : "\n";
      }
      bench::appendf(ts, "  }%s\n", trailer);
    };
    append_mode("original", orig_results, ",");
    append_mode("energy_aware", ea_results, "");
    ts += "}\n";
    bench::write_artifact("BENCH_cell.timeseries.json", ts);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_fig11_capacity [--cell]",
          "network capacity: drop probability vs users (--cell runs the "
          "first-principles shared-cell co-simulation)",
          {"EAB_CELL_SEED", "EAB_CELL_USERS", "EAB_CELL_SHARDS",
           "EAB_CELL_OUTAGE_COUNT", "EAB_CELL_OUTAGE_START",
           "EAB_CELL_OUTAGE_PERIOD", "EAB_CELL_OUTAGE_DURATION",
           "EAB_OUTAGE_COUNT", "EAB_OUTAGE_START", "EAB_OUTAGE_PERIOD",
           "EAB_OUTAGE_DURATION", "EAB_OUTAGE_FAIL_RATE", "EAB_OUTAGE_SEED",
           "EAB_TELEMETRY", "EAB_TELEMETRY_TICK", "EAB_TELEMETRY_BUDGET",
           "EAB_SUPERVISE", "EAB_WORKERS", "EAB_CHECKPOINT_DIR",
           "EAB_SELF_CHAOS", "EAB_SELF_CHAOS_KILLS", "EAB_SELF_CHAOS_ORC",
           "EAB_PROGRESS", "EAB_JOBS"})) {
    return 0;
  }
  if (argc > 1) {
    if (std::strcmp(argv[1], "--cell") == 0) return run_cell_mode();
    std::fprintf(stderr, "usage: %s [--cell]\n", argv[0]);
    return 2;
  }
  bench::print_header("Fig 11", "network capacity: drop probability vs users");
  report("mobile benchmark", corpus::mobile_benchmark(), 300, 900, 50, 0.143);
  report("full benchmark", corpus::full_benchmark(), 150, 500, 25, 0.196);
  return 0;
}
