// Regenerates Fig 11: session dropping probability vs number of users, for
// the original and energy-aware browsers, on both benchmarks.
//
// M/G/200 loss system, per-user Poisson think time (mean 25 s), 4-hour
// horizon; the service time of a session is the measured data-transmission
// time of opening a page.  Paper result: at equal dropping probability the
// energy-aware browser supports 14.3 % more users on the mobile benchmark
// and 19.6 % more on the full benchmark.
#include "bench_common.hpp"

#include "capacity/mgn.hpp"

namespace {

using namespace eab;

std::vector<Seconds> service_times(const std::vector<corpus::PageSpec>& specs,
                                   browser::PipelineMode mode) {
  // One batched sweep per mode; the shared memo cache also means the Fig 10
  // harness (same specs, same configs) would reuse these loads in-process.
  std::vector<Seconds> times;
  const auto config = core::StackConfig::for_mode(mode);
  for (const auto& r : bench::run_loads(specs, config)) {
    times.push_back(r.metrics.transmission_time());
  }
  return times;
}

/// Users supported at the target drop probability (linear scan + interpolate).
double capacity_at(const capacity::ServiceTimeDistribution& service, int lo,
                   int hi, int step, double target) {
  capacity::CapacityConfig config;
  double previous_users = lo;
  double previous_drop = 0;
  for (int users = lo; users <= hi; users += step) {
    config.users = users;
    const auto result = capacity::simulate_capacity(config, service, 42);
    if (result.drop_probability >= target && users > lo) {
      const double slope = (result.drop_probability - previous_drop) /
                           (users - previous_users);
      return previous_users + (target - previous_drop) / std::max(1e-9, slope);
    }
    previous_users = users;
    previous_drop = result.drop_probability;
  }
  return hi;
}

void report(const std::string& label, const std::vector<corpus::PageSpec>& specs,
            int lo, int hi, int step, double paper_gain) {
  const capacity::ServiceTimeDistribution orig(
      service_times(specs, browser::PipelineMode::kOriginal));
  const capacity::ServiceTimeDistribution ea(
      service_times(specs, browser::PipelineMode::kEnergyAware));

  std::printf("%s (mean service: original %.1f s, energy-aware %.1f s)\n",
              label.c_str(), orig.mean(), ea.mean());
  TextTable table({"users", "drop% original (95% CI)", "drop% energy-aware (95% CI)"});
  capacity::CapacityConfig config;
  for (int users = lo; users <= hi; users += step) {
    config.users = users;
    const auto drop_orig = capacity::estimate_capacity(config, orig, 42, 6);
    const auto drop_ea = capacity::estimate_capacity(config, ea, 42, 6);
    table.add_row(
        {std::to_string(users),
         format_fixed(100 * drop_orig.mean_drop, 2) + " +-" +
             format_fixed(100 * drop_orig.ci_halfwidth, 2),
         format_fixed(100 * drop_ea.mean_drop, 2) + " +-" +
             format_fixed(100 * drop_ea.ci_halfwidth, 2)});
  }
  std::printf("%s", table.render().c_str());

  const double target = 0.02;  // 2 % dropping probability service level
  const double cap_orig = capacity_at(orig, lo, hi, step, target);
  const double cap_ea = capacity_at(ea, lo, hi, step, target);
  std::printf("capacity at %.0f%% dropping: original %.0f users, "
              "energy-aware %.0f users -> +%.1f%% (paper: +%.1f%%)\n\n",
              target * 100, cap_orig, cap_ea,
              100.0 * (cap_ea - cap_orig) / cap_orig, paper_gain * 100);
}

}  // namespace

int main() {
  using namespace eab;
  bench::print_header("Fig 11", "network capacity: drop probability vs users");
  report("mobile benchmark", corpus::mobile_benchmark(), 300, 900, 50, 0.143);
  report("full benchmark", corpus::full_benchmark(), 150, 500, 25, 0.196);
  return 0;
}
