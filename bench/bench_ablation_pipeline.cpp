// Ablation: which parts of the reorganized pipeline buy what?
//
// The paper's technique is a bundle: (a) defer the full CSS parse to the
// layout phase and only scan for references, (b) defer image decoding,
// (c) fetch discovery-bearing resources first, (d) replace repeated
// intermediate reflows with one cheap text display.  This bench switches the
// pieces off one at a time on the full-version benchmark and reports how
// much of the transmission-time and energy saving each is responsible for —
// the design-choice accounting DESIGN.md calls for.
#include "bench_common.hpp"

namespace {

using namespace eab;

struct Variant {
  const char* name;
  core::StackConfig config;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_ablation_pipeline",
          "energy-aware pipeline, one piece off at a time", {"EAB_JOBS"})) {
    return 0;
  }
  bench::print_header("Ablation", "energy-aware pipeline, one piece off at a time");

  const auto specs = corpus::full_benchmark();
  const auto baseline = bench::run_benchmark(
      specs, core::StackConfig::for_mode(browser::PipelineMode::kOriginal));

  std::vector<Variant> variants;
  {
    Variant full{"full energy-aware bundle",
                 core::StackConfig::for_mode(browser::PipelineMode::kEnergyAware)};
    variants.push_back(full);

    Variant no_priority = full;
    no_priority.name = "  - without priority fetch";
    no_priority.config.pipeline.priority_fetch = false;
    variants.push_back(no_priority);

    Variant no_css_defer = full;
    no_css_defer.name = "  - without deferred CSS parse";
    no_css_defer.config.pipeline.defer_css_parse = false;
    variants.push_back(no_css_defer);

    Variant no_display = full;
    no_display.name = "  - without text intermediate display";
    no_display.config.pipeline.intermediate_text_display = false;
    variants.push_back(no_display);

    Variant no_release = full;
    no_release.name = "  - without forced radio release";
    no_release.config.force_idle_at_tx = false;
    variants.push_back(no_release);
  }

  TextTable table({"variant", "tx saving", "total saving", "energy+20s saving",
                   "first display (s)"});
  table.add_row({"stock browser (baseline)", "-", "-", "-",
                 format_fixed(baseline.first_display, 1)});
  for (const Variant& variant : variants) {
    const auto result = bench::run_benchmark(specs, variant.config);
    table.add_row({variant.name,
                   format_percent(bench::saving(baseline.tx_time, result.tx_time)),
                   format_percent(bench::saving(baseline.total_time, result.total_time)),
                   format_percent(bench::saving(baseline.energy_20s, result.energy_20s)),
                   format_fixed(result.first_display, 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nreading: a piece matters when removing it moves a column.\n"
      "The forced radio release carries roughly half the energy saving;\n"
      "the text display carries the first-paint win. Priority fetch and\n"
      "CSS deferral barely move transmission time on this corpus - the tx\n"
      "saving comes from what the bundle never does during loading:\n"
      "image decoding and repeated reflow/redraw between discoveries.\n"
      "(Deferring the CSS parse even lengthens the total load slightly,\n"
      "because the parse would otherwise overlap network time - kept\n"
      "because releasing the radio earlier outweighs it on energy.)\n");
  return 0;
}
