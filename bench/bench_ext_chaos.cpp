// Chaos contract harness (robustness extension; no paper counterpart).
//
// Sweeps EAB_CHAOS_SEEDS (default 256) seed-derived cross-layer chaos
// scenarios — composed network faults, RIL fast-dormancy failures, RRC
// timer drift, mid-load user aborts, cache eviction storms, CPU slowdown —
// through the shared batch engine, checks every run against the invariant
// oracle (trace audit + liveness), and delta-debugs any failure down to a
// minimal reproducer.  Emits BENCH_chaos.json with the survival rate,
// quarantine count and mean shrink cost; exits non-zero on any finding.
// Shrunk reproducers are dumped as replayable JSON under EAB_CHAOS_OUT.

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "chaos/reproducer.hpp"
#include "chaos/runner.hpp"

namespace {

constexpr std::uint64_t kSweepBase = 20260807;

int run() {
  using namespace eab;
  const int count = bench::chaos_seed_count_from_env(256);
  bench::print_header("EXT chaos contract",
                      std::to_string(count) +
                          " seeded cross-layer fault scenarios, audited "
                          "and shrunk");

  core::BatchRunner& batch = bench::shared_runner();
  chaos::ChaosRunner runner(batch);
  const chaos::ChaosReport report =
      runner.sweep(chaos::chaos_seeds(kSweepBase, count));

  double mean_shrink = 0;
  for (const chaos::ChaosFinding& finding : report.findings) {
    mean_shrink += finding.shrink_tests;
  }
  if (!report.findings.empty()) {
    mean_shrink /= static_cast<double>(report.findings.size());
  }

  std::printf("scenarios        %d\n", report.scenarios);
  std::printf("survived         %d  (%.4f)\n", report.survived,
              report.survival_rate());
  std::printf("quarantined      %d\n", report.quarantined);
  std::printf("invariant fails  %d\n", report.failures);
  std::printf("mean shrink cost %.1f re-runs per finding\n", mean_shrink);

  const std::string out_dir = bench::chaos_out_dir();
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const chaos::ChaosFinding& finding = report.findings[i];
    std::printf("FINDING seed=%llu atoms=%zu -> minimal=%zu\n",
                static_cast<unsigned long long>(finding.scenario.seed),
                finding.scenario.faults.size(),
                finding.minimal.faults.size());
    for (const std::string& violation : finding.violations) {
      std::printf("  %s\n", violation.c_str());
    }
    if (!out_dir.empty()) {
      const std::string path = out_dir + "/chaos_repro_" +
                               std::to_string(finding.scenario.seed) + ".json";
      if (eab::write_file_atomic(path, finding.reproducer_json())) {
        std::printf("  wrote %s\n", path.c_str());
      }
    }
  }

  std::string json;
  bench::appendf(json,
                 "{\n"
                 "  \"scenarios\": %d,\n"
                 "  \"survived\": %d,\n"
                 "  \"survival_rate\": %.6f,\n"
                 "  \"quarantined\": %d,\n"
                 "  \"invariant_failures\": %d,\n"
                 "  \"mean_shrink_tests\": %.3f\n"
                 "}\n",
                 report.scenarios, report.survived, report.survival_rate(),
                 report.quarantined, report.failures, mean_shrink);
  bench::write_artifact("BENCH_chaos.json", json);
  bench::write_metrics_snapshot("chaos", batch.metrics());

  if (!report.ok()) {
    std::printf("CHAOS CONTRACT VIOLATED: %d finding(s)\n", report.failures);
    return 1;
  }
  std::printf("chaos contract held: %d/%d scenarios survived\n",
              report.survived, report.scenarios);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (eab::bench::maybe_print_help(
          argc, argv, "bench_ext_chaos",
          "randomized chaos sweep over the full stack's determinism and "
          "liveness contracts",
          {"EAB_CHAOS_SEEDS", "EAB_CHAOS_OUT", "EAB_JOBS"})) {
    return 0;
  }
  return run();
}
