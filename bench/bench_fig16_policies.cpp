// Regenerates Fig 16: power and delay savings of the six radio policies of
// Table 6, measured over whole browsing sessions.
//
// Paper results: Original-Always-off *increases* delay (-1.47 %) and saves
// the least power; Energy-Aware Always-off saves the least delay among the
// reorganized-browser policies (9.2 %); Accurate-20 saves the most delay
// (13.6 %); Accurate-9 saves the most power (26.1 %); each Predict variant
// lands slightly below its oracle.
#include "bench_common.hpp"

#include "core/session.hpp"

namespace {

using namespace eab;

struct SessionTotals {
  Joules energy = 0;
  Seconds delay = 0;
  int audit_failures = 0;  ///< sessions whose trace violated an invariant
};

/// Runs every user's visit sequence under one policy and sums the totals.
/// Sessions of different policies end at different times; energy is compared
/// over a common horizon by padding the shorter session with IDLE power.
/// Under EAB_TRACE=1 each session records a full trace and the TraceAuditor
/// replays it against the session's own radio config and energy integral.
SessionTotals run_policy(
    const std::vector<std::vector<core::PageVisit>>& sessions,
    core::SessionPolicy policy, Seconds threshold, const gbrt::GbrtModel* model,
    Seconds horizon_per_user) {
  SessionTotals totals;
  core::SessionConfig config;
  config.policy = policy;
  config.threshold = threshold;
  config.predictor.model = model;
  const bool traced = bench::trace_enabled();
  std::uint64_t seed = 1;
  for (const auto& visits : sessions) {
    obs::TraceRecorder recorder;
    config.trace = traced ? &recorder : nullptr;
    const auto result = core::run_session(visits, config, seed++);
    totals.energy += result.energy.with_reading_j;
    if (result.energy.window_s < horizon_per_user) {
      totals.energy +=
          config.stack.power.idle * (horizon_per_user - result.energy.window_s);
    }
    totals.delay += result.total_load_delay;
    if (traced) {
      obs::AuditInputs inputs;
      inputs.rrc = config.stack.rrc;
      inputs.power = config.stack.power;
      inputs.max_retries = config.stack.retry.max_retries;
      inputs.radio_energy = result.energy.radio_j;
      inputs.t_end = result.energy.window_s;
      const auto report = obs::TraceAuditor().audit(recorder, inputs);
      if (!report.ok()) {
        ++totals.audit_failures;
        std::printf("AUDIT FAIL [%s user %llu]:\n%s\n",
                    core::to_string(policy),
                    static_cast<unsigned long long>(seed - 1),
                    report.summary().c_str());
      }
    }
  }
  return totals;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_fig16_policies",
          "power and delay saving of the six policies", {"EAB_TRACE",
          "EAB_TRACE_OUT",
          "EAB_JOBS"})) {
    return 0;
  }
  bench::print_header("Fig 16", "power and delay saving of the six policies");

  // Build the page library, the user trace and the trained predictor.
  auto records = bench::build_page_library(3);
  trace::TraceConfig trace_config;
  trace_config.users = 12;                    // keep the bench quick
  trace_config.browsing_per_user = 1200.0;    // 20 min per user
  trace::TraceGenerator generator(std::move(records), trace_config, 11);
  const auto views = generator.generate();

  const auto filtered = trace::to_log_dataset(views, generator.records(), 2.0);
  gbrt::GbrtParams params;
  params.trees = 250;
  params.tree.max_leaves = 8;
  const auto model = gbrt::train_gbrt(filtered, params, 3);

  // Group views into per-user sessions.
  std::vector<std::vector<core::PageVisit>> sessions(
      static_cast<std::size_t>(trace_config.users));
  for (const auto& view : views) {
    sessions[static_cast<std::size_t>(view.user)].push_back(core::PageVisit{
        &generator.records()[view.page_index].spec, view.reading_time});
  }
  std::size_t pages = 0;
  for (const auto& s : sessions) pages += s.size();
  std::printf("sessions: %zu users, %zu page views\n\n", sessions.size(), pages);

  const Seconds horizon = trace_config.browsing_per_user * 2.5;
  const SessionTotals baseline = run_policy(
      sessions, core::SessionPolicy::kBaseline, 0, nullptr, horizon);

  struct Case {
    const char* name;
    core::SessionPolicy policy;
    Seconds threshold;
    bool needs_model;
    const char* paper;
  };
  const Case cases[] = {
      {"Original Always-off", core::SessionPolicy::kOriginalAlwaysOff, 0, false,
       "delay -1.47%"},
      {"Energy-Aware Always-off", core::SessionPolicy::kEnergyAwareAlwaysOff, 0,
       false, "delay +9.2%"},
      {"Accurate-9", core::SessionPolicy::kAccurate, 9.0, false,
       "power +26.1% (max)"},
      {"Predict-9", core::SessionPolicy::kPredict, 9.0, true,
       "slightly below Accurate-9"},
      {"Accurate-20", core::SessionPolicy::kAccurate, 20.0, false,
       "delay +13.6% (max)"},
      {"Predict-20", core::SessionPolicy::kPredict, 20.0, true,
       "slightly below Accurate-20"},
  };

  int audit_failures = baseline.audit_failures;
  TextTable table({"case", "power saving", "delay saving", "paper"});
  for (const Case& c : cases) {
    const SessionTotals totals =
        run_policy(sessions, c.policy, c.threshold,
                   c.needs_model ? &model : nullptr, horizon);
    audit_failures += totals.audit_failures;
    table.add_row({c.name,
                   format_percent(bench::saving(baseline.energy, totals.energy)),
                   format_percent(bench::saving(baseline.delay, totals.delay)),
                   c.paper});
  }
  std::printf("%s", table.render().c_str());
  if (bench::trace_enabled()) {
    std::printf("audit: %d session traces violated invariants\n",
                audit_failures);
  }
  return audit_failures > 0 ? 1 : 0;
}
