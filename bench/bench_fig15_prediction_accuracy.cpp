// Regenerates Fig 15: GBRT reading-time prediction accuracy with and
// without the interest threshold, at both decision thresholds.
//
// Accuracy is the paper's criterion (Section 5.6.1): a prediction counts as
// correct when it falls on the same side of the threshold (Tp = 9 s or
// Td = 20 s) as the true reading time.  The comparison holds the evaluation
// set fixed — the held-out views on which the deployed system would actually
// decide, i.e. those that survive the alpha = 2 s wait — and varies only the
// training data: "without interest threshold" trains on everything including
// the feature-independent bounces, "with" excludes them (Section 4.3.4).
// Paper result: the interest threshold buys at least +10 points of accuracy.
#include <cmath>

#include "bench_common.hpp"

namespace {

using namespace eab;

gbrt::GbrtModel fit(const gbrt::Dataset& train, std::uint64_t seed) {
  gbrt::GbrtParams params;
  params.trees = 250;
  params.tree.max_leaves = 8;  // the paper's 8-node trees
  params.shrinkage = 0.08;
  return gbrt::train_gbrt(train, params, seed);
}

double accuracy_at(const gbrt::GbrtModel& model, const gbrt::Dataset& test,
                   Seconds threshold) {
  // Model and targets are log-seconds; compare in the log domain.
  return gbrt::threshold_accuracy(model.predict_all(test), test.targets(),
                                  std::log(threshold));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_fig15_prediction_accuracy",
          "prediction accuracy with/without interest threshold", {"EAB_JOBS"})) {
    return 0;
  }
  bench::print_header("Fig 15",
                      "prediction accuracy with/without interest threshold");

  auto records = bench::build_page_library();
  trace::TraceGenerator generator(std::move(records), trace::TraceConfig{}, 11);
  const auto views = generator.generate();

  // Time-ordered 70/30 split of the views, then build the datasets.
  const std::size_t cut = views.size() * 7 / 10;
  const std::vector<trace::PageView> train_views(views.begin(),
                                                 views.begin() + cut);
  const std::vector<trace::PageView> test_views(views.begin() + cut,
                                                views.end());

  const auto train_all = trace::to_log_dataset(train_views, generator.records());
  const auto train_filtered =
      trace::to_log_dataset(train_views, generator.records(), 2.0);
  // Both models are judged on the same decisions: held-out views that
  // survive the alpha wait.
  const auto test = trace::to_log_dataset(test_views, generator.records(), 2.0);

  std::printf("training views: %zu without threshold, %zu with; "
              "%zu held-out decisions\n\n",
              train_all.size(), train_filtered.size(), test.size());

  const auto model_without = fit(train_all, 3);
  const auto model_with = fit(train_filtered, 3);

  TextTable table({"threshold", "without interest thr.", "with interest thr.",
                   "gain", "paper gain"});
  for (const Seconds threshold : {9.0, 20.0}) {
    const double without = accuracy_at(model_without, test, threshold);
    const double with_thr = accuracy_at(model_with, test, threshold);
    table.add_row(
        {threshold == 9.0 ? "Tp = 9 s" : "Td = 20 s", format_percent(without),
         format_percent(with_thr), format_percent(with_thr - without),
         ">= +10%"});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
