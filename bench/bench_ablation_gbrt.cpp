// Ablation: reading-time predictor design choices.
//
// Three questions the deployed predictor answers differently than a naive
// setup, each isolated here on the same trace and the same held-out
// decisions:
//   1. target domain — regress log(seconds) (deployed) vs raw seconds
//      (naive least squares chases the heavy tail);
//   2. model class — GBRT vs the best single regression tree vs a linear
//      ridge fit (Table 4's no-linear-signal result predicts the latter
//      fails);
//   3. ensemble size — accuracy as trees grow (diminishing returns justify
//      the paper's small-phone-budget ensembles).
#include <cmath>

#include "bench_common.hpp"

#include "util/stats.hpp"

namespace {

using namespace eab;

double accuracy(const std::vector<double>& predictions,
                const std::vector<double>& truth, double threshold) {
  return gbrt::threshold_accuracy(predictions, truth, threshold);
}

/// Ordinary least squares with a tiny ridge term (closed form, 10 features).
std::vector<double> linear_fit_predict(const gbrt::Dataset& train,
                                       const gbrt::Dataset& test) {
  const std::size_t d = train.feature_count() + 1;  // + intercept
  std::vector<std::vector<double>> xtx(d, std::vector<double>(d, 0.0));
  std::vector<double> xty(d, 0.0);
  for (std::size_t i = 0; i < train.size(); ++i) {
    std::vector<double> x = train.row(i);
    x.push_back(1.0);
    for (std::size_t a = 0; a < d; ++a) {
      xty[a] += x[a] * train.target(i);
      for (std::size_t b = 0; b < d; ++b) xtx[a][b] += x[a] * x[b];
    }
  }
  for (std::size_t a = 0; a < d; ++a) xtx[a][a] += 1e-6 * train.size();
  // Gaussian elimination.
  for (std::size_t col = 0; col < d; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < d; ++r) {
      if (std::abs(xtx[r][col]) > std::abs(xtx[pivot][col])) pivot = r;
    }
    std::swap(xtx[col], xtx[pivot]);
    std::swap(xty[col], xty[pivot]);
    for (std::size_t r = 0; r < d; ++r) {
      if (r == col || xtx[r][col] == 0) continue;
      const double factor = xtx[r][col] / xtx[col][col];
      for (std::size_t c = col; c < d; ++c) xtx[r][c] -= factor * xtx[col][c];
      xty[r] -= factor * xty[col];
    }
  }
  std::vector<double> weights(d);
  for (std::size_t a = 0; a < d; ++a) weights[a] = xty[a] / xtx[a][a];

  std::vector<double> predictions;
  for (std::size_t i = 0; i < test.size(); ++i) {
    double value = weights[d - 1];
    const auto& row = test.row(i);
    for (std::size_t f = 0; f < row.size(); ++f) value += weights[f] * row[f];
    predictions.push_back(value);
  }
  return predictions;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_ablation_gbrt",
          "reading-time predictor design choices", {"EAB_JOBS"})) {
    return 0;
  }
  bench::print_header("Ablation", "reading-time predictor design choices");

  auto records = bench::build_page_library();
  trace::TraceGenerator generator(std::move(records), trace::TraceConfig{}, 11);
  const auto views = generator.generate();
  const std::size_t cut = views.size() * 7 / 10;
  const std::vector<trace::PageView> train_views(views.begin(), views.begin() + cut);
  const std::vector<trace::PageView> test_views(views.begin() + cut, views.end());

  const auto train_log = trace::to_log_dataset(train_views, generator.records(), 2.0);
  const auto test_log = trace::to_log_dataset(test_views, generator.records(), 2.0);
  const auto train_raw = trace::to_dataset(train_views, generator.records(), 2.0);
  const auto test_raw = trace::to_dataset(test_views, generator.records(), 2.0);

  gbrt::GbrtParams params;
  params.trees = 250;
  params.tree.max_leaves = 8;

  // 1. target domain
  const auto model_log = gbrt::train_gbrt(train_log, params, 3);
  const auto model_raw = gbrt::train_gbrt(train_raw, params, 3);
  TextTable domain({"target domain", "acc @ 9s", "acc @ 20s"});
  domain.add_row({"log seconds (deployed)",
                  format_percent(accuracy(model_log.predict_all(test_log),
                                          test_log.targets(), std::log(9.0))),
                  format_percent(accuracy(model_log.predict_all(test_log),
                                          test_log.targets(), std::log(20.0)))});
  domain.add_row({"raw seconds",
                  format_percent(accuracy(model_raw.predict_all(test_raw),
                                          test_raw.targets(), 9.0)),
                  format_percent(accuracy(model_raw.predict_all(test_raw),
                                          test_raw.targets(), 20.0))});
  std::printf("%s\n", domain.render().c_str());

  // 2. model class
  gbrt::GbrtParams stump = params;
  stump.trees = 1;
  stump.shrinkage = 1.0;
  stump.tree.max_leaves = 8;
  const auto single_tree = gbrt::train_gbrt(train_log, stump, 3);
  TextTable model_class({"model", "acc @ 9s", "acc @ 20s"});
  model_class.add_row(
      {"GBRT (250 x 8-leaf)",
       format_percent(accuracy(model_log.predict_all(test_log),
                               test_log.targets(), std::log(9.0))),
       format_percent(accuracy(model_log.predict_all(test_log),
                               test_log.targets(), std::log(20.0)))});
  model_class.add_row(
      {"single 8-leaf tree",
       format_percent(accuracy(single_tree.predict_all(test_log),
                               test_log.targets(), std::log(9.0))),
       format_percent(accuracy(single_tree.predict_all(test_log),
                               test_log.targets(), std::log(20.0)))});
  const auto linear = linear_fit_predict(train_log, test_log);
  model_class.add_row(
      {"linear least squares",
       format_percent(accuracy(linear, test_log.targets(), std::log(9.0))),
       format_percent(accuracy(linear, test_log.targets(), std::log(20.0)))});
  std::printf("%s\n", model_class.render().c_str());

  // 3. ensemble size
  TextTable size({"trees", "acc @ 9s", "train MSE (log s)"});
  for (const std::size_t trees : {10u, 50u, 150u, 400u}) {
    gbrt::GbrtParams sized = params;
    sized.trees = trees;
    const auto model = gbrt::train_gbrt(train_log, sized, 3);
    size.add_row({std::to_string(trees),
                  format_percent(accuracy(model.predict_all(test_log),
                                          test_log.targets(), std::log(9.0))),
                  format_fixed(gbrt::mse(model, train_log), 3)});
  }
  std::printf("%s", size.render().c_str());
  return 0;
}
