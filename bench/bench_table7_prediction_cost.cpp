// Regenerates Table 7: computational cost of GBRT prediction as a function
// of ensemble size (1 000 / 10 000 / 20 000 trees of 8 nodes each).
//
// Paper (Android Dev Phone 2): 0.027 / 0.295 / 0.543 s and
// 0.016 / 0.177 / 0.326 J.  Our hardware is a desktop-class CPU, so the
// absolute times are far smaller; the *linear scaling* in the number of
// trees is the reproduced property.  Energy is derived with the paper's own
// method: prediction time x 0.6 W (fully-running-CPU power from Table 5).
//
// This binary registers google-benchmark timers; it also prints the paper
// comparison table after the timing run.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "browser/features.hpp"
#include "gbrt/model.hpp"
#include "knobs.hpp"
#include "util/table.hpp"

namespace {

using namespace eab;

const gbrt::GbrtModel& model_with_trees(std::size_t trees) {
  static std::vector<std::pair<std::size_t, gbrt::GbrtModel>> cache;
  for (const auto& [count, model] : cache) {
    if (count == trees) return model;
  }
  cache.emplace_back(trees, gbrt::GbrtModel::random_model(
                                trees, /*leaves=*/4,  // 8 nodes ~= 4 leaves
                                browser::PageFeatures::kCount, 99));
  return cache.back().second;
}

void BM_Predict(benchmark::State& state) {
  const auto& model = model_with_trees(static_cast<std::size_t>(state.range(0)));
  const std::vector<double> features = {12.0, 180.0, 40.0, 4.0, 20.0,
                                        300.0, 1.5,   60.0, 2400.0, 320.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(features));
  }
}

BENCHMARK(BM_Predict)->Arg(1000)->Arg(10000)->Arg(20000);

double measure_seconds(const gbrt::GbrtModel& model) {
  const std::vector<double> features = {12.0, 180.0, 40.0, 4.0, 20.0,
                                        300.0, 1.5,   60.0, 2400.0, 320.0};
  // Repeat until the measurement is comfortably above the clock resolution.
  const int repeats = 2000;
  const auto start = std::chrono::steady_clock::now();
  double sink = 0;
  for (int i = 0; i < repeats; ++i) sink += model.predict(features);
  const auto stop = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(sink);
  return std::chrono::duration<double>(stop - start).count() /
         static_cast<double>(repeats);
}

void print_paper_table() {
  TextTable table({"trees", "time (s)", "energy (J, t x 0.6 W)",
                   "paper time (s)", "paper energy (J)"});
  const struct {
    std::size_t trees;
    const char* paper_time;
    const char* paper_energy;
  } rows[] = {{1000, "0.027", "0.016"},
              {10000, "0.295", "0.177"},
              {20000, "0.543", "0.326"}};
  double first_time = 0;
  for (const auto& row : rows) {
    const double seconds = measure_seconds(model_with_trees(row.trees));
    if (first_time == 0) first_time = seconds;
    table.add_row({std::to_string(row.trees), format_fixed(seconds, 6),
                   format_fixed(seconds * 0.6, 6), row.paper_time,
                   row.paper_energy});
  }
  std::printf("\nTable 7 — prediction cost vs ensemble size\n%s",
              table.render().c_str());
  std::printf("\nscaling is linear in tree count on both platforms; the\n"
              "phone/desktop absolute gap is the expected hardware ratio.\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (eab::bench::maybe_print_help(
          argc, argv, "bench_table7_prediction_cost",
          "wall-clock cost of one reading-time prediction", {})) {
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_paper_table();
  return 0;
}
