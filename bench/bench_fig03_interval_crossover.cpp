// Regenerates Fig 3: energy of the timer-driven ("Original") radio policy vs
// the intuitive switch-to-IDLE-immediately policy, as a function of the gap
// between two small transfers.
//
// Paper findings: the intuitive policy only saves energy when the interval
// exceeds ~9 s (this crossover is why Tp = 9 s), and it adds ~1.75 s of
// extra latency to the second transfer.
#include "bench_common.hpp"

#include "net/shared_link.hpp"
#include "net/socket_downloader.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace eab;

struct CycleResult {
  Joules energy = 0;        ///< from end of transfer 1 to end of transfer 2
  Seconds second_delay = 0; ///< request-to-completion latency of transfer 2
};

/// Runs two 1 KB transfers `interval` seconds apart; with `intuitive` the
/// radio is forced to IDLE right after the first completes.
CycleResult run_cycle(Seconds interval, bool intuitive) {
  core::StackConfig config;
  sim::Simulator sim;
  radio::RrcMachine rrc(sim, config.rrc, config.power);
  net::SharedLink link(sim, config.link.dch_bandwidth);
  net::SocketDownloader socket(sim, link, rrc, config.link);

  CycleResult result;
  Seconds first_end = 0;
  Seconds second_start = 0;
  Seconds second_end = 0;

  socket.download(kilobytes(1), [&](Seconds, Seconds finished) {
    first_end = finished;
    if (intuitive) rrc.force_idle();
    sim.schedule_in(interval, [&] {
      second_start = sim.now();
      socket.download(kilobytes(1), [&](Seconds, Seconds done) {
        second_end = done;
      });
    });
  });
  sim.run_until(3600);

  result.energy = rrc.power().energy(first_end, second_end);
  result.second_delay = second_end - second_start;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_fig03_interval_crossover",
          "energy vs transfer interval: timer-driven vs always-IDLE", {"EAB_JOBS"})) {
    return 0;
  }
  bench::print_header(
      "Fig 3", "energy vs transfer interval: timer-driven vs always-IDLE");

  TextTable table({"interval(s)", "Original(J)", "Intuitive(J)", "saving(J)"});
  double crossover = -1;
  double previous_saving = 0;
  for (int interval = 1; interval <= 24; ++interval) {
    const CycleResult original = run_cycle(interval, false);
    const CycleResult intuitive = run_cycle(interval, true);
    const double saving = original.energy - intuitive.energy;
    if (crossover < 0 && saving > 0 && previous_saving <= 0 && interval > 1) {
      crossover = interval;
    }
    previous_saving = saving;
    table.add_row({std::to_string(interval), format_fixed(original.energy, 2),
                   format_fixed(intuitive.energy, 2), format_fixed(saving, 2)});
  }
  std::printf("%s", table.render().c_str());

  const CycleResult original_delay = run_cycle(12, false);
  const CycleResult intuitive_delay = run_cycle(12, true);
  std::printf("\ncrossover interval : %.0f s   (paper: ~9 s)\n", crossover);
  std::printf("extra delay of intuitive policy: %.2f s  (paper: ~1.75 s)\n",
              intuitive_delay.second_delay - original_delay.second_delay);
  return 0;
}
