// Regenerates Fig 8: data transmission time and total loading time for the
// mobile-version and full-version benchmarks, original vs energy-aware,
// plus the two featured pages m.cnn.com and www.motors.ebay.com (Fig 8(b)).
//
// Paper-reported savings:
//   full benchmark:   data transmission −27 %, total loading −17 %
//   mobile benchmark: data transmission −15 %, total loading −2.5 %
//   www.motors.ebay.com: tx −~31 %, total −~20 %
//   m.cnn.com:           tx −~15 %, total −~2.2 %
#include "bench_common.hpp"

namespace {

using namespace eab;

void report_pair(const std::string& label, const bench::BenchmarkAverages& orig,
                 const bench::BenchmarkAverages& ea, double paper_tx,
                 double paper_total) {
  TextTable table({"", "Original", "Energy-Aware", "saving", "paper"});
  table.add_row({label + " data transmission (s)", format_fixed(orig.tx_time, 1),
                 format_fixed(ea.tx_time, 1),
                 format_percent(bench::saving(orig.tx_time, ea.tx_time)),
                 format_percent(paper_tx)});
  table.add_row({label + " total loading (s)", format_fixed(orig.total_time, 1),
                 format_fixed(ea.total_time, 1),
                 format_percent(bench::saving(orig.total_time, ea.total_time)),
                 format_percent(paper_total)});
  std::printf("%s", table.render().c_str());
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_fig08_transmission_time",
          "data transmission time and total loading time", {"EAB_JOBS"})) {
    return 0;
  }
  bench::print_header("Fig 8", "data transmission time and total loading time");

  const auto orig_cfg =
      core::StackConfig::for_mode(browser::PipelineMode::kOriginal);
  const auto ea_cfg =
      core::StackConfig::for_mode(browser::PipelineMode::kEnergyAware);

  // (a) benchmark averages
  const auto mobile = corpus::mobile_benchmark();
  const auto full = corpus::full_benchmark();
  report_pair("mobile benchmark:", bench::run_benchmark(mobile, orig_cfg),
              bench::run_benchmark(mobile, ea_cfg), 0.15, 0.025);
  report_pair("full benchmark:  ", bench::run_benchmark(full, orig_cfg),
              bench::run_benchmark(full, ea_cfg), 0.27, 0.17);

  // (b) the two featured pages
  const std::vector<corpus::PageSpec> cnn{corpus::m_cnn_spec()};
  const auto ebay_specs = corpus::full_benchmark();
  const std::vector<corpus::PageSpec> ebay{ebay_specs[1]};  // motors.ebay.com
  report_pair("m.cnn.com:       ", bench::run_benchmark(cnn, orig_cfg),
              bench::run_benchmark(cnn, ea_cfg), 0.15, 0.022);
  report_pair("motors.ebay.com: ", bench::run_benchmark(ebay, orig_cfg),
              bench::run_benchmark(ebay, ea_cfg), 0.31, 0.20);
  return 0;
}
