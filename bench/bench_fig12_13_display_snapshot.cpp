// Regenerates Figs 12 and 13 in text mode: the intermediate and final
// display of espn.go.com/sports under both approaches, with the timings the
// paper screenshots carry.
//
// Paper: intermediate display at 17.6 s (original) vs 7 s (energy-aware);
// final display at 34.5 s vs 28.6 s; both approaches end with the same
// layout.
#include "bench_common.hpp"

#include "browser/text_render.hpp"

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_fig12_13_display_snapshot",
          "intermediate and final display of espn.go.com/sports", {"EAB_JOBS"})) {
    return 0;
  }
  bench::print_header("Figs 12/13",
                      "intermediate and final display of espn.go.com/sports");

  const corpus::PageSpec page = corpus::espn_sports_spec();
  const auto orig = core::ScenarioBuilder(browser::PipelineMode::kOriginal)
                        .build()
                        .run_single(page);
  const auto ea = core::ScenarioBuilder(browser::PipelineMode::kEnergyAware)
                      .build()
                      .run_single(page);

  // Re-derive the final DOM for rendering (loads return the signature only;
  // rendering needs the tree, so rebuild it from the same generated page).
  net::WebServer server;
  corpus::PageGenerator generator(1);
  const std::string url = generator.host_page(page, server);
  const auto parsed = web::parse_html(server.find(url)->body);
  browser::Viewport viewport;

  std::printf("Fig 12 — intermediate display (energy-aware, simplified text"
              " only), first 14 lines:\n");
  std::printf("--------------------------------------------\n%s",
              browser::render_text(parsed.dom.root(), viewport,
                                   browser::RenderStyle::kSimplifiedText, 14)
                  .c_str());
  std::printf("--------------------------------------------\n");
  std::printf("intermediate display: original %.1f s, energy-aware %.1f s"
              "  (paper: 17.6 s vs 7 s)\n\n",
              orig.metrics.first_display, ea.metrics.first_display);

  std::printf("Fig 13 — final display (identical in both approaches), first"
              " 14 lines:\n");
  std::printf("--------------------------------------------\n%s",
              browser::render_text(parsed.dom.root(), viewport,
                                   browser::RenderStyle::kFull, 14)
                  .c_str());
  std::printf("--------------------------------------------\n");
  std::printf("final display: original %.1f s, energy-aware %.1f s"
              "  (paper: 34.5 s vs 28.6 s)\n",
              orig.metrics.final_display, ea.metrics.final_display);
  std::printf("same final DOM: %s\n",
              orig.dom_signature == ea.dom_signature ? "yes" : "NO");
  return 0;
}
