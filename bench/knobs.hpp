// Declarative environment-knob registry for the bench harnesses.
//
// Every EAB_* override a bench honors is declared ONCE here as a KnobSpec —
// name, type, default, bounds, the exact "expected ..." text of its exit-2
// diagnostic, and a one-line doc string.  The typed getters below enforce
// the spec (strict parse, bounds check, die_invalid_env on anything
// malformed), so a knob's behavior and its documentation cannot drift
// apart, and `--help` on any bench lists its knobs straight from the
// registry.  Asking for an unregistered knob aborts: a getter call site
// cannot invent an undocumented override.
//
// The registry deliberately changes NO observable behavior: the diagnostics
// (format, expected-text, exit code 2) are byte-identical to the old
// scattered parse_env_u64/f64 call sites, and core_batch_test's death tests
// pin them.
#pragma once

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace eab::bench {

/// Strict unsigned-decimal parse for environment values.  Returns false on
/// anything that is not a plain base-10 number: signs, leading whitespace,
/// trailing garbage, hex prefixes and out-of-range values all fail.  Every
/// env knob goes through this so a typo'd override dies loudly instead of
/// silently running a different sweep than the one asked for.
inline bool parse_env_u64(const char* raw, std::uint64_t& out) {
  if (raw == nullptr || *raw == '\0') return false;
  if (!std::isdigit(static_cast<unsigned char>(raw[0]))) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || errno == ERANGE) return false;
  out = static_cast<std::uint64_t>(value);
  return true;
}

/// Strict non-negative decimal parse for environment values — the floating
/// point sibling of parse_env_u64.  Accepts plain base-10 numbers with an
/// optional fraction or exponent ("2", "0.75", "1.5e1"); signs, leading
/// whitespace, trailing garbage, hex floats and non-finite results all fail.
inline bool parse_env_f64(const char* raw, double& out) {
  if (raw == nullptr || *raw == '\0') return false;
  if (!std::isdigit(static_cast<unsigned char>(raw[0]))) return false;
  if (std::strchr(raw, 'x') != nullptr || std::strchr(raw, 'X') != nullptr) {
    return false;  // strtod would accept C99 hex floats
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || errno == ERANGE) return false;
  if (!std::isfinite(value)) return false;
  out = value;
  return true;
}

/// Rejects a malformed environment override: names the variable, echoes the
/// offending value, and exits 2 (distinct from a bench's own failure codes).
[[noreturn]] inline void die_invalid_env(const char* name, const char* raw,
                                         const char* expected) {
  std::fprintf(stderr, "error: %s=\"%s\" is invalid; expected %s\n", name,
               raw, expected);
  std::exit(2);
}

enum class KnobType {
  kFlag,  ///< "0"/"1"; unset or empty means off
  kU64,   ///< strict unsigned decimal, bounds [u64_min, u64_max]
  kF64,   ///< strict non-negative decimal, optional >0 and upper bound
  kPath,  ///< free-form string; unset means empty
};

/// One declared environment knob.
struct KnobSpec {
  const char* name;      ///< "EAB_WORKERS"
  KnobType type;
  const char* fallback;  ///< human-readable default for --help
  const char* expected;  ///< exact text of the exit-2 diagnostic
  const char* doc;       ///< one --help line
  std::uint64_t u64_min = 0;
  std::uint64_t u64_max = std::numeric_limits<std::uint64_t>::max();
  bool f64_positive = false;  ///< reject values <= 0
  double f64_max = std::numeric_limits<double>::infinity();
};

/// The process-wide knob table plus its typed strict getters.  Unset or
/// empty always yields the caller's fallback unchecked (so a sentinel like
/// EAB_WORKERS's "0 = resolve from hardware" stays expressible); a SET value
/// must parse and satisfy the spec's bounds or the process exits 2 with the
/// spec's expected-text.
class KnobRegistry {
 public:
  static const KnobRegistry& instance() {
    static const KnobRegistry registry;
    return registry;
  }

  const std::vector<KnobSpec>& specs() const { return specs_; }

  /// The spec for `name`; aborts on an unregistered knob (a getter call
  /// site cannot invent an undocumented override).
  const KnobSpec& require(std::string_view name) const {
    for (const KnobSpec& spec : specs_) {
      if (name == spec.name) return spec;
    }
    std::fprintf(stderr, "fatal: knob %.*s is not registered in knobs.hpp\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
  }

  /// "0"/unset/empty = false, "1" = true, anything else exits 2.
  bool flag(const char* name) const {
    const KnobSpec& spec = require(name);
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return false;
    if (raw[0] == '0' && raw[1] == '\0') return false;
    if (raw[0] == '1' && raw[1] == '\0') return true;
    die_invalid_env(name, raw, spec.expected);
  }

  std::uint64_t u64_or(const char* name, std::uint64_t fallback) const {
    const KnobSpec& spec = require(name);
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return fallback;
    std::uint64_t value = 0;
    if (!parse_env_u64(raw, value) || value < spec.u64_min ||
        value > spec.u64_max) {
      die_invalid_env(name, raw, spec.expected);
    }
    return value;
  }

  double f64_or(const char* name, double fallback) const {
    const KnobSpec& spec = require(name);
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return fallback;
    double value = 0;
    if (!parse_env_f64(raw, value) || (spec.f64_positive && value <= 0) ||
        value > spec.f64_max) {
      die_invalid_env(name, raw, spec.expected);
    }
    return value;
  }

  std::string path_or_empty(const char* name) const {
    require(name);  // even free-form knobs must be declared
    const char* raw = std::getenv(name);
    return raw == nullptr ? std::string() : std::string(raw);
  }

 private:
  KnobRegistry() {
    const auto flag_knob = [&](const char* name, const char* doc) {
      specs_.push_back({name, KnobType::kFlag, "0", "\"0\" or \"1\"", doc});
    };
    const auto path_knob = [&](const char* name, const char* doc) {
      specs_.push_back({name, KnobType::kPath, "unset", "a path", doc});
    };
    const auto u64_knob = [&](const char* name, const char* fallback,
                              const char* expected, const char* doc,
                              std::uint64_t min, std::uint64_t max) {
      KnobSpec spec{name, KnobType::kU64, fallback, expected, doc};
      spec.u64_min = min;
      spec.u64_max = max;
      specs_.push_back(spec);
    };
    const auto f64_knob = [&](const char* name, const char* fallback,
                              const char* expected, const char* doc,
                              bool positive,
                              double max =
                                  std::numeric_limits<double>::infinity()) {
      KnobSpec spec{name, KnobType::kF64, fallback, expected, doc};
      spec.f64_positive = positive;
      spec.f64_max = max;
      specs_.push_back(spec);
    };
    constexpr std::uint64_t kU64Max =
        std::numeric_limits<std::uint64_t>::max();

    // Observability.
    flag_knob("EAB_TRACE",
              "record structured traces, audit every load, exit non-zero on "
              "any cross-layer violation");
    path_knob("EAB_TRACE_OUT",
              "also dump audited recordings as Chrome traces under this "
              "directory");
    flag_knob("EAB_TELEMETRY",
              "sample simulated-time telemetry into fixed-budget series and "
              "write a .timeseries.json artifact");
    u64_knob("EAB_TELEMETRY_TICK", "5",
             "a sampling period in seconds in [1, 86400]",
             "telemetry sampling period in whole simulated seconds", 1,
             86400);
    u64_knob("EAB_TELEMETRY_BUDGET", "256", "a point budget in [2, 1048576]",
             "per-series point budget before power-of-two merge downsampling",
             2, 1048576);
    flag_knob("EAB_PROGRESS",
              "live supervisor progress lines on stderr (~1 Hz); results are "
              "bit-identical either way");

    // Parallel / supervised execution.
    u64_knob("EAB_JOBS", "hardware concurrency", "a worker thread count",
             "worker threads for the in-process batch runner "
             "(results are bit-identical for any value)", 0, kU64Max);
    flag_knob("EAB_SUPERVISE",
              "run supporting sweeps under forked, heartbeat-supervised "
              "worker processes (bit-identical results)");
    u64_knob("EAB_WORKERS", "hardware concurrency",
             "a worker count in [1, 1024]",
             "concurrent worker processes for supervised sweeps", 1, 1024);
    path_knob("EAB_CHECKPOINT_DIR",
              "directory for supervised sweeps' durable checkpoint journals "
              "(enables crash resume)");
    u64_knob("EAB_SELF_CHAOS", "0 (off)", "an unsigned decimal seed",
             "seed for the supervisor's self-chaos worker-kill schedule", 0,
             kU64Max);
    u64_knob("EAB_SELF_CHAOS_KILLS", "0", "a kill count in [0, 64]",
             "worker SIGKILLs injected per launch (needs EAB_SELF_CHAOS)", 0,
             64);
    flag_knob("EAB_SELF_CHAOS_ORC",
              "SIGKILL the orchestrator once after a durable checkpoint "
              "commit (needs EAB_SELF_CHAOS + EAB_CHECKPOINT_DIR)");

    // Fault & chaos engines.
    u64_knob("EAB_FAULT_SEED", "bench-specific", "an unsigned decimal seed",
             "re-rolls the fault-plan stream without recompiling", 0, kU64Max);
    u64_knob("EAB_CHAOS_SEEDS", "256", "a scenario count in [1, 1000000]",
             "random chaos scenarios per sweep", 1, 1000000);
    path_knob("EAB_CHAOS_OUT",
              "write every shrunk chaos reproducer there as replayable JSON");

    // Per-UE coverage outages.
    u64_knob("EAB_OUTAGE_COUNT", "0 (off)",
             "a coverage-window count in [0, 1000]",
             "per-UE coverage-outage windows; 0 disables the radio-failure "
             "subsystem entirely", 0, 1000);
    f64_knob("EAB_OUTAGE_START", "bench-specific", "a start time in seconds",
             "first outage-window start (simulated seconds)", false);
    f64_knob("EAB_OUTAGE_PERIOD", "bench-specific",
             "a window period in seconds > 0",
             "outage-window period; must exceed the duration", true);
    f64_knob("EAB_OUTAGE_DURATION", "bench-specific",
             "a window duration in seconds > 0", "outage-window length", true);
    f64_knob("EAB_OUTAGE_FAIL_RATE", "0",
             "a re-establishment failure rate in [0, 1]",
             "probability an RRC re-establishment attempt fails", false, 1.0);
    u64_knob("EAB_OUTAGE_SEED", "bench-specific", "an unsigned decimal seed",
             "seeds the per-UE outage jitter stream", 0, kU64Max);

    // Shared-cell co-simulation (bench_fig11_capacity --cell).
    u64_knob("EAB_CELL_SEED", "1", "an unsigned decimal number",
             "cell simulation seed", 0, kU64Max);
    u64_knob("EAB_CELL_USERS", "32", "a user count in [1, 512]",
             "top of the users axis for the capacity sweep", 1, 512);
    u64_knob("EAB_CELL_SHARDS", "1", "a shard count in [1, 256]",
             "event-queue shards per cell simulator (perf-only; "
             "bit-identical results)", 1, 256);
    u64_knob("EAB_CELL_OUTAGE_COUNT", "0 (off)",
             "a blackout count in [0, 1000]",
             "whole-cell blackout windows per run", 0, 1000);
    f64_knob("EAB_CELL_OUTAGE_START", "60", "a start time in seconds",
             "first blackout start (simulated seconds)", false);
    f64_knob("EAB_CELL_OUTAGE_PERIOD", "120",
             "a blackout period in seconds > 0",
             "blackout period; must exceed the duration", true);
    f64_knob("EAB_CELL_OUTAGE_DURATION", "5",
             "a blackout duration in seconds > 0", "blackout length", true);

    // Microbenchmarks.
    u64_knob("EAB_SIM_MICRO_N", "1000000", "a positive op count per phase",
             "scales every bench_sim_micro phase", 1, kU64Max);

    // Metro-scale multi-cell simulation (bench_metro).
    u64_knob("EAB_METRO_GRID_W", "3", "a grid dimension in [1, 16]",
             "metro cell-grid width", 1, 16);
    u64_knob("EAB_METRO_GRID_H", "3", "a grid dimension in [1, 16]",
             "metro cell-grid height", 1, 16);
    u64_knob("EAB_METRO_USERS", "24", "a user count in [1, 65536]",
             "top of the mean-users-per-cell axis for the metro sweep", 1,
             65536);
    u64_knob("EAB_METRO_SEED", "1", "an unsigned decimal seed",
             "metro simulation seed (cell c runs at seed + c)", 0, kU64Max);
    u64_knob("EAB_METRO_SHARDS", "1", "a shard count in [1, 256]",
             "event-queue shards per cell (grid * shards must stay <= 256)",
             1, 256);
    f64_knob("EAB_METRO_HORIZON", "600", "a horizon in seconds > 0",
             "simulated arrival horizon per metro run", true);
    f64_knob("EAB_METRO_DWELL", "120", "a mean dwell time in seconds",
             "mean exponential dwell before a UE steps to a neighbor cell; "
             "0 disables mobility", false);
    f64_knob("EAB_METRO_HOTSPOT", "0.5", "a hotspot strength >= 0",
             "home-cell load-imbalance strength (0 = uniform homes)", false);
    flag_knob("EAB_METRO_INSTANT",
              "use the idealized zero-cost handover policy instead of the "
              "hard-handover signalling exchange");
    flag_knob("EAB_METRO_SCALE",
              "add the 100k-session scale point (large grid, short horizon) "
              "to the metro bench");
  }

  std::vector<KnobSpec> specs_;
};

/// The registry the benches read their knobs through.
inline const KnobRegistry& knobs() { return KnobRegistry::instance(); }

/// Prints `bench`'s usage plus the registry rows for `names` (in the given
/// order) to stdout.
inline void print_knob_help(const char* bench, const char* what,
                            const std::vector<const char*>& names) {
  std::printf("usage: %s [--help]\n%s\n", bench, what);
  if (names.empty()) {
    std::printf("\nThis bench honors no environment knobs.\n");
    return;
  }
  std::printf("\nenvironment knobs:\n");
  for (const char* name : names) {
    const KnobSpec& spec = KnobRegistry::instance().require(name);
    std::printf("  %-24s %s\n%-27s[%s; default %s]\n", spec.name, spec.doc,
                "", spec.expected, spec.fallback);
  }
}

/// `--help`/`-h` handling for every bench main: prints the knob table from
/// the registry and returns true (the caller exits 0).  Any other argv is
/// left for the bench to interpret.
inline bool maybe_print_help(int argc, char** argv, const char* bench,
                             const char* what,
                             const std::vector<const char*>& names) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      print_knob_help(bench, what, names);
      return true;
    }
  }
  return false;
}

}  // namespace eab::bench
