// Extension: does the paper's technique survive the move to LTE?
//
// The reproduction bands flag this work as "3G-era, now obsolete" — this
// bench quantifies exactly why.  The same benchmark pages, the same two
// pipelines, run once under the paper's UMTS profile and once under an LTE
// profile (fast promotions, short cheap DRX tail, 8x the bandwidth).  The
// absolute load times collapse and, more importantly, the energy headroom
// the technique exploits — long high-power tails and slow transfers —
// largely disappears.
#include "bench_common.hpp"

#include "radio/profiles.hpp"

namespace {

using namespace eab;

void report(const radio::RadioProfile& profile) {
  core::StackConfig orig_cfg =
      core::StackConfig::for_mode(browser::PipelineMode::kOriginal);
  core::StackConfig ea_cfg =
      core::StackConfig::for_mode(browser::PipelineMode::kEnergyAware);
  for (core::StackConfig* config : {&orig_cfg, &ea_cfg}) {
    config->rrc = profile.rrc;
    config->power = profile.power;
    config->link = profile.link;
  }

  const auto specs = corpus::full_benchmark();
  const auto orig = bench::run_benchmark(specs, orig_cfg);
  const auto ea = bench::run_benchmark(specs, ea_cfg);

  TextTable table({std::string(profile.name) + " (full benchmark)", "Original",
                   "Energy-Aware", "saving"});
  table.add_row({"data transmission (s)", format_fixed(orig.tx_time, 1),
                 format_fixed(ea.tx_time, 1),
                 format_percent(bench::saving(orig.tx_time, ea.tx_time))});
  table.add_row({"total load (s)", format_fixed(orig.total_time, 1),
                 format_fixed(ea.total_time, 1),
                 format_percent(bench::saving(orig.total_time, ea.total_time))});
  table.add_row({"energy + 20 s read (J)", format_fixed(orig.energy_20s, 1),
                 format_fixed(ea.energy_20s, 1),
                 format_percent(bench::saving(orig.energy_20s, ea.energy_20s))});
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_ext_lte_profile",
          "the technique on UMTS vs LTE", {"EAB_JOBS"})) {
    return 0;
  }
  bench::print_header("Extension", "the technique on UMTS vs LTE");
  report(radio::umts_profile());
  report(radio::lte_profile());
  std::printf(
      "The relative savings survive (the pipeline reordering is radio-\n"
      "agnostic), but the absolute joules the technique recovers per page\n"
      "drop by half on LTE: the tail it trims is one-third as long and\n"
      "cheaper, and pages load in half the time to begin with. With the\n"
      "faster CPUs that accompanied LTE handsets (not modelled here - both\n"
      "columns keep the 2009 CPU), the recoverable joules shrink further,\n"
      "which is why this line of work faded with 3G.\n");
  return 0;
}
