// Microbenchmark of the discrete-event engine itself, with no browser stack
// on top: pure schedule/fire churn, a cancel-heavy RRC-style timer
// reschedule storm, a self-feeding event chain, and run_until sweeps.  The
// numbers here isolate engine-core throughput from everything the page-load
// benches layer on top, so an engine change shows up undiluted.
//
// Emits BENCH_sim_micro.json.  "events/s" counts engine operations per
// wall-clock second: schedule + cancel + fire for the storm (cancellation IS
// the storm's work), fired events for the pure-churn phases.
#include "bench_common.hpp"

#include <chrono>
#include <cstdint>
#include <cstdio>

#include "radio/rrc.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace eab;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Phase 1: schedule N events at pseudo-random times, then drain.  The heap
/// sees its full depth; every event fires.
double churn_events_per_sec(std::size_t n, std::uint64_t seed,
                            std::uint64_t& sink) {
  sim::Simulator sim;
  Rng rng(seed);
  const auto start = Clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    sim.schedule_at(rng.uniform(0.0, 1e6), [&sink] { ++sink; });
  }
  const std::size_t fired = sim.run();
  const double wall = seconds_since(start);
  return static_cast<double>(fired + n) / wall;  // schedules + fires
}

/// Phase 2: the RRC inactivity-timer pattern — every simulated packet
/// cancels the running timer and schedules a replacement.  Only one event is
/// ever live; the engine's job is to not drown in the dead ones.
double storm_events_per_sec(std::size_t n, std::uint64_t& sink) {
  sim::Simulator sim;
  sim::EventId timer;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    sim.cancel(timer);
    timer = sim.schedule_at(static_cast<Seconds>(i) + 4.0, [&sink] { ++sink; });
  }
  sim.run();
  const double wall = seconds_since(start);
  // n schedules + (n - 1) cancels + 1 fire + the tombstone discards the
  // engine performs on the way out.
  const auto ops = static_cast<double>(2 * n + sim.tombstones_popped());
  return ops / wall;
}

/// Phase 3: a self-feeding chain — each event schedules its successor, so
/// the heap stays near-empty and per-event overhead dominates.
double chain_events_per_sec(std::size_t n, std::uint64_t& sink) {
  sim::Simulator sim;
  std::size_t remaining = n;
  std::function<void()> link = [&] {
    ++sink;
    if (--remaining > 0) sim.schedule_in(1.0, link);
  };
  const auto start = Clock::now();
  sim.schedule_in(1.0, link);
  const std::size_t fired = sim.run();
  const double wall = seconds_since(start);
  return static_cast<double>(fired) / wall;
}

/// Phase 4: run_until sweeps — the clock is dragged forward in small steps
/// across a pre-populated horizon, the pattern cell runs and PowerTimeline
/// consumers use.
double run_until_events_per_sec(std::size_t n, std::uint64_t seed,
                                std::uint64_t& sink) {
  sim::Simulator sim;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    sim.schedule_at(rng.uniform(0.0, 1000.0), [&sink] { ++sink; });
  }
  std::size_t fired = 0;
  const auto start = Clock::now();
  for (double t = 0.0; t <= 1000.0; t += 0.25) {
    fired += sim.run_until(t);
  }
  fired += sim.run();
  const double wall = seconds_since(start);
  return static_cast<double>(fired) / wall;
}

/// Phase 5: RRC-machine churn — the timer-reschedule pattern of phase 2,
/// but through the real radio state machine with its `if (trace_)` hooks
/// compiled in (recorder detached: the disabled-hook fast path every
/// untraced load takes).  Each burst promotes, transfers and re-arms the
/// inactivity timers, so the hook sites in request_channel/touch/
/// begin_transfer/end_transfer all sit on the measured path.
double rrc_churn_events_per_sec(std::size_t n, std::uint64_t& sink) {
  sim::Simulator sim;
  radio::RrcMachine rrc(sim, radio::RrcConfig{}, radio::RadioPowerModel{});
  std::size_t remaining = n;
  std::function<void()> burst = [&] {
    rrc.request_channel([&] {
      rrc.begin_transfer();
      rrc.touch();
      rrc.end_transfer();
      ++sink;
      // 0.5 s < T1: the radio stays on DCH, so every later burst is the
      // pure timer-churn path (cancel T1, re-arm) with no promotion.
      if (--remaining > 0) sim.schedule_in(0.5, burst);
    });
  };
  const auto start = Clock::now();
  sim.schedule_in(0.0, burst);
  const std::size_t fired = sim.run();
  const double wall = seconds_since(start);
  return static_cast<double>(fired) / wall;
}

double best_of(int repeats, double (*phase)(std::size_t, std::uint64_t&),
               std::size_t n, std::uint64_t& sink) {
  double best = 0;
  for (int r = 0; r < repeats; ++r) best = std::max(best, phase(n, sink));
  return best;
}

double best_of_seeded(int repeats,
                      double (*phase)(std::size_t, std::uint64_t, std::uint64_t&),
                      std::size_t n, std::uint64_t seed, std::uint64_t& sink) {
  double best = 0;
  for (int r = 0; r < repeats; ++r) {
    best = std::max(best, phase(n, seed + static_cast<std::uint64_t>(r), sink));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_sim_micro",
          "event-engine ops/s with no browser stack attached",
          {"EAB_SIM_MICRO_N"})) {
    return 0;
  }
  bench::print_header("Sim micro",
                      "event-engine ops/s with no browser stack attached");

  // EAB_SIM_MICRO_N scales every phase (strict parse; default 1M ops each).
  const auto count = static_cast<std::size_t>(
      bench::knobs().u64_or("EAB_SIM_MICRO_N", 1'000'000));
  constexpr int kRepeats = 3;  // best-of to shed scheduler noise

  std::uint64_t sink = 0;  // fired-action side effect the optimizer must keep
  const double churn = best_of_seeded(kRepeats, churn_events_per_sec,
                                      count, 42, sink);
  const double storm = best_of(kRepeats, storm_events_per_sec, count, sink);
  const double chain = best_of(kRepeats, chain_events_per_sec, count, sink);
  const double sweep = best_of_seeded(kRepeats, run_until_events_per_sec,
                                      count, 43, sink);
  const double rrc = best_of(kRepeats, rrc_churn_events_per_sec, count, sink);

  TextTable table({"phase", "events/s"});
  table.add_row({"schedule/fire churn", format_fixed(churn, 0)});
  table.add_row({"timer-reschedule storm", format_fixed(storm, 0)});
  table.add_row({"self-feeding chain", format_fixed(chain, 0)});
  table.add_row({"run_until sweep", format_fixed(sweep, 0)});
  table.add_row({"rrc-machine churn", format_fixed(rrc, 0)});
  std::printf("%s", table.render().c_str());
  std::printf("ops per phase: %zu  repeats: %d (best-of)  sink: %llu\n", count,
              kRepeats, static_cast<unsigned long long>(sink));

  std::string json;
  bench::appendf(json,
                 "{\n"
                 "  \"ops_per_phase\": %zu,\n"
                 "  \"repeats\": %d,\n"
                 "  \"churn_events_per_sec\": %.1f,\n"
                 "  \"storm_events_per_sec\": %.1f,\n"
                 "  \"chain_events_per_sec\": %.1f,\n"
                 "  \"run_until_events_per_sec\": %.1f,\n"
                 "  \"rrc_churn_events_per_sec\": %.1f\n"
                 "}\n",
                 count, kRepeats, churn, storm, chain, sweep, rrc);
  bench::write_artifact("BENCH_sim_micro.json", json);
  return 0;
}
