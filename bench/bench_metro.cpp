// Metro-scale capacity: EA vs Original across a multi-cell grid with
// seed-derived UE mobility, cell reselection and hard handover.
//
// Three questions, one harness:
//
//   1. Capacity under mobility — the Fig 11 claim at metro scale: per-cell
//      users vs session-dropping probability for both pipelines, with the
//      5 % service-level capacity interpolated from the sweep
//      (metro::users_at_drop_target).
//   2. The price of handover signalling — at the top of the users axis,
//      a dwell-time sweep (shorter dwell = higher handover rate) compares
//      the hard-handover policy (Table-5 signalling exchange, flows paused)
//      against the idealized instant policy.  The gap is the energy and
//      drop cost attributable purely to handover signalling.
//   3. Scale (EAB_METRO_SCALE=1) — one large grid sized to >= 100k
//      concurrent simulated sessions, aggregated in constant memory.
//
// Execution mirrors bench_fig11_capacity --cell: the default path runs the
// sweep through the shared in-process pool; EAB_SUPERVISE=1 moves it onto
// forked, heartbeat-supervised workers with durable checkpoint resume under
// EAB_CHECKPOINT_DIR.  stdout and BENCH_metro.json are byte-identical
// across serial, sharded (EAB_METRO_SHARDS) and supervised execution —
// check.sh gates this.  Aggregation is streaming: the sweep consumer folds
// each MetroResult into per-point summaries as it arrives and drops the
// full result (no vectors-of-results across the axis).
#include "bench_common.hpp"

#include "metro/metro.hpp"

namespace {

using namespace eab;

struct MetroParams {
  int grid_w = 3;
  int grid_h = 3;
  int max_users = 24;  // mean homes per cell, top of the axis
  std::uint64_t seed = 1;
  int shards = 1;
  Seconds horizon = 600.0;
  Seconds dwell = 120.0;
  double hotspot = 0.5;
  metro::HandoverPolicy policy = metro::HandoverPolicy::kHard;
  double target = 0.05;  // 5 % dropping service level
};

/// The streaming fold of one metro run: everything the table, the capacity
/// interpolation and the JSON artifact need, in O(1) memory per point.
struct PointSummary {
  int users = 0;  // mean homes per cell
  int total_users = 0;
  double drop = 0;
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t reselects = 0;
  std::uint64_t handovers = 0;
  std::uint64_t handover_drops = 0;
  int home_min = 0;  // hotspot imbalance, smallest/largest cell
  int home_max = 0;
  double mean_ue_energy = 0;  // J incl. reading, averaged over every UE
  Seconds end_time = 0;
  std::uint64_t sim_events = 0;
};

double mean_ue_energy_of(const metro::MetroResult& result) {
  double total = 0;
  std::size_t ues = 0;
  for (const cell::CellResult& cr : result.cells) {
    for (const auto& ue : cr.per_ue) total += ue.energy.with_reading_j;
    ues += cr.per_ue.size();
  }
  return ues == 0 ? 0 : total / static_cast<double>(ues);
}

PointSummary summarize(int users, const metro::MetroResult& result) {
  PointSummary s;
  s.users = users;
  s.total_users = result.total_users;
  s.drop = result.drop_probability();
  s.offered = result.offered;
  s.completed = result.completed;
  s.reselects = result.reselects;
  s.handovers = result.handovers;
  s.handover_drops = result.handover_drops;
  s.home_min = result.home_users.empty() ? 0 : result.home_users.front();
  s.home_max = s.home_min;
  for (const int homes : result.home_users) {
    s.home_min = std::min(s.home_min, homes);
    s.home_max = std::max(s.home_max, homes);
  }
  s.mean_ue_energy = mean_ue_energy_of(result);
  s.end_time = result.end_time;
  s.sim_events = result.sim_events;
  return s;
}

metro::MetroConfig metro_config(browser::PipelineMode mode,
                                const MetroParams& params) {
  cell::CellConfig cell;
  cell.per_ue = core::ScenarioBuilder(mode).build();
  cell.specs = corpus::mobile_benchmark();
  cell.users = params.max_users;  // run_metro_sweep overrides per point
  cell.channels = 6;
  cell.horizon = params.horizon;
  cell.cell_seed = params.seed;
  cell.sim_shards = params.shards;
  return metro::MetroBuilder()
      .grid(params.grid_w, params.grid_h)
      .cell(cell)
      .mean_dwell(params.dwell)
      .hotspot(params.hotspot)
      .policy(params.policy)
      .build();
}

/// Runs the per-cell-users sweep for one mode through the selected
/// execution tier, folding each result into a PointSummary on arrival.
/// Returns false (after printing the shard errors) if supervision failed.
bool sweep_mode(const char* label, const metro::MetroConfig& base,
                const std::vector<int>& users_axis, const MetroParams& params,
                std::vector<PointSummary>& out) {
  out.assign(users_axis.size(), PointSummary{});
  const auto consume = [&](std::size_t i, const metro::MetroResult& result) {
    out[i] = summarize(users_axis[i], result);
  };
  core::SupervisorReport report;
  if (bench::supervise_enabled()) {
    std::string fingerprint = "metro v1";
    bench::appendf(fingerprint,
                   " mode=%s grid=%dx%d seed=%llu horizon=%.17g shards=%d"
                   " dwell=%.17g hotspot=%.17g policy=%s",
                   label, params.grid_w, params.grid_h,
                   static_cast<unsigned long long>(params.seed),
                   params.horizon, params.shards, params.dwell,
                   params.hotspot, metro::to_string(params.policy));
    for (const int users : users_axis) {
      bench::appendf(fingerprint, " u%d", users);
    }
    core::Supervisor supervisor(bench::supervisor_config_from_env(
        std::string("metro_") + label + ".journal", fingerprint));
    report = metro::run_metro_sweep(
        base, users_axis, core::SweepExecution::supervised(supervisor),
        consume);
    std::fprintf(stderr, "%s\n", report.summary().c_str());
  } else {
    report = metro::run_metro_sweep(
        base, users_axis, core::SweepExecution::pooled(bench::shared_runner()),
        consume);
  }
  if (!report.ok()) {
    for (const core::ShardError& e : report.errors) {
      std::fprintf(stderr, "supervisor: shard %zu failed: %s\n", e.shard,
                   e.what.c_str());
    }
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_metro",
          "metro-scale multi-cell capacity with mobility and handover",
          {"EAB_METRO_GRID_W", "EAB_METRO_GRID_H", "EAB_METRO_USERS",
           "EAB_METRO_SEED", "EAB_METRO_SHARDS", "EAB_METRO_HORIZON",
           "EAB_METRO_DWELL", "EAB_METRO_HOTSPOT", "EAB_METRO_INSTANT",
           "EAB_METRO_SCALE", "EAB_SUPERVISE", "EAB_WORKERS",
           "EAB_CHECKPOINT_DIR", "EAB_SELF_CHAOS", "EAB_SELF_CHAOS_KILLS",
           "EAB_SELF_CHAOS_ORC", "EAB_PROGRESS", "EAB_JOBS"})) {
    return 0;
  }
  bench::print_header("Metro",
                      "multi-cell capacity with mobility and handover");

  MetroParams params;
  params.grid_w = static_cast<int>(bench::knobs().u64_or("EAB_METRO_GRID_W", 3));
  params.grid_h = static_cast<int>(bench::knobs().u64_or("EAB_METRO_GRID_H", 3));
  params.max_users =
      static_cast<int>(bench::knobs().u64_or("EAB_METRO_USERS", 24));
  params.seed = bench::knobs().u64_or("EAB_METRO_SEED", 1);
  params.shards = static_cast<int>(bench::knobs().u64_or("EAB_METRO_SHARDS", 1));
  params.horizon = bench::knobs().f64_or("EAB_METRO_HORIZON", 600.0);
  params.dwell = bench::knobs().f64_or("EAB_METRO_DWELL", 120.0);
  params.hotspot = bench::knobs().f64_or("EAB_METRO_HOTSPOT", 0.5);
  if (bench::knobs().flag("EAB_METRO_INSTANT")) {
    params.policy = metro::HandoverPolicy::kInstant;
  }

  // Four evenly spaced users points ending exactly at the configured top.
  std::vector<int> users_axis;
  const int step = std::max(1, (params.max_users + 3) / 4);
  for (int users = step; users < params.max_users; users += step) {
    users_axis.push_back(users);
  }
  users_axis.push_back(params.max_users);

  std::printf("metro: %dx%d cells, 6 channel pairs each, %.0f s horizon, "
              "mean dwell %.0f s, hotspot %.2f, policy %s, seed %llu\n",
              params.grid_w, params.grid_h, params.horizon, params.dwell,
              params.hotspot, metro::to_string(params.policy),
              static_cast<unsigned long long>(params.seed));
  if (params.shards != 1) {  // default output stays byte-identical
    std::printf("metro: %d event-queue shards per cell\n", params.shards);
  }

  std::vector<PointSummary> orig;
  std::vector<PointSummary> ea;
  if (!sweep_mode("orig", metro_config(browser::PipelineMode::kOriginal, params),
                  users_axis, params, orig)) {
    return 1;
  }
  if (!sweep_mode("ea", metro_config(browser::PipelineMode::kEnergyAware, params),
                  users_axis, params, ea)) {
    return 1;
  }

  TextTable table({"users/cell", "total UEs", "homes min..max", "drop% orig",
                   "drop% ea", "handovers orig", "handovers ea",
                   "ho-drops orig", "ho-drops ea"});
  for (std::size_t i = 0; i < users_axis.size(); ++i) {
    table.add_row({std::to_string(users_axis[i]),
                   std::to_string(orig[i].total_users),
                   std::to_string(orig[i].home_min) + ".." +
                       std::to_string(orig[i].home_max),
                   format_fixed(100 * orig[i].drop, 2),
                   format_fixed(100 * ea[i].drop, 2),
                   std::to_string(orig[i].handovers),
                   std::to_string(ea[i].handovers),
                   std::to_string(orig[i].handover_drops),
                   std::to_string(ea[i].handover_drops)});
  }
  std::printf("%s", table.render().c_str());

  std::vector<double> orig_drops;
  std::vector<double> ea_drops;
  for (std::size_t i = 0; i < users_axis.size(); ++i) {
    orig_drops.push_back(orig[i].drop);
    ea_drops.push_back(ea[i].drop);
  }
  const double cap_orig =
      metro::users_at_drop_target(users_axis, orig_drops, params.target);
  const double cap_ea =
      metro::users_at_drop_target(users_axis, ea_drops, params.target);
  std::printf("metro capacity at %.0f%% dropping: original %.1f users/cell, "
              "energy-aware %.1f users/cell -> +%.1f%%\n",
              params.target * 100, cap_orig, cap_ea,
              cap_orig > 0 ? 100.0 * (cap_ea - cap_orig) / cap_orig : 0.0);

  // The price of handover signalling: at the top of the users axis, sweep
  // the dwell time (shorter dwell = more handovers) and compare the hard
  // policy against the idealized instant one on the energy-aware pipeline.
  // Each point is one in-process run, folded immediately — results are
  // identical on every tier, so the artifact stays byte-comparable.
  std::vector<Seconds> dwell_axis;
  if (params.dwell > 0) {
    dwell_axis = {0.0, 4 * params.dwell, 2 * params.dwell, params.dwell,
                  params.dwell / 2};
  } else {
    dwell_axis = {0.0};
  }
  struct PricePoint {
    Seconds dwell = 0;
    PointSummary hard;
    PointSummary instant;
  };
  std::vector<PricePoint> price;
  {
    MetroParams p = params;
    p.max_users = users_axis.back();
    for (const Seconds dwell : dwell_axis) {
      PricePoint point;
      point.dwell = dwell;
      p.dwell = dwell;
      p.policy = metro::HandoverPolicy::kHard;
      point.hard = summarize(
          p.max_users,
          metro::run_metro(metro_config(browser::PipelineMode::kEnergyAware, p)));
      p.policy = metro::HandoverPolicy::kInstant;
      point.instant = summarize(
          p.max_users,
          metro::run_metro(metro_config(browser::PipelineMode::kEnergyAware, p)));
      price.push_back(point);
    }
  }
  TextTable price_table({"dwell s", "handovers", "drop% hard", "drop% instant",
                         "J/UE hard", "J/UE instant"});
  for (const PricePoint& point : price) {
    price_table.add_row({format_fixed(point.dwell, 0),
                         std::to_string(point.hard.handovers),
                         format_fixed(100 * point.hard.drop, 2),
                         format_fixed(100 * point.instant.drop, 2),
                         format_fixed(point.hard.mean_ue_energy, 1),
                         format_fixed(point.instant.mean_ue_energy, 1)});
  }
  std::printf("handover signalling price (energy-aware, %d users/cell):\n%s",
              users_axis.back(), price_table.render().c_str());

  // Optional scale point: one grid sized to >= 100k concurrent sessions,
  // short horizon, still a single streaming fold.
  PointSummary scale;
  const bool scale_on = bench::knobs().flag("EAB_METRO_SCALE");
  if (scale_on) {
    MetroParams p = params;
    p.grid_w = 16;
    p.grid_h = 16;    // 256 cells x 1 shard
    p.shards = 1;
    p.max_users = 391;  // 256 * 391 = 100,096 sessions
    p.horizon = 30.0;
    p.dwell = 60.0;
    std::vector<PointSummary> out;
    if (!sweep_mode("scale",
                    metro_config(browser::PipelineMode::kEnergyAware, p),
                    {p.max_users}, p, out)) {
      return 1;
    }
    scale = out[0];
    std::printf("scale: %d concurrent sessions across %dx%d cells, "
                "%llu offered, %llu handovers, %llu events, end %.2f s\n",
                scale.total_users, p.grid_w, p.grid_h,
                static_cast<unsigned long long>(scale.offered),
                static_cast<unsigned long long>(scale.handovers),
                static_cast<unsigned long long>(scale.sim_events),
                scale.end_time);
  }

  std::string json;
  bench::appendf(json,
                 "{\n"
                 "  \"grid_w\": %d,\n"
                 "  \"grid_h\": %d,\n"
                 "  \"horizon_s\": %.17g,\n"
                 "  \"mean_dwell_s\": %.17g,\n"
                 "  \"hotspot\": %.17g,\n"
                 "  \"policy\": \"%s\",\n"
                 "  \"seed\": %llu,\n"
                 "  \"drop_target\": %.17g,\n"
                 "  \"capacity_original\": %.17g,\n"
                 "  \"capacity_energy_aware\": %.17g,\n"
                 "  \"points\": [\n",
                 params.grid_w, params.grid_h, params.horizon, params.dwell,
                 params.hotspot, metro::to_string(params.policy),
                 static_cast<unsigned long long>(params.seed), params.target,
                 cap_orig, cap_ea);
  for (std::size_t i = 0; i < users_axis.size(); ++i) {
    bench::appendf(
        json,
        "    {\"users_per_cell\": %d, \"total_users\": %d,"
        " \"drop_original\": %.17g, \"drop_energy_aware\": %.17g,"
        " \"offered_original\": %llu, \"offered_energy_aware\": %llu,"
        " \"reselects_original\": %llu, \"reselects_energy_aware\": %llu,"
        " \"handovers_original\": %llu, \"handovers_energy_aware\": %llu,"
        " \"handover_drops_original\": %llu,"
        " \"handover_drops_energy_aware\": %llu,"
        " \"mean_ue_energy_original_j\": %.17g,"
        " \"mean_ue_energy_energy_aware_j\": %.17g}%s\n",
        users_axis[i], orig[i].total_users, orig[i].drop, ea[i].drop,
        static_cast<unsigned long long>(orig[i].offered),
        static_cast<unsigned long long>(ea[i].offered),
        static_cast<unsigned long long>(orig[i].reselects),
        static_cast<unsigned long long>(ea[i].reselects),
        static_cast<unsigned long long>(orig[i].handovers),
        static_cast<unsigned long long>(ea[i].handovers),
        static_cast<unsigned long long>(orig[i].handover_drops),
        static_cast<unsigned long long>(ea[i].handover_drops),
        orig[i].mean_ue_energy, ea[i].mean_ue_energy,
        i + 1 < users_axis.size() ? "," : "");
  }
  bench::appendf(json, "  ],\n  \"handover_price\": [\n");
  for (std::size_t i = 0; i < price.size(); ++i) {
    bench::appendf(
        json,
        "    {\"dwell_s\": %.17g, \"handovers_hard\": %llu,"
        " \"handover_drops_hard\": %llu,"
        " \"drop_hard\": %.17g, \"drop_instant\": %.17g,"
        " \"mean_ue_energy_hard_j\": %.17g,"
        " \"mean_ue_energy_instant_j\": %.17g}%s\n",
        price[i].dwell, static_cast<unsigned long long>(price[i].hard.handovers),
        static_cast<unsigned long long>(price[i].hard.handover_drops),
        price[i].hard.drop, price[i].instant.drop,
        price[i].hard.mean_ue_energy, price[i].instant.mean_ue_energy,
        i + 1 < price.size() ? "," : "");
  }
  bench::appendf(json, "  ]");
  if (scale_on) {
    // Rides along only when the scale knob is set, so the default artifact
    // stays byte-identical.
    bench::appendf(json,
                   ",\n  \"scale\": {\"sessions\": %d, \"offered\": %llu,"
                   " \"completed\": %llu, \"handovers\": %llu,"
                   " \"reselects\": %llu, \"sim_events\": %llu,"
                   " \"end_time_s\": %.17g}",
                   scale.total_users,
                   static_cast<unsigned long long>(scale.offered),
                   static_cast<unsigned long long>(scale.completed),
                   static_cast<unsigned long long>(scale.handovers),
                   static_cast<unsigned long long>(scale.reselects),
                   static_cast<unsigned long long>(scale.sim_events),
                   scale.end_time);
  }
  bench::appendf(json, "\n}\n");
  bench::write_artifact("BENCH_metro.json", json);
  return 0;
}
