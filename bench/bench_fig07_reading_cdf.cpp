// Regenerates Fig 7: the cumulative distribution of reading times in the
// 40-user trace.
//
// Paper anchors: ~30 % of reading times below 2 s (the interest threshold),
// ~53 % below Tp = 9 s, ~68 % below Td = 20 s; views above 10 minutes are
// discarded.
#include "bench_common.hpp"

#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_fig07_reading_cdf",
          "cumulative distribution of reading time", {"EAB_JOBS"})) {
    return 0;
  }
  bench::print_header("Fig 7", "cumulative distribution of reading time");

  auto records = bench::build_page_library();
  trace::TraceGenerator generator(std::move(records), trace::TraceConfig{}, 11);
  const auto views = generator.generate();

  std::vector<double> readings;
  readings.reserve(views.size());
  for (const auto& view : views) readings.push_back(view.reading_time);

  std::printf("trace: %zu page views from %d users over %zu distinct pages\n\n",
              views.size(), trace::TraceConfig{}.users,
              generator.records().size());

  TextTable table({"reading time <= (s)", "CDF measured", "CDF paper"});
  struct Anchor {
    double at;
    const char* paper;
  };
  for (const Anchor anchor : {Anchor{1, "-"}, Anchor{2, "30%"}, Anchor{4, "-"},
                              Anchor{6, "-"}, Anchor{9, "53%"}, Anchor{12, "-"},
                              Anchor{16, "-"}, Anchor{20, "68%"},
                              Anchor{60, "-"}, Anchor{300, "-"},
                              Anchor{600, "100%"}}) {
    table.add_row({format_fixed(anchor.at, 0),
                   format_percent(empirical_cdf_at(readings, anchor.at)),
                   anchor.paper});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nmax reading time: %.0f s (paper discards > 600 s)\n",
              *std::max_element(readings.begin(), readings.end()));

  // Dwell-time shape check (the paper's ref [12] fits web dwell times to a
  // Weibull with shape < 1, "negative aging"): our trace reproduces it.
  const trace::WeibullFit fit = trace::fit_weibull(readings);
  std::printf("Weibull fit: shape k = %.2f, scale = %.1f s  "
              "(ref [12]: k < 1, negative aging)\n",
              fit.shape, fit.scale);
  return 0;
}
