// Extension: the rendering-proxy alternative (paper Section 6).
//
// Opera-Mini-style systems solve the same energy problem differently: a
// server fetches and lays the page out, the phone pulls one compressed
// bundle.  The paper dismisses them as needing "additional remote devices";
// this bench quantifies what that infrastructure would buy relative to the
// on-device technique: the proxy groups transmissions even better than the
// reorganized pipeline (one stream), at the cost of server fleet, TLS
// termination and page fidelity.
#include "bench_common.hpp"

namespace {

using namespace eab;

void report(const std::string& label, const std::vector<corpus::PageSpec>& specs) {
  const auto orig_cfg =
      core::StackConfig::for_mode(browser::PipelineMode::kOriginal);
  const auto ea_cfg =
      core::StackConfig::for_mode(browser::PipelineMode::kEnergyAware);

  double orig_time = 0;
  double orig_energy = 0;
  double ea_time = 0;
  double ea_energy = 0;
  double proxy_time = 0;
  double proxy_energy = 0;
  for (const auto& spec : specs) {
    const auto orig = core::run_single_load(spec, orig_cfg);
    const auto ea = core::run_single_load(spec, ea_cfg);
    const auto proxy = core::run_proxy_load(spec, orig_cfg);
    orig_time += orig.metrics.total_time();
    orig_energy += orig.energy_with_reading;
    ea_time += ea.metrics.total_time();
    ea_energy += ea.energy_with_reading;
    proxy_time += proxy.total_time;
    proxy_energy += proxy.energy_with_reading;
  }
  const auto n = static_cast<double>(specs.size());

  TextTable table({label, "total load (s)", "energy + 20 s (J)",
                   "extra infrastructure"});
  table.add_row({"stock browser", format_fixed(orig_time / n, 1),
                 format_fixed(orig_energy / n, 1), "none"});
  table.add_row({"energy-aware (this paper)", format_fixed(ea_time / n, 1),
                 format_fixed(ea_energy / n, 1), "none"});
  table.add_row({"rendering proxy", format_fixed(proxy_time / n, 1),
                 format_fixed(proxy_energy / n, 1), "server fleet"});
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main() {
  using namespace eab;
  bench::print_header("Extension", "on-device reordering vs rendering proxy");
  report("full benchmark", corpus::full_benchmark());
  report("mobile benchmark", corpus::mobile_benchmark());
  std::printf("The proxy wins on raw numbers — one compressed stream is the\n"
              "theoretical optimum of 'group all transmissions' — but only by\n"
              "adding the server fleet the paper's technique avoids.\n");
  return 0;
}
