// Extension: the rendering-proxy alternative (paper Section 6).
//
// Opera-Mini-style systems solve the same energy problem differently: a
// server fetches and lays the page out, the phone pulls one compressed
// bundle.  The paper dismisses them as needing "additional remote devices";
// this bench quantifies what that infrastructure would buy relative to the
// on-device technique: the proxy groups transmissions even better than the
// reorganized pipeline (one stream), at the cost of server fleet, TLS
// termination and page fidelity.
#include "bench_common.hpp"

namespace {

using namespace eab;

void report(const std::string& label, const std::vector<corpus::PageSpec>& specs) {
  const core::Scenario orig_scenario =
      core::ScenarioBuilder(browser::PipelineMode::kOriginal).build();
  const core::Scenario ea_scenario =
      core::ScenarioBuilder(browser::PipelineMode::kEnergyAware).build();

  double orig_time = 0;
  double orig_energy = 0;
  double ea_time = 0;
  double ea_energy = 0;
  double proxy_time = 0;
  double proxy_energy = 0;
  for (const auto& spec : specs) {
    const auto orig = orig_scenario.run_single(spec);
    const auto ea = ea_scenario.run_single(spec);
    const auto proxy = orig_scenario.run_proxy(spec);
    orig_time += orig.metrics.total_time();
    orig_energy += orig.energy.with_reading_j;
    ea_time += ea.metrics.total_time();
    ea_energy += ea.energy.with_reading_j;
    proxy_time += proxy.total_time;
    proxy_energy += proxy.energy.with_reading_j;
  }
  const auto n = static_cast<double>(specs.size());

  TextTable table({label, "total load (s)", "energy + 20 s (J)",
                   "extra infrastructure"});
  table.add_row({"stock browser", format_fixed(orig_time / n, 1),
                 format_fixed(orig_energy / n, 1), "none"});
  table.add_row({"energy-aware (this paper)", format_fixed(ea_time / n, 1),
                 format_fixed(ea_energy / n, 1), "none"});
  table.add_row({"rendering proxy", format_fixed(proxy_time / n, 1),
                 format_fixed(proxy_energy / n, 1), "server fleet"});
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_ext_proxy",
          "on-device reordering vs rendering proxy", {"EAB_JOBS"})) {
    return 0;
  }
  bench::print_header("Extension", "on-device reordering vs rendering proxy");
  report("full benchmark", corpus::full_benchmark());
  report("mobile benchmark", corpus::mobile_benchmark());
  std::printf("The proxy wins on raw numbers — one compressed stream is the\n"
              "theoretical optimum of 'group all transmissions' — but only by\n"
              "adding the server fleet the paper's technique avoids.\n");
  return 0;
}
