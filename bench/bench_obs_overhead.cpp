// Measures what structured tracing costs: the 64-load batch sweep from
// bench_throughput run untraced and traced, best-of-N wall clock each.
//
// The cost contract (obs/trace.hpp) is that a disabled recorder is one
// predicted-not-taken branch per site and an enabled one only appends to a
// vector — never schedules simulator events — so traced results must be
// bit-identical to untraced ones and the slowdown must stay within a few
// percent.  This bench asserts the identity (exit 1 on any divergence) and
// reports the overhead against a 5 % budget in BENCH_obs_overhead.json.
#include "bench_common.hpp"

#include <algorithm>
#include <chrono>

#include "util/rng.hpp"

namespace {

using namespace eab;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<core::BatchJob> make_sweep(bool traced) {
  std::vector<corpus::PageSpec> pool = corpus::mobile_benchmark();
  const auto full = corpus::full_benchmark();
  pool.insert(pool.end(), full.begin(), full.end());

  std::vector<core::BatchJob> jobs;
  for (std::size_t i = 0; i < 64; ++i) {
    core::BatchJob job;
    job.spec = pool[i % pool.size()];
    job.config = core::StackConfig::for_mode(
        (i / pool.size()) % 2 == 0 ? browser::PipelineMode::kOriginal
                                   : browser::PipelineMode::kEnergyAware);
    job.config.trace = traced;
    job.reading_window = 20.0;
    job.seed = derive_seed(1, i);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

/// Best-of-`reps` wall clock for one cold run of `jobs` (a fresh runner per
/// repetition: the memo cache would otherwise answer every repeat for free).
double best_wall(const std::vector<core::BatchJob>& jobs, int reps,
                 std::vector<core::SingleLoadResult>* out) {
  double best = 1e9;
  for (int rep = 0; rep < reps; ++rep) {
    core::BatchRunner runner;
    const auto start = Clock::now();
    auto results = runner.run(jobs);
    best = std::min(best, seconds_since(start));
    if (out != nullptr && rep == 0) *out = std::move(results);
  }
  return best;
}

}  // namespace

int main() {
  using namespace eab;
  bench::print_header("Obs overhead", "tracing cost on the 64-load batch sweep");

  const int kReps = 3;
  const auto untraced_jobs = make_sweep(false);
  const auto traced_jobs = make_sweep(true);

  std::vector<core::SingleLoadResult> untraced, traced;
  const double untraced_s = best_wall(untraced_jobs, kReps, &untraced);
  const double traced_s = best_wall(traced_jobs, kReps, &traced);

  // The identity the whole subsystem stands on: tracing changes nothing.
  bool identical = untraced.size() == traced.size();
  for (std::size_t i = 0; identical && i < untraced.size(); ++i) {
    const auto& u = untraced[i];
    const auto& t = traced[i];
    identical = u.sim_events == t.sim_events &&
                u.energy.load_j == t.energy.load_j &&
                u.energy.with_reading_j == t.energy.with_reading_j &&
                u.dom_signature == t.dom_signature &&
                u.metrics.total_time() == t.metrics.total_time() &&
                u.trace == nullptr && t.trace != nullptr;
  }

  // While the traces are here, audit every one of them.
  int audit_failures = 0;
  for (std::size_t i = 0; i < traced.size(); ++i) {
    const auto report = obs::TraceAuditor().audit(
        *traced[i].trace,
        bench::make_audit_inputs(traced_jobs[i].config, traced[i]));
    if (!report.ok()) {
      ++audit_failures;
      std::printf("AUDIT FAIL [load %zu]:\n%s\n", i, report.summary().c_str());
    }
  }

  const double overhead = untraced_s > 0 ? traced_s / untraced_s - 1.0 : 0;
  double trace_events = 0;
  for (const auto& t : traced) {
    trace_events += static_cast<double>(t.trace->size());
  }

  std::printf("loads: %zu  reps: %d (best-of)\n", untraced_jobs.size(), kReps);
  std::printf("untraced: %.3f s   traced: %.3f s   overhead: %+.2f%% "
              "(budget 5%%)\n",
              untraced_s, traced_s, overhead * 100.0);
  std::printf("trace events recorded: %.0f (%.0f per load)\n", trace_events,
              trace_events / static_cast<double>(traced.size()));
  std::printf("results bit-identical traced vs untraced: %s   audits: %s\n",
              identical ? "yes" : "NO",
              audit_failures == 0 ? "all passed" : "FAILED");

  std::string json;
  bench::appendf(json,
                 "{\n"
                 "  \"loads\": %zu,\n"
                 "  \"reps\": %d,\n"
                 "  \"untraced_seconds\": %.6f,\n"
                 "  \"traced_seconds\": %.6f,\n"
                 "  \"overhead\": %.6f,\n"
                 "  \"overhead_budget\": 0.05,\n"
                 "  \"within_budget\": %s,\n"
                 "  \"trace_events\": %.0f,\n"
                 "  \"bit_identical\": %s,\n"
                 "  \"audit_failures\": %d\n"
                 "}\n",
                 untraced_jobs.size(), kReps, untraced_s, traced_s, overhead,
                 overhead <= 0.05 ? "true" : "false", trace_events,
                 identical ? "true" : "false", audit_failures);
  bench::write_artifact("BENCH_obs_overhead.json", json);
  return (identical && audit_failures == 0) ? 0 : 1;
}
