// Measures what observability costs: the 64-load batch sweep from
// bench_throughput run untraced and traced, best-of-N wall clock each, plus
// a 16-UE cell run with telemetry sampling off and on.
//
// The cost contract (obs/trace.hpp) is that a disabled recorder is one
// predicted-not-taken branch per site and an enabled one only appends to a
// vector — never schedules simulator events — so traced results must be
// bit-identical to untraced ones and the slowdown must stay within a few
// percent.  Telemetry (obs/telemetry.hpp) does schedule tick events but
// never mutates simulation state, so the sampled run's workload results
// must equal the unsampled run's exactly.  This bench asserts both
// identities (exit 1 on any divergence) and reports each overhead against
// a 5 % budget in BENCH_obs_overhead.json.
#include "bench_common.hpp"

#include <algorithm>
#include <chrono>

#include "cell/cell.hpp"
#include "util/rng.hpp"

namespace {

using namespace eab;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<core::BatchJob> make_sweep(bool traced) {
  std::vector<corpus::PageSpec> pool = corpus::mobile_benchmark();
  const auto full = corpus::full_benchmark();
  pool.insert(pool.end(), full.begin(), full.end());

  std::vector<core::BatchJob> jobs;
  for (std::size_t i = 0; i < 64; ++i) {
    core::BatchJob job;
    job.spec = pool[i % pool.size()];
    job.config = core::StackConfig::for_mode(
        (i / pool.size()) % 2 == 0 ? browser::PipelineMode::kOriginal
                                   : browser::PipelineMode::kEnergyAware);
    job.config.trace = traced;
    job.reading_window = 20.0;
    job.seed = derive_seed(1, i);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

/// Best-of-`reps` wall clock for one cold run of `jobs` (a fresh runner per
/// repetition: the memo cache would otherwise answer every repeat for free).
double best_wall(const std::vector<core::BatchJob>& jobs, int reps,
                 std::vector<core::SingleLoadResult>* out) {
  double best = 1e9;
  for (int rep = 0; rep < reps; ++rep) {
    core::BatchRunner runner;
    const auto start = Clock::now();
    auto results = runner.run(jobs);
    best = std::min(best, seconds_since(start));
    if (out != nullptr && rep == 0) *out = std::move(results);
  }
  return best;
}

/// The telemetry measurement vehicle: one 16-UE cell, 600 s horizon.
cell::CellConfig overhead_cell_config(Seconds telemetry_tick) {
  cell::CellConfig config;
  config.per_ue =
      core::ScenarioBuilder(browser::PipelineMode::kEnergyAware).build();
  config.specs = corpus::mobile_benchmark();
  config.users = 16;
  config.channels = 6;
  config.horizon = 600.0;
  config.cell_seed = 5;
  config.telemetry_tick = telemetry_tick;
  return config;
}

double best_cell_wall(const cell::CellConfig& config, int reps,
                      cell::CellResult* out) {
  double best = 1e9;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    auto result = cell::run_cell(config);
    best = std::min(best, seconds_since(start));
    if (out != nullptr && rep == 0) *out = std::move(result);
  }
  return best;
}

/// The telemetry identity: sampling must not bend the workload trajectory.
/// (sim_events legitimately differs — the tick events themselves.)
bool same_workload(const cell::CellResult& a, const cell::CellResult& b) {
  bool same = a.offered == b.offered && a.dropped == b.dropped &&
              a.completed == b.completed && a.aborted == b.aborted &&
              a.grant_overcommits == b.grant_overcommits &&
              a.end_time == b.end_time &&
              a.mean_busy_grants == b.mean_busy_grants &&
              a.per_ue.size() == b.per_ue.size();
  for (std::size_t i = 0; same && i < a.per_ue.size(); ++i) {
    same = a.per_ue[i].energy.with_reading_j ==
               b.per_ue[i].energy.with_reading_j &&
           a.per_ue[i].completed == b.per_ue[i].completed;
  }
  return same;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_obs_overhead",
          "tracing cost on the 64-load batch sweep", {"EAB_JOBS"})) {
    return 0;
  }
  bench::print_header("Obs overhead", "tracing cost on the 64-load batch sweep");

  const int kReps = 3;
  const auto untraced_jobs = make_sweep(false);
  const auto traced_jobs = make_sweep(true);

  std::vector<core::SingleLoadResult> untraced, traced;
  const double untraced_s = best_wall(untraced_jobs, kReps, &untraced);
  const double traced_s = best_wall(traced_jobs, kReps, &traced);

  // The identity the whole subsystem stands on: tracing changes nothing.
  bool identical = untraced.size() == traced.size();
  for (std::size_t i = 0; identical && i < untraced.size(); ++i) {
    const auto& u = untraced[i];
    const auto& t = traced[i];
    identical = u.sim_events == t.sim_events &&
                u.energy.load_j == t.energy.load_j &&
                u.energy.with_reading_j == t.energy.with_reading_j &&
                u.dom_signature == t.dom_signature &&
                u.metrics.total_time() == t.metrics.total_time() &&
                u.trace == nullptr && t.trace != nullptr;
  }

  // While the traces are here, audit every one of them.
  int audit_failures = 0;
  for (std::size_t i = 0; i < traced.size(); ++i) {
    const auto report = obs::TraceAuditor().audit(
        *traced[i].trace,
        bench::make_audit_inputs(traced_jobs[i].config, traced[i]));
    if (!report.ok()) {
      ++audit_failures;
      std::printf("AUDIT FAIL [load %zu]:\n%s\n", i, report.summary().c_str());
    }
  }

  const double overhead = untraced_s > 0 ? traced_s / untraced_s - 1.0 : 0;
  double trace_events = 0;
  for (const auto& t : traced) {
    trace_events += static_cast<double>(t.trace->size());
  }

  std::printf("loads: %zu  reps: %d (best-of)\n", untraced_jobs.size(), kReps);
  std::printf("untraced: %.3f s   traced: %.3f s   overhead: %+.2f%% "
              "(budget 5%%)\n",
              untraced_s, traced_s, overhead * 100.0);
  std::printf("trace events recorded: %.0f (%.0f per load)\n", trace_events,
              trace_events / static_cast<double>(traced.size()));
  std::printf("results bit-identical traced vs untraced: %s   audits: %s\n",
              identical ? "yes" : "NO",
              audit_failures == 0 ? "all passed" : "FAILED");

  // Phase 2: telemetry sampling on the cell co-simulation.
  cell::CellResult plain, sampled;
  const double plain_s =
      best_cell_wall(overhead_cell_config(0), kReps, &plain);
  const double sampled_s =
      best_cell_wall(overhead_cell_config(5.0), kReps, &sampled);
  const bool cell_identical = same_workload(plain, sampled) &&
                              plain.telemetry == nullptr &&
                              sampled.telemetry != nullptr;
  const double sampling_overhead =
      plain_s > 0 ? sampled_s / plain_s - 1.0 : 0;
  std::printf("\ncell (16 UEs, 600 s): unsampled %.3f s   sampled %.3f s   "
              "overhead: %+.2f%% (budget 5%%)\n",
              plain_s, sampled_s, sampling_overhead * 100.0);
  std::printf("telemetry series recorded: %zu\n",
              sampled.telemetry ? sampled.telemetry->series_count() : 0);
  std::printf("workload identical sampled vs unsampled: %s\n",
              cell_identical ? "yes" : "NO");

  std::string json;
  bench::appendf(json,
                 "{\n"
                 "  \"loads\": %zu,\n"
                 "  \"reps\": %d,\n"
                 "  \"untraced_seconds\": %.6f,\n"
                 "  \"traced_seconds\": %.6f,\n"
                 "  \"overhead\": %.6f,\n"
                 "  \"overhead_budget\": 0.05,\n"
                 "  \"within_budget\": %s,\n"
                 "  \"trace_events\": %.0f,\n"
                 "  \"bit_identical\": %s,\n"
                 "  \"audit_failures\": %d,\n"
                 "  \"sampling_off_seconds\": %.6f,\n"
                 "  \"sampling_on_seconds\": %.6f,\n"
                 "  \"sampling_overhead\": %.6f,\n"
                 "  \"sampling_within_budget\": %s,\n"
                 "  \"telemetry_series\": %zu,\n"
                 "  \"cell_workload_identical\": %s\n"
                 "}\n",
                 untraced_jobs.size(), kReps, untraced_s, traced_s, overhead,
                 overhead <= 0.05 ? "true" : "false", trace_events,
                 identical ? "true" : "false", audit_failures, plain_s,
                 sampled_s, sampling_overhead,
                 sampling_overhead <= 0.05 ? "true" : "false",
                 sampled.telemetry ? sampled.telemetry->series_count() : 0,
                 cell_identical ? "true" : "false");
  bench::write_artifact("BENCH_obs_overhead.json", json);
  return (identical && cell_identical && audit_failures == 0) ? 0 : 1;
}
