// Regenerates Table 4: Pearson correlation between reading time and each of
// the 10 page features.
//
// The paper's point is a negative result — no feature correlates linearly
// with reading time (all coefficients ~<= 0.07), which is why a linear model
// cannot predict it and a tree ensemble is needed.
#include "bench_common.hpp"

#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_table4_correlation",
          "Pearson correlation: reading time vs features", {"EAB_JOBS"})) {
    return 0;
  }
  bench::print_header("Table 4", "Pearson correlation: reading time vs features");

  auto records = bench::build_page_library();
  trace::TraceGenerator generator(std::move(records), trace::TraceConfig{}, 11);
  const auto views = generator.generate();
  const auto data = trace::to_dataset(views, generator.records());

  std::vector<double> readings;
  for (const auto& view : views) readings.push_back(view.reading_time);

  TextTable table({"feature", "|pearson r|", "paper"});
  const char* const paper[] = {"0.0009", "0.059", "0.023", "0.042", "0.013",
                               "0.015",  "0.021", "0.038", "0.067", "0.016"};
  double max_abs = 0;
  const auto names = browser::PageFeatures::names();
  for (std::size_t f = 0; f < names.size(); ++f) {
    const double r = pearson(data.column(f), data.targets());
    max_abs = std::max(max_abs, std::abs(r));
    table.add_row({names[f], format_fixed(std::abs(r), 4), paper[f]});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nmax |r| = %.3f — %s the paper's 'no usable linear signal'"
              " regime (all <= ~0.07)\n",
              max_abs, max_abs <= 0.09 ? "inside" : "OUTSIDE");
  return 0;
}
