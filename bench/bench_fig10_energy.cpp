// Regenerates Fig 10: energy to open a page plus 20 seconds of reading,
// original vs energy-aware, for both benchmarks and the two featured pages.
//
// Paper-reported savings: mobile benchmark 35.7 %, full benchmark 30.8 %,
// m.cnn.com 35.5 %, espn.go.com/sports 43.6 %.
#include "bench_common.hpp"

namespace {

using namespace eab;

void report(const std::string& label, const std::vector<corpus::PageSpec>& specs,
            double paper_saving) {
  const auto orig = bench::run_benchmark(
      specs, core::StackConfig::for_mode(browser::PipelineMode::kOriginal));
  const auto ea = bench::run_benchmark(
      specs, core::StackConfig::for_mode(browser::PipelineMode::kEnergyAware));
  TextTable table({label, "Original", "Energy-Aware", "saving", "paper"});
  table.add_row({"energy: open page (J)", format_fixed(orig.load_energy, 1),
                 format_fixed(ea.load_energy, 1),
                 format_percent(bench::saving(orig.load_energy, ea.load_energy)),
                 "-"});
  table.add_row({"energy: open + 20 s read (J)", format_fixed(orig.energy_20s, 1),
                 format_fixed(ea.energy_20s, 1),
                 format_percent(bench::saving(orig.energy_20s, ea.energy_20s)),
                 format_percent(paper_saving)});
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main() {
  using namespace eab;
  bench::print_header("Fig 10", "energy for opening a page + 20 s of reading");

  report("mobile benchmark", corpus::mobile_benchmark(), 0.357);
  report("full benchmark", corpus::full_benchmark(), 0.308);
  report("m.cnn.com", {corpus::m_cnn_spec()}, 0.355);
  report("espn.go.com/sports", {corpus::espn_sports_spec()}, 0.436);
  return 0;
}
