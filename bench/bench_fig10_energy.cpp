// Regenerates Fig 10: energy to open a page plus 20 seconds of reading,
// original vs energy-aware, for both benchmarks and the two featured pages.
//
// Paper-reported savings: mobile benchmark 35.7 %, full benchmark 30.8 %,
// m.cnn.com 35.5 %, espn.go.com/sports 43.6 %.
//
// Under EAB_TRACE=1 every load records a structured trace and the
// TraceAuditor replays each one (RRC legality, timer discipline, transfer
// markers, retry budget, energy reconciliation); any violation makes the
// bench exit non-zero.  Tracing changes no measured number.
#include "bench_common.hpp"

namespace {

using namespace eab;

/// Returns the number of loads whose trace audit failed (0 when tracing is
/// off: untraced loads are skipped by audit_results).
int report(const std::string& label, const std::vector<corpus::PageSpec>& specs,
           double paper_saving) {
  auto orig_cfg = core::StackConfig::for_mode(browser::PipelineMode::kOriginal);
  auto ea_cfg = core::StackConfig::for_mode(browser::PipelineMode::kEnergyAware);
  orig_cfg.trace = ea_cfg.trace = bench::trace_enabled();

  const auto orig_results = bench::run_loads(specs, orig_cfg);
  const auto ea_results = bench::run_loads(specs, ea_cfg);
  const auto orig = bench::averages_of(orig_results);
  const auto ea = bench::averages_of(ea_results);

  TextTable table({label, "Original", "Energy-Aware", "saving", "paper"});
  table.add_row({"energy: open page (J)", format_fixed(orig.load_energy, 1),
                 format_fixed(ea.load_energy, 1),
                 format_percent(bench::saving(orig.load_energy, ea.load_energy)),
                 "-"});
  table.add_row({"energy: open + 20 s read (J)", format_fixed(orig.energy_20s, 1),
                 format_fixed(ea.energy_20s, 1),
                 format_percent(bench::saving(orig.energy_20s, ea.energy_20s)),
                 format_percent(paper_saving)});
  std::printf("%s\n", table.render().c_str());

  return bench::audit_results(orig_results, orig_cfg, label + " original") +
         bench::audit_results(ea_results, ea_cfg, label + " energy-aware");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eab;
  if (bench::maybe_print_help(
          argc, argv, "bench_fig10_energy",
          "energy for opening a page + 20 s of reading", {"EAB_TRACE",
          "EAB_TRACE_OUT",
          "EAB_JOBS"})) {
    return 0;
  }
  bench::print_header("Fig 10", "energy for opening a page + 20 s of reading");

  int audit_failures = 0;
  audit_failures += report("mobile benchmark", corpus::mobile_benchmark(), 0.357);
  audit_failures += report("full benchmark", corpus::full_benchmark(), 0.308);
  audit_failures += report("m.cnn.com", {corpus::m_cnn_spec()}, 0.355);
  audit_failures +=
      report("espn.go.com/sports", {corpus::espn_sports_spec()}, 0.436);

  bench::write_metrics_snapshot("fig10_energy");
  if (audit_failures > 0) {
    std::printf("FAIL: %d loads violated trace invariants\n", audit_failures);
    return 1;
  }
  return 0;
}
